"""Legacy setup shim.

Kept so `pip install -e . --no-build-isolation --no-use-pep517` works
in offline environments whose setuptools lacks the `wheel` package
(PEP-517 editable installs need `bdist_wheel`). Normal environments
can ignore this file; pyproject.toml is authoritative.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy"],
    python_requires=">=3.9",
    entry_points={"console_scripts": ["grr = repro.tools.grr:main"]},
)
