"""ML frameworks on top of the GPU runtimes.

- :mod:`repro.stack.framework.layers` -- layer/model specifications and
  shape inference;
- :mod:`repro.stack.framework.lowering` -- layers -> runtime kernels
  (with optional ACL-style layer fusion);
- :mod:`repro.stack.framework.models` -- the NN zoo of Table 6;
- :mod:`repro.stack.framework.base` -- the shared network runner;
- :mod:`repro.stack.framework.acl` / ``ncnn`` / ``armnn`` / ``deepcl``
  -- the four framework personalities of Table 3.
"""

from repro.stack.framework.acl import AclNetwork
from repro.stack.framework.armnn import TensorflowNetwork
from repro.stack.framework.deepcl import DeepClTrainer
from repro.stack.framework.layers import (LayerSpec, ModelSpec,
                                          infer_shapes, init_weights)
from repro.stack.framework.models import MODEL_ZOO, build_model
from repro.stack.framework.ncnn import NcnnNetwork

__all__ = [
    "AclNetwork",
    "DeepClTrainer",
    "LayerSpec",
    "MODEL_ZOO",
    "ModelSpec",
    "NcnnNetwork",
    "TensorflowNetwork",
    "build_model",
    "infer_shapes",
    "init_weights",
]
