"""The shared network runner: model + runtime -> executable network.

``configure()`` is the expensive app startup the paper measures
(Figure 6): framework init, runtime context creation, buffer
allocation, weight upload ("parameters loading IO") and JIT kernel
compilation -- each phase separately accounted in ``startup_phases``.

``run()`` performs one inference; ``layer_hook`` drains the GPU at
every layer boundary and calls back, which is how the record harness
cuts per-layer recordings (Section 3.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FrameworkError
from repro.stack.framework.layers import ModelSpec, init_weights
from repro.stack.framework.lowering import (LayerKernels, lower_model,
                                            model_slot_shapes)
from repro.stack.runtime.base import Buffer, CompiledKernel, ComputeRuntime
from repro.units import MS

LayerHook = Callable[[int, "LayerKernels"], None]


class NetworkRunner:
    """Base class for the framework personalities (ACL, ncnn, ...)."""

    framework_name = "abstract"
    #: One-time framework initialization (model load, graph optimize).
    INIT_NS = 100 * MS
    #: Per-layer pipeline/graph build cost at configure time.
    PER_LAYER_BUILD_NS = 2 * MS
    #: Per-layer run-time framework work (tensor map/unmap, operator
    #: scheduling) around each operator's synchronization point -- the
    #: user-level execution GR's replay eliminates (Section 7.4).
    LAYER_SYNC_NS = 250 * 1000

    def __init__(self, runtime: ComputeRuntime, model: ModelSpec,
                 fuse: bool = False):
        self.runtime = runtime
        self.model = model
        self.fuse = fuse
        self.lowered: List[LayerKernels] = []
        self.buffers: Dict[str, Buffer] = {}
        self.compiled: Dict[str, CompiledKernel] = {}
        self.weights: Dict[str, np.ndarray] = {}
        self.startup_phases: Dict[str, int] = {}
        self.configured = False

    # -- startup ---------------------------------------------------------------

    def configure(self) -> None:
        """Build the network: the seconds-scale startup path."""
        if self.configured:
            raise FrameworkError(f"{self.model.name}: already configured")
        clock = self.runtime.clock

        t0 = clock.now()
        clock.advance(self.INIT_NS
                      + self.PER_LAYER_BUILD_NS * len(self.model.layers))
        self.lowered = lower_model(self.model, self.fuse)
        self.startup_phases["framework_init"] = clock.now() - t0

        t0 = clock.now()
        if not self.runtime.initialized:
            self.runtime.init_context()
        self.startup_phases["runtime_context"] = clock.now() - t0

        t0 = clock.now()
        for slot, shape in model_slot_shapes(self.model, self.fuse).items():
            self.buffers[slot] = self.runtime.create_buffer(shape, tag=slot)
        self.startup_phases["buffer_alloc"] = clock.now() - t0

        t0 = clock.now()
        self.weights = init_weights(self.model)
        for name, array in self.weights.items():
            self.runtime.write_buffer(self.buffers[name], array)
        self.startup_phases["weights_upload"] = clock.now() - t0

        t0 = clock.now()
        for group in self.lowered:
            for kernel in group.kernels:
                self.compiled[kernel.name] = self.runtime.compile_kernel(
                    kernel)
        self.startup_phases["kernel_compile"] = clock.now() - t0
        self.configured = True

    @property
    def startup_ns(self) -> int:
        return sum(self.startup_phases.values())

    #: Fixed resident memory of the framework (graph structures,
    #: operator registry, optimization workspaces).
    FRAMEWORK_RSS_BYTES = 60 * 1024 * 1024

    def cpu_footprint_bytes(self) -> int:
        """Modeled resident CPU memory of framework + runtime (§7.3).

        The framework keeps host-side copies of weights and activation
        planning structures (roughly 3x the parameter bytes) on top of
        its fixed structures and the runtime below it.
        """
        if not self.configured:
            return 0
        weight_bytes = sum(w.nbytes for w in self.weights.values())
        return (self.FRAMEWORK_RSS_BYTES + 3 * weight_bytes
                + self.runtime.cpu_footprint_bytes())

    # -- inference ------------------------------------------------------------------

    def run(self, x: np.ndarray,
            layer_hook: Optional[LayerHook] = None) -> np.ndarray:
        """One inference on input ``x``; returns the output tensor."""
        self._require_configured()
        if tuple(x.shape) != tuple(self.model.input_shape):
            raise FrameworkError(
                f"{self.model.name}: input shape {x.shape} != "
                f"{self.model.input_shape}")
        self.runtime.write_buffer(self.buffers["input"], x)
        for index, group in enumerate(self.lowered):
            for kernel in group.kernels:
                self.runtime.enqueue(self.compiled[kernel.name],
                                     self.buffers)
            # Frameworks synchronize at operator boundaries (ACL maps
            # tensors / ncnn fences per layer), so each layer drains
            # the queue -- which is also the quiesced point where the
            # recorder can cut a per-layer recording.
            self.runtime.finish()
            self.runtime.clock.advance(self.LAYER_SYNC_NS)
            if layer_hook is not None:
                layer_hook(index, group)
        return self.read_output()

    def read_output(self) -> np.ndarray:
        return self.runtime.read_buffer(self.output_buffer())

    def output_buffer(self) -> Buffer:
        self._require_configured()
        return self.buffers[f"{self.model.output_layer().name}:out"]

    def input_buffer(self) -> Buffer:
        self._require_configured()
        return self.buffers["input"]

    def job_count_per_run(self) -> int:
        return sum(len(g.kernels) for g in self.lowered)

    def release(self) -> None:
        self.runtime.release()
        self.buffers.clear()
        self.compiled.clear()
        self.configured = False

    def _require_configured(self) -> None:
        if not self.configured:
            raise FrameworkError(
                f"{self.model.name}: configure() not called")
