"""The ACL-like framework (Arm Compute Library personality).

Pairs with the OpenCL (or GLES-compute) runtime on Mali. Distinctive
behaviours the evaluation relies on: optional *layer fusion* (the
middle recording granularity of Figure 11) and relatively light
framework init -- on Mali the startup bottleneck is the runtime's
shader compilation, not the framework (Figure 6).
"""

from __future__ import annotations

from repro.errors import FrameworkError
from repro.stack.framework.base import NetworkRunner
from repro.stack.framework.layers import ModelSpec
from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS


class AclNetwork(NetworkRunner):
    """arm_compute::CLGraph-like network runner."""

    framework_name = "acl"
    INIT_NS = 120 * MS
    PER_LAYER_BUILD_NS = 2 * MS
    LAYER_SYNC_NS = 350 * 1000

    def __init__(self, runtime: ComputeRuntime, model: ModelSpec,
                 fuse: bool = False):
        if runtime.api_name not in ("opencl", "gles-compute"):
            raise FrameworkError(
                f"ACL needs an OpenCL/GLES runtime, got {runtime.api_name}")
        super().__init__(runtime, model, fuse)
