"""The TensorFlow-model path (ArmNN-delegate personality).

Table 3's fourth Mali-compatible stack: "Tensorflow + ACL + OpenCL".
A TensorFlow(-Lite-like) model is parsed and delegated to ACL kernels;
the extra parse/convert work happens once at configure time.
"""

from __future__ import annotations

from repro.errors import FrameworkError
from repro.stack.framework.acl import AclNetwork
from repro.stack.framework.layers import ModelSpec
from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS


class TensorflowNetwork(AclNetwork):
    """A TF model executed through the ArmNN -> ACL delegate path."""

    framework_name = "tensorflow-armnn"
    #: TF graph parse + ArmNN conversion dominate framework init.
    INIT_NS = 320 * MS
    PER_LAYER_BUILD_NS = 4 * MS

    def __init__(self, runtime: ComputeRuntime, model: ModelSpec,
                 fuse: bool = True):
        # The delegate always hands ACL fused subgraphs.
        super().__init__(runtime, model, fuse)

    def configure(self) -> None:
        if not self.model.layers:
            raise FrameworkError("empty TF graph")
        super().configure()
