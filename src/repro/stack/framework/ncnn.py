"""The ncnn-like framework (Tencent ncnn personality).

Pairs with the Vulkan runtime on v3d. Its expensive configure phase --
model loading and per-layer Vulkan *pipeline building* -- is the v3d
startup bottleneck of Figure 6 ("v3d is [bottlenecked] at the framework
(ncnn) loading NNs and optimizing pipelines").
"""

from __future__ import annotations

from repro.errors import FrameworkError
from repro.stack.framework.base import NetworkRunner
from repro.stack.framework.layers import ModelSpec
from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS


class NcnnNetwork(NetworkRunner):
    """ncnn::Net-like network runner."""

    framework_name = "ncnn"
    INIT_NS = 600 * MS
    PER_LAYER_BUILD_NS = 28 * MS
    LAYER_SYNC_NS = 80 * 1000

    def __init__(self, runtime: ComputeRuntime, model: ModelSpec,
                 fuse: bool = False):
        if runtime.api_name != "vulkan":
            raise FrameworkError(
                f"ncnn requires the Vulkan runtime, got {runtime.api_name}")
        super().__init__(runtime, model, fuse)
