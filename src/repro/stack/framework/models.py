"""The NN model zoo.

Scaled-down but structurally faithful versions of the networks in the
paper's Table 6 plus additional recordings mentioned in Table 3 (the
Mali prototype records 18 inference workloads). Channel counts and
spatial sizes are shrunk so simulation stays fast; layer *structure*
(depth, routes, fire modules, residual adds, upsample+concat heads) is
preserved, because GPUReplay's behaviour depends on job-graph shape,
not on parameter count.

Every model's job graph is branch-free at the job level (Section 3.1):
fire modules, skips and routes are unconditional multi-input layers.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import FrameworkError
from repro.stack.framework.layers import LayerSpec, ModelSpec


def _conv(name: str, oc: int, k: int = 3, stride: int = 1, pad: int = 1,
          act: str = "relu", inputs=None) -> LayerSpec:
    params = {"out_channels": oc, "k": k, "stride": stride, "pad": pad}
    if act:
        params["act"] = act
    return LayerSpec(name, "conv", params, inputs)


def _dense(name: str, units: int, act: str = None) -> LayerSpec:
    params = {"units": units}
    if act:
        params["act"] = act
    return LayerSpec(name, "dense", params)


def _pool(name: str, k: int = 2, inputs=None) -> LayerSpec:
    return LayerSpec(name, "maxpool", {"k": k, "stride": k}, inputs)


def mnist() -> ModelSpec:
    """A small MNIST convnet (the paper's smallest workload)."""
    layers = [
        _conv("conv1", 8, k=3, pad=1),
        _pool("pool1"),
        LayerSpec("flat", "flatten"),
        _dense("fc1", 32, act="relu"),
        _dense("fc2", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("mnist", (1, 16, 16), layers,
                     description="4-weighted-layer MNIST convnet")


def lenet5() -> ModelSpec:
    layers = [
        _conv("c1", 6, k=5, pad=2),
        _pool("s2"),
        _conv("c3", 16, k=5, pad=0),
        _pool("s4"),
        LayerSpec("flat", "flatten"),
        _dense("f5", 32, act="relu"),
        _dense("f6", 16, act="relu"),
        _dense("out", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("lenet5", (1, 16, 16), layers,
                     description="classic LeNet-5")


def alexnet() -> ModelSpec:
    """5 convs (two with LRN) + 3 FCs, like the original 8 layers."""
    layers = [
        _conv("conv1", 12, k=3, stride=1, pad=1),
        LayerSpec("lrn1", "lrn", {"n": 5}),
        _pool("pool1"),
        _conv("conv2", 16, k=3, pad=1),
        LayerSpec("lrn2", "lrn", {"n": 5}),
        _pool("pool2"),
        _conv("conv3", 24, k=3, pad=1),
        _conv("conv4", 24, k=3, pad=1),
        _conv("conv5", 16, k=3, pad=1),
        _pool("pool3"),
        LayerSpec("flat", "flatten"),
        _dense("fc6", 64, act="relu"),
        _dense("fc7", 48, act="relu"),
        _dense("fc8", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("alexnet", (3, 32, 32), layers,
                     description="8-weighted-layer AlexNet")


def mobilenet() -> ModelSpec:
    """Depthwise-separable stack: 13 dw/pw pairs behind a stem conv."""
    layers: List[LayerSpec] = [
        _conv("stem", 8, k=3, stride=2, pad=1, act="relu6")]
    channels = [8, 16, 16, 24, 24, 32, 32, 32, 32, 32, 32, 48, 48]
    strides = [1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 1, 1]
    for i, (c, s) in enumerate(zip(channels, strides), start=1):
        layers.append(LayerSpec(
            f"dw{i}", "dwconv",
            {"k": 3, "stride": s, "pad": 1, "act": "relu6"}))
        layers.append(_conv(f"pw{i}", c, k=1, pad=0, act="relu6"))
    layers += [
        LayerSpec("gap", "gap"),
        _dense("fc", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("mobilenet", (3, 32, 32), layers,
                     description="28-layer MobileNetV1-style network")


def _fire(idx: int, inp: str, squeeze: int, expand: int) -> List[LayerSpec]:
    """A SqueezeNet fire module: squeeze 1x1 -> two expand branches."""
    s = f"fire{idx}_s"
    e1 = f"fire{idx}_e1"
    e3 = f"fire{idx}_e3"
    return [
        _conv(s, squeeze, k=1, pad=0, inputs=(inp,)),
        _conv(e1, expand, k=1, pad=0, inputs=(s,)),
        _conv(e3, expand, k=3, pad=1, inputs=(s,)),
        LayerSpec(f"fire{idx}", "concat", {}, (e1, e3)),
    ]


def squeezenet() -> ModelSpec:
    """Fire modules with their unconditional 'branches' (Section 3.1)."""
    layers: List[LayerSpec] = [
        _conv("conv1", 8, k=3, stride=2, pad=1),
        _pool("pool1"),
    ]
    layers += _fire(2, "pool1", 4, 8)
    layers += _fire(3, "fire2", 4, 8)
    layers.append(_pool("pool3", inputs=("fire3",)))
    layers += _fire(4, "pool3", 6, 12)
    layers += _fire(5, "fire4", 6, 12)
    layers += [
        _conv("conv10", 10, k=1, pad=0, inputs=("fire5",)),
        LayerSpec("gap", "gap"),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("squeezenet", (3, 32, 32), layers,
                     description="SqueezeNet with 4 fire modules")


def _residual_block(idx: int, inp: str, channels: int) -> List[LayerSpec]:
    a = f"res{idx}a"
    b = f"res{idx}b"
    return [
        _conv(a, channels, k=3, pad=1, inputs=(inp,)),
        _conv(b, channels, k=3, pad=1, act=None, inputs=(a,)),
        LayerSpec(f"add{idx}", "add", {}, (b, inp)),
        LayerSpec(f"res{idx}", "relu", {}, (f"add{idx}",)),
    ]


def _resnet(name: str, blocks: int) -> ModelSpec:
    layers: List[LayerSpec] = [_conv("stem", 8, k=3, pad=1)]
    prev = "stem"
    for i in range(1, blocks + 1):
        layers += _residual_block(i, prev, 8)
        prev = f"res{i}"
    layers += [
        LayerSpec("gap", "gap", {}, (prev,)),
        _dense("fc", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec(name, (3, 16, 16), layers,
                     description=f"ResNet with {blocks} residual blocks")


def resnet12() -> ModelSpec:
    return _resnet("resnet12", 5)


def resnet18() -> ModelSpec:
    return _resnet("resnet18", 8)


def vgg16() -> ModelSpec:
    """13 convs + 3 FCs with the VGG pool rhythm."""
    cfg = [(8, False), (8, True), (16, False), (16, True),
           (24, False), (24, False), (24, True), (32, False),
           (32, False), (32, True), (32, False), (32, False), (32, True)]
    layers: List[LayerSpec] = []
    pools = 0
    for i, (c, pool_after) in enumerate(cfg, start=1):
        layers.append(_conv(f"conv{i}", c, k=3, pad=1))
        if pool_after:
            pools += 1
            layers.append(_pool(f"pool{pools}"))
    layers += [
        LayerSpec("flat", "flatten"),
        _dense("fc1", 64, act="relu"),
        _dense("fc2", 64, act="relu"),
        _dense("fc3", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("vgg16", (3, 32, 32), layers,
                     description="16-weighted-layer VGG")


def yolov4_tiny() -> ModelSpec:
    """Backbone + route concats + upsample head, YOLOv4-tiny style."""
    layers = [
        _conv("c1", 8, k=3, stride=2, pad=1, act="leaky"),
        _conv("c2", 16, k=3, stride=2, pad=1, act="leaky"),
        _conv("c3", 16, k=3, pad=1, act="leaky"),
        _conv("c4", 8, k=1, pad=0, act="leaky", inputs=("c3",)),
        _conv("c5", 8, k=3, pad=1, act="leaky", inputs=("c4",)),
        LayerSpec("route1", "concat", {}, ("c4", "c5")),
        _conv("c6", 16, k=1, pad=0, act="leaky", inputs=("route1",)),
        _pool("mp1", inputs=("c6",)),
        _conv("c7", 24, k=3, pad=1, act="leaky"),
        _conv("c8", 12, k=1, pad=0, act="leaky", inputs=("c7",)),
        _conv("c9", 12, k=3, pad=1, act="leaky", inputs=("c8",)),
        LayerSpec("route2", "concat", {}, ("c8", "c9")),
        _conv("c10", 24, k=1, pad=0, act="leaky", inputs=("route2",)),
        _pool("mp2", inputs=("c10",)),
        _conv("c11", 32, k=3, pad=1, act="leaky"),
        _conv("head1", 16, k=1, pad=0, act=None, inputs=("c11",)),
        LayerSpec("up1", "upsample", {}, ("head1",)),
        LayerSpec("route3", "concat", {}, ("up1", "c10")),
        _conv("head2", 16, k=3, pad=1, act="leaky", inputs=("route3",)),
        LayerSpec("flat", "flatten"),
        _dense("det", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("yolov4-tiny", (3, 32, 32), layers,
                     description="YOLOv4-tiny-style detector head")


def googlenet_lite() -> ModelSpec:
    """Two inception-style modules (more unconditional 'branches')."""

    def inception(idx: int, inp: str, c1: int, c3: int) -> List[LayerSpec]:
        a = f"inc{idx}_1x1"
        b0 = f"inc{idx}_3x3r"
        b = f"inc{idx}_3x3"
        return [
            _conv(a, c1, k=1, pad=0, inputs=(inp,)),
            _conv(b0, c1, k=1, pad=0, inputs=(inp,)),
            _conv(b, c3, k=3, pad=1, inputs=(b0,)),
            LayerSpec(f"inc{idx}", "concat", {}, (a, b)),
        ]

    layers: List[LayerSpec] = [
        _conv("stem", 8, k=3, stride=2, pad=1),
        _pool("pool1"),
    ]
    layers += inception(1, "pool1", 8, 8)
    layers += inception(2, "inc1", 8, 16)
    layers += [
        LayerSpec("gap", "gap", {}, ("inc2",)),
        _dense("fc", 10),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("googlenet-lite", (3, 32, 32), layers,
                     description="GoogLeNet-style inception routes")


def kws_mlp() -> ModelSpec:
    """Keyword-spotting MLP (a common always-on mobile workload)."""
    layers = [
        LayerSpec("flat", "flatten"),
        _dense("fc1", 64, act="relu"),
        _dense("fc2", 32, act="relu"),
        _dense("fc3", 12),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("kws", (1, 10, 25), layers,
                     description="keyword spotting MLP on MFCC features")


def har_mlp() -> ModelSpec:
    """Human-activity recognition from IMU windows."""
    layers = [
        LayerSpec("flat", "flatten"),
        _dense("fc1", 48, act="relu"),
        _dense("fc2", 24, act="tanh"),
        _dense("fc3", 6),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("har", (3, 8, 16), layers,
                     description="activity recognition MLP")


def autoencoder() -> ModelSpec:
    """Anomaly-detection autoencoder (predictive maintenance)."""
    layers = [
        LayerSpec("flat", "flatten"),
        _dense("enc1", 32, act="relu"),
        _dense("enc2", 8, act="relu"),
        _dense("dec1", 32, act="relu"),
        _dense("dec2", 64, act="sigmoid"),
    ]
    return ModelSpec("autoencoder", (1, 8, 8), layers,
                     description="dense autoencoder, 64-dim input")


def dense_serve() -> ModelSpec:
    """Classifier-head serve workload with full-size weights.

    The rest of the zoo shrinks parameter counts ~100x (virtual time
    compensates), which also shrinks the recordings' memory dumps to a
    few KB per job. This model keeps realistic weight bytes -- several
    MB across three dense layers -- so the replay fast-path benchmark
    can measure what resident-dump skipping actually saves: the
    wall-clock cost of re-uploading megabytes of weights per replay.
    """
    layers = [
        LayerSpec("flat", "flatten"),
        _dense("fc1", 1024, act="relu"),
        _dense("fc2", 256, act="relu"),
        _dense("logits", 64),
        LayerSpec("prob", "softmax"),
    ]
    return ModelSpec("dense-serve", (1, 32, 32), layers,
                     description="full-weight dense classifier head "
                                 "(steady-state serve loop)")


MODEL_ZOO: Dict[str, Callable[[], ModelSpec]] = {
    "mnist": mnist,
    "lenet5": lenet5,
    "alexnet": alexnet,
    "mobilenet": mobilenet,
    "squeezenet": squeezenet,
    "resnet12": resnet12,
    "resnet18": resnet18,
    "vgg16": vgg16,
    "yolov4-tiny": yolov4_tiny,
    "googlenet-lite": googlenet_lite,
    "kws": kws_mlp,
    "har": har_mlp,
    "autoencoder": autoencoder,
    "dense-serve": dense_serve,
}


def build_model(name: str) -> ModelSpec:
    try:
        builder = MODEL_ZOO[name]
    except KeyError:
        raise FrameworkError(
            f"unknown model {name!r}; zoo: {sorted(MODEL_ZOO)}")
    model = builder()
    model.validate()
    return model
