"""The DeepCL-like training framework.

Models the paper's NN-training workload (Figure 8): MNIST training on
DeepCL + OpenCL, which "already submits jobs synchronously with
CLFlush()". Each training iteration is a fixed, branch-free job
sequence -- forward, loss gradient, backward, SGD updates -- while the
convergence predicate P runs on the CPU between iterations, exactly the
record/replay split of Section 3.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FrameworkError
from repro.gpu.isa import Op
from repro.gpu.shader_exec import compute_op
from repro.stack.runtime.base import Buffer, ComputeRuntime
from repro.stack.runtime.kernel_ir import KernelIR, KernelOp
from repro.units import MS


@dataclass(frozen=True)
class TrainSpec:
    """An MLP classifier training setup."""

    name: str
    input_dim: int
    hidden_dims: Tuple[int, ...]
    classes: int
    batch: int
    lr: float = 0.1
    seed: int = 11

    def layer_dims(self) -> List[Tuple[int, int]]:
        dims = [self.input_dim, *self.hidden_dims, self.classes]
        return list(zip(dims[:-1], dims[1:]))


def mnist_train_spec(batch: int = 16) -> TrainSpec:
    """The paper's MNIST training benchmark, scaled down."""
    return TrainSpec("mnist-train", input_dim=64, hidden_dims=(32,),
                     classes=10, batch=batch)


class DeepClTrainer:
    """Builds and runs one training iteration as a fixed GPU job list."""

    framework_name = "deepcl"
    INIT_NS = 380 * MS  # parameter parsing + net building
    #: Per-job CPU work each iteration: kernel-argument marshalling,
    #: dimension recomputation and the CLFlush bookkeeping DeepCL does
    #: around every enqueue -- the overhead GR's replay removes
    #: ("avoids DeepCL and the OpenCL runtime", Figure 8).
    PER_JOB_SETUP_NS = 120 * 1000

    def __init__(self, runtime: ComputeRuntime, spec: TrainSpec):
        if runtime.api_name != "opencl":
            raise FrameworkError("DeepCL runs on the OpenCL runtime")
        self.runtime = runtime
        self.spec = spec
        self.buffers: Dict[str, Buffer] = {}
        self.kernels: List = []
        self.configured = False
        self.startup_ns = 0

    # -- graph construction ------------------------------------------------------

    def _iteration_kernels(self) -> List[KernelIR]:
        """The branch-free job sequence of one iteration."""
        spec = self.spec
        B = spec.batch
        dims = spec.layer_dims()
        n = len(dims)
        shapes: Dict[str, Tuple[int, ...]] = {
            "x": (B, spec.input_dim),
            "y": (B, spec.classes),
            "loss": (1,),
        }
        for i, (d_in, d_out) in enumerate(dims, start=1):
            shapes[f"w{i}"] = (d_in, d_out)
            shapes[f"b{i}"] = (d_out,)
            shapes[f"z{i}"] = (B, d_out)
            shapes[f"a{i}"] = (B, d_out)
            shapes[f"dz{i}"] = (B, d_out)
            shapes[f"da{i}"] = (B, d_out)
            shapes[f"dw{i}"] = (d_in, d_out)
            shapes[f"db{i}"] = (d_out,)

        def k(name: str, op: KernelOp) -> KernelIR:
            slots = {s: shapes[s] for s in op.operand_order()}
            return KernelIR(name, [op], slots)

        kernels: List[KernelIR] = []
        # Forward.
        act_in = "x"
        for i in range(1, n + 1):
            kernels.append(k(f"fwd{i}", KernelOp(
                Op.DENSE, (act_in, f"w{i}", f"b{i}"), f"z{i}")))
            if i < n:
                kernels.append(k(f"act{i}", KernelOp(
                    Op.RELU, (f"z{i}",), f"a{i}")))
                act_in = f"a{i}"
        # Loss gradient at the output.
        kernels.append(k("loss", KernelOp(
            Op.SOFTMAX_XENT_GRAD, (f"z{n}", "y"), f"dz{n}",
            extra_outputs=("loss",))))
        # Backward.
        for i in range(n, 0, -1):
            fwd_in = "x" if i == 1 else f"a{i - 1}"
            kernels.append(k(f"gw{i}", KernelOp(
                Op.DENSE_GRAD_W, (fwd_in, f"dz{i}"), f"dw{i}")))
            kernels.append(k(f"gb{i}", KernelOp(
                Op.DENSE_GRAD_B, (f"dz{i}",), f"db{i}")))
            if i > 1:
                kernels.append(k(f"gx{i}", KernelOp(
                    Op.DENSE_GRAD_X, (f"dz{i}", f"w{i}"), f"da{i - 1}")))
                kernels.append(k(f"gr{i - 1}", KernelOp(
                    Op.RELU_GRAD, (f"z{i - 1}", f"da{i - 1}"),
                    f"dz{i - 1}")))
        # SGD updates (in place: output binds the same buffer).
        lr = (self.spec.lr,)
        for i in range(1, n + 1):
            kernels.append(k(f"upw{i}", KernelOp(
                Op.SGD_UPDATE, (f"w{i}", f"dw{i}"), f"w{i}", lr)))
            kernels.append(k(f"upb{i}", KernelOp(
                Op.SGD_UPDATE, (f"b{i}", f"db{i}"), f"b{i}", lr)))
        return kernels

    def initial_weights(self) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(self.spec.seed)
        out: Dict[str, np.ndarray] = {}
        for i, (d_in, d_out) in enumerate(self.spec.layer_dims(), start=1):
            out[f"w{i}"] = (rng.standard_normal((d_in, d_out))
                            * np.sqrt(2.0 / d_in)).astype(np.float32)
            out[f"b{i}"] = np.zeros(d_out, dtype=np.float32)
        return out

    # -- lifecycle -----------------------------------------------------------------

    def configure(self) -> None:
        if self.configured:
            raise FrameworkError("trainer already configured")
        clock = self.runtime.clock
        t0 = clock.now()
        clock.advance(self.INIT_NS)
        if not self.runtime.initialized:
            self.runtime.init_context()
        # DeepCL submits synchronously (CLFlush between jobs).
        self.runtime.set_sync_submission(True)
        irs = self._iteration_kernels()
        slot_shapes: Dict[str, Tuple[int, ...]] = {}
        for ir in irs:
            slot_shapes.update(ir.shapes)
        for slot, shape in slot_shapes.items():
            self.buffers[slot] = self.runtime.create_buffer(shape, tag=slot)
        for name, array in self.initial_weights().items():
            self.runtime.write_buffer(self.buffers[name], array)
        self.kernels = [self.runtime.compile_kernel(ir) for ir in irs]
        self.startup_ns = clock.now() - t0
        self.configured = True

    def release(self) -> None:
        self.runtime.release()
        self.buffers.clear()
        self.kernels.clear()
        self.configured = False

    # -- training --------------------------------------------------------------------

    def run_iteration(self, x: np.ndarray, y_onehot: np.ndarray) -> float:
        """One forward/backward/update pass; returns the loss."""
        if not self.configured:
            raise FrameworkError("configure() not called")
        self.runtime.write_buffer(self.buffers["x"], x)
        self.runtime.write_buffer(self.buffers["y"], y_onehot)
        for kernel in self.kernels:
            self.runtime.clock.advance(self.PER_JOB_SETUP_NS)
            self.runtime.enqueue(kernel, self.buffers)
        self.runtime.finish()
        return float(self.runtime.read_buffer(self.buffers["loss"])[0])

    def train(self, x: np.ndarray, y_onehot: np.ndarray,
              max_iters: int = 20,
              target_loss: Optional[float] = None) -> List[float]:
        """Iterate until convergence; the predicate P runs on the CPU."""
        losses: List[float] = []
        for _ in range(max_iters):
            losses.append(self.run_iteration(x, y_onehot))
            if target_loss is not None and losses[-1] <= target_loss:
                break
        return losses

    # -- CPU reference -------------------------------------------------------------------

    @staticmethod
    def reference_train(spec: TrainSpec, weights: Dict[str, np.ndarray],
                        x: np.ndarray, y_onehot: np.ndarray,
                        iters: int) -> Tuple[Dict[str, np.ndarray],
                                             List[float]]:
        """Numpy training loop with identical op semantics."""
        w = {k: v.copy() for k, v in weights.items()}
        n = len(spec.layer_dims())
        losses: List[float] = []
        for _ in range(iters):
            acts = {"x": x}
            act_in = "x"
            z: Dict[int, np.ndarray] = {}
            for i in range(1, n + 1):
                z[i] = compute_op(Op.DENSE,
                                  [acts[act_in], w[f"w{i}"], w[f"b{i}"]],
                                  ())[0]
                if i < n:
                    acts[f"a{i}"] = compute_op(Op.RELU, [z[i]], ())[0]
                    act_in = f"a{i}"
            dz, loss = compute_op(Op.SOFTMAX_XENT_GRAD, [z[n], y_onehot], ())
            losses.append(float(loss[0]))
            dzs = {n: dz}
            for i in range(n, 0, -1):
                fwd_in = x if i == 1 else acts[f"a{i - 1}"]
                dw = compute_op(Op.DENSE_GRAD_W, [fwd_in, dzs[i]], ())[0]
                db = compute_op(Op.DENSE_GRAD_B, [dzs[i]], ())[0]
                if i > 1:
                    da = compute_op(Op.DENSE_GRAD_X,
                                    [dzs[i], w[f"w{i}"]], ())[0]
                    dzs[i - 1] = compute_op(Op.RELU_GRAD,
                                            [z[i - 1], da], ())[0]
                w[f"w{i}"] = compute_op(Op.SGD_UPDATE,
                                        [w[f"w{i}"], dw], (spec.lr,))[0]
                w[f"b{i}"] = compute_op(Op.SGD_UPDATE,
                                        [w[f"b{i}"], db], (spec.lr,))[0]
        return w, losses
