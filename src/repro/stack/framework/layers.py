"""Layer and model specifications plus shape/weight inference.

A :class:`ModelSpec` is a DAG of :class:`LayerSpec` nodes (the "job
graph" of Section 3.1): every layer executes unconditionally, which is
the property that makes a workload recordable in one recording. Routes
(SqueezeNet fire modules, ResNet skips, YOLO concats) are expressed as
explicit multi-input layers -- "branches" in the NN sense that are
*not* conditional branches.

Shapes are channel-first: spatial tensors are ``(c, h, w)``; vectors
flow as ``(1, n)`` batch-of-one rows into dense layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import FrameworkError

Shape = Tuple[int, ...]

#: Layer kinds with trainable weights.
WEIGHTED_KINDS = ("conv", "dwconv", "dense")

#: Activation names that can be attached to weighted layers.
ACTIVATIONS = ("relu", "relu6", "leaky", "sigmoid", "tanh")


@dataclass(frozen=True)
class LayerSpec:
    """One layer of a network."""

    name: str
    kind: str
    params: Dict[str, float] = field(default_factory=dict)
    #: Names of producer layers ("input" = the network input). None
    #: means "the previous layer in the list".
    inputs: Optional[Tuple[str, ...]] = None

    def param(self, key: str, default=None):
        if key in self.params:
            return self.params[key]
        if default is None:
            raise FrameworkError(f"layer {self.name}: missing param {key!r}")
        return default

    @property
    def activation(self) -> Optional[str]:
        act = self.params.get("act")
        if act is not None and act not in ACTIVATIONS:
            raise FrameworkError(f"layer {self.name}: bad activation {act}")
        return act


@dataclass
class ModelSpec:
    """A whole network: input shape plus an ordered layer list."""

    name: str
    input_shape: Shape
    layers: List[LayerSpec]
    seed: int = 7
    #: Documentation: what workload family this model represents.
    description: str = ""

    def layer(self, name: str) -> LayerSpec:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise FrameworkError(f"{self.name}: no layer named {name!r}")

    def output_layer(self) -> LayerSpec:
        if not self.layers:
            raise FrameworkError(f"{self.name}: model has no layers")
        return self.layers[-1]

    def validate(self) -> None:
        seen = {"input"}
        for layer in self.layers:
            if layer.name in seen:
                raise FrameworkError(
                    f"{self.name}: duplicate layer name {layer.name!r}")
            for src in layer.inputs or ():
                if src not in seen:
                    raise FrameworkError(
                        f"{self.name}: layer {layer.name} consumes "
                        f"{src!r} before it is produced")
            seen.add(layer.name)


def resolve_inputs(model: ModelSpec) -> Dict[str, Tuple[str, ...]]:
    """Producer names for each layer (resolving the implicit 'previous')."""
    out: Dict[str, Tuple[str, ...]] = {}
    previous = "input"
    for layer in model.layers:
        out[layer.name] = layer.inputs if layer.inputs is not None \
            else (previous,)
        previous = layer.name
    return out


def _conv_out(h: int, w: int, k: int, stride: int, pad: int) -> Tuple[int, int]:
    oh = (h + 2 * pad - k) // stride + 1
    ow = (w + 2 * pad - k) // stride + 1
    if oh <= 0 or ow <= 0:
        raise FrameworkError(f"spatial collapse: {h}x{w} k={k} s={stride} "
                             f"p={pad}")
    return oh, ow


def infer_shapes(model: ModelSpec) -> Dict[str, Shape]:
    """Output shape of 'input' and of every layer."""
    model.validate()
    inputs = resolve_inputs(model)
    shapes: Dict[str, Shape] = {"input": model.input_shape}

    for layer in model.layers:
        srcs = [shapes[s] for s in inputs[layer.name]]
        x = srcs[0]
        kind = layer.kind
        if kind == "conv":
            c, h, w = x
            k = int(layer.param("k"))
            oh, ow = _conv_out(h, w, k, int(layer.param("stride", 1)),
                               int(layer.param("pad", 0)))
            shapes[layer.name] = (int(layer.param("out_channels")), oh, ow)
        elif kind == "dwconv":
            c, h, w = x
            k = int(layer.param("k"))
            oh, ow = _conv_out(h, w, k, int(layer.param("stride", 1)),
                               int(layer.param("pad", 0)))
            shapes[layer.name] = (c, oh, ow)
        elif kind == "dense":
            if len(x) != 2 or x[0] != 1:
                raise FrameworkError(
                    f"{layer.name}: dense input must be (1, n), got {x}")
            shapes[layer.name] = (1, int(layer.param("units")))
        elif kind in ("maxpool", "avgpool"):
            c, h, w = x
            k = int(layer.param("k"))
            stride = int(layer.param("stride", k))
            oh = (h - k) // stride + 1
            ow = (w - k) // stride + 1
            if oh <= 0 or ow <= 0:
                raise FrameworkError(f"{layer.name}: pool collapses {x}")
            shapes[layer.name] = (c, oh, ow)
        elif kind == "gap":
            shapes[layer.name] = (1, x[0])
        elif kind == "flatten":
            shapes[layer.name] = (1, int(np.prod(x)))
        elif kind == "concat":
            if any(s[1:] != x[1:] for s in srcs):
                raise FrameworkError(f"{layer.name}: concat spatial mismatch")
            shapes[layer.name] = (sum(s[0] for s in srcs),) + tuple(x[1:])
        elif kind == "add":
            if any(s != x for s in srcs):
                raise FrameworkError(f"{layer.name}: add shape mismatch")
            shapes[layer.name] = x
        elif kind == "upsample":
            c, h, w = x
            shapes[layer.name] = (c, 2 * h, 2 * w)
        elif kind == "pad":
            c, h, w = x
            p = int(layer.param("pad"))
            shapes[layer.name] = (c, h + 2 * p, w + 2 * p)
        elif kind in ("lrn", "softmax") or kind in ACTIVATIONS:
            shapes[layer.name] = x
        else:
            raise FrameworkError(f"{layer.name}: unknown kind {kind!r}")
    return shapes


def weight_shapes(model: ModelSpec) -> Dict[str, Shape]:
    """Shapes of every trainable parameter buffer, named '{layer}.w/.b'."""
    shapes = infer_shapes(model)
    inputs = resolve_inputs(model)
    out: Dict[str, Shape] = {}
    for layer in model.layers:
        if layer.kind not in WEIGHTED_KINDS:
            continue
        x = shapes[inputs[layer.name][0]]
        if layer.kind == "conv":
            k = int(layer.param("k"))
            oc = int(layer.param("out_channels"))
            out[f"{layer.name}.w"] = (oc, x[0], k, k)
            out[f"{layer.name}.b"] = (oc,)
        elif layer.kind == "dwconv":
            k = int(layer.param("k"))
            out[f"{layer.name}.w"] = (x[0], k, k)
            out[f"{layer.name}.b"] = (x[0],)
        elif layer.kind == "dense":
            units = int(layer.param("units"))
            out[f"{layer.name}.w"] = (x[1], units)
            out[f"{layer.name}.b"] = (units,)
    return out


def init_weights(model: ModelSpec) -> Dict[str, np.ndarray]:
    """Deterministic He-style initialization from the model seed."""
    rng = np.random.default_rng(model.seed)
    out: Dict[str, np.ndarray] = {}
    for name, shape in weight_shapes(model).items():
        if name.endswith(".b"):
            out[name] = np.zeros(shape, dtype=np.float32)
        else:
            fan_in = int(np.prod(shape[1:])) or shape[0]
            scale = np.sqrt(2.0 / fan_in)
            out[name] = (rng.standard_normal(shape) * scale).astype(
                np.float32)
    return out


def gpu_memory_estimate(model: ModelSpec) -> int:
    """Bytes of GPU memory the model's buffers occupy (Table 6 column)."""
    total = 4 * int(np.prod(model.input_shape))
    for shape in infer_shapes(model).values():
        total += 4 * int(np.prod(shape))
    for shape in weight_shapes(model).values():
        total += 4 * int(np.prod(shape))
    return total
