"""Lowering: network layers -> runtime kernels.

Two modes, matching the recording-granularity study (Figure 11):

- **unfused** -- each layer becomes several kernels (data reformat,
  main compute, activation), mirroring the "5-6 GPU jobs per NN layer"
  the paper observes from ACL;
- **fused** -- ACL-style layer fusion collapses a layer into a single
  kernel whose ops share internal slots.

The same lowering drives the GPU runners *and* the CPU reference
executor, so their op sequences are identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FrameworkError
from repro.gpu.isa import Op
from repro.stack.framework.layers import (LayerSpec, ModelSpec, Shape,
                                          infer_shapes, resolve_inputs,
                                          weight_shapes)
from repro.stack.runtime.kernel_ir import KernelIR, KernelOp

_ACT_OPS = {
    "relu": Op.RELU,
    "relu6": Op.RELU6,
    "leaky": Op.LEAKY_RELU,
    "sigmoid": Op.SIGMOID,
    "tanh": Op.TANH,
}

_SIMPLE_OPS = {
    "relu": Op.RELU,
    "relu6": Op.RELU6,
    "leaky": Op.LEAKY_RELU,
    "sigmoid": Op.SIGMOID,
    "tanh": Op.TANH,
    "softmax": Op.SOFTMAX,
    "upsample": Op.UPSAMPLE2X,
    "flatten": Op.FLATTEN,
}


@dataclass
class LayerKernels:
    """Kernels implementing one layer."""

    layer: LayerSpec
    kernels: List[KernelIR]


def _out_slot(layer_name: str) -> str:
    return "input" if layer_name == "input" else f"{layer_name}:out"


def lower_layer(layer: LayerSpec, srcs: Tuple[str, ...],
                shapes: Dict[str, Shape], wshapes: Dict[str, Shape],
                fuse: bool) -> List[KernelIR]:
    """Lower one layer, given producer layer names and global shapes."""
    in_slots = [_out_slot(s) for s in srcs]
    in_shapes = [shapes[s] for s in srcs]
    out_slot = _out_slot(layer.name)
    out_shape = shapes[layer.name]
    kind = layer.kind
    name = layer.name

    def ir(suffix: str, ops: List[KernelOp],
           slots: Dict[str, Shape]) -> KernelIR:
        return KernelIR(f"{name}:{suffix}", ops, slots)

    if kind in ("conv", "dwconv"):
        main_op = Op.CONV2D if kind == "conv" else Op.DWCONV2D
        params = (float(layer.param("stride", 1)),
                  float(layer.param("pad", 0)))
        w, b = f"{name}.w", f"{name}.b"
        act = layer.activation
        slots = {in_slots[0]: in_shapes[0], w: wshapes[w], b: wshapes[b],
                 out_slot: out_shape}
        if fuse:
            ops = [KernelOp(main_op, (in_slots[0], w, b),
                            f"{name}:t0" if act else out_slot, params)]
            if act:
                slots[f"{name}:t0"] = out_shape
                ops.append(KernelOp(_ACT_OPS[act], (f"{name}:t0",),
                                    out_slot))
            return [ir("fused", ops, slots)]
        # Unfused: reformat + conv + activation as separate jobs.
        kernels = []
        slots_r = {in_slots[0]: in_shapes[0], f"{name}:im": in_shapes[0]}
        kernels.append(ir("reformat", [KernelOp(
            Op.COPY, (in_slots[0],), f"{name}:im")], slots_r))
        conv_out = f"{name}:pre" if act else out_slot
        slots_c = {f"{name}:im": in_shapes[0], w: wshapes[w],
                   b: wshapes[b], conv_out: out_shape}
        kernels.append(ir("main", [KernelOp(
            main_op, (f"{name}:im", w, b), conv_out, params)], slots_c))
        if act:
            slots_a = {f"{name}:pre": out_shape, out_slot: out_shape}
            kernels.append(ir("act", [KernelOp(
                _ACT_OPS[act], (f"{name}:pre",), out_slot)], slots_a))
        return kernels

    if kind == "dense":
        w, b = f"{name}.w", f"{name}.b"
        act = layer.activation
        slots = {in_slots[0]: in_shapes[0], w: wshapes[w], b: wshapes[b],
                 out_slot: out_shape}
        if fuse:
            ops = [KernelOp(Op.DENSE, (in_slots[0], w, b),
                            f"{name}:t0" if act else out_slot)]
            if act:
                slots[f"{name}:t0"] = out_shape
                ops.append(KernelOp(_ACT_OPS[act], (f"{name}:t0",),
                                    out_slot))
            return [ir("fused", ops, slots)]
        kernels = []
        slots_r = {in_slots[0]: in_shapes[0], f"{name}:im": in_shapes[0]}
        kernels.append(ir("reformat", [KernelOp(
            Op.COPY, (in_slots[0],), f"{name}:im")], slots_r))
        dense_out = f"{name}:pre" if act else out_slot
        slots_d = {f"{name}:im": in_shapes[0], w: wshapes[w],
                   b: wshapes[b], dense_out: out_shape}
        kernels.append(ir("main", [KernelOp(
            Op.DENSE, (f"{name}:im", w, b), dense_out)], slots_d))
        if act:
            slots_a = {f"{name}:pre": out_shape, out_slot: out_shape}
            kernels.append(ir("act", [KernelOp(
                _ACT_OPS[act], (f"{name}:pre",), out_slot)], slots_a))
        return kernels

    if kind in ("maxpool", "avgpool"):
        op = Op.MAXPOOL if kind == "maxpool" else Op.AVGPOOL
        k = float(layer.param("k"))
        stride = float(layer.param("stride", layer.param("k")))
        slots = {in_slots[0]: in_shapes[0], out_slot: out_shape}
        main = KernelOp(op, (in_slots[0],), out_slot, (k, stride))
        if fuse:
            return [ir("fused", [main], slots)]
        kernels = [ir("reformat", [KernelOp(
            Op.COPY, (in_slots[0],), f"{name}:im")],
            {in_slots[0]: in_shapes[0], f"{name}:im": in_shapes[0]})]
        kernels.append(ir("main", [KernelOp(
            op, (f"{name}:im",), out_slot, (k, stride))],
            {f"{name}:im": in_shapes[0], out_slot: out_shape}))
        return kernels

    if kind == "gap":
        slots = {in_slots[0]: in_shapes[0], out_slot: out_shape}
        return [ir("main", [KernelOp(Op.GLOBALAVGPOOL, (in_slots[0],),
                                     out_slot)], slots)]

    if kind == "lrn":
        params = (float(layer.param("n", 5)),
                  float(layer.param("alpha", 1e-4)),
                  float(layer.param("beta", 0.75)),
                  float(layer.param("bias", 2.0)))
        slots = {in_slots[0]: in_shapes[0], out_slot: out_shape}
        return [ir("main", [KernelOp(Op.LRN, (in_slots[0],), out_slot,
                                     params)], slots)]

    if kind == "pad":
        slots = {in_slots[0]: in_shapes[0], out_slot: out_shape}
        return [ir("main", [KernelOp(Op.PAD, (in_slots[0],), out_slot,
                                     (float(layer.param("pad")),))], slots)]

    if kind == "concat":
        slots = dict(zip(in_slots, in_shapes))
        slots[out_slot] = out_shape
        return [ir("main", [KernelOp(Op.CONCAT, tuple(in_slots),
                                     out_slot)], slots)]

    if kind == "add":
        slots = dict(zip(in_slots, in_shapes))
        slots[out_slot] = out_shape
        return [ir("main", [KernelOp(Op.ADD, tuple(in_slots), out_slot)],
                   slots)]

    if kind in _SIMPLE_OPS:
        params: Tuple[float, ...] = ()
        if kind == "leaky":
            params = (float(layer.param("slope", 0.1)),)
        slots = {in_slots[0]: in_shapes[0], out_slot: out_shape}
        return [ir("main", [KernelOp(_SIMPLE_OPS[kind], (in_slots[0],),
                                     out_slot, params)], slots)]

    raise FrameworkError(f"cannot lower layer kind {kind!r}")


def lower_model(model: ModelSpec, fuse: bool = False) -> List[LayerKernels]:
    """Lower a whole model; per-layer kernel groups, in layer order."""
    shapes = infer_shapes(model)
    slot_shapes = {"input": model.input_shape}
    for layer in model.layers:
        slot_shapes[layer.name] = shapes[layer.name]
    wshapes = weight_shapes(model)
    inputs = resolve_inputs(model)
    out: List[LayerKernels] = []
    for layer in model.layers:
        kernels = lower_layer(layer, inputs[layer.name], slot_shapes,
                              wshapes, fuse)
        out.append(LayerKernels(layer, kernels))
    return out


def model_slot_shapes(model: ModelSpec,
                      fuse: bool = False) -> Dict[str, Shape]:
    """Union of every slot shape the lowered model references."""
    merged: Dict[str, Shape] = {}
    for group in lower_model(model, fuse):
        for kernel in group.kernels:
            for slot, shape in kernel.shapes.items():
                existing = merged.get(slot)
                if existing is not None and existing != shape:
                    raise FrameworkError(
                        f"slot {slot!r} has conflicting shapes "
                        f"{existing} vs {shape}")
                merged[slot] = shape
    return merged


def job_count(model: ModelSpec, fuse: bool = False) -> int:
    """Number of GPU jobs one inference submits (Table 6 '#Jobs')."""
    return sum(len(g.kernels) for g in lower_model(model, fuse))
