"""The original, full GPU software stack -- what GPUReplay replaces.

Three layers, mirroring Figure 2 of the paper:

- :mod:`repro.stack.driver` -- open-source GPU drivers (Mali, v3d):
  ioctl interface, register accessors, job queues, power management,
  GPU memory management. This is the *only* layer the recorder
  instruments.
- :mod:`repro.stack.runtime` -- proprietary-style runtimes (OpenCL-,
  Vulkan-, GLES-compute-like) that JIT-compile kernels into shader
  binaries and emit job binaries directly into mmap'd GPU memory,
  bypassing the driver.
- :mod:`repro.stack.framework` -- ML frameworks (ACL-, ncnn-,
  DeepCL-like) with a model zoo and a CPU reference executor.
"""
