"""The Mali kernel driver ("kbase"-like).

Implements the stock-driver behaviours the recorder taps: power-up with
reset/ready polling, one GPU address space programmed through the AS0
registers, two hardware job slots fed by a configurable-depth queue,
cache maintenance by command+poll, and an interrupt handler that
acknowledges JOB/MMU interrupt groups.

``src`` tags name the corresponding location in the real driver tree so
replay errors read like kbase errors (Section 5.4).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DriverError
from repro.gpu import mali as hw
from repro.soc.machine import Machine
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.ioctl import IoctlCode
from repro.stack.driver.memory import ContextMemory, MemFlags
from repro.stack.driver.sched import JobQueue, JobState
from repro.units import MS, SEC, US

#: Per-page CPU cost of driver-side mapping bookkeeping.
MAP_PAGE_NS = 300
#: Cost of context/address-space initialization in the driver.
CTX_INIT_NS = 2 * MS

_SRC = "drivers/gpu/arm/midgard"


class MaliDriver(GpuDriver):
    """Driver for the Mali family (any SKU)."""

    name = "mali_kbase"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        if self.gpu.family != "mali":
            raise DriverError("MaliDriver requires a Mali GPU")
        self.queue = JobQueue(self, hw.NUM_JOB_SLOTS, depth=hw.NUM_JOB_SLOTS)
        self.ctx: Optional[ContextMemory] = None
        self.mmu_faults: List[Dict[str, int]] = []
        self._job_counter = 0
        self.ioctls.register(IoctlCode.MEM_ALLOC, self._ioctl_mem_alloc)
        self.ioctls.register(IoctlCode.MEM_FREE, self._ioctl_mem_free)
        self.ioctls.register(IoctlCode.JOB_SUBMIT, self._ioctl_job_submit)
        self.ioctls.register(IoctlCode.JOB_WAIT, self._ioctl_job_wait)
        self.ioctls.register(IoctlCode.CACHE_FLUSH, self._ioctl_cache_flush)

    # -- lifecycle --------------------------------------------------------------

    def open(self) -> None:
        if self.opened:
            return
        self.connect_irq()
        gpu_id = self.reg_read("GPU_ID", f"{_SRC}/mali_kbase_hw.c:gpu_id")
        if gpu_id != self.gpu.spec.gpu_id:
            raise DriverError(f"unexpected GPU_ID {gpu_id:#x}")
        self.reset_gpu()
        self._enable_interrupts()
        self._power_up_cores()
        self.opened = True

    def close(self) -> None:
        if not self.opened:
            return
        if self.ctx is not None:
            self.destroy_context()
        self.reset_gpu()
        self.disconnect_irq()
        self.opened = False

    def reset_gpu(self) -> None:
        """Soft reset and wait for completion (kbase_pm_init_hw)."""
        self.pending_hw_ops += 1
        self.outstanding_jobs = 0
        self.queue.abort_all()
        self.reg_write("GPU_COMMAND", hw.CMD_SOFT_RESET,
                       f"{_SRC}/mali_kbase_pm_driver.c:kbase_pm_init_hw")
        ok = self.reg_poll("GPU_IRQ_RAWSTAT", hw.IRQ_RESET_COMPLETED,
                           hw.IRQ_RESET_COMPLETED,
                           f"{_SRC}/mali_kbase_pm_driver.c:reset_wait",
                           timeout_ns=10 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("GPU reset timed out")
        self.reg_write("GPU_IRQ_CLEAR", hw.IRQ_RESET_COMPLETED,
                       f"{_SRC}/mali_kbase_pm_driver.c:reset_ack")

    def _enable_interrupts(self) -> None:
        # JOB and MMU interrupt groups are IRQ-driven; GPU-group events
        # (reset, cache flush, power) are polled on RAWSTAT instead.
        self.reg_write("JOB_IRQ_MASK", 0xFFFFFFFF,
                       f"{_SRC}/mali_kbase_irq_linux.c:job_mask")
        self.reg_write("MMU_IRQ_MASK", 0xFFFFFFFF,
                       f"{_SRC}/mali_kbase_irq_linux.c:mmu_mask")
        self.reg_write("GPU_IRQ_MASK", 0,
                       f"{_SRC}/mali_kbase_irq_linux.c:gpu_mask")

    def _power_up_cores(self) -> None:
        present = self.reg_read(
            "SHADER_PRESENT", f"{_SRC}/mali_kbase_pm_driver.c:present")
        self.pending_hw_ops += 1
        self.reg_write("L2_PWRON", 1,
                       f"{_SRC}/mali_kbase_pm_driver.c:l2_pwron")
        ok = self.reg_poll("L2_READY", 1, 1,
                           f"{_SRC}/mali_kbase_pm_driver.c:l2_ready",
                           timeout_ns=5 * MS)
        if not ok:
            self.pending_hw_ops -= 1
            raise DriverError("L2 power-up timed out")
        self.reg_write("SHADER_PWRON", present,
                       f"{_SRC}/mali_kbase_pm_driver.c:shader_pwron")
        ok = self.reg_poll("SHADER_READY", present, present,
                           f"{_SRC}/mali_kbase_pm_driver.c:shader_ready",
                           timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("shader core power-up timed out")

    # -- context / address space -----------------------------------------------------

    def create_context(self) -> ContextMemory:
        self.require_open()
        if self.ctx is not None:
            raise DriverError("mali driver models a single context (AS0)")
        self.clock.advance(CTX_INIT_NS)
        self.ctx = ContextMemory(self.machine.memory,
                                 self.machine.gpu_allocator,
                                 self.gpu.mmu.fmt, tag="mali-ctx")
        root = self.ctx.page_table.root_pa
        self.reg_write("AS0_TRANSTAB_LO", root & 0xFFFFFFFF,
                       f"{_SRC}/mali_kbase_mmu.c:transtab_lo")
        self.reg_write("AS0_TRANSTAB_HI", root >> 32,
                       f"{_SRC}/mali_kbase_mmu.c:transtab_hi")
        self.reg_write("AS0_MEMATTR", self.gpu.spec.required_memattr,
                       f"{_SRC}/mali_kbase_mmu.c:memattr")
        self.reg_write("AS0_COMMAND", hw.AS_CMD_UPDATE,
                       f"{_SRC}/mali_kbase_mmu.c:as_update")
        return self.ctx

    def destroy_context(self) -> None:
        if self.ctx is None:
            return
        self.ctx.destroy()
        self.ctx = None

    def require_ctx(self) -> ContextMemory:
        if self.ctx is None:
            raise DriverError("no GPU context")
        return self.ctx

    # -- ioctls ---------------------------------------------------------------------------

    def _ioctl_mem_alloc(self, size: int, flags: MemFlags, tag: str = ""):
        ctx = self.require_ctx()
        region = ctx.alloc(size, flags, tag)
        self.clock.advance(MAP_PAGE_NS * region.num_pages)
        self.trace_mem_map(region.va, region.num_pages, flags.value, tag,
                           f"{_SRC}/mali_kbase_mmu.c:kbase_mmu_insert_pages")
        # Inserting PTEs requires a TLB-visible update.
        self.reg_write("AS0_COMMAND", hw.AS_CMD_FLUSH_PT,
                       f"{_SRC}/mali_kbase_mmu.c:flush_pt")
        return region.va

    def _ioctl_mem_free(self, va: int):
        ctx = self.require_ctx()
        region = ctx.region_at(va)
        self.trace_mem_unmap(region.va, region.num_pages,
                             f"{_SRC}/mali_kbase_mmu.c:teardown_pages")
        ctx.free(region.va)
        self.reg_write("AS0_COMMAND", hw.AS_CMD_FLUSH_PT,
                       f"{_SRC}/mali_kbase_mmu.c:flush_pt")

    def _ioctl_job_submit(self, chain_va: int, affinity: int) -> int:
        self.require_ctx()
        return self.queue.submit(chain_va, affinity)

    def _ioctl_job_wait(self, job_id: int, timeout_ns: int = 10 * SEC):
        state = self.queue.wait(job_id, timeout_ns,
                                src=f"{_SRC}/mali_kbase_jm.c:wait")
        if state is JobState.FAILED:
            raise DriverError(f"job {job_id} failed "
                              f"(faults: {self.mmu_faults[-1:]})")
        return state.name

    def _ioctl_cache_flush(self):
        self.flush_caches()

    def flush_caches(self) -> None:
        """Clean GPU caches by command + RAWSTAT polling (RegReadWait)."""
        self.pending_hw_ops += 1
        self.reg_write("GPU_COMMAND", hw.CMD_CLEAN_CACHES,
                       f"{_SRC}/mali_kbase_instr_backend.c:clean_caches")
        ok = self.reg_poll("GPU_IRQ_RAWSTAT", hw.IRQ_CLEAN_CACHES_COMPLETED,
                           hw.IRQ_CLEAN_CACHES_COMPLETED,
                           f"{_SRC}/mali_kbase_instr_backend.c:cache_wait",
                           timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("cache clean timed out")
        self.reg_write("GPU_IRQ_CLEAR", hw.IRQ_CLEAN_CACHES_COMPLETED,
                       f"{_SRC}/mali_kbase_instr_backend.c:cache_ack")

    # -- hardware kick (called by the job queue) ---------------------------------------------

    def kick_hardware(self, slot: int, record) -> None:
        self._job_counter += 1
        self.trace_job_kick(slot, record.chain_va, self._job_counter,
                            f"{_SRC}/mali_kbase_jm_hw.c:kbase_job_hw_submit")
        self.outstanding_jobs += 1
        src = f"{_SRC}/mali_kbase_jm_hw.c:kick_s{slot}"
        self.reg_write(f"JS{slot}_HEAD_LO", record.chain_va & 0xFFFFFFFF, src)
        self.reg_write(f"JS{slot}_HEAD_HI", record.chain_va >> 32, src)
        self.reg_write(f"JS{slot}_AFFINITY", record.affinity, src)
        self.reg_write(f"JS{slot}_COMMAND", hw.JS_CMD_START, src)

    # -- interrupt handler -----------------------------------------------------------------------

    def handle_irq(self) -> None:
        job_status = self.reg_read(
            "JOB_IRQ_STATUS", f"{_SRC}/mali_kbase_jm_hw.c:job_irq_status")
        if job_status:
            self.reg_write("JOB_IRQ_CLEAR", job_status,
                           f"{_SRC}/mali_kbase_jm_hw.c:job_irq_clear")
            for slot in range(hw.NUM_JOB_SLOTS):
                done = bool(job_status & (1 << slot))
                failed = bool(job_status & (1 << (16 + slot)))
                if not (done or failed):
                    continue
                self.reg_read(f"JS{slot}_STATUS",
                              f"{_SRC}/mali_kbase_jm_hw.c:js_status")
                self.outstanding_jobs = max(0, self.outstanding_jobs - 1)
                self.queue.on_slot_complete(slot, failed)
        mmu_status = self.reg_read(
            "MMU_IRQ_STATUS", f"{_SRC}/mali_kbase_mmu_hw.c:mmu_irq_status")
        if mmu_status:
            fault = {
                "status": self.reg_read(
                    "AS0_FAULTSTATUS",
                    f"{_SRC}/mali_kbase_mmu_hw.c:faultstatus"),
                "address": self.reg_read(
                    "AS0_FAULTADDRESS_LO",
                    f"{_SRC}/mali_kbase_mmu_hw.c:faultaddress"),
            }
            self.mmu_faults.append(fault)
            self.reg_write("MMU_IRQ_CLEAR", mmu_status,
                           f"{_SRC}/mali_kbase_mmu_hw.c:mmu_irq_clear")
