"""The ioctl boundary between the runtime and the driver.

Each call crosses user/kernel space, which costs virtual time -- the
"abstraction tax" (Section 4.5) that the replayer later avoids by
talking to registers directly.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict

from repro.errors import DriverError
from repro.units import US

#: Cost of one user/kernel crossing (entry + exit + argument copy).
IOCTL_CROSSING_NS = 2 * US


class IoctlCode(enum.Enum):
    VERSION_CHECK = enum.auto()
    GET_GPU_PROPS = enum.auto()
    MEM_ALLOC = enum.auto()
    MEM_FREE = enum.auto()
    JOB_SUBMIT = enum.auto()
    JOB_WAIT = enum.auto()
    CACHE_FLUSH = enum.auto()


class IoctlDispatcher:
    """Routes ioctl codes to driver methods and charges crossing cost."""

    def __init__(self, clock) -> None:
        self._clock = clock
        self._handlers: Dict[IoctlCode, Callable[..., Any]] = {}
        self.call_count = 0

    def register(self, code: IoctlCode, handler: Callable[..., Any]) -> None:
        self._handlers[code] = handler

    def call(self, code: IoctlCode, **args: Any) -> Any:
        handler = self._handlers.get(code)
        if handler is None:
            raise DriverError(f"unsupported ioctl {code.name}")
        self._clock.advance(IOCTL_CROSSING_NS)
        self.call_count += 1
        return handler(**args)
