"""Driver job scheduling: slots, queue depth, sync/async submission.

Real mobile GPU drivers keep shallow job queues (two outstanding jobs
on Mali, one on v3d -- Section 2.2). GPUReplay additionally *enforces
synchronous submission at record time* (queue depth one, next job not
kicked until the previous completed) to kill interrupt-coalescing
nondeterminism; Figure 3 measures the modest cost of that choice, and
this module is where both modes live.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional
from collections import deque

from repro.errors import DriverError
from repro.units import SEC


class JobState(enum.Enum):
    QUEUED = enum.auto()
    RUNNING = enum.auto()
    DONE = enum.auto()
    FAILED = enum.auto()


@dataclass
class JobRecord:
    job_id: int
    chain_va: int
    affinity: int
    state: JobState = JobState.QUEUED
    slot: int = -1


class JobQueue:
    """FIFO of jobs feeding the hardware job slots.

    ``depth`` bounds concurrently-running jobs. ``depth == 1`` is the
    synchronous mode GPUReplay records under; the hardware slot limit
    bounds it from above.
    """

    def __init__(self, driver, num_slots: int, depth: int):
        if depth < 1 or depth > num_slots:
            raise DriverError(
                f"queue depth {depth} out of range 1..{num_slots}")
        self.driver = driver
        self.num_slots = num_slots
        self.depth = depth
        self._ids = itertools.count(1)
        self._pending: Deque[JobRecord] = deque()
        self._running: Dict[int, JobRecord] = {}  # slot -> record
        self.jobs: Dict[int, JobRecord] = {}
        self.completed_count = 0
        self.failed_count = 0

    # -- configuration -------------------------------------------------------

    def set_depth(self, depth: int) -> None:
        if depth < 1 or depth > self.num_slots:
            raise DriverError(
                f"queue depth {depth} out of range 1..{self.num_slots}")
        self.depth = depth

    @property
    def sync_mode(self) -> bool:
        return self.depth == 1

    @property
    def running_count(self) -> int:
        return len(self._running)

    # -- submission -------------------------------------------------------------

    def submit(self, chain_va: int, affinity: int) -> int:
        if self.sync_mode and self._running:
            # Synchronous submission (Table 1): the previously
            # submitted job must complete before this one is flushed.
            self.driver.wait_for_irq(lambda: not self._running,
                                     10 * SEC, "sched:sync_submit")
        record = JobRecord(next(self._ids), chain_va, affinity)
        self.jobs[record.job_id] = record
        self._pending.append(record)
        self._kick_eligible()
        return record.job_id

    def _kick_eligible(self) -> None:
        while self._pending and len(self._running) < self.depth:
            slot = self._free_slot()
            if slot is None:
                return
            record = self._pending.popleft()
            record.slot = slot
            record.state = JobState.RUNNING
            self._running[slot] = record
            self.driver.kick_hardware(slot, record)

    def _free_slot(self) -> Optional[int]:
        for slot in range(self.num_slots):
            if slot not in self._running:
                return slot
        return None

    # -- completion (called from the driver's IRQ handler) -------------------------

    def on_slot_complete(self, slot: int, failed: bool) -> None:
        record = self._running.pop(slot, None)
        if record is None:
            return  # Spurious completion (e.g. after a reset).
        record.state = JobState.FAILED if failed else JobState.DONE
        if failed:
            self.failed_count += 1
        else:
            self.completed_count += 1
        self._kick_eligible()

    def abort_all(self) -> List[JobRecord]:
        """Fail everything in flight (reset/preemption path)."""
        aborted = list(self._running.values()) + list(self._pending)
        for record in aborted:
            record.state = JobState.FAILED
        self._running.clear()
        self._pending.clear()
        return aborted

    # -- waiting ---------------------------------------------------------------------

    def wait(self, job_id: int, timeout_ns: int = 10 * SEC,
             src: str = "sched:wait") -> JobState:
        record = self.jobs.get(job_id)
        if record is None:
            raise DriverError(f"unknown job id {job_id}")
        done = self.driver.wait_for_irq(
            lambda: record.state in (JobState.DONE, JobState.FAILED),
            timeout_ns, src)
        if not done:
            raise DriverError(f"timeout waiting for job {job_id}")
        return record.state

    def wait_all(self, timeout_ns: int = 30 * SEC,
                 src: str = "sched:wait_all") -> None:
        done = self.driver.wait_for_irq(
            lambda: not self._running and not self._pending,
            timeout_ns, src)
        if not done:
            raise DriverError("timeout draining job queue")
