"""Common driver machinery: traced register access, IRQs, job tracking.

All CPU/GPU interaction funnels through the accessors here, each
annotated with a ``src`` tag (the driver "source location") and
reported to attached tracers. This is the instrumentation layer the
recorder plugs into; without tracers attached the driver behaves like
the stock driver.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import DriverError
from repro.soc.machine import Machine
from repro.soc.mmio import RegAttr
from repro.stack.driver.ioctl import IoctlCode, IoctlDispatcher
from repro.stack.driver import trace
from repro.units import US

#: CPU-side cost of one MMIO access.
MMIO_ACCESS_NS = 150
#: CPU-side cost of entering/leaving interrupt context.
IRQ_ENTRY_NS = 2 * US
#: Scheduler wake-up latency after a blocking wait is satisfied (OS
#: asynchrony -- one of the unintended delays of Section 4.5 that the
#: replayer's idle-interval skipping removes).
SCHED_WAKEUP_NS = 10 * US
#: Default polling step for wait loops.
POLL_STEP_NS = 10 * US


class GpuDriver:
    """Base class for the Mali and v3d drivers."""

    name = "abstract"

    def __init__(self, machine: Machine):
        self.machine = machine
        self.gpu = machine.require_gpu()
        self.regs = self.gpu.regs
        self.clock = machine.clock
        self.ioctls = IoctlDispatcher(self.clock)
        self._tracers = trace.TracerMux()
        obs_tracer = machine.obs.driver_tracer()
        if obs_tracer is not None:
            self._tracers.add(obs_tracer)
        self._in_irq = False
        self._irq_connected = False
        self.outstanding_jobs = 0
        self.pending_hw_ops = 0
        self.reg_io_count = 0
        self.opened = False
        self._register_ioctls()

    # -- instrumentation -------------------------------------------------------

    def attach_tracer(self, tracer: trace.DriverTracer) -> None:
        self._tracers.add(tracer)

    def detach_tracer(self, tracer: trace.DriverTracer) -> None:
        self._tracers.remove(tracer)

    def _emit(self, event: trace.TraceEvent) -> None:
        self._tracers.emit(event)

    def gpu_busy_hint(self) -> bool:
        """The driver's own accounting of whether the GPU is working."""
        return self.outstanding_jobs > 0 or self.pending_hw_ops > 0

    # -- traced register accessors -----------------------------------------------

    def reg_read(self, name: str, src: str) -> int:
        self.clock.advance(MMIO_ACCESS_NS)
        value = self.regs.read(name)
        self.reg_io_count += 1
        volatile = RegAttr.VOLATILE in self.regs.lookup(name).attrs
        self._emit(trace.RegReadEvent(self.clock.now(), src,
                                      self.gpu_busy_hint(), name, value,
                                      volatile))
        return value

    def reg_write(self, name: str, value: int, src: str,
                  mask: int = 0xFFFFFFFF) -> None:
        self.clock.advance(MMIO_ACCESS_NS)
        if mask != 0xFFFFFFFF:
            current = self.regs.peek(name)
            value = (current & ~mask) | (value & mask)
        self.regs.write(name, value)
        self.reg_io_count += 1
        self._emit(trace.RegWriteEvent(self.clock.now(), src,
                                       self.gpu_busy_hint(), name, mask,
                                       value))

    def reg_poll(self, name: str, mask: int, value: int, src: str,
                 timeout_ns: int, step_ns: int = POLL_STEP_NS) -> bool:
        """The driver's ``wait_for`` macro: poll until masked bits match.

        The whole loop is summarized as one RegPollEvent; the number of
        raw reads is nondeterministic and deliberately not recorded as
        individual events (Section 4.2).
        """
        deadline = self.clock.now() + timeout_ns
        polls = 0
        success = False
        while True:
            polls += 1
            self.clock.advance(MMIO_ACCESS_NS)
            self.reg_io_count += 1
            if (self.regs.read(name) & mask) == value:
                success = True
                break
            if self.clock.now() >= deadline:
                break
            self.clock.advance(min(step_ns, deadline - self.clock.now()))
        self._emit(trace.RegPollEvent(self.clock.now(), src,
                                      self.gpu_busy_hint(), name, mask,
                                      value, timeout_ns, polls, success))
        return success

    # -- interrupts -------------------------------------------------------------

    def connect_irq(self) -> None:
        if self._irq_connected:
            return
        self.machine.irq.connect(self.gpu.irq_number, self._irq_entry)
        self._irq_connected = True

    def disconnect_irq(self) -> None:
        if not self._irq_connected:
            return
        self.machine.irq.connect(self.gpu.irq_number, None)
        self._irq_connected = False

    def _irq_entry(self, line: int) -> None:
        del line
        self.clock.advance(IRQ_ENTRY_NS)
        self._in_irq = True
        self._emit(trace.IrqEvent(self.clock.now(), self.irq_src(),
                                  self.gpu_busy_hint(), "enter"))
        try:
            self.handle_irq()
        finally:
            self._in_irq = False
            self._emit(trace.IrqEvent(self.clock.now(), self.irq_src(),
                                      self.gpu_busy_hint(), "exit"))
            self.machine.irq.ack(self.gpu.irq_number)

    def irq_src(self) -> str:
        return f"{self.name}:irq_handler"

    def handle_irq(self) -> None:
        raise NotImplementedError

    def wait_for_irq(self, predicate: Callable[[], bool], timeout_ns: int,
                     src: str) -> bool:
        """Block until ``predicate`` becomes true via interrupt delivery.

        Only an *actual* wait becomes a trace event: if the condition
        already holds, no GPU interrupt is coming, and recording a
        WaitIrq here would starve the replayer.
        """
        if predicate():
            return True
        self._emit(trace.WaitIrqEvent(self.clock.now(), src,
                                      self.gpu_busy_hint(), timeout_ns))
        deadline = self.clock.now() + timeout_ns
        while not predicate():
            if self.clock.now() >= deadline:
                return False
            fired = self.clock.advance_to_next_event(limit_ns=deadline)
            if not fired and not predicate():
                return False
        self.clock.advance(SCHED_WAKEUP_NS)
        return True

    # -- memory-map tracing helpers ------------------------------------------------

    def trace_mem_map(self, va: int, num_pages: int, flags: int,
                      tag: str, src: str) -> None:
        self._emit(trace.MemMapEvent(self.clock.now(), src,
                                     self.gpu_busy_hint(), va, num_pages,
                                     flags, tag))

    def trace_mem_unmap(self, va: int, num_pages: int, src: str) -> None:
        self._emit(trace.MemUnmapEvent(self.clock.now(), src,
                                       self.gpu_busy_hint(), va, num_pages))

    def trace_job_kick(self, slot: int, chain_va: int, job_index: int,
                       src: str) -> None:
        self._emit(trace.JobKickEvent(self.clock.now(), src,
                                      self.gpu_busy_hint(), slot, chain_va,
                                      job_index))

    # -- ioctl surface ----------------------------------------------------------------

    def _register_ioctls(self) -> None:
        self.ioctls.register(IoctlCode.VERSION_CHECK,
                             lambda: {"driver": self.name, "version": 1})
        self.ioctls.register(IoctlCode.GET_GPU_PROPS, self.get_gpu_props)

    def ioctl(self, code: IoctlCode, **args):
        return self.ioctls.call(code, **args)

    def get_gpu_props(self) -> Dict[str, object]:
        return self.gpu.describe()

    # -- lifecycle ----------------------------------------------------------------------

    def open(self) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def require_open(self) -> None:
        if not self.opened:
            raise DriverError(f"{self.name}: driver not opened")
