"""GPU kernel drivers for the simulated SoC.

These play the role of the open-source Linux drivers (Mali kbase,
drm/v3d): they own register access, interrupts, GPU memory and job
scheduling, and expose an ioctl-style interface upward to the runtime.

Every register access, poll loop, interrupt, job kick and memory
mapping flows through instrumented chokepoints that emit
:mod:`repro.stack.driver.trace` events -- the ~1K-SLoC-per-family
instrumentation of Section 4.1 that the recorder subscribes to.
"""

from repro.stack.driver.adreno_driver import AdrenoDriver
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.mali_driver import MaliDriver
from repro.stack.driver.memory import MemFlags, MemRegion
from repro.stack.driver.v3d_driver import V3dDriver

__all__ = ["AdrenoDriver", "GpuDriver", "MaliDriver", "MemFlags",
           "MemRegion", "V3dDriver"]
