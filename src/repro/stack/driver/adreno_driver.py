"""The Adreno kernel driver (drm/msm-like).

Ring-buffer submission: at context creation the driver allocates a
ring in GPU memory and programs CP_RB_BASE/SIZE; each job submit
appends one packet pointing at the shader blob and rings the doorbell
(CP_RB_WPTR). Synchronous submission is enforced the way Table 1
describes for Adreno -- the submit path checks that previously
submitted work retired (RPTR caught up) before flushing a new command.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DriverError
from repro.gpu import adreno as hw
from repro.soc.machine import Machine
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.ioctl import IoctlCode
from repro.stack.driver.memory import ContextMemory, MemFlags
from repro.stack.driver.sched import JobQueue, JobState
from repro.units import MIB, MS, SEC

MAP_PAGE_NS = 300
CTX_INIT_NS = int(1.5 * MS)
RING_BYTES = 1 * MIB

_SRC = "drivers/gpu/drm/msm/adreno"


class AdrenoDriver(GpuDriver):
    """Driver for the Adreno 6xx family."""

    name = "msm_adreno"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        if self.gpu.family != "adreno":
            raise DriverError("AdrenoDriver requires an Adreno GPU")
        self.queue = JobQueue(self, num_slots=2, depth=2)
        self.ctx: Optional[ContextMemory] = None
        self.mmu_faults: List[Dict[str, int]] = []
        self._ring_va = 0
        self._wptr = 0
        self._inflight: List[int] = []  # FIFO of slots, retire order
        self._job_counter = 0
        self.ioctls.register(IoctlCode.MEM_ALLOC, self._ioctl_mem_alloc)
        self.ioctls.register(IoctlCode.MEM_FREE, self._ioctl_mem_free)
        self.ioctls.register(IoctlCode.JOB_SUBMIT, self._ioctl_job_submit)
        self.ioctls.register(IoctlCode.JOB_WAIT, self._ioctl_job_wait)
        self.ioctls.register(IoctlCode.CACHE_FLUSH, self._ioctl_cache_flush)

    # -- lifecycle -------------------------------------------------------------

    def open(self) -> None:
        if self.opened:
            return
        self.connect_irq()
        gpu_id = self.reg_read("RBBM_GPU_ID", f"{_SRC}/adreno_gpu.c:id")
        if gpu_id != hw.ADRENO_GPU_ID:
            raise DriverError(f"unexpected adreno id {gpu_id:#x}")
        self.reset_gpu()
        self.reg_write("RBBM_INT_0_MASK",
                       hw.INT_CP_DONE | hw.INT_RBBM_ERROR
                       | hw.INT_SMMU_FAULT,
                       f"{_SRC}/a6xx_gpu.c:irq_enable")
        self._power_up()
        self.opened = True

    def close(self) -> None:
        if not self.opened:
            return
        if self.ctx is not None:
            self.destroy_context()
        self.reset_gpu()
        self.disconnect_irq()
        self.opened = False

    def reset_gpu(self) -> None:
        self.pending_hw_ops += 1
        self.outstanding_jobs = 0
        self._inflight.clear()
        self._wptr = 0
        self.queue.abort_all()
        self.reg_write("RBBM_SW_RESET_CMD", 1,
                       f"{_SRC}/a6xx_gpu.c:a6xx_recover")
        ok = self.reg_poll("RBBM_RESET_STATUS", 1, 1,
                           f"{_SRC}/a6xx_gpu.c:reset_wait",
                           timeout_ns=10 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("adreno reset timed out")

    def _power_up(self) -> None:
        self.pending_hw_ops += 1
        self.reg_write("GDSC_PWR_CTRL", 1, f"{_SRC}/a6xx_gmu.c:gdsc_on")
        ok = self.reg_poll("GDSC_PWR_STATUS", 1, 1,
                           f"{_SRC}/a6xx_gmu.c:gdsc_wait",
                           timeout_ns=5 * MS)
        if not ok:
            self.pending_hw_ops -= 1
            raise DriverError("GDSC power-up timed out")
        self.reg_write("SPTP_PWR_CTRL", 1, f"{_SRC}/a6xx_gmu.c:sptp_on")
        ok = self.reg_poll("SPTP_PWR_STATUS", 1, 1,
                           f"{_SRC}/a6xx_gmu.c:sptp_wait",
                           timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("SPTP power-up timed out")

    # -- context --------------------------------------------------------------------

    def create_context(self) -> ContextMemory:
        self.require_open()
        if self.ctx is not None:
            raise DriverError("adreno driver models a single context")
        self.clock.advance(CTX_INIT_NS)
        self.ctx = ContextMemory(self.machine.memory,
                                 self.machine.gpu_allocator,
                                 self.gpu.mmu.fmt, tag="adreno-ctx")
        root = self.ctx.page_table.root_pa
        self.reg_write("SMMU_TTBR0_LO", root & 0xFFFFFFFF,
                       f"{_SRC}/msm_iommu.c:ttbr0_lo")
        self.reg_write("SMMU_TTBR0_HI", root >> 32,
                       f"{_SRC}/msm_iommu.c:ttbr0_hi")
        self.reg_write("SMMU_CR0", hw.SMMU_ENABLE,
                       f"{_SRC}/msm_iommu.c:cr0_enable")
        self.reg_write("SMMU_TLBIALL", 1,
                       f"{_SRC}/msm_iommu.c:tlbiall")
        # The command ring lives in (executable) GPU memory.
        ring = self.ctx.alloc(RING_BYTES, MemFlags.job_binary(),
                              tag="ringbuffer")
        self._ring_va = ring.va
        self._wptr = 0
        self.trace_mem_map(ring.va, ring.num_pages,
                           MemFlags.job_binary().value, "ringbuffer",
                           f"{_SRC}/msm_ringbuffer.c:new")
        self.reg_write("CP_RB_BASE_LO", ring.va & 0xFFFFFFFF,
                       f"{_SRC}/msm_ringbuffer.c:rb_base_lo")
        self.reg_write("CP_RB_BASE_HI", ring.va >> 32,
                       f"{_SRC}/msm_ringbuffer.c:rb_base_hi")
        self.reg_write("CP_RB_SIZE", RING_BYTES,
                       f"{_SRC}/msm_ringbuffer.c:rb_size")
        return self.ctx

    def destroy_context(self) -> None:
        if self.ctx is None:
            return
        self.ctx.destroy()
        self.ctx = None
        self._ring_va = 0

    def require_ctx(self) -> ContextMemory:
        if self.ctx is None:
            raise DriverError("no GPU context")
        return self.ctx

    # -- ioctls -----------------------------------------------------------------------------

    def _ioctl_mem_alloc(self, size: int, flags: MemFlags, tag: str = ""):
        ctx = self.require_ctx()
        region = ctx.alloc(size, flags, tag)
        self.clock.advance(MAP_PAGE_NS * region.num_pages)
        self.trace_mem_map(region.va, region.num_pages, flags.value, tag,
                           f"{_SRC}/msm_gpummu.c:msm_gpummu_map")
        self.reg_write("SMMU_TLBIALL", 1,
                       f"{_SRC}/msm_iommu.c:tlbiall")
        return region.va

    def _ioctl_mem_free(self, va: int):
        ctx = self.require_ctx()
        region = ctx.region_at(va)
        self.trace_mem_unmap(region.va, region.num_pages,
                             f"{_SRC}/msm_gpummu.c:msm_gpummu_unmap")
        ctx.free(region.va)
        self.reg_write("SMMU_TLBIALL", 1,
                       f"{_SRC}/msm_iommu.c:tlbiall")

    def _ioctl_job_submit(self, chain_va: int, affinity: int) -> int:
        self.require_ctx()
        self._maybe_rewind_ring()
        return self.queue.submit(chain_va, affinity)

    def _ioctl_job_wait(self, job_id: int, timeout_ns: int = 10 * SEC):
        state = self.queue.wait(job_id, timeout_ns,
                                src=f"{_SRC}/msm_gpu.c:wait_fence")
        if state is JobState.FAILED:
            raise DriverError(f"adreno job {job_id} failed "
                              f"(faults: {self.mmu_faults[-1:]})")
        return state.name

    def _ioctl_cache_flush(self):
        self.flush_caches()

    def flush_caches(self) -> None:
        """UCHE flush: set the bit, poll until the hardware clears it."""
        self.pending_hw_ops += 1
        self.reg_write("UCHE_CACHE_FLUSH", hw.UCHE_FLUSH,
                       f"{_SRC}/a6xx_gpu.c:uche_flush")
        ok = self.reg_poll("UCHE_CACHE_FLUSH", hw.UCHE_FLUSH, 0,
                           f"{_SRC}/a6xx_gpu.c:uche_flush_wait",
                           timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("UCHE flush timed out")

    def _maybe_rewind_ring(self) -> None:
        """Rewind the ring when idle and running out of packet space."""
        if self.outstanding_jobs or self.queue.running_count:
            return
        if self._wptr + 64 * hw.RING_PKT.size <= RING_BYTES:
            return
        self.rewind_ring()

    def rewind_ring(self) -> None:
        """Reset ring pointers (GPU must be idle).

        Also used by the recorder at session start so a recording
        always begins from ring offset zero -- the state the replayer's
        nano driver reconstructs.
        """
        if self.outstanding_jobs or self.queue.running_count:
            raise DriverError("cannot rewind the ring with jobs in "
                              "flight")
        self.reg_write("CP_RB_BASE_LO", self._ring_va & 0xFFFFFFFF,
                       f"{_SRC}/msm_ringbuffer.c:rewind")
        self._wptr = 0

    # -- hardware kick ----------------------------------------------------------------------------

    def kick_hardware(self, slot: int, record) -> None:
        ctx = self.require_ctx()
        if self._wptr + hw.RING_PKT.size > RING_BYTES:
            raise DriverError("ring buffer overflow")
        packet = hw.RING_PKT.pack(hw.RING_PKT_MAGIC, record.affinity,
                                  record.chain_va)
        ctx.cpu_write(self._ring_va + self._wptr, packet)
        self._job_counter += 1
        self.trace_job_kick(slot, record.chain_va, self._job_counter,
                            f"{_SRC}/a6xx_gpu.c:a6xx_submit")
        self.outstanding_jobs += 1
        self._inflight.append(slot)
        self._wptr += hw.RING_PKT.size
        self.reg_write("CP_RB_WPTR", self._wptr,
                       f"{_SRC}/a6xx_gpu.c:a6xx_flush")

    # -- interrupt handler --------------------------------------------------------------------------

    def handle_irq(self) -> None:
        status = self.reg_read("RBBM_INT_0_STATUS",
                               f"{_SRC}/a6xx_gpu.c:a6xx_irq")
        if not status:
            return
        self.reg_write("RBBM_INT_CLEAR_CMD", status,
                       f"{_SRC}/a6xx_gpu.c:int_clear")
        failed = bool(status & (hw.INT_RBBM_ERROR | hw.INT_SMMU_FAULT))
        if status & hw.INT_SMMU_FAULT:
            self.mmu_faults.append({
                "status": self.reg_read("SMMU_FSR",
                                        f"{_SRC}/msm_iommu.c:fsr"),
                "address": self.reg_read("SMMU_FAR_LO",
                                         f"{_SRC}/msm_iommu.c:far"),
            })
        if status & hw.INT_CP_DONE or failed:
            # Progress check: where has the CP retired to?
            self.reg_read("CP_RB_RPTR", f"{_SRC}/a6xx_gpu.c:rptr")
            if self._inflight:
                slot = self._inflight.pop(0)
                self.outstanding_jobs = max(0, self.outstanding_jobs - 1)
                self.queue.on_slot_complete(slot, failed)
