"""Driver-side GPU memory management.

Models the part of a GPU driver that backs the runtime's allocation
ioctls: a per-context GPU virtual-address allocator, physical page
allocation, and page-table maintenance.

Two properties matter to GPUReplay and are modelled faithfully:

- The runtime accesses allocated regions through a *CPU mapping that
  bypasses the driver* (``cpu_write``/``cpu_read`` go straight to
  physical memory). The driver -- and therefore the recorder -- never
  sees those stores; only the memory contents at job-kick time.
- Allocation *flags* describe intent (shader/executable, data buffer,
  GPU-private scratch, CPU-visible). They drive GPU page permissions
  on Mali and survive as the recorder's only dump-shrinking *hint* on
  v3d, whose page tables have no permission bits (Section 6.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DriverError
from repro.gpu.mmu import (PERM_R, PERM_W, PERM_X, PageTableBuilder,
                           VA_SPACE_SIZE)
from repro.soc.memory import PAGE_SIZE, PageAllocator, PhysicalMemory
from repro.units import align_up


class MemFlags(enum.Flag):
    """Allocation flags, as passed by the runtime through ioctls."""

    NONE = 0
    #: GPU may read.
    GPU_READ = enum.auto()
    #: GPU may write.
    GPU_WRITE = enum.auto()
    #: Region holds GPU commands/shaders; mapped executable on Mali.
    GPU_EXEC = enum.auto()
    #: Region is mmap'd into the CPU (the runtime writes it directly).
    CPU_MAPPED = enum.auto()
    #: GPU-internal scratch (tile state, spill); never read by the CPU.
    SCRATCH = enum.auto()

    @classmethod
    def data_buffer(cls) -> "MemFlags":
        return cls.GPU_READ | cls.GPU_WRITE | cls.CPU_MAPPED

    @classmethod
    def job_binary(cls) -> "MemFlags":
        return cls.GPU_READ | cls.GPU_EXEC | cls.CPU_MAPPED

    @classmethod
    def gpu_scratch(cls) -> "MemFlags":
        return cls.GPU_READ | cls.GPU_WRITE | cls.SCRATCH

    def to_perms(self) -> int:
        perms = 0
        if self & MemFlags.GPU_READ:
            perms |= PERM_R
        if self & MemFlags.GPU_WRITE:
            perms |= PERM_W
        if self & MemFlags.GPU_EXEC:
            perms |= PERM_X
        return perms


@dataclass
class MemRegion:
    """One allocated GPU memory region."""

    va: int
    num_pages: int
    flags: MemFlags
    pas: List[int]
    tag: str = ""
    freed: bool = False
    #: Pages the CPU has actually touched through its mapping; on Mali
    #: a GPU-visible page never touched by the CPU must be internal
    #: (Section 6.1's second shrink rule).
    cpu_touched: set = field(default_factory=set)

    @property
    def size(self) -> int:
        return self.num_pages * PAGE_SIZE

    def end_va(self) -> int:
        return self.va + self.size


class ContextMemory:
    """GPU memory state of one driver context (one GPU address space)."""

    #: First VA handed out; low VAs stay unmapped to catch null derefs.
    VA_BASE = 0x0010_0000
    #: Guard gap between regions (pages).
    GUARD_PAGES = 1

    def __init__(self, memory: PhysicalMemory, allocator: PageAllocator,
                 pte_format, tag: str = "ctx"):
        self.memory = memory
        self.allocator = allocator
        self.page_table = PageTableBuilder(memory, allocator, pte_format,
                                           tag=f"{tag}-pgtable")
        self._next_va = self.VA_BASE
        self.regions: Dict[int, MemRegion] = {}

    # -- allocation ----------------------------------------------------------

    def alloc(self, size: int, flags: MemFlags, tag: str = "") -> MemRegion:
        if size <= 0:
            raise DriverError(f"bad allocation size {size}")
        num_pages = align_up(size, PAGE_SIZE) // PAGE_SIZE
        va = self._next_va
        end = va + num_pages * PAGE_SIZE
        if end >= VA_SPACE_SIZE:
            raise DriverError("GPU virtual address space exhausted")
        self._next_va = end + self.GUARD_PAGES * PAGE_SIZE
        pas = self.allocator.alloc_pages(num_pages, tag or "gpu-mem")
        perms = flags.to_perms()
        for i, pa in enumerate(pas):
            self.page_table.map_page(va + i * PAGE_SIZE, pa, perms)
        region = MemRegion(va, num_pages, flags, pas, tag)
        self.regions[va] = region
        return region

    def free(self, va: int) -> MemRegion:
        region = self.regions.pop(va, None)
        if region is None:
            raise DriverError(f"free of unknown region VA {va:#x}")
        for i in range(region.num_pages):
            self.page_table.unmap_page(region.va + i * PAGE_SIZE)
        self.allocator.free_pages(region.pas)
        region.freed = True
        return region

    def region_at(self, va: int) -> MemRegion:
        region = self.regions.get(va)
        if region is None:
            # Interior addresses: find the containing region.
            for r in self.regions.values():
                if r.va <= va < r.end_va():
                    return r
            raise DriverError(f"no region contains VA {va:#x}")
        return region

    def total_mapped_bytes(self) -> int:
        return sum(r.size for r in self.regions.values())

    # -- CPU-side access (kernel-bypassing mmap) ---------------------------------

    def cpu_write(self, va: int, data: bytes) -> None:
        """Store through the CPU mapping. Invisible to the driver/recorder."""
        self._cpu_access(va, len(data), write_data=data)

    def cpu_read(self, va: int, size: int) -> bytes:
        return self._cpu_access(va, size)

    def _cpu_access(self, va: int, size: int,
                    write_data: Optional[bytes] = None) -> bytes:
        region = self.region_at(va)
        if not region.flags & MemFlags.CPU_MAPPED:
            raise DriverError(
                f"region {region.va:#x} ({region.tag}) is not CPU-mapped")
        if va + size > region.end_va():
            raise DriverError("CPU access crosses region end")
        out = bytearray()
        cursor = va
        offset = 0
        while offset < size:
            page_index = (cursor - region.va) // PAGE_SIZE
            pa = region.pas[page_index]
            in_page = cursor & (PAGE_SIZE - 1)
            chunk = min(size - offset, PAGE_SIZE - in_page)
            if write_data is None:
                out += self.memory.read(pa + in_page, chunk)
            else:
                self.memory.write(pa + in_page,
                                  write_data[offset:offset + chunk])
                region.cpu_touched.add(page_index)
            cursor += chunk
            offset += chunk
        return bytes(out)

    def destroy(self) -> None:
        for va in list(self.regions):
            self.free(va)
        self.page_table.destroy()
