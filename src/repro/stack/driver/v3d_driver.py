"""The v3d kernel driver (drm/v3d-like).

Compared to the Mali driver: power and clocks come from the SoC
firmware mailbox (the complexity the baremetal replayer must
reproduce, Section 6.3); there is a single job slot, so no driver
change is needed for synchronous submission ("NC" in Table 1); cache
maintenance polls a control register until the hardware clears the
flush bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import DriverError
from repro.gpu import v3d as hw
from repro.soc import firmware as fw
from repro.soc.machine import Machine
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.ioctl import IoctlCode
from repro.stack.driver.memory import ContextMemory, MemFlags
from repro.stack.driver.sched import JobQueue, JobState
from repro.units import MS, SEC

MAP_PAGE_NS = 300
CTX_INIT_NS = 1 * MS

_SRC = "drivers/gpu/drm/v3d"


class V3dDriver(GpuDriver):
    """Driver for the v3d GPU."""

    name = "v3d_drm"

    def __init__(self, machine: Machine):
        super().__init__(machine)
        if self.gpu.family != "v3d":
            raise DriverError("V3dDriver requires a v3d GPU")
        self.queue = JobQueue(self, num_slots=1, depth=1)
        self.ctx: Optional[ContextMemory] = None
        self.mmu_faults: List[Dict[str, int]] = []
        self._job_counter = 0
        self.ioctls.register(IoctlCode.MEM_ALLOC, self._ioctl_mem_alloc)
        self.ioctls.register(IoctlCode.MEM_FREE, self._ioctl_mem_free)
        self.ioctls.register(IoctlCode.JOB_SUBMIT, self._ioctl_job_submit)
        self.ioctls.register(IoctlCode.JOB_WAIT, self._ioctl_job_wait)
        self.ioctls.register(IoctlCode.CACHE_FLUSH, self._ioctl_cache_flush)

    # -- lifecycle ----------------------------------------------------------------

    def open(self) -> None:
        if self.opened:
            return
        # Firmware brings up the rail and clock before MMIO works.
        self.machine.firmware.request(fw.TAG_SET_POWER,
                                      hw.V3D_FIRMWARE_ID, 1)
        self.machine.firmware.request(fw.TAG_SET_CLOCK_RATE,
                                      hw.V3D_FIRMWARE_ID,
                                      hw.V3D_DEFAULT_CLOCK_HZ)
        self.connect_irq()
        ident = self.reg_read("CTL_IDENT", f"{_SRC}/v3d_drv.c:ident")
        if ident != hw.V3D_GPU_IDENT:
            raise DriverError(f"unexpected v3d ident {ident:#x}")
        self.reset_gpu()
        self.reg_write("CTL_INT_MSK",
                       hw.INT_FRDONE | hw.INT_CTERR | hw.INT_MMU_FAULT,
                       f"{_SRC}/v3d_irq.c:irqs_enable")
        self.opened = True

    def close(self) -> None:
        if not self.opened:
            return
        if self.ctx is not None:
            self.destroy_context()
        self.reset_gpu()
        self.disconnect_irq()
        self.machine.firmware.request(fw.TAG_SET_POWER,
                                      hw.V3D_FIRMWARE_ID, 0)
        self.opened = False

    def reset_gpu(self) -> None:
        self.pending_hw_ops += 1
        self.outstanding_jobs = 0
        self.queue.abort_all()
        self.reg_write("CTL_RESET", 1, f"{_SRC}/v3d_gem.c:v3d_reset")
        ok = self.reg_poll("CTL_STATUS", hw.STATUS_IDLE, hw.STATUS_IDLE,
                           f"{_SRC}/v3d_gem.c:reset_wait", timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("v3d reset timed out")

    # -- context -------------------------------------------------------------------------

    def create_context(self) -> ContextMemory:
        self.require_open()
        if self.ctx is not None:
            raise DriverError("v3d driver models a single context")
        self.clock.advance(CTX_INIT_NS)
        self.ctx = ContextMemory(self.machine.memory,
                                 self.machine.gpu_allocator,
                                 self.gpu.mmu.fmt, tag="v3d-ctx")
        root = self.ctx.page_table.root_pa
        self.reg_write("MMU_PT_PA_BASE", root >> 12,
                       f"{_SRC}/v3d_mmu.c:pt_base")
        self.reg_write("MMU_CTRL",
                       hw.MMU_CTRL_ENABLE | hw.MMU_CTRL_TLB_CLEAR,
                       f"{_SRC}/v3d_mmu.c:mmu_enable")
        return self.ctx

    def destroy_context(self) -> None:
        if self.ctx is None:
            return
        self.ctx.destroy()
        self.ctx = None

    def require_ctx(self) -> ContextMemory:
        if self.ctx is None:
            raise DriverError("no GPU context")
        return self.ctx

    # -- ioctls ------------------------------------------------------------------------------

    def _ioctl_mem_alloc(self, size: int, flags: MemFlags, tag: str = ""):
        ctx = self.require_ctx()
        region = ctx.alloc(size, flags, tag)
        self.clock.advance(MAP_PAGE_NS * region.num_pages)
        self.trace_mem_map(region.va, region.num_pages, flags.value, tag,
                           f"{_SRC}/v3d_mmu.c:v3d_mmu_insert_ptes")
        self.reg_write("MMU_CTRL",
                       hw.MMU_CTRL_ENABLE | hw.MMU_CTRL_TLB_CLEAR,
                       f"{_SRC}/v3d_mmu.c:tlb_clear")
        return region.va

    def _ioctl_mem_free(self, va: int):
        ctx = self.require_ctx()
        region = ctx.region_at(va)
        self.trace_mem_unmap(region.va, region.num_pages,
                             f"{_SRC}/v3d_mmu.c:v3d_mmu_remove_ptes")
        ctx.free(region.va)
        self.reg_write("MMU_CTRL",
                       hw.MMU_CTRL_ENABLE | hw.MMU_CTRL_TLB_CLEAR,
                       f"{_SRC}/v3d_mmu.c:tlb_clear")

    def _ioctl_job_submit(self, chain_va: int, affinity: int = 0) -> int:
        self.require_ctx()
        return self.queue.submit(chain_va, affinity)

    def _ioctl_job_wait(self, job_id: int, timeout_ns: int = 10 * SEC):
        state = self.queue.wait(job_id, timeout_ns,
                                src=f"{_SRC}/v3d_sched.c:wait")
        if state is JobState.FAILED:
            raise DriverError(f"v3d job {job_id} failed "
                              f"(faults: {self.mmu_faults[-1:]})")
        return state.name

    def _ioctl_cache_flush(self):
        self.flush_caches()

    def flush_caches(self) -> None:
        """v3d_clean_caches(): set the flush bit, poll until it clears."""
        self.pending_hw_ops += 1
        self.reg_write("L2TCACTL", hw.L2T_FLUSH,
                       f"{_SRC}/v3d_gem.c:v3d_clean_caches")
        ok = self.reg_poll("L2TCACTL", hw.L2T_FLUSH, 0,
                           f"{_SRC}/v3d_gem.c:clean_caches_wait",
                           timeout_ns=5 * MS)
        self.pending_hw_ops -= 1
        if not ok:
            raise DriverError("v3d cache clean timed out")

    # -- hardware kick ------------------------------------------------------------------------

    def kick_hardware(self, slot: int, record) -> None:
        del slot  # single control-list queue
        self._job_counter += 1
        self.trace_job_kick(0, record.chain_va, self._job_counter,
                            f"{_SRC}/v3d_sched.c:v3d_csd_job_run")
        self.outstanding_jobs += 1
        end_va = record.affinity or (record.chain_va + 1)
        self.reg_write("CT0QBA", record.chain_va,
                       f"{_SRC}/v3d_sched.c:ct0qba")
        self.reg_write("CT0QEA", end_va, f"{_SRC}/v3d_sched.c:ct0qea")

    # -- interrupt handler ------------------------------------------------------------------------

    def handle_irq(self) -> None:
        status = self.reg_read("CTL_INT_STS", f"{_SRC}/v3d_irq.c:int_sts")
        if not status:
            return
        self.reg_write("CTL_INT_CLR", status, f"{_SRC}/v3d_irq.c:int_clr")
        if status & hw.INT_MMU_FAULT:
            self.mmu_faults.append({
                "address": self.reg_read("MMU_VIO_ADDR",
                                         f"{_SRC}/v3d_irq.c:vio_addr"),
                "status": 1,
            })
        if status & (hw.INT_FRDONE | hw.INT_CTERR | hw.INT_MMU_FAULT):
            failed = bool(status & (hw.INT_CTERR | hw.INT_MMU_FAULT))
            if self.outstanding_jobs > 0:
                self.outstanding_jobs -= 1
                self.queue.on_slot_complete(0, failed)
