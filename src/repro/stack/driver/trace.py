"""Driver instrumentation: the trace events the recorder subscribes to.

This module is the "lightweight instrumentation" of Section 4.1. The
driver emits one event per CPU/GPU interaction chokepoint:

- register reads/writes (with the volatile flag from the register map);
- summarized polling loops (the ``wait_for`` macros of Table 2's
  RegReadWait);
- interrupt-context entry/exit and blocking waits for interrupts;
- job kicks (the moment right before the start-register write -- when
  memory dumps must be taken, Section 4.3);
- GPU memory map/unmap operations with their allocation flags (the
  dump-shrinking hints of Section 6.2).

Each event carries a ``src`` tag naming the driver source location, so
replay failures can be reported "as the full driver does" (Section
5.4), and a ``gpu_busy_after`` hint from the driver's own job
accounting, feeding the interval-skip heuristic of Section 4.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class TraceEvent:
    """Base class: timestamp, driver source tag, busy hint."""

    t_ns: int
    src: str
    gpu_busy_after: bool


@dataclass(frozen=True)
class RegReadEvent(TraceEvent):
    name: str = ""
    value: int = 0
    #: True for registers whose reads are nondeterministic and not
    #: state-changing (cycle counters, thermal sensors).
    volatile: bool = False


@dataclass(frozen=True)
class RegWriteEvent(TraceEvent):
    name: str = ""
    mask: int = 0xFFFFFFFF
    value: int = 0


@dataclass(frozen=True)
class RegPollEvent(TraceEvent):
    """A whole polling loop, summarized (RegReadWait)."""

    name: str = ""
    mask: int = 0xFFFFFFFF
    value: int = 0
    timeout_ns: int = 0
    polls: int = 0
    success: bool = True


@dataclass(frozen=True)
class IrqEvent(TraceEvent):
    phase: str = "enter"  # "enter" | "exit"


@dataclass(frozen=True)
class WaitIrqEvent(TraceEvent):
    """The CPU blocked waiting for a GPU interrupt."""

    timeout_ns: int = 0


@dataclass(frozen=True)
class JobKickEvent(TraceEvent):
    """Emitted right *before* the job-start register write."""

    slot: int = 0
    chain_va: int = 0
    job_index: int = 0


@dataclass(frozen=True)
class MemMapEvent(TraceEvent):
    va: int = 0
    num_pages: int = 0
    flags: int = 0
    tag: str = ""


@dataclass(frozen=True)
class MemUnmapEvent(TraceEvent):
    va: int = 0
    num_pages: int = 0


class DriverTracer:
    """Receives every trace event; subclassed by the recorder."""

    def emit(self, event: TraceEvent) -> None:
        raise NotImplementedError


class TracerMux(DriverTracer):
    """Fans every event out to N subscribers in attach order.

    This is what lets the recorder and the observability layer watch
    the same chokepoints simultaneously: the driver holds exactly one
    mux and subscribers come and go through it.
    """

    def __init__(self, *tracers: DriverTracer):
        self._tracers: List[DriverTracer] = list(tracers)

    def add(self, tracer: DriverTracer) -> None:
        self._tracers.append(tracer)

    def remove(self, tracer: DriverTracer) -> None:
        self._tracers.remove(tracer)

    def __len__(self) -> int:
        return len(self._tracers)

    def __contains__(self, tracer: DriverTracer) -> bool:
        return tracer in self._tracers

    def emit(self, event: TraceEvent) -> None:
        for tracer in self._tracers:
            tracer.emit(event)


class ListTracer(DriverTracer):
    """Buffers events in a list (handy for tests and analysis)."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def of_type(self, cls) -> List[TraceEvent]:
        return [e for e in self.events if isinstance(e, cls)]
