"""CPU reference execution of zoo models.

Runs the *same lowering* as the GPU path but interprets the kernel ops
directly on numpy arrays -- no runtime, no driver, no GPU. Because the
op semantics are shared (:func:`repro.gpu.shader_exec.compute_op`),
the GPU/replay results must match this reference bit-for-bit, which is
the ground truth the Section 7.2 validation compares against.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import FrameworkError
from repro.gpu.shader_exec import compute_op
from repro.stack.framework.layers import ModelSpec, init_weights
from repro.stack.framework.lowering import lower_model


def run_reference(model: ModelSpec, x: np.ndarray,
                  weights: Optional[Dict[str, np.ndarray]] = None,
                  fuse: bool = True) -> np.ndarray:
    """One inference of ``model`` on the CPU; returns the output tensor."""
    if tuple(x.shape) != tuple(model.input_shape):
        raise FrameworkError(
            f"{model.name}: input shape {x.shape} != {model.input_shape}")
    arrays: Dict[str, np.ndarray] = {
        "input": np.ascontiguousarray(x, dtype=np.float32)}
    arrays.update(weights if weights is not None else init_weights(model))
    for group in lower_model(model, fuse):
        for kernel in group.kernels:
            for op in kernel.ops:
                inputs = [arrays[s] for s in op.inputs]
                results = compute_op(op.op, inputs, op.params)
                for slot, value in zip(op.all_outputs(), results):
                    # Stores reshape to the declared slot shape, exactly
                    # as the GPU's _store does.
                    arrays[slot] = np.ascontiguousarray(
                        value, dtype=np.float32).reshape(
                            kernel.shapes[slot])
    return arrays[f"{model.output_layer().name}:out"]
