"""The Vulkan-like runtime (libvulkan_broadcom-style).

Lighter library and cheaper per-kernel pipeline creation than the
OpenCL runtime; on v3d the startup bottleneck sits *above* the runtime,
in the framework's pipeline building (Figure 6) -- modelled in
:mod:`repro.stack.framework.ncnn`.
"""

from __future__ import annotations

from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS, US


class VulkanRuntime(ComputeRuntime):
    """vkCreateDevice / vkCreateComputePipelines-like."""

    api_name = "vulkan"
    LIB_LOAD_NS = 120 * MS
    MEM_INIT_NS = 45 * MS
    COMPILE_BASE_NS = 7 * MS
    COMPILE_PER_OP_NS = 2 * MS
    ENQUEUE_EMIT_NS = 20 * US
    #: The Broadcom Vulkan driver sub-allocates command/shader memory
    #: from 64 KiB buffer objects; the v3d recorder's conservative
    #: whole-region dumps therefore capture many zero pages (the
    #: "larger but highly compressible" recordings of Section 7.3).
    JOB_REGION_GRANULE = 64 * 1024
    LIB_RSS_BYTES = 90 * 1024 * 1024
