"""GPU runtimes: the proprietary middle of the stack.

These model libmali/libvulkan_broadcom: they own a driver connection,
JIT-compile kernels from an IR into shader bytecode, allocate GPU
buffers through ioctls, and *emit job binaries directly into mmap'd GPU
memory* -- bypassing the driver, which is why the recorder can only see
the result in memory at job-kick time (Section 4.3).
"""

from repro.stack.runtime.base import Buffer, CompiledKernel, ComputeRuntime
from repro.stack.runtime.gles import GlesComputeRuntime
from repro.stack.runtime.kernel_ir import KernelIR, KernelOp
from repro.stack.runtime.opencl import OpenClRuntime
from repro.stack.runtime.vulkan import VulkanRuntime

__all__ = [
    "Buffer",
    "CompiledKernel",
    "ComputeRuntime",
    "GlesComputeRuntime",
    "KernelIR",
    "KernelOp",
    "OpenClRuntime",
    "VulkanRuntime",
]
