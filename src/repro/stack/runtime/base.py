"""The runtime core shared by the OpenCL-, Vulkan- and GLES-like APIs.

Responsibilities and their cost-model hooks (class attributes, tuned
per API in the subclasses):

- context initialization -- library loading and allocator setup, the
  seconds-scale startup the paper's Figure 6 measures;
- JIT kernel compilation (IR -> shader bytecode), charged per kernel;
- buffer management through driver ioctls;
- per-enqueue job emission: encode position-dependent shader bytecode
  with the bound buffers' GPU VAs and lay out the job binary *through
  the CPU mapping*, invisible to the driver;
- synchronization (finish = drain the job queue + cache maintenance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeApiError
from repro.gpu.isa import (Instruction, Program, TensorRef, encode_program)
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.ioctl import IoctlCode
from repro.stack.driver.memory import MemFlags
from repro.stack.runtime.emit import emitter_for_family
from repro.stack.runtime.kernel_ir import KernelIR
from repro.units import KIB, MS, SEC, US


@dataclass
class Buffer:
    """A GPU buffer handle held by the app/framework."""

    va: int
    nbytes: int
    shape: Tuple[int, ...]
    tag: str = ""


@dataclass
class CompiledKernel:
    """A JIT-compiled kernel, ready for repeated enqueue."""

    ir: KernelIR
    compile_cost_ns: int = 0


@dataclass
class _JobRegion:
    va: int
    size: int
    in_use: bool = True


class ComputeRuntime:
    """Base runtime; subclasses fix the API name and cost constants."""

    api_name = "abstract"
    LIB_LOAD_NS = 200 * MS
    MEM_INIT_NS = 60 * MS
    COMPILE_BASE_NS = 10 * MS
    COMPILE_PER_OP_NS = 3 * MS
    ENQUEUE_EMIT_NS = 25 * US
    COPY_BW = 3 * 1024 ** 3  # CPU<->GPU-memory memcpy bytes/sec
    SCRATCH_BYTES = 64 * KIB
    #: Resident CPU memory of the runtime library + its GPU contexts,
    #: allocator arenas and JIT caches (Section 7.3: the stack's
    #: 220-310 MB CPU footprint). Per-kernel JIT state adds on top.
    LIB_RSS_BYTES = 120 * 1024 * 1024
    JIT_STATE_PER_KERNEL = 1 * 1024 * 1024
    #: Job-binary allocations are rounded up to this granularity
    #: (buffer-object heap granule). Coarse granules mean recorders
    #: that dump whole regions capture mostly-zero pages.
    JOB_REGION_GRANULE = 4096

    def __init__(self, driver: GpuDriver):
        self.driver = driver
        self.clock = driver.clock
        self.emitter = emitter_for_family(driver.gpu.family)
        self.initialized = False
        self.buffers: List[Buffer] = []
        self.kernels_compiled = 0
        self._job_pool: Dict[int, List[_JobRegion]] = {}
        self._active_regions: List[_JobRegion] = []
        self._inflight_jobs: List[int] = []
        self._affinity = 0
        self._scratch: Optional[Buffer] = None

    # -- lifecycle ------------------------------------------------------------

    def init_context(self) -> None:
        """Create the GPU context (the expensive part of app startup)."""
        if self.initialized:
            raise RuntimeApiError(f"{self.api_name}: context already up")
        obs = self.driver.machine.obs
        with obs.span(f"runtime:{self.api_name}:init",
                      obs.track("stack", "runtime"), cat="stack"):
            self.clock.advance(self.LIB_LOAD_NS)
            self.driver.ioctl(IoctlCode.VERSION_CHECK)
            props = self.driver.ioctl(IoctlCode.GET_GPU_PROPS)
            self._affinity = (1 << int(props["cores"])) - 1
            if not self.driver.opened:
                self.driver.open()
            self.driver.create_context()
            self.clock.advance(self.MEM_INIT_NS)
            scratch_va = self.driver.ioctl(
                IoctlCode.MEM_ALLOC, size=self.SCRATCH_BYTES,
                flags=MemFlags.gpu_scratch(), tag="runtime-scratch")
            self._scratch = Buffer(scratch_va, self.SCRATCH_BYTES, (0,),
                                   "runtime-scratch")
        self.initialized = True

    def release(self) -> None:
        if not self.initialized:
            return
        self.driver.destroy_context()
        self.buffers.clear()
        self._job_pool.clear()
        self._active_regions.clear()
        self._inflight_jobs.clear()
        self._scratch = None
        self.initialized = False

    def set_sync_submission(self, sync: bool) -> None:
        """Force queue depth 1 (GPUReplay's record-time requirement)."""
        depth = 1 if sync else self.driver.queue.num_slots
        self.driver.queue.set_depth(depth)

    def _require_init(self) -> None:
        if not self.initialized:
            raise RuntimeApiError(f"{self.api_name}: no context")

    # -- buffers -----------------------------------------------------------------

    def create_buffer(self, shape: Tuple[int, ...], tag: str = "") -> Buffer:
        self._require_init()
        nbytes = int(np.prod(shape)) * 4
        if nbytes <= 0:
            raise RuntimeApiError(f"empty buffer shape {shape}")
        va = self.driver.ioctl(IoctlCode.MEM_ALLOC, size=nbytes,
                               flags=MemFlags.data_buffer(), tag=tag)
        buffer = Buffer(va, nbytes, tuple(shape), tag)
        self.buffers.append(buffer)
        return buffer

    def write_buffer(self, buffer: Buffer, data: np.ndarray) -> None:
        self._require_init()
        data = np.ascontiguousarray(data, dtype=np.float32)
        if data.size * 4 != buffer.nbytes:
            raise RuntimeApiError(
                f"buffer {buffer.tag or hex(buffer.va)}: size mismatch")
        self.clock.advance(max(1, buffer.nbytes * SEC // self.COPY_BW))
        self.driver.require_ctx().cpu_write(buffer.va, data.tobytes())

    def read_buffer(self, buffer: Buffer) -> np.ndarray:
        self._require_init()
        self.clock.advance(max(1, buffer.nbytes * SEC // self.COPY_BW))
        raw = self.driver.require_ctx().cpu_read(buffer.va, buffer.nbytes)
        return np.frombuffer(raw, dtype=np.float32).reshape(buffer.shape)

    # -- kernels --------------------------------------------------------------------

    def compile_kernel(self, ir: KernelIR) -> CompiledKernel:
        """JIT-compile one kernel (the Mali startup bottleneck)."""
        self._require_init()
        ir.validate()
        obs = self.driver.machine.obs
        with obs.span(f"jit:{ir.name}", obs.track("stack", "runtime"),
                      cat="stack", args={"ops": len(ir.ops)}):
            cost = self.COMPILE_BASE_NS + self.COMPILE_PER_OP_NS * len(ir.ops)
            self.clock.advance(cost)
        self.kernels_compiled += 1
        obs.counter("runtime.kernels_compiled").inc()
        return CompiledKernel(ir, cost)

    def enqueue(self, kernel: CompiledKernel,
                bindings: Dict[str, Buffer]) -> int:
        """Emit the job binary for ``kernel`` and submit it."""
        self._require_init()
        program = self._bind_program(kernel.ir, bindings)
        blob = encode_program(program)
        region = self._get_job_region(self.emitter.layout_size([blob]))
        ctx = self.driver.require_ctx()
        emitted = self.emitter.emit(region.va, ctx.cpu_write, [blob],
                                    submit_arg=self._affinity)
        self.clock.advance(self.ENQUEUE_EMIT_NS
                           + emitted.total_size * SEC // self.COPY_BW)
        job_id = self.driver.ioctl(IoctlCode.JOB_SUBMIT,
                                   chain_va=emitted.chain_va,
                                   affinity=emitted.submit_arg)
        self._inflight_jobs.append(job_id)
        return job_id

    def _bind_program(self, ir: KernelIR,
                      bindings: Dict[str, Buffer]) -> Program:
        instructions = []
        for op in ir.ops:
            refs = []
            for slot in op.operand_order():
                buffer = bindings.get(slot)
                if buffer is None:
                    raise RuntimeApiError(
                        f"kernel {ir.name}: slot {slot!r} not bound")
                refs.append(TensorRef(buffer.va, ir.shapes[slot]))
            instructions.append(Instruction(op.op, tuple(refs), op.params))
        return Program(instructions)

    def _get_job_region(self, size: int) -> _JobRegion:
        size = (size + self.JOB_REGION_GRANULE - 1) \
            // self.JOB_REGION_GRANULE * self.JOB_REGION_GRANULE
        pool = self._job_pool.get(size)
        if pool:
            region = pool.pop()
            region.in_use = True
        else:
            va = self.driver.ioctl(IoctlCode.MEM_ALLOC, size=size,
                                   flags=MemFlags.job_binary(),
                                   tag="job-binary")
            region = _JobRegion(va, size)
        self._active_regions.append(region)
        return region

    # -- synchronization -------------------------------------------------------------

    def cpu_footprint_bytes(self) -> int:
        """Modeled resident CPU memory of this runtime (Section 7.3)."""
        if not self.initialized:
            return 0
        return (self.LIB_RSS_BYTES
                + self.JIT_STATE_PER_KERNEL * self.kernels_compiled)

    def finish(self) -> None:
        """Drain the queue, flush caches, recycle job-binary regions."""
        self._require_init()
        for job_id in self._inflight_jobs:
            self.driver.ioctl(IoctlCode.JOB_WAIT, job_id=job_id)
        self._inflight_jobs.clear()
        self.driver.ioctl(IoctlCode.CACHE_FLUSH)
        for region in self._active_regions:
            region.in_use = False
            self._job_pool.setdefault(region.size, []).append(region)
        self._active_regions.clear()
