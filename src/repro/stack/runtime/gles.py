"""The GLES-compute-like runtime (third Mali-compatible API of Table 3).

GLES compute shaders compile through the GL shader front-end, which is
even slower per kernel than OpenCL; everything else is shared with the
base runtime.
"""

from __future__ import annotations

from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS, US


class GlesComputeRuntime(ComputeRuntime):
    """glCreateProgram / glDispatchCompute-like."""

    api_name = "gles-compute"
    LIB_LOAD_NS = 300 * MS
    MEM_INIT_NS = 100 * MS
    COMPILE_BASE_NS = 24 * MS
    COMPILE_PER_OP_NS = 8 * MS
    ENQUEUE_EMIT_NS = 40 * US
