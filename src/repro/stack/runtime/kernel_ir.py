"""The runtime's kernel intermediate representation.

An ML framework lowers each network layer into one or more
:class:`KernelIR` objects: small op lists over *symbolic* buffer slots.
The runtime JIT-compiles an IR once (expensive -- the startup
bottleneck the paper measures on Mali) and then, per enqueue, binds the
slots to concrete GPU buffers and emits position-dependent shader
bytecode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import CompileError
from repro.gpu.isa import Op
from repro.gpu.shader_exec import output_arity


@dataclass(frozen=True)
class KernelOp:
    """One IR op over symbolic buffer slot names."""

    op: Op
    inputs: Tuple[str, ...]
    output: str
    params: Tuple[float, ...] = ()
    #: Additional outputs beyond ``output`` (e.g. the loss scalar of
    #: SOFTMAX_XENT_GRAD).
    extra_outputs: Tuple[str, ...] = ()

    def all_outputs(self) -> Tuple[str, ...]:
        return (self.output,) + self.extra_outputs

    def operand_order(self) -> Tuple[str, ...]:
        """Slot names in ISA operand order (inputs, then outputs)."""
        return self.inputs + self.all_outputs()


@dataclass
class KernelIR:
    """A compilable kernel: ops plus the shapes of every slot."""

    name: str
    ops: List[KernelOp]
    shapes: Dict[str, Tuple[int, ...]]

    def validate(self) -> None:
        if not self.ops:
            raise CompileError(f"kernel {self.name}: empty op list")
        for op in self.ops:
            expected_outputs = output_arity(op.op)
            if len(op.all_outputs()) != expected_outputs:
                raise CompileError(
                    f"kernel {self.name}: {op.op.name} needs "
                    f"{expected_outputs} outputs, got "
                    f"{len(op.all_outputs())}")
            for slot in op.operand_order():
                if slot not in self.shapes:
                    raise CompileError(
                        f"kernel {self.name}: slot {slot!r} has no shape")

    def slot_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for op in self.ops:
            for slot in op.operand_order():
                seen.setdefault(slot)
        return list(seen)

    def external_inputs(self) -> List[str]:
        """Slots read before any op in this kernel writes them."""
        written: set = set()
        external: List[str] = []
        for op in self.ops:
            for slot in op.inputs:
                if slot not in written and slot not in external:
                    external.append(slot)
            written.update(op.all_outputs())
        return external

    def final_outputs(self) -> List[str]:
        """Slots written and never consumed afterwards inside the kernel."""
        outputs: List[str] = []
        all_written = []
        for op in self.ops:
            all_written.extend(op.all_outputs())
        consumed_after: Dict[str, bool] = {s: False for s in all_written}
        for i, op in enumerate(self.ops):
            for slot in op.all_outputs():
                for later in self.ops[i + 1:]:
                    if slot in later.inputs:
                        consumed_after[slot] = True
        for slot in all_written:
            if not consumed_after[slot] and slot not in outputs:
                outputs.append(slot)
        return outputs
