"""Job-binary emission: how runtimes lay jobs out in GPU memory.

Per GPU family, this builds the bytes the hardware will parse: a Mali
job-chain descriptor pointing at the shader blob, or a v3d control
list. The layout is position-dependent (descriptors embed absolute GPU
VAs), which is why recordings restore dumps at the exact recorded
virtual addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import RuntimeApiError
from repro.gpu import jobs as jobfmt
from repro.units import align_up

#: Shader blob alignment inside a job-binary region.
SHADER_ALIGN = 64


@dataclass(frozen=True)
class EmittedJob:
    """Where a job landed in GPU memory."""

    region_va: int
    chain_va: int
    #: Second ioctl argument: Mali affinity mask / v3d list end VA.
    submit_arg: int
    total_size: int


class JobEmitter:
    """Base class: lays out shader blobs plus launch structures."""

    def layout_size(self, shader_blobs: List[bytes]) -> int:
        raise NotImplementedError

    def emit(self, region_va: int,
             write: Callable[[int, bytes], None],
             shader_blobs: List[bytes],
             submit_arg: int) -> EmittedJob:
        raise NotImplementedError


class MaliJobEmitter(JobEmitter):
    """One job chain: descriptors first, shader blobs behind them."""

    def layout_size(self, shader_blobs: List[bytes]) -> int:
        size = len(shader_blobs) * align_up(jobfmt.MALI_JOB_DESC_SIZE,
                                            SHADER_ALIGN)
        for blob in shader_blobs:
            size += align_up(len(blob), SHADER_ALIGN)
        return size

    def emit(self, region_va: int, write, shader_blobs, submit_arg):
        if not shader_blobs:
            raise RuntimeApiError("cannot emit an empty job chain")
        desc_stride = align_up(jobfmt.MALI_JOB_DESC_SIZE, SHADER_ALIGN)
        shader_base = region_va + len(shader_blobs) * desc_stride
        # Place shaders, remembering their VAs.
        shader_vas: List[Tuple[int, int]] = []
        cursor = shader_base
        for blob in shader_blobs:
            write(cursor, blob)
            shader_vas.append((cursor, len(blob)))
            cursor += align_up(len(blob), SHADER_ALIGN)
        # Chain the descriptors.
        for i, (sva, ssize) in enumerate(shader_vas):
            next_va = region_va + (i + 1) * desc_stride \
                if i + 1 < len(shader_vas) else 0
            desc = jobfmt.MaliJobDescriptor(
                jobfmt.MALI_JOB_TYPE_COMPUTE, next_va, sva, ssize)
            write(region_va + i * desc_stride, jobfmt.encode_mali_job(desc))
        return EmittedJob(region_va, region_va, submit_arg,
                          cursor - region_va)


class V3dJobEmitter(JobEmitter):
    """A control list of EXEC packets followed by HALT; shaders behind."""

    _EXEC_SIZE = 13  # opcode + u64 + u32
    _HALT_SIZE = 1

    def layout_size(self, shader_blobs: List[bytes]) -> int:
        size = align_up(len(shader_blobs) * self._EXEC_SIZE
                        + self._HALT_SIZE, SHADER_ALIGN)
        for blob in shader_blobs:
            size += align_up(len(blob), SHADER_ALIGN)
        return size

    def emit(self, region_va: int, write, shader_blobs, submit_arg):
        if not shader_blobs:
            raise RuntimeApiError("cannot emit an empty control list")
        list_size = align_up(len(shader_blobs) * self._EXEC_SIZE
                             + self._HALT_SIZE, SHADER_ALIGN)
        shader_base = region_va + list_size
        shader_vas: List[Tuple[int, int]] = []
        cursor = shader_base
        for blob in shader_blobs:
            write(cursor, blob)
            shader_vas.append((cursor, len(blob)))
            cursor += align_up(len(blob), SHADER_ALIGN)
        packets = b"".join(jobfmt.encode_cl_exec(sva, ssize)
                           for sva, ssize in shader_vas)
        packets += jobfmt.encode_cl_halt()
        write(region_va, packets)
        end_va = region_va + len(packets)
        return EmittedJob(region_va, region_va, end_va, cursor - region_va)


class AdrenoJobEmitter(JobEmitter):
    """Adreno jobs are a bare shader blob; the *driver* appends the
    ring packet pointing at it (ring-buffer submission)."""

    def layout_size(self, shader_blobs: List[bytes]) -> int:
        return sum(align_up(len(blob), SHADER_ALIGN)
                   for blob in shader_blobs)

    def emit(self, region_va: int, write, shader_blobs, submit_arg):
        if len(shader_blobs) != 1:
            raise RuntimeApiError(
                "adreno submission takes one shader blob per packet")
        blob = shader_blobs[0]
        write(region_va, blob)
        # submit_arg carries the blob size to the driver's submit ioctl.
        return EmittedJob(region_va, region_va, len(blob),
                          align_up(len(blob), SHADER_ALIGN))


def emitter_for_family(family: str) -> JobEmitter:
    if family == "mali":
        return MaliJobEmitter()
    if family == "v3d":
        return V3dJobEmitter()
    if family == "adreno":
        return AdrenoJobEmitter()
    raise RuntimeApiError(f"no job emitter for GPU family {family!r}")
