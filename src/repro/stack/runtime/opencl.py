"""The OpenCL-like runtime (libmali-style).

Cost profile modelled on the paper's Mali observations: a very large
runtime binary (48 MB libmali.so) with slow library load and expensive
online shader compilation -- Figure 6 attributes Mali's seconds-scale
startup mostly to the runtime compiling shaders and allocating memory.
"""

from __future__ import annotations

from repro.stack.runtime.base import ComputeRuntime
from repro.units import MS, US


class OpenClRuntime(ComputeRuntime):
    """clCreateContext / clBuildProgram / clEnqueueNDRangeKernel-like."""

    api_name = "opencl"
    LIB_LOAD_NS = 350 * MS
    MEM_INIT_NS = 140 * MS
    COMPILE_BASE_NS = 18 * MS
    COMPILE_PER_OP_NS = 6 * MS
    ENQUEUE_EMIT_NS = 30 * US
    #: libmali.so is a 48 MB executable; mapped + its heap arenas.
    LIB_RSS_BYTES = 170 * 1024 * 1024
