"""The ``Machine``: composition root for one simulated board.

A machine owns the virtual clock, DRAM, the MMIO bus, the interrupt
controller, the firmware mailbox and exactly one integrated GPU device.
Record-time and replay-time runs use *different* machine instances
(different seeds), which is what exercises relocation and the
nondeterminism-tolerance machinery.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.errors import SocError
from repro.obs.flight import FlightRecorder
from repro.obs.session import NULL_OBS
from repro.soc.boards import BoardSpec, board_by_name
from repro.soc.clock import VirtualClock
from repro.soc.firmware import FirmwareMailbox
from repro.soc.irq import InterruptController
from repro.soc.memory import PAGE_SIZE, PageAllocator, PhysicalMemory
from repro.soc.mmio import MmioBus


@dataclass
class InterferenceProfile:
    """Run-time interference knobs (Section 7.2 validation).

    ``mem_contention`` scales GPU memory-bound work (co-running CPU
    programs generating memory traffic); ``thermal_throttle`` scales all
    GPU work (SoC thermal throttling from burned CPU cycles). 1.0 means
    no interference.
    """

    mem_contention: float = 1.0
    thermal_throttle: float = 1.0

    def validate(self) -> None:
        if self.mem_contention < 1.0 or self.thermal_throttle < 1.0:
            raise SocError("interference factors must be >= 1.0")


class Machine:
    """One simulated SoC board with an integrated GPU."""

    def __init__(self, board: BoardSpec, seed: int = 0,
                 flight_capacity: Optional[int] = None):
        self.board = board
        self.seed = seed
        self.clock = VirtualClock()
        self.rng = random.Random(seed)
        self.memory = PhysicalMemory(board.dram_bytes)
        self.gpu_allocator = PageAllocator(
            self.memory,
            base_pa=board.gpu_mem_base,
            page_count=board.gpu_mem_bytes // PAGE_SIZE,
            seed=seed ^ 0x5EED,
        )
        self.mmio = MmioBus()
        self.irq = InterruptController()
        self.firmware = FirmwareMailbox(self.clock)
        self.interference = InterferenceProfile()
        # Telemetry sink: a no-op by default; swapped for a live
        # session by repro.obs.enable_observability(machine). Obs only
        # ever *reads* the clock, so enabling it never changes
        # virtual-time results.
        self.obs = NULL_OBS
        # Flight recorder: always on, bounded, forensics-only. Unlike
        # obs it cannot be swapped out -- divergence localization
        # depends on the ring existing whenever a replay fails. The
        # capacity is configurable (serving pools trade ring depth
        # against per-worker footprint) but never unbounded.
        if flight_capacity is None:
            self.flight = FlightRecorder()
        else:
            self.flight = FlightRecorder(capacity=flight_capacity)
        self.gpu = None  # type: Optional[object]

    @classmethod
    def create(cls, board: "BoardSpec | str", seed: int = 0,
               flight_capacity: Optional[int] = None) -> "Machine":
        """Build a machine and mount the board's GPU device on it."""
        if isinstance(board, str):
            board = board_by_name(board)
        machine = cls(board, seed, flight_capacity=flight_capacity)
        # Imported lazily: repro.gpu depends on repro.soc.
        from repro.gpu import create_gpu

        machine.gpu = create_gpu(board.gpu_model, machine)
        return machine

    def attach_gpu(self, gpu: object) -> None:
        """Mount a GPU device (used by tests that build devices by hand)."""
        if self.gpu is not None:
            raise SocError("machine already has a GPU attached")
        self.gpu = gpu

    def require_gpu(self):
        if self.gpu is None:
            raise SocError("machine has no GPU attached")
        return self.gpu

    def now(self) -> int:
        """Shorthand for the machine's virtual time."""
        return self.clock.now()
