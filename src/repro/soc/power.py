"""Power domains for the simulated SoC.

Modern integrated GPUs sit behind SoC-level power and clock domains
(Section 6.3 of the paper): bringing the GPU up requires ordered rail
power-on with stabilization delays. The full driver performs that
sequence; the *baremetal* replayer must reproduce it itself, which is
why these transitions are modelled as first-class objects rather than
as a boolean.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import SocError
from repro.soc.clock import VirtualClock


class PowerDomain:
    """A power rail with on/off state and a stabilization delay."""

    def __init__(self, name: str, clock: VirtualClock, settle_ns: int):
        self.name = name
        self._clock = clock
        self.settle_ns = settle_ns
        self._on = False
        self._stable_at_ns = 0
        self.transitions = 0

    @property
    def is_on(self) -> bool:
        return self._on

    def is_stable(self) -> bool:
        """On and past its stabilization window."""
        return self._on and self._clock.now() >= self._stable_at_ns

    def power_on(self) -> None:
        if self._on:
            return
        self._on = True
        self._stable_at_ns = self._clock.now() + self.settle_ns
        self.transitions += 1

    def power_off(self) -> None:
        if not self._on:
            return
        self._on = False
        self.transitions += 1

    def require_stable(self) -> None:
        if not self.is_stable():
            raise SocError(
                f"power domain {self.name} used before stabilizing "
                f"(on={self._on})")


class PowerController:
    """Groups a device's power domains and enforces bring-up ordering."""

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self._domains: Dict[str, PowerDomain] = {}
        self._order: List[str] = []

    def add_domain(self, name: str, settle_ns: int) -> PowerDomain:
        if name in self._domains:
            raise SocError(f"power domain {name} already exists")
        domain = PowerDomain(name, self._clock, settle_ns)
        self._domains[name] = domain
        self._order.append(name)
        return domain

    def domain(self, name: str) -> PowerDomain:
        if name not in self._domains:
            raise SocError(f"unknown power domain {name}")
        return self._domains[name]

    def domains(self) -> List[PowerDomain]:
        return [self._domains[n] for n in self._order]

    def all_stable(self) -> bool:
        return all(d.is_stable() for d in self.domains())

    def power_on_in_order(self) -> None:
        """Bring every domain up in declaration order, waiting for each.

        This is the sequence the Linux driver performs; the recorder for
        the baremetal replayer extracts exactly these accesses.
        """
        for domain in self.domains():
            domain.power_on()
            settle = domain.settle_ns
            if settle:
                self._clock.advance(settle)
            domain.require_stable()

    def power_off_all(self) -> None:
        for domain in reversed(self.domains()):
            domain.power_off()
