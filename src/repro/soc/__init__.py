"""The simulated SoC substrate.

Provides the hardware environment the GPU stack and the replayer run on:
a discrete-event virtual clock, physical DRAM with a page allocator, an
MMIO bus with register files, an interrupt controller, power and clock
domains, a firmware mailbox, and board definitions composing them into a
:class:`~repro.soc.machine.Machine`.
"""

from repro.soc.boards import (
    BOARDS,
    BoardSpec,
    HIKEY960,
    ODROID_C4,
    ODROID_N2,
    RASPBERRY_PI4,
    board_by_name,
)
from repro.soc.clock import ClockDomain, VirtualClock
from repro.soc.irq import InterruptController
from repro.soc.machine import Machine
from repro.soc.memory import PAGE_SIZE, PageAllocator, PhysicalMemory
from repro.soc.mmio import MmioBus, RegAttr, RegisterDef, RegisterFile
from repro.soc.power import PowerDomain

__all__ = [
    "BOARDS",
    "BoardSpec",
    "ClockDomain",
    "HIKEY960",
    "InterruptController",
    "Machine",
    "MmioBus",
    "ODROID_C4",
    "ODROID_N2",
    "PAGE_SIZE",
    "PageAllocator",
    "PhysicalMemory",
    "PowerDomain",
    "RASPBERRY_PI4",
    "RegAttr",
    "RegisterDef",
    "RegisterFile",
    "board_by_name",
    "VirtualClock",
]
