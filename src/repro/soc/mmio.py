"""Memory-mapped I/O: register definitions, register files, the MMIO bus.

This is the narrow CPU/GPU interface the whole paper hinges on: the GPU
exposes a register file at an MMIO base; the driver (and later the nano
driver of the replayer) talks to the GPU exclusively through reads and
writes here, plus shared memory and interrupts.

Register attributes classify which accesses are *state-changing events*
(Section 3.2): VOLATILE reads return nondeterministic values and are
not state-changing; READ_SIDE_EFFECT reads are always state-changing;
writes are always state-changing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MmioError

U32_MASK = 0xFFFFFFFF


class RegAttr(enum.Flag):
    """Behavioural attributes of a register."""

    NONE = 0
    READABLE = enum.auto()
    WRITABLE = enum.auto()
    #: Reads return values that may differ run to run (e.g. cycle
    #: counters, temperature). Not state-changing; the recorder marks
    #: such reads as ignorable.
    VOLATILE = enum.auto()
    #: Reading mutates GPU state (e.g. read-to-clear status). Always a
    #: state-changing event.
    READ_SIDE_EFFECT = enum.auto()
    #: Writing triggers an operation (job start, reset, cache flush).
    WRITE_TRIGGER = enum.auto()

    @classmethod
    def rw(cls) -> "RegAttr":
        return cls.READABLE | cls.WRITABLE

    @classmethod
    def ro(cls) -> "RegAttr":
        return cls.READABLE

    @classmethod
    def wo(cls) -> "RegAttr":
        return cls.WRITABLE


@dataclass(frozen=True)
class RegisterDef:
    """Static definition of one 32-bit register."""

    name: str
    offset: int
    attrs: RegAttr = field(default_factory=RegAttr.rw)
    reset: int = 0
    doc: str = ""


class RegisterFile:
    """A device's register block: values, handlers, and access hooks.

    Devices attach per-register read/write handlers to implement
    behaviour (starting jobs, acknowledging interrupts). External
    observers (the recorder) attach access hooks that see every read
    and write without perturbing them.
    """

    def __init__(self, defs: List[RegisterDef]):
        self._by_name: Dict[str, RegisterDef] = {}
        self._by_offset: Dict[int, RegisterDef] = {}
        for d in defs:
            if d.name in self._by_name:
                raise MmioError(f"duplicate register name {d.name}")
            if d.offset in self._by_offset:
                raise MmioError(f"duplicate register offset {d.offset:#x}")
            if d.offset % 4 != 0:
                raise MmioError(f"register {d.name} offset not word-aligned")
            self._by_name[d.name] = d
            self._by_offset[d.offset] = d
        self._values: Dict[str, int] = {d.name: d.reset for d in defs}
        self._write_handlers: Dict[str, Callable[[int, int], None]] = {}
        self._read_handlers: Dict[str, Callable[[int], int]] = {}
        self._access_hooks: List[Callable[[str, str, int], None]] = []
        self._gate: Optional[Callable[[], bool]] = None

    # -- definitions -------------------------------------------------------

    def defs(self) -> List[RegisterDef]:
        return sorted(self._by_name.values(), key=lambda d: d.offset)

    def lookup(self, name: str) -> RegisterDef:
        d = self._by_name.get(name)
        if d is None:
            raise MmioError(f"unknown register {name!r}")
        return d

    def lookup_offset(self, offset: int) -> RegisterDef:
        d = self._by_offset.get(offset)
        if d is None:
            raise MmioError(f"no register at offset {offset:#x}")
        return d

    def has(self, name: str) -> bool:
        return name in self._by_name

    def name_to_offset(self, name: str) -> int:
        return self.lookup(name).offset

    def span(self) -> int:
        """Size in bytes of the register block."""
        return max(self._by_offset) + 4 if self._by_offset else 0

    # -- device-side plumbing ----------------------------------------------

    def set_write_handler(self, name: str,
                          handler: Callable[[int, int], None]) -> None:
        """Handler receives (old_value, new_value) after the store."""
        self.lookup(name)
        self._write_handlers[name] = handler

    def set_read_handler(self, name: str,
                         handler: Callable[[int], int]) -> None:
        """Handler receives the stored value, returns what the read sees."""
        self.lookup(name)
        self._read_handlers[name] = handler

    def set_gate(self, gate: Optional[Callable[[], bool]]) -> None:
        """Install a power gate: while it returns False the block is dead
        (reads yield 0xFFFFFFFF, writes are dropped), like real MMIO to
        an unpowered peripheral."""
        self._gate = gate

    def add_access_hook(self, hook: Callable[[str, str, int], None]) -> None:
        """Observe accesses as ``hook(kind, name, value)``; kind: 'r'/'w'."""
        self._access_hooks.append(hook)

    def remove_access_hook(self, hook: Callable[[str, str, int], None]) -> None:
        self._access_hooks.remove(hook)

    # -- internal state (no hooks, no handlers) ------------------------------

    def peek(self, name: str) -> int:
        self.lookup(name)
        return self._values[name]

    def poke(self, name: str, value: int) -> None:
        self.lookup(name)
        self._values[name] = value & U32_MASK

    def snapshot(self) -> Dict[str, int]:
        """Copy of all register values (for checkpointing)."""
        return dict(self._values)

    def restore(self, values: Dict[str, int]) -> None:
        for name, value in values.items():
            self.poke(name, value)

    # -- bus-facing access ----------------------------------------------------

    def read(self, name: str) -> int:
        d = self.lookup(name)
        if RegAttr.READABLE not in d.attrs:
            raise MmioError(f"register {name} is not readable")
        if self._gate is not None and not self._gate():
            value = U32_MASK
            for hook in self._access_hooks:
                hook("r", name, value)
            return value
        value = self._values[name]
        handler = self._read_handlers.get(name)
        if handler is not None:
            value = handler(value) & U32_MASK
        for hook in self._access_hooks:
            hook("r", name, value)
        return value

    def write(self, name: str, value: int) -> None:
        d = self.lookup(name)
        if RegAttr.WRITABLE not in d.attrs:
            raise MmioError(f"register {name} is not writable")
        value &= U32_MASK
        if self._gate is not None and not self._gate():
            for hook in self._access_hooks:
                hook("w", name, value)
            return
        old = self._values[name]
        self._values[name] = value
        for hook in self._access_hooks:
            hook("w", name, value)
        handler = self._write_handlers.get(name)
        if handler is not None:
            handler(old, value)

    def read_offset(self, offset: int) -> int:
        return self.read(self.lookup_offset(offset).name)

    def write_offset(self, offset: int, value: int) -> None:
        self.write(self.lookup_offset(offset).name, value)


class MmioBus:
    """Routes physical MMIO addresses to mapped register files."""

    def __init__(self) -> None:
        self._mappings: List[Tuple[int, int, RegisterFile]] = []

    def map(self, base: int, regfile: RegisterFile) -> None:
        size = regfile.span()
        for other_base, other_size, _ in self._mappings:
            if base < other_base + other_size and other_base < base + size:
                raise MmioError(
                    f"MMIO mapping at {base:#x} overlaps existing mapping")
        self._mappings.append((base, size, regfile))

    def resolve(self, addr: int) -> Tuple[RegisterFile, int]:
        for base, size, regfile in self._mappings:
            if base <= addr < base + size:
                return regfile, addr - base
        raise MmioError(f"no MMIO mapping at address {addr:#x}")

    def read(self, addr: int) -> int:
        regfile, offset = self.resolve(addr)
        return regfile.read_offset(offset)

    def write(self, addr: int, value: int) -> None:
        regfile, offset = self.resolve(addr)
        regfile.write_offset(offset, value)

    def base_of(self, regfile: RegisterFile) -> Optional[int]:
        for base, _, rf in self._mappings:
            if rf is regfile:
                return base
        return None
