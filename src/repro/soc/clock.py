"""Virtual time: a discrete-event clock and clock domains.

Every delay in the simulation -- GPU job execution, driver polling
loops, JIT compilation, world switches -- is expressed as virtual
nanoseconds on a single :class:`VirtualClock`. The clock doubles as a
tiny discrete-event engine: devices schedule future events (e.g. "job
completes in 3 ms, then raise the job IRQ") and the events fire when
CPU-side code advances time past them.

Determinism: with a fixed machine seed, the same program produces the
same event order and the same final virtual time on every run, which is
what makes the benchmark suite reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import SocError


@dataclass(order=True)
class _Event:
    due_ns: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    tag: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Opaque handle returned by :meth:`VirtualClock.schedule`."""

    def __init__(self, event: _Event):
        self._event = event

    @property
    def due_ns(self) -> int:
        return self._event.due_ns

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class VirtualClock:
    """Monotonic virtual-time source with a pending-event queue.

    ``advance(delta)`` moves time forward, firing any scheduled events
    whose due time falls inside the advanced window. Event callbacks run
    with ``now()`` set to their due time, so a callback that schedules
    further events keeps causality intact.
    """

    def __init__(self) -> None:
        self._now_ns = 0
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        self._draining = False

    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    def schedule(self, delay_ns: int, callback: Callable[[], None],
                 tag: str = "") -> EventHandle:
        """Schedule ``callback`` to fire ``delay_ns`` from now."""
        if delay_ns < 0:
            raise SocError(f"cannot schedule event in the past ({delay_ns} ns)")
        event = _Event(self._now_ns + delay_ns, next(self._seq), callback, tag)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def advance(self, delta_ns: int) -> None:
        """Advance virtual time by ``delta_ns``, firing due events."""
        if delta_ns < 0:
            raise SocError(f"cannot advance time backwards ({delta_ns} ns)")
        self._advance_to(self._now_ns + delta_ns)

    def sleep(self, delta_ns: int) -> None:
        """Alias of :meth:`advance`; reads naturally in CPU-side code."""
        self.advance(delta_ns)

    def drain_due(self) -> None:
        """Fire events due at the current instant without moving time."""
        self._advance_to(self._now_ns)

    def next_event_ns(self) -> Optional[int]:
        """Due time of the earliest pending event, or None."""
        self._discard_cancelled()
        if not self._heap:
            return None
        return self._heap[0].due_ns

    def advance_to_next_event(self, limit_ns: Optional[int] = None) -> bool:
        """Jump to the next pending event (bounded by ``limit_ns``).

        Returns True if an event was reached and fired, False if there
        was no event inside the bound (time advances to the bound).
        """
        due = self.next_event_ns()
        if due is None or (limit_ns is not None and due > limit_ns):
            if limit_ns is not None and limit_ns > self._now_ns:
                self._advance_to(limit_ns)
            return False
        self._advance_to(due)
        return True

    def pending_count(self) -> int:
        self._discard_cancelled()
        return len(self._heap)

    # -- internals ---------------------------------------------------------

    def _discard_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def _advance_to(self, target_ns: int) -> None:
        if self._draining:
            # An event callback advanced the clock; just move time, the
            # outer drain loop keeps firing newly-due events.
            if target_ns > self._now_ns:
                self._now_ns = target_ns
            return
        heap = self._heap
        if not heap or (heap[0].due_ns > target_ns
                        and not heap[0].cancelled):
            # Nothing due inside the window -- the overwhelmingly
            # common case for small CPU-side advances.
            if target_ns > self._now_ns:
                self._now_ns = target_ns
            return
        self._draining = True
        try:
            while True:
                self._discard_cancelled()
                if not self._heap or self._heap[0].due_ns > target_ns:
                    break
                event = heapq.heappop(self._heap)
                if event.due_ns > self._now_ns:
                    self._now_ns = event.due_ns
                event.callback()
                # Callbacks may push time forward; never move backwards.
                if self._now_ns > target_ns:
                    target_ns = self._now_ns
            if target_ns > self._now_ns:
                self._now_ns = target_ns
        finally:
            self._draining = False


class ClockDomain:
    """A named clock domain with a programmable rate.

    GPU cost models convert work (cycles) to virtual time through the
    domain's current rate, so underclocking the GPU genuinely slows the
    simulated jobs down -- which is how the paper's "underclocked GPU
    fails to keep up with replay actions" failure mode is reproduced.
    """

    def __init__(self, name: str, rate_hz: int, clock: VirtualClock,
                 stabilize_ns: int = 0):
        if rate_hz <= 0:
            raise SocError(f"clock domain {name}: rate must be positive")
        self.name = name
        self._rate_hz = rate_hz
        self._clock = clock
        self._stabilize_ns = stabilize_ns
        self._stable_at_ns = 0
        self.enabled = True

    @property
    def rate_hz(self) -> int:
        return self._rate_hz

    def set_rate(self, rate_hz: int) -> None:
        """Change the domain rate; the domain needs time to re-stabilize."""
        if rate_hz <= 0:
            raise SocError(f"clock domain {self.name}: rate must be positive")
        self._rate_hz = rate_hz
        self._stable_at_ns = self._clock.now() + self._stabilize_ns

    def is_stable(self) -> bool:
        return self._clock.now() >= self._stable_at_ns

    def cycles_to_ns(self, cycles: float) -> int:
        """Convert a cycle count at the current rate to nanoseconds."""
        if not self.enabled:
            raise SocError(f"clock domain {self.name} is gated off")
        return max(1, int(cycles * 1_000_000_000 / self._rate_hz))


def poll_until(clock: VirtualClock, predicate: Callable[[], bool],
               step_ns: int, timeout_ns: int) -> Tuple[bool, int]:
    """Poll ``predicate`` on the virtual clock, advancing ``step_ns`` per try.

    Models a driver polling loop (``wait_for`` macros). Returns
    ``(success, polls)`` where ``polls`` counts predicate evaluations --
    the nondeterministic quantity the recorder summarizes away.
    """
    deadline = clock.now() + timeout_ns
    polls = 1
    if predicate():
        return True, polls
    while clock.now() < deadline:
        remaining = deadline - clock.now()
        clock.advance(min(step_ns, remaining))
        polls += 1
        if predicate():
            return True, polls
    return False, polls
