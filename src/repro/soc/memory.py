"""Simulated physical DRAM and a page allocator.

The DRAM is shared between CPU and the integrated GPU exactly as on the
paper's SoCs ("GPU memory" is a region of shared DRAM). Storage is
sparse: only touched pages are materialized, so a board can advertise
gigabytes of DRAM while tests stay cheap.

The :class:`PageAllocator` hands out *non-contiguous* physical pages in
a seed-dependent order. This is deliberate: record-time and replay-time
machines get different physical layouts, which forces the replayer's
page-table relocation path (Section 5.2) to actually work rather than
accidentally relying on identical addresses.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Iterable, List, Optional

from repro.errors import AllocationError, PhysicalMemoryError

PAGE_SIZE = 4096


class PhysicalMemory:
    """Byte-addressable sparse physical memory."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0 or size_bytes % PAGE_SIZE != 0:
            raise PhysicalMemoryError(
                f"memory size must be a positive multiple of {PAGE_SIZE}")
        self.size = size_bytes
        self._pages: Dict[int, bytearray] = {}
        #: Optional observer of physical writes: ``fn(pa, length)``,
        #: called before the bytes land. The GPU MMU subscribes so it
        #: can shoot down TLB entries when page-table pages change
        #: (see :attr:`repro.gpu.mmu.GpuMmu.coherent_tlb`).
        self.write_hook = None

    # -- raw access --------------------------------------------------------

    def read(self, pa: int, length: int) -> bytes:
        """Read ``length`` bytes at physical address ``pa``."""
        page_index, page_offset = divmod(pa, PAGE_SIZE)
        if page_offset + length <= PAGE_SIZE:
            # Single-page read: the unit every MMU-mediated bulk access
            # decomposes into, worth keeping allocation-free and loopless.
            if pa < 0 or length < 0 or pa + length > self.size:
                self._check_range(pa, length)
            page = self._pages.get(page_index)
            if page is None:
                return bytes(length)
            return bytes(page[page_offset:page_offset + length])
        self._check_range(pa, length)
        out = bytearray(length)
        offset = 0
        while offset < length:
            page_index, page_offset = divmod(pa + offset, PAGE_SIZE)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is not None:
                out[offset:offset + chunk] = page[page_offset:page_offset + chunk]
            offset += chunk
        return bytes(out)

    def write(self, pa: int, data: bytes) -> None:
        """Write ``data`` at physical address ``pa``."""
        self._check_range(pa, len(data))
        if self.write_hook is not None:
            self.write_hook(pa, len(data))
        offset = 0
        length = len(data)
        while offset < length:
            page_index, page_offset = divmod(pa + offset, PAGE_SIZE)
            chunk = min(length - offset, PAGE_SIZE - page_offset)
            page = self._pages.get(page_index)
            if page is None:
                page = bytearray(PAGE_SIZE)
                self._pages[page_index] = page
            page[page_offset:page_offset + chunk] = data[offset:offset + chunk]
            offset += chunk

    def fill(self, pa: int, length: int, value: int = 0) -> None:
        """Fill a range with a byte value (used for page scrubbing)."""
        self.write(pa, bytes([value]) * length)

    # -- word access -------------------------------------------------------

    def read_u32(self, pa: int) -> int:
        return struct.unpack("<I", self.read(pa, 4))[0]

    def write_u32(self, pa: int, value: int) -> None:
        self.write(pa, struct.pack("<I", value & 0xFFFFFFFF))

    def read_u64(self, pa: int) -> int:
        return struct.unpack("<Q", self.read(pa, 8))[0]

    def write_u64(self, pa: int, value: int) -> None:
        self.write(pa, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    # -- introspection -----------------------------------------------------

    def touched_pages(self) -> int:
        """Number of pages actually materialized."""
        return len(self._pages)

    def page_is_zero(self, pa: int) -> bool:
        """True if the page containing ``pa`` holds only zero bytes."""
        page = self._pages.get(pa // PAGE_SIZE)
        return page is None or not any(page)

    def _check_range(self, pa: int, length: int) -> None:
        if pa < 0 or length < 0 or pa + length > self.size:
            raise PhysicalMemoryError(
                f"access [{pa:#x}, {pa + length:#x}) outside memory of "
                f"size {self.size:#x}")


class PageAllocator:
    """Allocates physical pages from a region of :class:`PhysicalMemory`.

    The free list is shuffled once at construction using ``seed`` so
    that two machines (record vs replay) produce different physical
    layouts for the same allocation sequence.
    """

    def __init__(self, memory: PhysicalMemory, base_pa: int,
                 page_count: int, seed: int = 0):
        if base_pa % PAGE_SIZE != 0:
            raise AllocationError("allocator base must be page-aligned")
        if base_pa + page_count * PAGE_SIZE > memory.size:
            raise AllocationError("allocator region exceeds physical memory")
        self.memory = memory
        self.base_pa = base_pa
        self.page_count = page_count
        free = [base_pa + i * PAGE_SIZE for i in range(page_count)]
        random.Random(seed).shuffle(free)
        self._free: List[int] = free
        self._used: Dict[int, str] = {}

    # -- allocation --------------------------------------------------------

    def alloc_page(self, tag: str = "") -> int:
        """Allocate one page; returns its physical address."""
        if not self._free:
            raise AllocationError("out of physical pages")
        pa = self._free.pop()
        self._used[pa] = tag
        self.memory.fill(pa, PAGE_SIZE, 0)
        return pa

    def alloc_pages(self, count: int, tag: str = "") -> List[int]:
        """Allocate ``count`` pages (not necessarily contiguous)."""
        if count < 0:
            raise AllocationError(f"cannot allocate {count} pages")
        if count > len(self._free):
            raise AllocationError(
                f"out of physical pages ({count} requested, "
                f"{len(self._free)} free)")
        return [self.alloc_page(tag) for _ in range(count)]

    def free_page(self, pa: int) -> None:
        if pa not in self._used:
            raise AllocationError(f"double free of page {pa:#x}")
        del self._used[pa]
        self._free.append(pa)

    def free_pages(self, pas: Iterable[int]) -> None:
        for pa in list(pas):
            self.free_page(pa)

    # -- accounting --------------------------------------------------------

    @property
    def pages_in_use(self) -> int:
        return len(self._used)

    @property
    def pages_free(self) -> int:
        return len(self._free)

    def usage_by_tag(self) -> Dict[str, int]:
        """Pages in use, grouped by allocation tag."""
        out: Dict[str, int] = {}
        for tag in self._used.values():
            out[tag] = out.get(tag, 0) + 1
        return out

    def owner_of(self, pa: int) -> Optional[str]:
        return self._used.get(pa)
