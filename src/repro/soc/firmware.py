"""SoC firmware mailbox (Raspberry-Pi-style property interface).

On boards like the Pi 4, some power/clock configuration is not done via
MMIO but by messaging the SoC firmware through a mailbox. The Linux
driver uses it transparently; the baremetal replayer must reproduce the
same calls, so the mailbox logs every request -- that log is what the
"instrument the kernel, extract the register/firmware access" step of
Section 6.3 extracts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import FirmwareError
from repro.soc.clock import VirtualClock
from repro.units import US

# Property tags, mirroring the RPi mailbox property interface.
TAG_SET_POWER = 0x28001
TAG_GET_POWER = 0x20001
TAG_SET_CLOCK_RATE = 0x38002
TAG_GET_CLOCK_RATE = 0x30002

#: Round-trip cost of one mailbox transaction (virtual time).
MAILBOX_CALL_NS = 50 * US


@dataclass(frozen=True)
class MailboxCall:
    """One logged firmware transaction."""

    tag: int
    device_id: int
    value: int


class FirmwareMailbox:
    """Firmware property mailbox with power and clock services."""

    def __init__(self, clock: VirtualClock):
        self._clock = clock
        self._power: Dict[int, bool] = {}
        self._clocks: Dict[int, int] = {}
        self.call_log: List[MailboxCall] = []

    def define_device(self, device_id: int, default_clock_hz: int) -> None:
        self._power[device_id] = False
        self._clocks[device_id] = default_clock_hz

    def request(self, tag: int, device_id: int, value: int = 0) -> int:
        """Issue one property request; returns the response value."""
        if device_id not in self._power:
            raise FirmwareError(f"unknown firmware device id {device_id}")
        self._clock.advance(MAILBOX_CALL_NS)
        self.call_log.append(MailboxCall(tag, device_id, value))
        if tag == TAG_SET_POWER:
            self._power[device_id] = bool(value & 1)
            return value & 1
        if tag == TAG_GET_POWER:
            return int(self._power[device_id])
        if tag == TAG_SET_CLOCK_RATE:
            if value <= 0:
                raise FirmwareError("clock rate must be positive")
            self._clocks[device_id] = value
            return value
        if tag == TAG_GET_CLOCK_RATE:
            return self._clocks[device_id]
        raise FirmwareError(f"unknown mailbox tag {tag:#x}")

    def is_powered(self, device_id: int) -> bool:
        return self._power.get(device_id, False)

    def clock_rate(self, device_id: int) -> int:
        if device_id not in self._clocks:
            raise FirmwareError(f"unknown firmware device id {device_id}")
        return self._clocks[device_id]

    def extract_sequence(self) -> List[Tuple[int, int, int]]:
        """The recorded call sequence as plain tuples (for extraction)."""
        return [(c.tag, c.device_id, c.value) for c in self.call_log]
