"""Board definitions mirroring the paper's evaluation hardware.

Each :class:`BoardSpec` fixes the DRAM size, the GPU model mounted on
the SoC, the GPU's MMIO base and IRQ line, and the physical region
reserved as GPU-visible memory. The four boards are the ones Table 3
lists: Hikey960 (Mali G71), Odroid N2 (Mali G52), Odroid C4 (Mali G31)
and Raspberry Pi 4 (Broadcom v3d).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import GIB, MIB


@dataclass(frozen=True)
class BoardSpec:
    """Static description of an evaluation board."""

    name: str
    soc: str
    dram_bytes: int
    gpu_model: str
    gpu_mmio_base: int
    gpu_irq: int
    #: Physical window handed to the GPU page allocator.
    gpu_mem_base: int
    gpu_mem_bytes: int
    #: True when GPU power/clocks are configured through the firmware
    #: mailbox (Pi-style) rather than direct SoC registers.
    firmware_managed_power: bool = False


HIKEY960 = BoardSpec(
    name="hikey960",
    soc="kirin960",
    dram_bytes=3 * GIB,
    gpu_model="mali-g71",
    gpu_mmio_base=0xE82C_0000,
    gpu_irq=33,
    gpu_mem_base=0x2000_0000,
    gpu_mem_bytes=2 * GIB,
)

ODROID_N2 = BoardSpec(
    name="odroid-n2",
    soc="amlogic-s922x",
    dram_bytes=4 * GIB,
    gpu_model="mali-g52",
    gpu_mmio_base=0xFFE4_0000,
    gpu_irq=80,
    gpu_mem_base=0x2000_0000,
    gpu_mem_bytes=2 * GIB,
)

ODROID_C4 = BoardSpec(
    name="odroid-c4",
    soc="amlogic-s905x3",
    dram_bytes=4 * GIB,
    gpu_model="mali-g31",
    gpu_mmio_base=0xFFE4_0000,
    gpu_irq=80,
    gpu_mem_base=0x2000_0000,
    gpu_mem_bytes=2 * GIB,
)

RASPBERRY_PI4 = BoardSpec(
    name="raspberrypi4",
    soc="bcm2711",
    dram_bytes=4 * GIB,
    gpu_model="v3d",
    gpu_mmio_base=0xFEC0_0000,
    gpu_irq=74,
    gpu_mem_base=0x1000_0000,
    gpu_mem_bytes=1 * GIB + 512 * MIB,
    firmware_managed_power=True,
)

PIXEL4 = BoardSpec(
    name="pixel4",
    soc="sm8150",
    dram_bytes=6 * GIB,
    gpu_model="adreno-640",
    gpu_mmio_base=0x0500_0000,
    gpu_irq=300,
    gpu_mem_base=0x8000_0000,
    gpu_mem_bytes=2 * GIB,
)

BOARDS = {
    spec.name: spec
    for spec in (HIKEY960, ODROID_N2, ODROID_C4, RASPBERRY_PI4, PIXEL4)
}


def board_by_name(name: str) -> BoardSpec:
    """Look up a board spec; raises KeyError with the known names."""
    try:
        return BOARDS[name]
    except KeyError:
        known = ", ".join(sorted(BOARDS))
        raise KeyError(f"unknown board {name!r}; known boards: {known}")
