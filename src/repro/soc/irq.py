"""Interrupt controller for the simulated SoC.

Devices raise interrupt lines; the controller dispatches to the handler
installed by whatever software owns the line (the full driver, or the
replayer's nano driver). Masking allows environments to suspend
delivery (e.g. while the TEE owns the GPU, the normal world's handler
is masked out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.errors import SocError

IrqHandler = Callable[[int], None]


@dataclass
class IrqLine:
    number: int
    name: str


class InterruptController:
    """A flat interrupt controller with per-line handlers and masking."""

    def __init__(self) -> None:
        self._lines: Dict[int, IrqLine] = {}
        self._handlers: Dict[int, IrqHandler] = {}
        self._masked: Set[int] = set()
        self._pending: Set[int] = set()
        self._delivery_hooks: List[Callable[[int, str], None]] = []

    def register_line(self, number: int, name: str) -> IrqLine:
        if number in self._lines:
            raise SocError(f"IRQ line {number} already registered")
        line = IrqLine(number, name)
        self._lines[number] = line
        return line

    def line(self, number: int) -> IrqLine:
        if number not in self._lines:
            raise SocError(f"unknown IRQ line {number}")
        return self._lines[number]

    # -- software side -------------------------------------------------------

    def connect(self, number: int, handler: Optional[IrqHandler]) -> None:
        """Install (or remove, with None) the handler for a line."""
        self.line(number)
        if handler is None:
            self._handlers.pop(number, None)
        else:
            self._handlers[number] = handler

    def set_masked(self, number: int, masked: bool) -> None:
        self.line(number)
        if masked:
            self._masked.add(number)
        else:
            self._masked.discard(number)
            # Deliver anything that arrived while masked.
            if number in self._pending:
                self._dispatch(number)

    def is_masked(self, number: int) -> bool:
        return number in self._masked

    def is_pending(self, number: int) -> bool:
        return number in self._pending

    def ack(self, number: int) -> None:
        """Acknowledge a pending interrupt (clears the pending bit)."""
        self._pending.discard(number)

    def add_delivery_hook(self, hook: Callable[[int, str], None]) -> None:
        """Observe deliveries as ``hook(line, phase)``; phase: enter/exit."""
        self._delivery_hooks.append(hook)

    def remove_delivery_hook(self, hook: Callable[[int, str], None]) -> None:
        self._delivery_hooks.remove(hook)

    # -- device side ---------------------------------------------------------

    def raise_irq(self, number: int) -> None:
        """Assert a line. Dispatches synchronously unless masked."""
        self.line(number)
        self._pending.add(number)
        if number not in self._masked:
            self._dispatch(number)

    def _dispatch(self, number: int) -> None:
        handler = self._handlers.get(number)
        if handler is None:
            return  # Level-triggered: stays pending until someone connects.
        for hook in self._delivery_hooks:
            hook(number, "enter")
        try:
            handler(number)
        finally:
            for hook in self._delivery_hooks:
                hook(number, "exit")
