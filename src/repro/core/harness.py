"""The developer-facing record harness (Section 3.1, Section 4.4).

Drives a fully-configured framework workload with magic input on the
full GPU stack, records it at the chosen granularity, discovers the
input/output GPU addresses by taint, and packages everything into a
:class:`RecordedWorkload` ready for the replayer.

Ambiguous taint matches are resolved by re-running with different
magic and intersecting the match sets; the recordings shipped are
always from the final run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.recorder import (GpuRecorder, RecorderOptions,
                                 make_recorder)
from repro.core.recording import IoBuffer, Recording
from repro.core.taint import make_magic_input, resolve_unique, scan_regions
from repro.errors import RecordingError, TaintError
from repro.stack.framework.base import NetworkRunner
from repro.stack.framework.deepcl import DeepClTrainer

GRANULARITIES = ("monolithic", "layer")


@dataclass
class RecordedWorkload:
    """Recordings plus everything an app needs to replay them."""

    workload: str
    granularity: str
    recordings: List[Recording]
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]
    #: Diagnostics from the final record run.
    record_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def recording(self) -> Recording:
        """The single recording of a monolithic workload."""
        if len(self.recordings) != 1:
            raise RecordingError(
                f"workload has {len(self.recordings)} recordings; "
                "use .recordings")
        return self.recordings[0]

    def total_jobs(self) -> int:
        return sum(r.meta.n_jobs for r in self.recordings)

    def total_zipped_bytes(self) -> int:
        return sum(r.size_zipped() for r in self.recordings)

    def total_unzipped_bytes(self) -> int:
        return sum(r.size_unzipped() for r in self.recordings)


def _weight_ranges(runner: NetworkRunner) -> List[Tuple[int, int]]:
    """GPU ranges of NN parameters -- the record-by-value annotations."""
    return [(buf.va, buf.nbytes) for name, buf in runner.buffers.items()
            if name.endswith(".w") or name.endswith(".b")]


def _annotate_frameworks(recording: Recording,
                         runner: NetworkRunner) -> None:
    recording.meta.api = runner.runtime.api_name
    recording.meta.framework = runner.framework_name


def record_inference(runner: NetworkRunner,
                     granularity: str = "monolithic",
                     options: Optional[RecorderOptions] = None,
                     magic_seed: int = 1,
                     max_taint_runs: int = 3) -> RecordedWorkload:
    """Record one NN inference from a configured runner.

    ``granularity="layer"`` cuts a recording at every layer boundary
    (whether those layers are fused is the runner's ``fuse`` flag, so
    "per fused layer" is ``fuse=True`` + ``granularity="layer"``).
    """
    if granularity not in GRANULARITIES:
        raise RecordingError(f"unknown granularity {granularity!r}")
    driver = runner.runtime.driver
    model = runner.model

    input_match_sets: List[List[int]] = []
    output_match_sets: List[List[int]] = []
    recordings: List[Recording] = []
    recorder: Optional[GpuRecorder] = None
    output: Optional[np.ndarray] = None

    for attempt in range(max_taint_runs):
        recorder = make_recorder(driver, options)
        recorder.annotate_by_value(_weight_ranges(runner))
        magic = make_magic_input(model.input_shape, magic_seed + attempt)
        recorder.begin(model.name)
        if granularity == "layer":
            last = len(runner.lowered) - 1
            output = runner.run(
                magic,
                layer_hook=lambda i, _g: recorder.cut() if i < last
                else None)
        else:
            output = runner.run(magic)
        recordings = recorder.end()

        input_match_sets.append(scan_regions(
            recorder.first_kick_snapshot, magic.tobytes()))
        output_match_sets.append(scan_regions(
            recorder._snapshot_data_regions(), output.tobytes()))
        try:
            input_addr = resolve_unique(input_match_sets, "input")
            output_addr = resolve_unique(output_match_sets, "output")
            break
        except TaintError:
            if attempt == max_taint_runs - 1:
                raise
    else:  # pragma: no cover - loop always breaks or raises
        raise TaintError("taint discovery failed")

    in_size = int(np.prod(model.input_shape)) * 4
    recordings[0].meta.inputs = [
        IoBuffer("input", input_addr, in_size, tuple(model.input_shape))]
    recordings[-1].meta.outputs = [
        IoBuffer("output", output_addr, output.nbytes,
                 tuple(output.shape))]
    for recording in recordings:
        _annotate_frameworks(recording, runner)

    return RecordedWorkload(
        workload=model.name,
        granularity=granularity,
        recordings=recordings,
        input_shape=tuple(model.input_shape),
        output_shape=tuple(output.shape),
        record_stats={
            "taint_runs": len(input_match_sets),
            "skippable_intervals": sum(
                1 for s in recorder.interval_samples if s.skippable),
            "total_intervals": len(recorder.interval_samples),
        },
    )


def record_kernel_workload(runtime, ir, name: str,
                           options: Optional[RecorderOptions] = None,
                           magic_seed: int = 1,
                           max_taint_runs: int = 3) -> RecordedWorkload:
    """Record a raw math-kernel workload (no ML framework).

    ``ir`` is a :class:`~repro.stack.runtime.kernel_ir.KernelIR`; its
    external input slots become the recording's inputs, its final
    output slots the outputs. This is the "Math" workload class of
    Table 3 (vecadd, etc.), also used by the Figure 9 cross-GPU
    experiment.
    """
    driver = runtime.driver
    kernel = runtime.compile_kernel(ir)
    buffers = {slot: runtime.create_buffer(shape, tag=slot)
               for slot, shape in ir.shapes.items()}
    in_slots = ir.external_inputs()
    out_slots = ir.final_outputs()

    in_sets: Dict[str, List[List[int]]] = {s: [] for s in in_slots}
    out_sets: Dict[str, List[List[int]]] = {s: [] for s in out_slots}
    recordings: List[Recording] = []

    for attempt in range(max_taint_runs):
        recorder = make_recorder(driver, options)
        magics = {
            slot: make_magic_input(ir.shapes[slot],
                                   magic_seed + attempt * 17 + i)
            for i, slot in enumerate(in_slots)
        }
        for slot, magic in magics.items():
            runtime.write_buffer(buffers[slot], magic)
        recorder.begin(name)
        runtime.enqueue(kernel, buffers)
        runtime.finish()
        recordings = recorder.end()

        snapshot = recorder.first_kick_snapshot
        live = recorder._snapshot_data_regions()
        for slot in in_slots:
            in_sets[slot].append(scan_regions(snapshot,
                                              magics[slot].tobytes()))
        outputs = {slot: runtime.read_buffer(buffers[slot])
                   for slot in out_slots}
        for slot in out_slots:
            out_sets[slot].append(scan_regions(live,
                                               outputs[slot].tobytes()))
        try:
            in_addrs = {s: resolve_unique(in_sets[s], f"input {s}")
                        for s in in_slots}
            out_addrs = {s: resolve_unique(out_sets[s], f"output {s}")
                         for s in out_slots}
            break
        except TaintError:
            if attempt == max_taint_runs - 1:
                raise

    recording = recordings[0]
    recording.meta.inputs = [
        IoBuffer(s, in_addrs[s], buffers[s].nbytes, buffers[s].shape)
        for s in in_slots]
    recording.meta.outputs = [
        IoBuffer(s, out_addrs[s], buffers[s].nbytes, buffers[s].shape)
        for s in out_slots]
    recording.meta.api = runtime.api_name
    recording.meta.framework = "direct-kernel"
    first_in = in_slots[0] if in_slots else out_slots[0]
    return RecordedWorkload(
        workload=name,
        granularity="monolithic",
        recordings=recordings,
        input_shape=tuple(ir.shapes[first_in]),
        output_shape=tuple(ir.shapes[out_slots[0]]),
    )


def record_training_iteration(trainer: DeepClTrainer,
                              options: Optional[RecorderOptions] = None,
                              magic_seed: int = 1,
                              max_taint_runs: int = 3) -> RecordedWorkload:
    """Record one training iteration (forward+backward+update).

    The convergence predicate stays on the CPU: the app replays this
    recording per iteration and evaluates the returned loss itself
    (Section 3.1's NN-training pattern).
    """
    driver = trainer.runtime.driver
    spec = trainer.spec
    x_shape = (spec.batch, spec.input_dim)
    y_shape = (spec.batch, spec.classes)

    x_sets: List[List[int]] = []
    y_sets: List[List[int]] = []
    loss_sets: List[List[int]] = []
    recordings: List[Recording] = []

    for attempt in range(max_taint_runs):
        recorder = make_recorder(driver, options)
        # Weights are deliberately *not* annotated by value: they are
        # recorded by address, deposited once by the app before the
        # first iteration, then updated in place by the replayed SGD
        # jobs across iterations (the optional-override pattern of
        # Section 4.4). Dumping them would reset training every replay.
        magic_x = make_magic_input(x_shape, magic_seed + 2 * attempt)
        magic_y = make_magic_input(y_shape, magic_seed + 2 * attempt + 1)
        recorder.begin(f"{spec.name}-iteration")
        loss = trainer.run_iteration(magic_x, magic_y)
        recordings = recorder.end()

        x_sets.append(scan_regions(recorder.first_kick_snapshot,
                                   magic_x.tobytes()))
        y_sets.append(scan_regions(recorder.first_kick_snapshot,
                                   magic_y.tobytes()))
        loss_sets.append(scan_regions(
            recorder._snapshot_data_regions(),
            np.array([loss], dtype=np.float32).tobytes()))
        try:
            x_addr = resolve_unique(x_sets, "training input x")
            y_addr = resolve_unique(y_sets, "training labels y")
            loss_addr = resolve_unique(loss_sets, "loss output")
            break
        except TaintError:
            if attempt == max_taint_runs - 1:
                raise

    recording = recordings[0]
    recording.meta.inputs = [
        IoBuffer("x", x_addr, int(np.prod(x_shape)) * 4, x_shape),
        IoBuffer("y", y_addr, int(np.prod(y_shape)) * 4, y_shape),
    ]
    for bname, buf in sorted(trainer.buffers.items()):
        if bname[0] in "wb" and bname[1:].isdigit():
            recording.meta.inputs.append(IoBuffer(
                bname, buf.va, buf.nbytes, buf.shape, optional=True))
    recording.meta.outputs = [IoBuffer("loss", loss_addr, 4, (1,))]
    recording.meta.api = trainer.runtime.api_name
    recording.meta.framework = trainer.framework_name

    return RecordedWorkload(
        workload=spec.name,
        granularity="monolithic",
        recordings=recordings,
        input_shape=x_shape,
        output_shape=(1,),
    )
