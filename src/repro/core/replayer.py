"""The replayer facade: Init / Load / Replay (Section 5).

Composes the static verifier, the interpreter and the nano driver, and
adds the run-time policies of Sections 5.3/5.4:

- failure recovery by re-execution, then re-execution with injected
  delays around the failing action, then a meaningful error naming the
  failed action and its full-driver source location;
- optional checkpointing and preemption (flush + soft reset, resume by
  checkpoint restore or whole re-execution);
- replay *sessions*: consecutive recordings (per-layer chains) share
  the GPU address space, so intermediates flow through GPU memory.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.cache import LruCache
from repro.core.checkpoints import CheckpointManager, CheckpointPolicy
from repro.core.compiled import (CompiledExecutor, CompiledProgram,
                                 compile_program)
from repro.core.interpreter import (InterpreterOptions, InterpreterStats,
                                    ReplayInterpreter)
from repro.core.nano_driver import NanoGpuDriver
from repro.core.recording import Recording
from repro.core.verifier import VerificationReport, verify_recording
from repro.errors import ReplayAborted, ReplayError
from repro.soc.machine import Machine
from repro.soc.memory import PAGE_SIZE
from repro.units import SEC, US

#: Throughput of recording decompression at Load time (zlib on a
#: mobile CPU).
DECOMPRESS_BW = 150 * 1024 * 1024
#: Verifier cost per action.
VERIFY_ACTION_NS = 200
#: Virtual cost of a warm load: one digest lookup in the load cache
#: instead of decompression + full re-verification. The Load column of
#: the paper's cost model is paid once per content, not once per call.
WARM_LOAD_NS = 2 * US
#: Extra pacing injected on the delay-retry attempt (Section 5.4).
RETRY_EXTRA_DELAY_NS = 50 * US
#: How many actions before the failure receive the injected delay.
RETRY_DELAY_WINDOW = 32
#: Backoff before re-execution, letting transient faults clear.
RETRY_BACKOFF_NS = 2_000_000

#: Entries in the process-wide load cache (verification reports +
#: compiled programs, content-addressed).
LOAD_CACHE_CAPACITY = 64

#: The content-addressed load cache. Values are (VerificationReport,
#: CompiledProgram); keys bind the recording digest to everything the
#: verification depended on -- the board's register map, the GPU
#: memory policy and the session's pre-existing mappings -- so a hit
#: is exactly as trustworthy as re-running the verifier.
LOAD_CACHE = LruCache(capacity=LOAD_CACHE_CAPACITY)

#: Compressed-blob digest -> decoded Recording, so ``load_bytes`` of a
#: known blob skips decompression and decoding entirely.
BLOB_CACHE = LruCache(capacity=LOAD_CACHE_CAPACITY)


def clear_load_cache() -> None:
    """Drop both fast-path caches (tests and long-lived daemons)."""
    LOAD_CACHE.clear()
    BLOB_CACHE.clear()


def recovery_delay_window(fail_index: int) -> Tuple[int, int]:
    """The §5.4 delay-injection window for a divergence at
    ``fail_index``: the ``RETRY_DELAY_WINDOW`` actions before the
    failure site plus the failing action itself, as a half-open
    ``[start, end)`` range."""
    fail_at = max(fail_index, 0)
    return (max(0, fail_at - RETRY_DELAY_WINDOW), fail_at + 1)


@dataclass
class ReplayResult:
    """Outcome of one successful replay."""

    outputs: Dict[str, np.ndarray]
    duration_ns: int
    attempts: int
    stats: InterpreterStats
    #: Virtual time from replay start to the first job kick.
    startup_ns: int = 0

    @property
    def output(self) -> np.ndarray:
        if len(self.outputs) != 1:
            raise ReplayError(
                f"replay produced {len(self.outputs)} outputs; "
                "use .outputs")
        return next(iter(self.outputs.values()))


class Replayer:
    """A drop-in replacement for the GPU stack (one app's instance)."""

    def __init__(self, machine: Machine,
                 max_gpu_bytes: Optional[int] = None,
                 checkpoint_policy: Optional[CheckpointPolicy] = None,
                 fast_path: bool = True):
        self.machine = machine
        self.nano = NanoGpuDriver(machine)
        self.max_gpu_bytes = max_gpu_bytes
        self.checkpoints = CheckpointManager(
            self.nano, checkpoint_policy or CheckpointPolicy())
        #: ``False`` forces the reference interpreter for every replay
        #: (the differential suite's baseline, and an escape hatch).
        self.fast_path = fast_path
        self.current: Optional[Recording] = None
        self.verification: Optional[VerificationReport] = None
        self.program: Optional[CompiledProgram] = None
        self.init_ns = 0
        self.load_ns = 0
        #: What the most recent :meth:`load` did -- ``cache`` is
        #: ``"hit"``/``"miss"``, ``warm`` says whether this replayer
        #: paid only :data:`WARM_LOAD_NS`. Read by the serving engine's
        #: request tracer; purely informational.
        self.last_load_info: Dict[str, object] = {}
        #: Delay window of the most recent §5.4 injected-delay retry.
        self.last_delay_range: Optional[Tuple[int, int]] = None
        self._executor: Optional[CompiledExecutor] = None
        self._session_maps: Dict[int, int] = {}
        #: Load-cache keys whose one-time Load cost this replayer has
        #: already paid in virtual time (the paper's Load is per
        #: content, not per call).
        self._warm_keys: set = set()
        self._preempt_requested = False
        self._last_inputs: Dict[str, np.ndarray] = {}
        self._initialized = False

    # -- API: Init / Cleanup ------------------------------------------------------

    def init(self) -> None:
        """Acquire the GPU with a reset (API #1 of Section 5)."""
        t0 = self.machine.clock.now()
        obs = self.machine.obs
        with obs.span("replayer:init", obs.track("replay", "session"),
                      cat="replay"):
            self.nano.init_gpu()
        self._session_maps.clear()
        self.init_ns = self.machine.clock.now() - t0
        obs.gauge("replay.init_ns").set(self.init_ns)
        self._initialized = True

    def cleanup(self) -> None:
        """Release the GPU, scrubbing state with a final reset."""
        if self._initialized:
            self.nano.soft_reset()
        self.nano.release()
        self.current = None
        self._session_maps.clear()
        self._initialized = False

    def reset_session(self) -> int:
        """End the replay session without releasing the GPU.

        Scrubs the GPU address space (reset + free every mapping, like
        :meth:`init` does on acquisition) so an *unrelated* recording
        can be staged next: consecutive recordings share the address
        space only within one session, and a serving engine switching
        content between batches must not inherit the previous
        content's mappings. Residency is lost with the mappings --
        which is exactly why coalescing same-content requests onto a
        warm worker wins. Returns the virtual-time cost.
        """
        self._require_init()
        t0 = self.machine.clock.now()
        obs = self.machine.obs
        with obs.span("replayer:reset-session",
                      obs.track("replay", "session"), cat="replay"):
            self.nano.soft_reset()
            self.nano.release_memory()
        self._session_maps.clear()
        self.current = None
        self.verification = None
        self.program = None
        self._executor = None
        return self.machine.clock.now() - t0

    # -- API: Load -------------------------------------------------------------------

    def load(self, recording: Recording) -> VerificationReport:
        """Verify a recording and stage it for replay (API #2).

        Content-addressed: the verification report and the compiled
        action program are memoized in the process-wide
        :data:`LOAD_CACHE`, keyed by the recording digest plus
        everything verification depended on. A warm load skips
        re-verification and re-compilation, and -- once this replayer
        has paid a content's one-time Load cost -- charges only
        :data:`WARM_LOAD_NS` of virtual time.
        """
        self._require_init()
        t0 = self.machine.clock.now()
        obs = self.machine.obs
        key = self._load_key(recording)
        with obs.span("replayer:load", obs.track("replay", "session"),
                      cat="replay",
                      args={"workload": recording.meta.workload,
                            "actions": len(recording.actions)}):
            entry, hit = LOAD_CACHE.lookup(key)
            warm = key in self._warm_keys
            self.last_load_info = {
                "cache": "hit" if hit else "miss", "warm": warm,
                "workload": recording.meta.workload}
            if hit:
                obs.counter("replay.cache.hits").inc()
                report, program = entry
            else:
                obs.counter("replay.cache.misses").inc()
                evictions_before = LOAD_CACHE.evictions
                report = verify_recording(
                    recording, self.nano.register_names(),
                    max_gpu_bytes=self.max_gpu_bytes,
                    preexisting_maps=dict(self._session_maps))
                program = compile_program(recording, self.nano)
                LOAD_CACHE.put(key, (report, program))
                evicted = LOAD_CACHE.evictions - evictions_before
                if evicted:
                    obs.counter("replay.cache.evictions").inc(evicted)
            if key in self._warm_keys:
                self.machine.clock.advance(WARM_LOAD_NS)
            else:
                # Decompression + verification cost, paid once per
                # content on this replayer.
                self.machine.clock.advance(
                    max(1, recording.dump_bytes() * SEC // DECOMPRESS_BW)
                    + VERIFY_ACTION_NS * len(recording.actions))
                if len(self._warm_keys) > 4096:
                    self._warm_keys.clear()
                self._warm_keys.add(key)
        self.current = recording
        self.verification = report
        self.program = program
        self._executor = None  # re-bound lazily on the next replay
        self.load_ns = self.machine.clock.now() - t0
        obs.gauge("replay.load_ns").set(self.load_ns)
        return report

    def load_bytes(self, blob: bytes) -> VerificationReport:
        """Load from serialized bytes; known blobs skip decoding."""
        blob_key = hashlib.sha256(blob).hexdigest()
        recording, hit = BLOB_CACHE.lookup(blob_key)
        if not hit:
            recording = Recording.from_bytes(blob)
            BLOB_CACHE.put(blob_key, recording)
        return self.load(recording)

    def prefetch(self, recording: Recording) -> bool:
        """Warm the load cache for ``recording`` without staging it.

        The recording vault's fetch path uses this to stream verified
        content into :data:`LOAD_CACHE` ahead of a serve run. The
        entry is produced through :meth:`LruCache.warm`, so demand
        hit/miss accounting stays untouched, and the one-time Load
        cost (decompression + verification virtual time) is paid here
        -- the point of prefetching is that the serve-time ``load``
        runs at :data:`WARM_LOAD_NS`. Returns True when the entry was
        produced, False when the cache was already warm.
        """
        self._require_init()
        key = self._load_key(recording)

        def produce():
            report = verify_recording(
                recording, self.nano.register_names(),
                max_gpu_bytes=self.max_gpu_bytes,
                preexisting_maps=dict(self._session_maps))
            return report, compile_program(recording, self.nano)

        # Warm-path traffic bypasses the demand hit/miss counters by
        # design; count it separately so prefetching is visible in
        # ``grr stats`` instead of silently absent.
        self.machine.obs.counter("replay.cache.warmed").inc()
        produced = LOAD_CACHE.warm(key, produce)
        if produced:
            self.machine.obs.counter("replay.cache.prefetched").inc()
        if key not in self._warm_keys:
            self.machine.clock.advance(
                max(1, recording.dump_bytes() * SEC // DECOMPRESS_BW)
                + VERIFY_ACTION_NS * len(recording.actions))
            if len(self._warm_keys) > 4096:
                self._warm_keys.clear()
            self._warm_keys.add(key)
        return produced

    def _load_key(self, recording: Recording) -> tuple:
        # The GPU family rides along explicitly even though the
        # register-map fingerprint already covers it: the fingerprint
        # is a hash, and two machines sharing the process-wide cache
        # (a multi-board serving pool) must never alias entries even
        # if the hash ever lost a distinguishing input.
        return (recording.digest(),
                self.nano.family,
                self.nano.register_map_fingerprint(),
                self.max_gpu_bytes,
                tuple(sorted(self._session_maps.items())))

    # -- API: Replay ------------------------------------------------------------------

    def replay(self,
               inputs: Optional[Dict[str, np.ndarray]] = None,
               use_recorded_intervals: bool = False,
               max_attempts: int = 3,
               should_yield: Optional[Callable[[], bool]] = None
               ) -> ReplayResult:
        """Replay the staged recording on new input (API #3)."""
        recording = self._require_loaded()
        inputs = dict(inputs or {})
        self._check_inputs(recording, inputs)
        self._last_inputs = inputs

        t_start = self.machine.clock.now()
        obs = self.machine.obs
        obs_track = obs.track("replay", "session")
        replay_span = obs.begin(
            f"replayer:replay:{recording.meta.workload}", obs_track,
            cat="replay")
        # The compiled fast path handles the common case; recorded
        # intervals (the Figure 10 ablation) and checkpointing fall
        # back to the reference interpreter.
        executor = self._fast_executor(use_recorded_intervals)
        attempts = 0
        extra_delay = 0
        delay_range: Optional[Tuple[int, int]] = None
        last_error: Optional[ReplayError] = None
        while attempts < max_attempts:
            attempts += 1
            self.machine.gpu.counters.begin_session(recording.digest())
            obs.counter("replay.attempts").inc()
            if attempts > 1:
                obs.counter("replay.retries").inc()
            options = InterpreterOptions(
                use_recorded_intervals=use_recorded_intervals,
                extra_delay_ns=extra_delay,
                extra_delay_range=delay_range)
            try:
                if executor is not None:
                    stats = executor.execute(
                        options,
                        deposit_inputs=lambda: self._deposit(recording,
                                                             inputs),
                        should_yield=self._yield_predicate(should_yield))
                else:
                    interpreter = ReplayInterpreter(
                        self.nano, recording, options,
                        should_yield=self._yield_predicate(should_yield),
                        checkpoints=self.checkpoints if
                        self.checkpoints.enabled else None)
                    stats = interpreter.execute(
                        deposit_inputs=lambda: self._deposit(recording,
                                                             inputs))
                self._note_session_maps(recording)
                outputs = self._extract(recording)
                startup = (stats.first_kick_at_ns - t_start
                           if stats.first_kick_at_ns >= 0 else 0)
                obs.end(replay_span, args={"attempts": attempts})
                self._note_flight_metrics(obs)
                return ReplayResult(
                    outputs=outputs,
                    duration_ns=self.machine.clock.now() - t_start,
                    attempts=attempts,
                    stats=stats,
                    startup_ns=startup)
            except ReplayAborted:
                obs.end(replay_span, args={"aborted": True})
                self._note_flight_metrics(obs)
                raise
            except ReplayError as error:
                last_error = error
                # Mark the divergence in the flight ring so the doctor
                # can anchor its report, then count it.
                self.machine.flight.record(
                    self.machine.clock.now(), "Divergence",
                    (attempts, type(error).__name__))
                obs.counter("replay.divergence.detected").inc()
                obs.gauge("replay.divergence.last_index").set(
                    getattr(error, "action_index", -1))
                obs.instant(
                    "replay-divergence", obs_track,
                    args={"attempt": attempts,
                          "index": getattr(error, "action_index", -1),
                          "src": getattr(error, "source", "")})
                if attempts >= max_attempts:
                    break
                # Recovery: back off (transient faults need time to
                # clear), reset, start over; on the next retry, inject
                # delays before the failure site (Section 5.4).
                self.machine.clock.advance(RETRY_BACKOFF_NS)
                try:
                    self.nano.soft_reset()
                except ReplayError as reset_error:
                    # GPU still unhealthy; burn this attempt and let
                    # the next one try again after another backoff.
                    last_error = reset_error
                    continue
                if attempts >= 2:
                    extra_delay = RETRY_EXTRA_DELAY_NS
                    delay_range = recovery_delay_window(
                        error.action_index)
                    self.last_delay_range = delay_range
                    obs.instant(
                        "replay-delay-injection", obs_track,
                        args={"attempt": attempts + 1,
                              "window_start": delay_range[0],
                              "window_end": delay_range[1],
                              "extra_delay_ns": extra_delay})
        obs.end(replay_span, args={"failed": True, "attempts": attempts})
        obs.counter("replay.divergence.unrecovered").inc()
        self._note_flight_metrics(obs)
        raise ReplayError(
            f"replay failed after {attempts} attempts: {last_error}",
            getattr(last_error, "action_index", -1),
            getattr(last_error, "source", ""))

    def _note_flight_metrics(self, obs) -> None:
        """Publish the flight recorder's capacity gauges."""
        for name, value in self.machine.flight.snapshot().items():
            obs.gauge(name).set(value)

    def _fast_executor(self, use_recorded_intervals: bool
                       ) -> Optional[CompiledExecutor]:
        """The bound compiled executor, or None for the reference path.

        The executor is rebound when the staged program changed (a new
        ``load``) or when the machine's observability session was
        swapped since the last bind.
        """
        if (not self.fast_path or self.program is None
                or use_recorded_intervals or self.checkpoints.enabled):
            return None
        # The staged program may come from the load cache, compiled
        # against an earlier Recording object with the same digest --
        # byte-identical content, so it replays this recording exactly.
        if (self._executor is None
                or self._executor.obs is not self.machine.obs):
            self._executor = self.program.bind(self.nano)
        return self._executor

    def replay_sequence(self, recordings: Sequence[Recording],
                        inputs: Optional[Dict[str, np.ndarray]] = None,
                        use_recorded_intervals: bool = False
                        ) -> ReplayResult:
        """Replay a per-layer chain {R1..Rn} in one session.

        Intermediates stay resident in replayer-owned GPU memory
        between recordings; only R1 takes inputs and only Rn yields
        outputs (Section 3.1's NN-inference pattern).
        """
        if not recordings:
            raise ReplayError("empty recording sequence")
        t_start = self.machine.clock.now()
        total_attempts = 0
        stats = InterpreterStats()
        result: Optional[ReplayResult] = None
        startup = 0
        for index, recording in enumerate(recordings):
            self.load(recording)
            result = self.replay(
                inputs=inputs if index == 0 else {},
                use_recorded_intervals=use_recorded_intervals)
            if index == 0:
                startup = result.startup_ns + self.load_ns
                stats.first_kick_at_ns = result.stats.first_kick_at_ns
            total_attempts += result.attempts
            stats.actions_executed += result.stats.actions_executed
            stats.jobs_kicked += result.stats.jobs_kicked
            stats.irqs_waited += result.stats.irqs_waited
            stats.pacing_wait_ns += result.stats.pacing_wait_ns
            stats.upload_bytes += result.stats.upload_bytes
            stats.upload_skipped_bytes += result.stats.upload_skipped_bytes
            stats.upload_ns += result.stats.upload_ns
            stats.irq_wait_ns += result.stats.irq_wait_ns
        return ReplayResult(
            outputs=result.outputs,
            duration_ns=self.machine.clock.now() - t_start,
            attempts=total_attempts,
            stats=stats,
            startup_ns=startup)

    # -- API: mega-batch replay ----------------------------------------------------------

    def replay_mega(self,
                    inputs_list: Sequence[Optional[Dict[str, np.ndarray]]],
                    should_yield: Optional[Callable[[], bool]] = None
                    ) -> "MegaReplayResult":
        """Replay the staged recording for N inputs in one fused pass.

        Thin entry point: the fused-execution machinery lives in
        :mod:`repro.core.megabatch` (see :func:`~repro.core.megabatch.
        replay_mega` for semantics). No internal retry ladder: a
        :class:`~repro.errors.ReplayError` (including
        :class:`~repro.errors.MegaBatchDivergence`) propagates so
        callers can fall back to per-request replay.
        """
        from repro.core.megabatch import replay_mega
        return replay_mega(self, inputs_list, should_yield)

    # -- CPU footprint (Section 7.3) ---------------------------------------------------------

    #: Fixed resident memory of the replayer itself: code, the
    #: interpreter's state, the nano driver's bookkeeping.
    REPLAYER_RSS_BYTES = 2 * 1024 * 1024

    def cpu_footprint_bytes(self) -> int:
        """Modeled resident CPU memory of the replayer (§7.3).

        The replayer holds the decompressed recording (actions +
        staged dumps) and little else -- no GPU contexts, no JIT
        caches, no NN graph structures.
        """
        if not self._initialized:
            return 0
        staged = self.current.size_unzipped() if self.current else 0
        checkpoints = sum(c.bytes_captured
                          for c in self.checkpoints.checkpoints)
        return self.REPLAYER_RSS_BYTES + staged + checkpoints

    # -- preemption (Section 5.3) ----------------------------------------------------------

    def request_preempt(self) -> None:
        """Ask the running replay to yield at the next action."""
        self._preempt_requested = True

    def handoff(self) -> int:
        """Give the GPU away *now*: flush + soft reset. Returns the
        virtual-time cost (the interactive app's perceived delay)."""
        t0 = self.machine.clock.now()
        self.nano.flush_and_reset()
        return self.machine.clock.now() - t0

    def resume_after_preemption(self) -> ReplayResult:
        """Continue a preempted replay: checkpoint restore if one
        exists, whole re-execution otherwise."""
        recording = self._require_loaded()
        self._preempt_requested = False
        checkpoint = self.checkpoints.latest()
        if checkpoint is None:
            return self.replay(inputs=self._last_inputs)
        t_start = self.machine.clock.now()
        self.checkpoints.restore_latest(recording.meta.memattr)
        interpreter = ReplayInterpreter(self.nano, recording,
                                        InterpreterOptions(),
                                        checkpoints=None)
        stats = interpreter.execute(start_index=checkpoint.action_index)
        outputs = self._extract(recording)
        return ReplayResult(outputs=outputs,
                            duration_ns=self.machine.clock.now() - t_start,
                            attempts=1, stats=stats)

    def _yield_predicate(self, extra: Optional[Callable[[], bool]]
                         ) -> Callable[[], bool]:
        def should_yield() -> bool:
            if self._preempt_requested:
                return True
            return extra() if extra is not None else False
        return should_yield

    # -- I/O plumbing -----------------------------------------------------------------------

    @staticmethod
    def _check_inputs(recording: Recording,
                      inputs: Dict[str, np.ndarray]) -> None:
        known = {io.name for io in recording.meta.inputs}
        for name in inputs:
            if name not in known:
                raise ReplayError(f"recording has no input {name!r}")
        for io in recording.meta.inputs:
            if io.optional or io.name in inputs:
                continue
            raise ReplayError(f"missing required input {io.name!r}")

    def _deposit(self, recording: Recording,
                 inputs: Dict[str, np.ndarray]) -> None:
        for io in recording.meta.inputs:
            if io.name not in inputs:
                continue
            data = np.ascontiguousarray(inputs[io.name],
                                        dtype=np.float32).tobytes()
            if len(data) != io.size:
                raise ReplayError(
                    f"input {io.name!r}: {len(data)} bytes provided, "
                    f"recording expects {io.size}")
            self.nano.copy_to_gpu(io.gaddr, data)

    def _extract(self, recording: Recording) -> Dict[str, np.ndarray]:
        outputs: Dict[str, np.ndarray] = {}
        for io in recording.meta.outputs:
            raw = self.nano.copy_from_gpu(io.gaddr, io.size)
            array = np.frombuffer(raw, dtype=np.float32)
            if io.shape:
                array = array.reshape(io.shape)
            outputs[io.name] = array
        return outputs

    def _note_session_maps(self, recording: Recording) -> None:
        from repro.core import actions as act
        for action in recording.actions:
            if isinstance(action, act.MapGpuMem):
                self._session_maps[action.addr] = action.num_pages
            elif isinstance(action, act.UnmapGpuMem):
                self._session_maps.pop(action.addr, None)

    # -- guards --------------------------------------------------------------------------------

    def _require_init(self) -> None:
        if not self._initialized:
            raise ReplayError("replayer not initialized; call init()")

    def _require_loaded(self) -> Recording:
        self._require_init()
        if self.current is None:
            raise ReplayError("no recording loaded; call load()")
        return self.current
