"""The replay interpreter: executes a recording's action stream.

Correctness checking follows Section 3.2: every state-changing event
must match the recording -- a RegReadOnce returning a different value
(unless marked ignorable), a RegReadWait or WaitIrq timing out, all
raise typed replay errors carrying the action index and the original
driver source location.

Pacing follows Section 4.5: before each action the interpreter waits
out the action's minimum interval. With ``use_recorded_intervals`` the
raw record-time gaps are replayed instead -- the Figure 10 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core import actions as act
from repro.core.checkpoints import CheckpointManager
from repro.core.nano_driver import NanoGpuDriver
from repro.core.recording import Recording
from repro.errors import (ReplayAborted, ReplayDivergence, ReplayError,
                          ReplayTimeout)
from repro.obs.metrics import LATENCY_BUCKETS_NS

#: Interpreter dispatch overhead per action.
ACTION_OVERHEAD_NS = 300

#: Timeout when an IrqEnter must wait for an interrupt that arrived
#: asynchronously at record time (it preempted the CPU mid-work, so no
#: explicit WaitIrq precedes it in the recording).
IMPLICIT_IRQ_TIMEOUT_NS = 2_000_000_000


@dataclass
class InterpreterOptions:
    """Replay-time knobs."""

    #: Replay the raw recorded gaps instead of the skip-heuristic ones.
    use_recorded_intervals: bool = False
    #: Extra delay injected before paced actions (failure recovery,
    #: Section 5.4: "injects additional delay to the action intervals").
    extra_delay_ns: int = 0
    #: Restrict the extra delay to actions in [start, end) -- "the
    #: action intervals that precede the divergence occurrence".
    extra_delay_range: Optional[tuple] = None


@dataclass
class InterpreterStats:
    actions_executed: int = 0
    jobs_kicked: int = 0
    irqs_waited: int = 0
    pacing_wait_ns: int = 0
    #: Bytes actually moved into GPU memory by Upload actions.
    upload_bytes: int = 0
    #: Bytes Upload actions skipped because identical content was
    #: already GPU-resident (repeated replays, recovery retries).
    upload_skipped_bytes: int = 0
    #: Virtual time spent inside Upload actions (resident-check or DMA).
    upload_ns: int = 0
    #: Virtual time spent blocked on GPU interrupts (WaitIrq plus the
    #: implicit wait synthesized for asynchronous IrqEnter).
    irq_wait_ns: int = 0
    #: Virtual time of the first job-kick write (GR "startup" ends here).
    first_kick_at_ns: int = -1


class ReplayInterpreter:
    """Executes one recording against the nano driver."""

    def __init__(self, nano: NanoGpuDriver, recording: Recording,
                 options: Optional[InterpreterOptions] = None,
                 should_yield: Optional[Callable[[], bool]] = None,
                 checkpoints: Optional[CheckpointManager] = None):
        self.nano = nano
        self.recording = recording
        self.options = options or InterpreterOptions()
        self.should_yield = should_yield
        self.checkpoints = checkpoints
        self.stats = InterpreterStats()
        obs = nano.machine.obs
        self._obs = obs
        self._actions_track = obs.track("replay", "actions")
        self._jobs_track = obs.track("replay", "jobs")
        self._job_span = None

    def execute(self,
                deposit_inputs: Optional[Callable[[], None]] = None,
                start_index: int = 0) -> InterpreterStats:
        """Run actions from ``start_index``; raises on divergence."""
        clock = self.nano.clock
        last_end = clock.now()
        actions = self.recording.actions
        prologue_len = self.recording.meta.prologue_len
        flight = self.nano.flight
        job_in_flight = False

        if start_index > 0 and deposit_inputs is not None:
            # Resuming mid-stream (checkpoint restore): inputs are
            # already in GPU memory from the original attempt.
            deposit_inputs = None

        try:
            for index in range(start_index, len(actions)):
                action = actions[index]
                flight.action_index = index
                if self.should_yield is not None and self.should_yield():
                    raise ReplayAborted("preempted by the environment",
                                        index, action.src)

                interval = (action.recorded_interval_ns
                            if self.options.use_recorded_intervals
                            else action.min_interval_ns)
                delay_range = self.options.extra_delay_range
                if delay_range is None or \
                        delay_range[0] <= index < delay_range[1]:
                    interval += self.options.extra_delay_ns
                target = last_end + interval
                if target > clock.now():
                    wait = target - clock.now()
                    self.stats.pacing_wait_ns += wait
                    self._obs.counter("replay.pacing_wait_ns").inc(wait)
                    # Recorded before the advance so events firing
                    # during the wait land after the decision -- the
                    # compiled path does the same.
                    flight.record(clock.now(), "Pacing", (wait,))
                    clock.advance(wait)
                t_start = clock.now()
                clock.advance(ACTION_OVERHEAD_NS)

                self._execute_one(action, index)
                self.stats.actions_executed += 1
                self._obs.counter("replay.actions").inc()
                self._obs.complete(
                    type(action).__name__, self._actions_track, t_start,
                    clock.now(), cat="replay-action",
                    args={"index": index, "src": action.src})
                if isinstance(action, act.RegWrite) and action.is_job_kick:
                    if self.stats.first_kick_at_ns < 0:
                        self.stats.first_kick_at_ns = clock.now()
                    self.stats.jobs_kicked += 1
                    flight.record(clock.now(), "JobKick",
                                  (self.stats.jobs_kicked - 1,))
                    job_in_flight = True
                    if self._job_span is not None:
                        self._obs.end(self._job_span)
                    self._job_span = self._obs.begin(
                        f"job[{self.stats.jobs_kicked - 1}]",
                        self._jobs_track, cat="replay-job",
                        args={"index": index})
                if isinstance(action, act.IrqExit):
                    job_in_flight = False
                    if self._job_span is not None:
                        self._obs.end(self._job_span)
                        self._job_span = None
                    if self.checkpoints is not None and not job_in_flight:
                        self.checkpoints.maybe_take(index + 1,
                                                    self.stats.jobs_kicked)
                last_end = clock.now()

                if deposit_inputs is not None and index == prologue_len - 1:
                    deposit_inputs()
                    deposit_inputs = None
                    last_end = clock.now()
        except BaseException:
            # Divergence/timeout/abort mid-stream: the job span would
            # otherwise leak open in the tracer forever.
            if self._job_span is not None:
                self._obs.end(self._job_span)
                self._job_span = None
            raise

        if deposit_inputs is not None:
            # Degenerate recording with no prologue: deposit up front.
            deposit_inputs()
        return self.stats

    # -- single-action dispatch -----------------------------------------------

    def _execute_one(self, action: act.Action, index: int) -> None:
        nano = self.nano
        obs = self._obs
        if isinstance(action, act.RegWrite):
            obs.counter("replay.reg_writes").inc()
            nano.reg_write(action.reg, action.val, action.mask)
        elif isinstance(action, act.RegReadOnce):
            obs.counter("replay.reg_reads").inc()
            value = nano.reg_read(action.reg)
            if not action.ignore and value != action.val:
                raise ReplayDivergence(
                    f"register {action.reg} read {value:#x}, recorded "
                    f"{action.val:#x}", index, action.src)
        elif isinstance(action, act.RegReadWait):
            obs.counter("replay.reg_polls").inc()
            ok = nano.reg_poll(action.reg, action.mask, action.val,
                               action.timeout_ns)
            if not ok:
                raise ReplayTimeout(
                    f"poll of {action.reg} (mask {action.mask:#x}, want "
                    f"{action.val:#x}) timed out", index, action.src)
        elif isinstance(action, act.SetGpuPgtable):
            nano.set_gpu_pgtable(action.memattr)
        elif isinstance(action, act.MapGpuMem):
            nano.map_gpu_mem(action.addr, action.num_pages,
                             action.raw_pte_flags)
        elif isinstance(action, act.UnmapGpuMem):
            nano.unmap_gpu_mem(action.addr, action.num_pages)
        elif isinstance(action, act.Upload):
            dump = self.recording.dumps[action.dump_index]
            t0 = nano.clock.now()
            uploaded = nano.upload(action.addr, dump.data,
                                   digest=dump.digest)
            self.stats.upload_ns += nano.clock.now() - t0
            self.stats.upload_bytes += uploaded
            obs.counter("replay.uploads").inc()
            obs.counter("replay.upload_bytes").inc(uploaded)
            skipped = dump.size - uploaded
            if skipped:
                self.stats.upload_skipped_bytes += skipped
                obs.counter("replay.upload_skipped_bytes").inc(skipped)
        elif isinstance(action, act.WaitIrq):
            self.stats.irqs_waited += 1
            obs.counter("replay.irq_waits").inc()
            t0 = nano.clock.now()
            ok = nano.wait_irq(action.timeout_ns)
            waited = nano.clock.now() - t0
            self.stats.irq_wait_ns += waited
            obs.histogram("replay.irq_wait_ns",
                          LATENCY_BUCKETS_NS).observe(waited)
            if not ok:
                raise ReplayTimeout(
                    "no GPU interrupt arrived in time", index, action.src)
        elif isinstance(action, act.IrqEnter):
            if nano.pending_irqs == 0:
                # The record-time interrupt preempted the CPU; replay
                # synchronizes on its arrival here instead.
                obs.counter("replay.irq_waits").inc()
                t0 = nano.clock.now()
                ok = nano.wait_irq(IMPLICIT_IRQ_TIMEOUT_NS)
                waited = nano.clock.now() - t0
                self.stats.irq_wait_ns += waited
                obs.histogram(
                    "replay.irq_wait_ns",
                    LATENCY_BUCKETS_NS).observe(waited)
                if not ok:
                    raise ReplayTimeout(
                        "no GPU interrupt for asynchronous irq context",
                        index, action.src)
            nano.enter_irq_context()
        elif isinstance(action, act.IrqExit):
            nano.exit_irq_context()
        elif isinstance(action, act.CopyToGpu):
            raise ReplayError(
                "CopyToGpu actions are synthesized by the replayer",
                index, action.src)
        elif isinstance(action, act.CopyFromGpu):
            raise ReplayError(
                "CopyFromGpu actions are synthesized by the replayer",
                index, action.src)
        else:
            raise ReplayError(f"unknown action {type(action).__name__}",
                              index, action.src)
