"""GPUReplay itself: record, verify, replay.

- :mod:`repro.core.actions` -- the replay actions of Table 2;
- :mod:`repro.core.recording` -- the recording container and its
  compressed on-disk format;
- :mod:`repro.core.recorder` -- the in-driver recorder (Section 4);
- :mod:`repro.core.taint` -- magic-value input/output discovery;
- :mod:`repro.core.harness` -- the developer-facing record harness;
- :mod:`repro.core.verifier` -- static security verification (§5.1);
- :mod:`repro.core.nano_driver` -- the ~600-SLoC-equivalent GPU access
  layer (§5.2);
- :mod:`repro.core.interpreter` / ``replayer`` -- action execution,
  pacing, failure detection/recovery, checkpointing, preemption;
- :mod:`repro.core.patching` -- cross-SKU recording patches (§6.4).
"""

from repro.core.harness import (RecordedWorkload, record_inference,
                                record_training_iteration)
from repro.core.recorder import GpuRecorder, RecorderOptions
from repro.core.recording import Recording, RecordingMeta
from repro.core.replayer import Replayer, ReplayResult
from repro.core.verifier import verify_recording

__all__ = [
    "GpuRecorder",
    "RecordedWorkload",
    "Recording",
    "RecordingMeta",
    "RecorderOptions",
    "ReplayResult",
    "Replayer",
    "record_inference",
    "record_training_iteration",
    "verify_recording",
]
