"""The nano GPU driver (Section 5.2): ~600 SLoC of hardware access.

The only GPU knowledge the replayer ships: the per-family register map
(names -> MMIO offsets), the reset/power bring-up sequence, the
page-table encoding of its own SKU, and a bare-minimum interrupt
handler that does nothing but flag arrival -- interrupt *handling* is
the recording's job (the actions that follow a WaitIrq).

Register access goes through the machine's MMIO bus at resolved
addresses, exactly as a user-level replayer would through mmap'd
registers.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReplayError, VerificationError
from repro.gpu import adreno as adreno_hw
from repro.gpu import mali as mali_hw
from repro.gpu import v3d as v3d_hw
from repro.gpu.mmu import PageTableBuilder
from repro.soc.machine import Machine
from repro.soc.memory import PAGE_SIZE
from repro.units import MS, SEC, US

MMIO_ACCESS_NS = 150
POLL_STEP_NS = 10 * US
#: Throughput of loading memory dumps into GPU memory.
UPLOAD_BW = 1 * 1024 ** 3
#: Per-PTE cost of building/patching page tables.
PTE_PATCH_NS = 120
#: Per-page cache-maintenance cost when checkpointing GPU memory: each
#: page must be cleaned/invalidated through an uncached mapping, which
#: is why dumping all GPU memory is so much slower than re-executing
#: (the Section 7.5 checkpoint-vs-reexecution trade-off).
PAGE_SYNC_NS = 45 * US
#: Cost of the content-hash comparison that proves an upload's bytes
#: are already GPU-resident (the replay fast path's skip check).
RESIDENT_CHECK_NS = 250


class NanoGpuDriver:
    """Minimal GPU access layer shared by every replayer deployment."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.clock = machine.clock
        gpu = machine.require_gpu()
        self.family = gpu.family
        self.model_name = gpu.model_name
        self.mmio_base = machine.board.gpu_mmio_base
        self.irq_number = machine.board.gpu_irq
        # The shipped register map: names resolved to MMIO addresses.
        self._reg_offsets: Dict[str, int] = {
            d.name: d.offset for d in gpu.regs.defs()}
        self._fmt = gpu.mmu.fmt  # the replayer's own SKU format
        self._pt: Optional[PageTableBuilder] = None
        self._regions: Dict[int, Tuple[List[int], int]] = {}
        #: GPU-resident dump state: upload VA -> (content digest, size).
        #: Entries are dropped whenever the bytes underneath might have
        #: changed (unmap, fresh map, CPU writes, memory release).
        self._resident: Dict[int, Tuple[str, int]] = {}
        #: Sorted resident base addresses + the largest resident dump,
        #: so the per-GPU-write overlap check is a bisect, not a scan.
        self._resident_bases: List[int] = []
        self._resident_max = 0
        self._irq_count = 0
        self._irq_connected = False
        self.in_irq_context = False
        self.reg_io_count = 0
        self._reg_fingerprint: Optional[str] = None
        # The machine's always-on flight recorder. The nano driver is
        # the chokepoint both the interpreter and the compiled fast
        # path funnel through, so recording here keeps the two paths'
        # event streams identical by construction.
        self.flight = machine.flight
        # The GPU's emulated performance-counter tape: register writes
        # and skipped resident uploads are session-level costs, and
        # this driver is likewise the chokepoint they all cross.
        self.counters = gpu.counters
        self._in_poll = False

    # -- register map (the §5.1 name->address resolution) -----------------------

    def register_names(self) -> Set[str]:
        return set(self._reg_offsets)

    def register_map_fingerprint(self) -> str:
        """Content digest of this board's register map: the MMIO base
        plus every (name, offset) pair. Two drivers with equal
        fingerprints verify and compile recordings identically, so the
        fingerprint keys the content-addressed load cache."""
        if self._reg_fingerprint is None:
            h = hashlib.sha256()
            h.update(f"{self.family}:{self.mmio_base:#x}".encode())
            for name in sorted(self._reg_offsets):
                h.update(f"|{name}={self._reg_offsets[name]:#x}".encode())
            self._reg_fingerprint = h.hexdigest()
        return self._reg_fingerprint

    def resolve(self, reg: str) -> int:
        offset = self._reg_offsets.get(reg)
        if offset is None:
            raise VerificationError(
                f"recording names unknown register {reg!r}")
        return self.mmio_base + offset

    def reg_read(self, reg: str) -> int:
        return self.reg_read_at(self.resolve(reg))

    def reg_write(self, reg: str, value: int,
                  mask: int = 0xFFFFFFFF) -> None:
        self.reg_write_at(self.resolve(reg), value, mask)

    def reg_poll(self, reg: str, mask: int, value: int,
                 timeout_ns: int) -> bool:
        return self.reg_poll_at(self.resolve(reg), mask, value,
                                timeout_ns)

    # Pre-resolved variants: compiled action programs resolve register
    # names once at compile time and hit MMIO by absolute address on
    # the hot loop. Timing and accounting are identical to the named
    # variants -- the name lookup itself costs no virtual time.

    def reg_read_at(self, addr: int) -> int:
        self.clock.advance(MMIO_ACCESS_NS)
        self.reg_io_count += 1
        value = self.machine.mmio.read(addr)
        if not self._in_poll:
            self.flight.record(self.clock.now(), "RegRead",
                               (addr, value))
        return value

    def reg_write_at(self, addr: int, value: int,
                     mask: int = 0xFFFFFFFF) -> None:
        self.clock.advance(MMIO_ACCESS_NS)
        self.reg_io_count += 1
        if self.counters.enabled:
            self.counters.note_mmio_write()
        if mask != 0xFFFFFFFF:
            current = self.machine.mmio.read(addr)
            value = (current & ~mask) | (value & mask)
        self.machine.mmio.write(addr, value)
        self.flight.record(self.clock.now(), "RegWrite",
                           (addr, value, mask))

    def reg_poll_at(self, addr: int, mask: int, value: int,
                    timeout_ns: int) -> bool:
        # One summarized flight event per poll, not one per read: a
        # long poll would otherwise flush the whole ring.
        deadline = self.clock.now() + timeout_ns
        self._in_poll = True
        polls = 0
        last = 0
        try:
            while True:
                last = self.reg_read_at(addr)
                polls += 1
                if (last & mask) == value:
                    ok = True
                    break
                if self.clock.now() >= deadline:
                    ok = False
                    break
                self.clock.advance(min(POLL_STEP_NS,
                                       deadline - self.clock.now()))
        finally:
            self._in_poll = False
        self.flight.record(self.clock.now(), "RegPoll",
                           (addr, mask, value, polls, ok, last))
        return ok

    # -- interrupts ------------------------------------------------------------------

    def connect_irq(self) -> None:
        if not self._irq_connected:
            self.machine.irq.connect(self.irq_number, self._irq_stub)
            self._irq_connected = True

    def disconnect_irq(self) -> None:
        if self._irq_connected:
            self.machine.irq.connect(self.irq_number, None)
            self._irq_connected = False

    def _irq_stub(self, line: int) -> None:
        """The bare-minimum handler: note arrival, nothing else."""
        del line
        self._irq_count += 1
        self.machine.obs.counter("nano.irqs").inc()
        self.machine.irq.ack(self.irq_number)

    def wait_irq(self, timeout_ns: int) -> bool:
        t0 = self.clock.now()
        deadline = t0 + timeout_ns
        ok = True
        while self._irq_count == 0:
            if self.clock.now() >= deadline:
                ok = False
                break
            fired = self.clock.advance_to_next_event(limit_ns=deadline)
            if not fired and self._irq_count == 0:
                ok = False
                break
        self.flight.record(self.clock.now(), "WaitIrq",
                           (timeout_ns, ok, self.clock.now() - t0))
        return ok

    @property
    def pending_irqs(self) -> int:
        return self._irq_count

    def enter_irq_context(self) -> None:
        if self._irq_count > 0:
            self._irq_count -= 1
        self.in_irq_context = True
        self.flight.record(self.clock.now(), "IrqEnter")

    def exit_irq_context(self) -> None:
        self.in_irq_context = False
        self.flight.record(self.clock.now(), "IrqExit")

    def clear_irq_state(self) -> None:
        self._irq_count = 0
        self.in_irq_context = False

    # -- GPU bring-up / reset (per-family Table 1 knowledge) --------------------------

    def init_gpu(self) -> None:
        """Acquire the GPU: reset, unmask interrupts, power the cores.

        Also scrubs any previous session's GPU memory -- a fresh init
        is the clean-handoff point between apps (Section 5.3: no data
        leaks across replayer sessions)."""
        obs = self.machine.obs
        self.flight.record(self.clock.now(), "Reset", ("init",))
        with obs.span("nano:init-gpu", obs.track("replay", "nano"),
                      cat="nano", args={"family": self.family}):
            self.connect_irq()
            self.clear_irq_state()
            self._family_reset()
            self.release_memory()
        # Observe GPU-side writes so resident-dump tracking never
        # claims bytes the GPU itself has since overwritten.
        self.machine.gpu.mmu.write_observer = self._drop_resident

    def soft_reset(self) -> None:
        """Reset without touching replayer memory state (recovery path)."""
        obs = self.machine.obs
        obs.counter("nano.resets").inc()
        self.flight.record(self.clock.now(), "Reset", ("soft",))
        with obs.span("nano:reset", obs.track("replay", "nano"),
                      cat="nano"):
            self._family_reset()
        self.clear_irq_state()

    def _family_reset(self) -> None:
        if self.family == "mali":
            self._mali_reset_and_power()
        elif self.family == "adreno":
            self._adreno_reset_and_power()
        else:
            self._v3d_reset()

    def flush_and_reset(self) -> None:
        """Preemption path: clean caches + TLB, then soft reset (§5.3)."""
        if self.family == "mali":
            self.reg_write("GPU_COMMAND", mali_hw.CMD_CLEAN_CACHES)
            self.reg_poll("GPU_IRQ_RAWSTAT",
                          mali_hw.IRQ_CLEAN_CACHES_COMPLETED,
                          mali_hw.IRQ_CLEAN_CACHES_COMPLETED, 2 * MS)
            self.reg_write("GPU_IRQ_CLEAR",
                           mali_hw.IRQ_CLEAN_CACHES_COMPLETED)
            self.reg_write("AS0_COMMAND", mali_hw.AS_CMD_FLUSH_PT)
        elif self.family == "adreno":
            self.reg_write("UCHE_CACHE_FLUSH", adreno_hw.UCHE_FLUSH)
            self.reg_poll("UCHE_CACHE_FLUSH", adreno_hw.UCHE_FLUSH, 0,
                          2 * MS)
            self.reg_write("SMMU_TLBIALL", 1)
        else:
            self.reg_write("L2TCACTL", v3d_hw.L2T_FLUSH)
            self.reg_poll("L2TCACTL", v3d_hw.L2T_FLUSH, 0, 2 * MS)
        self.soft_reset()

    def _mali_reset_and_power(self) -> None:
        self.reg_write("GPU_COMMAND", mali_hw.CMD_SOFT_RESET)
        if not self.reg_poll("GPU_IRQ_RAWSTAT",
                             mali_hw.IRQ_RESET_COMPLETED,
                             mali_hw.IRQ_RESET_COMPLETED, 10 * MS):
            raise ReplayError("nano driver: GPU reset timed out")
        self.reg_write("GPU_IRQ_CLEAR", mali_hw.IRQ_RESET_COMPLETED)
        self.reg_write("JOB_IRQ_MASK", 0xFFFFFFFF)
        self.reg_write("MMU_IRQ_MASK", 0xFFFFFFFF)
        self.reg_write("GPU_IRQ_MASK", 0)
        self.reg_write("L2_PWRON", 1)
        if not self.reg_poll("L2_READY", 1, 1, 5 * MS):
            raise ReplayError("nano driver: L2 power-up timed out")
        present = self.reg_read("SHADER_PRESENT")
        self.reg_write("SHADER_PWRON", present)
        if not self.reg_poll("SHADER_READY", present, present, 5 * MS):
            raise ReplayError("nano driver: shader power-up timed out")

    def _adreno_reset_and_power(self) -> None:
        self.reg_write("RBBM_SW_RESET_CMD", 1)
        if not self.reg_poll("RBBM_RESET_STATUS", 1, 1, 10 * MS):
            raise ReplayError("nano driver: adreno reset timed out")
        self.reg_write("RBBM_INT_0_MASK",
                       adreno_hw.INT_CP_DONE | adreno_hw.INT_RBBM_ERROR
                       | adreno_hw.INT_SMMU_FAULT)
        self.reg_write("GDSC_PWR_CTRL", 1)
        if not self.reg_poll("GDSC_PWR_STATUS", 1, 1, 5 * MS):
            raise ReplayError("nano driver: GDSC power-up timed out")
        self.reg_write("SPTP_PWR_CTRL", 1)
        if not self.reg_poll("SPTP_PWR_STATUS", 1, 1, 5 * MS):
            raise ReplayError("nano driver: SPTP power-up timed out")

    def _v3d_reset(self) -> None:
        if self.reg_read("CTL_IDENT") == 0xFFFFFFFF:
            raise ReplayError(
                "v3d reads as unpowered; the deployment environment "
                "must configure GPU power/clocks before replay "
                "(host kernel, or the recording's firmware sequence)")
        self.reg_write("CTL_RESET", 1)
        if not self.reg_poll("CTL_STATUS", v3d_hw.STATUS_IDLE,
                             v3d_hw.STATUS_IDLE, 5 * MS):
            raise ReplayError("nano driver: v3d reset timed out")
        self.reg_write("CTL_INT_MSK",
                       v3d_hw.INT_FRDONE | v3d_hw.INT_CTERR
                       | v3d_hw.INT_MMU_FAULT)

    # -- GPU memory (MapGPUMem / Upload / CopyTo / CopyFrom) -----------------------------

    def _require_pt(self) -> PageTableBuilder:
        if self._pt is None:
            self._pt = PageTableBuilder(
                self.machine.memory, self.machine.gpu_allocator,
                self._fmt, tag="replayer-pgtable")
        return self._pt

    def map_gpu_mem(self, va: int, num_pages: int,
                    raw_pte_flags: int) -> None:
        """Allocate fresh physical pages for ``va`` and map them.

        The PTE permission bits come from the recording in the *source
        SKU's* raw encoding and are decoded with this SKU's format --
        the relocation-with-patching of Section 5.2. Re-mapping an
        identical region is a no-op so that replay sessions persist
        GPU memory across recordings (per-layer chaining).
        """
        existing = self._regions.get(va)
        if existing is not None:
            if existing[1] == num_pages:
                return
            raise ReplayError(
                f"replay re-maps VA {va:#x} with different size")
        _valid, _pa, perms = self._fmt.decode_pte(raw_pte_flags)
        pas = self.machine.gpu_allocator.alloc_pages(num_pages,
                                                     "replayer-mem")
        pt = self._require_pt()
        for i, pa in enumerate(pas):
            # Fresh pages are zero-filled by the allocator: no stale
            # data leaks to the GPU (§5.1, "no sensitive data").
            pt.map_page(va + i * PAGE_SIZE, pa, perms)
        self.clock.advance(PTE_PATCH_NS * num_pages)
        self._regions[va] = (pas, num_pages)
        self._drop_resident(va, num_pages * PAGE_SIZE)
        self.flight.record(self.clock.now(), "MemMap", (va, num_pages))

    def unmap_gpu_mem(self, va: int, num_pages: int) -> None:
        entry = self._regions.pop(va, None)
        if entry is None:
            raise ReplayError(f"replay unmaps unmapped VA {va:#x}")
        pas, mapped_pages = entry
        del num_pages
        pt = self._require_pt()
        for i in range(mapped_pages):
            pt.unmap_page(va + i * PAGE_SIZE)
        self.machine.gpu_allocator.free_pages(pas)
        self._drop_resident(va, mapped_pages * PAGE_SIZE)
        self.flight.record(self.clock.now(), "MemUnmap",
                           (va, mapped_pages))

    def set_gpu_pgtable(self, memattr: int) -> None:
        self.flight.record(self.clock.now(), "SetPgtable", (memattr,))
        root = self._require_pt().root_pa
        if self.family == "mali":
            self.reg_write("AS0_TRANSTAB_LO", root & 0xFFFFFFFF)
            self.reg_write("AS0_TRANSTAB_HI", root >> 32)
            self.reg_write("AS0_MEMATTR", memattr)
            self.reg_write("AS0_COMMAND", mali_hw.AS_CMD_UPDATE)
        elif self.family == "adreno":
            self.reg_write("SMMU_TTBR0_LO", root & 0xFFFFFFFF)
            self.reg_write("SMMU_TTBR0_HI", root >> 32)
            self.reg_write("SMMU_CR0", memattr)
            self.reg_write("SMMU_TLBIALL", 1)
        else:
            self.reg_write("MMU_PT_PA_BASE", root >> 12)
            self.reg_write("MMU_CTRL", v3d_hw.MMU_CTRL_ENABLE
                           | v3d_hw.MMU_CTRL_TLB_CLEAR)

    def _cpu_access(self, va: int, size: int,
                    data: Optional[bytes] = None) -> bytes:
        pt = self._require_pt()
        out = bytearray()
        cursor = va
        remaining = size
        offset = 0
        while remaining > 0:
            entry = pt.lookup(cursor)
            if entry is None:
                raise ReplayError(
                    f"replay touches unmapped GPU VA {cursor:#x}")
            pa, _perms = entry
            in_page = cursor & (PAGE_SIZE - 1)
            chunk = min(remaining, PAGE_SIZE - in_page)
            if data is None:
                out += self.machine.memory.read(pa + in_page, chunk)
            else:
                self.machine.memory.write(pa + in_page,
                                          data[offset:offset + chunk])
            cursor += chunk
            offset += chunk
            remaining -= chunk
        return bytes(out)

    # -- resident-dump tracking (the replay fast path) ------------------------------------

    def _drop_resident(self, va: int, size: int) -> None:
        """Forget resident dumps overlapping [va, va+size).

        Called on every GPU-side store via the MMU write observer, so
        it must be cheap when nothing overlaps: a sorted index of base
        addresses narrows the scan to entries that could start inside
        ``[va - largest_dump, va + size)``, instead of walking every
        resident entry per write.
        """
        if not self._resident:
            return
        end = va + size
        bases = self._resident_bases
        lo = bisect.bisect_left(bases, va - self._resident_max + 1)
        hi = bisect.bisect_left(bases, end)
        if lo >= hi:
            return
        stale = [base for base in bases[lo:hi]
                 if va < base + self._resident[base][1]]
        for base in stale:
            del self._resident[base]
            bases.remove(base)

    def resident_digest(self, va: int) -> Optional[str]:
        """The content digest resident at ``va``, if any (debug/CLI)."""
        entry = self._resident.get(va)
        return entry[0] if entry is not None else None

    def forget_resident(self) -> None:
        """Drop all resident-dump knowledge, forcing the next replay to
        re-upload everything (benchmark baselines, paranoia mode)."""
        self._resident.clear()
        self._resident_bases.clear()
        self._resident_max = 0

    def upload(self, va: int, data: bytes,
               digest: Optional[str] = None) -> int:
        """Load dump bytes at ``va``; returns the bytes actually moved.

        When ``digest`` (or the computed content hash) matches what a
        previous upload left at the same address -- and nothing has
        dirtied the range since -- the copy is skipped entirely: the
        bytes are already GPU-resident. Repeated replays of one
        recording and §5.4 delay-injection retries hit this path.

        ``data`` may be any C-contiguous read-only buffer (``bytes`` or
        a read-only ``memoryview`` into a vault chunk buffer): residency
        hashing, length checks and per-page writes all operate on the
        view without materializing an intermediate ``bytes`` copy.
        """
        if digest is None:
            digest = hashlib.sha256(data).hexdigest()
        if self._resident.get(va) == (digest, len(data)):
            self.clock.advance(RESIDENT_CHECK_NS)
            if self.counters.enabled:
                self.counters.note_upload_skipped(len(data))
            self.flight.record(self.clock.now(), "Upload",
                               (va, len(data), 0))
            return 0
        self.clock.advance(max(1, len(data) * SEC // UPLOAD_BW))
        self._drop_resident(va, len(data))
        self._cpu_access(va, len(data), data)
        self._resident[va] = (digest, len(data))
        bisect.insort(self._resident_bases, va)
        self._resident_max = max(self._resident_max, len(data))
        self.flight.record(self.clock.now(), "Upload",
                           (va, len(data), len(data)))
        return len(data)

    def copy_to_gpu(self, gaddr: int, data: bytes) -> None:
        self.clock.advance(max(1, len(data) * SEC // UPLOAD_BW))
        self._drop_resident(gaddr, len(data))
        self._cpu_access(gaddr, len(data), data)
        self.flight.record(self.clock.now(), "CopyToGpu",
                           (gaddr, len(data)))

    def copy_from_gpu(self, gaddr: int, size: int) -> bytes:
        self.clock.advance(max(1, size * SEC // UPLOAD_BW))
        out = self._cpu_access(gaddr, size)
        self.flight.record(self.clock.now(), "CopyFromGpu",
                           (gaddr, size))
        return out

    # -- checkpoint support (§5.3) --------------------------------------------------------

    def mapped_bytes(self) -> int:
        return sum(pages * PAGE_SIZE for _pas, pages in
                   self._regions.values())

    def snapshot_memory(self) -> Dict[int, bytes]:
        """Copy every mapped region (the expensive part of checkpoints)."""
        out: Dict[int, bytes] = {}
        total_pages = 0
        for va, (_pas, pages) in self._regions.items():
            out[va] = self._cpu_access(va, pages * PAGE_SIZE)
            total_pages += pages
        self.clock.advance(max(1, self.mapped_bytes() * SEC // UPLOAD_BW)
                           + PAGE_SYNC_NS * total_pages)
        return out

    def restore_memory(self, snapshot: Dict[int, bytes]) -> None:
        total_pages = 0
        for va, data in snapshot.items():
            self._drop_resident(va, len(data))
            self._cpu_access(va, len(data), data)
            total_pages += (len(data) + PAGE_SIZE - 1) // PAGE_SIZE
        self.clock.advance(max(1, self.mapped_bytes() * SEC // UPLOAD_BW)
                           + PAGE_SYNC_NS * total_pages)

    # -- teardown ------------------------------------------------------------------------------

    def release_memory(self) -> None:
        """Free every mapped region and the page tables themselves."""
        self.forget_resident()
        for va in list(self._regions):
            pas, pages = self._regions.pop(va)
            if self._pt is not None:
                for i in range(pages):
                    self._pt.unmap_page(va + i * PAGE_SIZE)
            self.machine.gpu_allocator.free_pages(pas)
        if self._pt is not None:
            self._pt.destroy()
            self._pt = None

    def release(self) -> None:
        self.release_memory()
        self.disconnect_irq()
        mmu = self.machine.gpu.mmu
        if mmu.write_observer is self._drop_resident:
            mmu.write_observer = None
