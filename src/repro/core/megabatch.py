"""Mega-batch execution: one fused replay for N same-digest requests.

The serve batcher (PR 4) already groups same-digest traffic onto one
warm worker, but then replays each request sequentially -- N trips
through the action chain for N requests whose chains are *identical by
construction* (same recording digest). The mega executor runs the
chain once and threads the batch through the data instead:

- inputs for all N members are stacked into a
  :class:`~repro.gpu.shader_exec.BatchEnv` armed on the GPU device, so
  every shader pass evaluates N member tensors in one go while member
  0 still flows through GPU memory (post-replay machine state equals a
  solo replay of the head request);
- runs of consecutive MMIO register writes execute as precompiled
  :class:`~repro.core.compiled.Superblock` bulk applications -- one
  dispatch overhead and one pacing computation per run instead of one
  per action.

The executor reuses the bound per-action closures of an existing
:class:`~repro.core.compiled.CompiledExecutor`; the unfused fast path
and the reference interpreter stay byte-identical and untouched as the
differential anchors. Anything the batch dimension cannot represent
raises :class:`~repro.errors.MegaBatchDivergence`, and callers fall
back to per-request replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.compiled import FLAG_IRQ_EXIT, FLAG_KICK, CompiledExecutor
from repro.core.interpreter import ACTION_OVERHEAD_NS, InterpreterStats
from repro.core.nano_driver import MMIO_ACCESS_NS, UPLOAD_BW
from repro.core.recording import Recording
from repro.errors import MegaBatchDivergence, ReplayAborted, ReplayError
from repro.gpu.shader_exec import BatchEnv
from repro.obs.metrics import LATENCY_BUCKETS_NS
from repro.units import SEC


class MegaExecutor:
    """Drives one fused replay over a bound :class:`CompiledExecutor`.

    Not reentrant; create one per fused replay. ``superblocks_run``
    and ``superblock_actions`` report how much of the chain executed
    fused, for spans/metrics and tests.
    """

    def __init__(self, base: CompiledExecutor):
        self.base = base
        self.superblocks_run = 0
        self.superblock_actions = 0

    def execute(self, deposit_inputs: Optional[Callable[[], None]] = None,
                should_yield: Optional[Callable[[], bool]] = None
                ) -> InterpreterStats:
        """Run the chain once; semantics mirror ``CompiledExecutor.
        execute`` except for superblock pacing (see ``Superblock``).

        The caller owns arming/clearing ``gpu.mega_batch``; this method
        only walks the action chain.
        """
        base = self.base
        base.stats = InterpreterStats()
        base._job_span = None
        stats = base.stats
        obs = base.obs
        emit = obs.enabled
        clock = base.nano.clock
        clock_now = clock.now
        clock_advance = clock.advance
        steps = base._steps
        names = base.program.names
        srcs = base.program.srcs
        flags = base.program.flags
        intervals = base.program.intervals
        prologue_len = base.program.recording.meta.prologue_len
        superblocks = base.program.superblocks()
        actions_ctr = obs.counter("replay.actions")
        pacing_ctr = obs.counter("replay.pacing_wait_ns")
        sb_ctr = obs.counter("replay.superblocks")
        sb_actions_ctr = obs.counter("replay.superblock.actions")
        sb_hist = obs.histogram("replay.superblock.span_ns",
                                LATENCY_BUCKETS_NS) if emit else None
        actions_track = base._actions_track
        jobs_track = base._jobs_track

        flight = base._flight
        flight_record = flight.record

        executed = 0
        pacing_total = 0
        last_end = clock_now()

        def on_flag(flag: int, index: int) -> None:
            if flag & FLAG_KICK:
                if stats.first_kick_at_ns < 0:
                    stats.first_kick_at_ns = clock_now()
                stats.jobs_kicked += 1
                flight_record(clock_now(), "JobKick",
                              (stats.jobs_kicked - 1,))
                if base._job_span is not None:
                    obs.end(base._job_span)
                base._job_span = obs.begin(
                    f"job[{stats.jobs_kicked - 1}]", jobs_track,
                    cat="replay-job", args={"index": index})
            if flag & FLAG_IRQ_EXIT:
                if base._job_span is not None:
                    obs.end(base._job_span)
                    base._job_span = None

        try:
            index = 0
            n = len(steps)
            while index < n:
                if should_yield is not None and should_yield():
                    raise ReplayAborted("preempted by the environment",
                                        index, srcs[index])

                block = superblocks.get(index)
                if block is not None:
                    # One dispatch + one pacing computation for the
                    # whole RegWrite run: the block occupies
                    # max(sum of member intervals, overhead + length *
                    # MMIO cost) of virtual time from its start.
                    sb_t0 = clock_now()
                    target_end = last_end + block.pacing_ns
                    clock_advance(ACTION_OVERHEAD_NS)
                    for i in range(block.start, block.end):
                        flight.action_index = i
                        steps[i](i)
                        executed += 1
                        flag = flags[i]
                        if flag:
                            on_flag(flag, i)
                    now = clock_now()
                    if target_end > now:
                        wait = target_end - now
                        pacing_total += wait
                        if emit:
                            pacing_ctr.inc(wait)
                        flight_record(now, "Pacing", (wait,))
                        clock_advance(wait)
                    self.superblocks_run += 1
                    self.superblock_actions += block.length
                    if emit:
                        actions_ctr.inc(block.length)
                        sb_ctr.inc()
                        sb_actions_ctr.inc(block.length)
                        sb_hist.observe(clock_now() - sb_t0)
                        obs.complete(
                            f"superblock[{block.start}:{block.end}]",
                            actions_track, sb_t0, clock_now(),
                            cat="replay-superblock",
                            args={"start": block.start,
                                  "len": block.length,
                                  "pacing_ns": block.pacing_ns})
                    last_end = clock_now()
                    index = block.end
                    continue

                flight.action_index = index
                interval = intervals[index]
                target = last_end + interval
                now = clock_now()
                if target > now:
                    wait = target - now
                    pacing_total += wait
                    if emit:
                        pacing_ctr.inc(wait)
                    flight_record(now, "Pacing", (wait,))
                    t_start = target
                    clock_advance(wait + ACTION_OVERHEAD_NS)
                else:
                    t_start = now
                    clock_advance(ACTION_OVERHEAD_NS)

                steps[index](index)
                executed += 1
                if emit:
                    actions_ctr.inc()
                    obs.complete(names[index], actions_track, t_start,
                                 clock_now(), cat="replay-action",
                                 args={"index": index,
                                       "src": srcs[index]})
                flag = flags[index]
                if flag:
                    on_flag(flag, index)
                last_end = clock_now()

                if deposit_inputs is not None and \
                        index == prologue_len - 1:
                    deposit_inputs()
                    deposit_inputs = None
                    last_end = clock_now()
                index += 1
        except BaseException:
            if base._job_span is not None:
                obs.end(base._job_span)
                base._job_span = None
            raise
        finally:
            stats.actions_executed += executed
            stats.pacing_wait_ns += pacing_total

        if deposit_inputs is not None:
            deposit_inputs()
        return stats


@dataclass
class MegaReplayResult:
    """Outcome of one fused mega-batch replay of N member requests."""

    #: Per-member output dicts; index 0 is the head request, whose
    #: replay also defines the post-replay machine state.
    outputs: List[Dict[str, np.ndarray]]
    duration_ns: int
    stats: InterpreterStats
    #: How many members the fused pass served.
    batch: int
    #: Superblocks executed (fused RegWrite runs).
    superblocks: int = 0
    startup_ns: int = 0


def replay_mega(replayer,
                inputs_list: Sequence[Optional[Dict[str, np.ndarray]]],
                should_yield: Optional[Callable[[], bool]] = None
                ) -> MegaReplayResult:
    """Replay the staged recording for N inputs in one fused pass.

    The action chain executes once (member 0 flows through GPU
    memory exactly like :meth:`replay`, so post-replay machine
    state equals a solo replay of the head request); members
    1..N-1 live in a batch overlay evaluated by the batched shader
    executor. Output tensors absent from the overlay were produced
    batch-independently -- no input-dependent data flowed into
    them, so member 0's bytes are correct for every member.

    No internal retry ladder: a :class:`ReplayError` (including
    :class:`MegaBatchDivergence`) propagates so callers can fall
    back to per-request replay, which handles arbitrary aliasing
    and recovery.
    """
    recording = replayer._require_loaded()
    if not inputs_list:
        raise ReplayError("empty mega-batch")
    members = [dict(m or {}) for m in inputs_list]
    if len({frozenset(m) for m in members}) > 1:
        replayer.machine.obs.counter("replay.mega.diverged").inc()
        raise MegaBatchDivergence(
            "mega-batch members provide different input sets")
    for member in members:
        replayer._check_inputs(recording, member)
    replayer._last_inputs = members[0]
    n = len(members)

    executor = replayer._fast_executor(False)
    if executor is None:
        raise ReplayError(
            "mega-batch replay requires the compiled fast path")

    t_start = replayer.machine.clock.now()
    obs = replayer.machine.obs
    obs_track = obs.track("replay", "session")
    span = obs.begin(
        f"replayer:replay-mega:{recording.meta.workload}", obs_track,
        cat="replay", args={"batch": n})
    obs.counter("replay.attempts").inc()
    obs.counter("replay.mega.batches").inc()
    obs.counter("replay.mega.requests").inc(n)
    env = BatchEnv(n)
    gpu = replayer.machine.gpu
    gpu.counters.begin_session(recording.digest())
    mega = MegaExecutor(executor)
    try:
        gpu.mega_batch = env
        try:
            stats = mega.execute(
                deposit_inputs=lambda: _deposit_mega(
                    replayer, recording, members, env),
                should_yield=replayer._yield_predicate(should_yield))
        finally:
            gpu.mega_batch = None
        replayer._note_session_maps(recording)
        all_outputs = [replayer._extract(recording)]
        extract_ns = 0
        for k in range(1, n):
            member_out: Dict[str, np.ndarray] = {}
            for io in recording.meta.outputs:
                row = env.fetch(io.gaddr, io.size)
                if row is None:
                    member_out[io.name] = all_outputs[0][io.name].copy()
                else:
                    array = np.ascontiguousarray(row[k])
                    if io.shape:
                        array = array.reshape(io.shape)
                    member_out[io.name] = array
                # Members beyond the head pay the same copy-out
                # bandwidth as a solo extract, without an MMU walk.
                extract_ns += max(1, io.size * SEC // UPLOAD_BW)
            all_outputs.append(member_out)
        if extract_ns:
            replayer.machine.clock.advance(extract_ns)
    except ReplayAborted:
        obs.end(span, args={"aborted": True})
        replayer._note_flight_metrics(obs)
        raise
    except ReplayError as error:
        replayer.machine.flight.record(
            replayer.machine.clock.now(), "Divergence",
            (1, type(error).__name__))
        obs.counter("replay.mega.diverged").inc()
        obs.end(span, args={"failed": True})
        replayer._note_flight_metrics(obs)
        raise
    startup = (stats.first_kick_at_ns - t_start
               if stats.first_kick_at_ns >= 0 else 0)
    obs.end(span, args={"batch": n,
                        "superblocks": mega.superblocks_run})
    replayer._note_flight_metrics(obs)
    return MegaReplayResult(
        outputs=all_outputs,
        duration_ns=replayer.machine.clock.now() - t_start,
        stats=stats,
        batch=n,
        superblocks=mega.superblocks_run,
        startup_ns=startup)

def _deposit_mega(replayer, recording: Recording,
                  members: List[Dict[str, np.ndarray]],
                  env: BatchEnv) -> None:
    n = len(members)
    for io in recording.meta.inputs:
        if io.name not in members[0]:
            continue
        stacked = np.stack([
            np.ascontiguousarray(member[io.name], dtype=np.float32)
            for member in members])
        head = stacked[0].tobytes()
        if len(head) != io.size:
            raise ReplayError(
                f"input {io.name!r}: {len(head)} bytes provided, "
                f"recording expects {io.size}")
        replayer.nano.copy_to_gpu(io.gaddr, head)
        # Members beyond the head pay copy bandwidth into the batch
        # overlay instead of GPU memory.
        replayer.machine.clock.advance(
            (n - 1) * max(1, io.size * SEC // UPLOAD_BW))
        env.seed(io.gaddr, stacked)


# Re-exported for callers sizing superblock floors in tests/benches.
__all__ = ["MegaExecutor", "MegaReplayResult", "replay_mega",
           "ACTION_OVERHEAD_NS", "MMIO_ACCESS_NS"]
