"""Compiled replay programs: the serve loop's fast path.

The reference interpreter (:mod:`repro.core.interpreter`) walks the
action list with an ``isinstance`` chain, resolves register names
through the nano driver's map on every access, and looks pacing
intervals up per action. That cost is paid on *every* replay -- the
opposite of the steady-state serve regime (same recording, new inputs,
many times) that replay is supposed to win.

``compile_program`` lowers a *verified* recording once:

- every action becomes a small spec tuple with its register name
  pre-resolved to an absolute MMIO address (via
  :meth:`NanoGpuDriver.resolve`) and its dump bytes/digest pre-fetched;
- the pacing schedule becomes a flat array of minimum intervals;
- Upload actions are pre-grouped into an upload plan (address, size,
  content digest per segment) so resident-dump behaviour is
  inspectable before running anything.

A :class:`CompiledProgram` is machine-independent data bound to a
board configuration (family + MMIO base + register map), so the
replayer's content-addressed load cache can share it between replayer
instances. :meth:`CompiledProgram.bind` attaches it to one nano driver,
building per-action closures (bound-method dispatch, no ``isinstance``)
that the executor runs in a tight loop.

The fast path must be *observably identical* to the reference
interpreter: same outputs, same :class:`InterpreterStats`, same
chokepoint/trace events at the same virtual times. Only wall-clock
time differs. The differential suite in
``tests/core/test_compiled_fastpath.py`` holds this line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.core import actions as act
from repro.core.interpreter import (ACTION_OVERHEAD_NS,
                                    IMPLICIT_IRQ_TIMEOUT_NS,
                                    InterpreterOptions, InterpreterStats)
from repro.core.nano_driver import NanoGpuDriver
from repro.core.recording import Recording
from repro.errors import (ReplayAborted, ReplayDivergence, ReplayError,
                          ReplayTimeout)
from repro.obs.metrics import LATENCY_BUCKETS_NS

#: Per-action flags checked in the executor's main loop (cheap integer
#: tests replacing the interpreter's post-dispatch ``isinstance``).
FLAG_KICK = 1
FLAG_IRQ_EXIT = 2


@dataclass(frozen=True)
class UploadSegment:
    """One entry of a program's precomputed upload plan."""

    action_index: int
    addr: int
    dump_index: int
    size: int
    digest: str


class CompiledProgram:
    """A verified recording lowered for fast repeated replay.

    Holds no reference to a specific machine; ``board_key`` records
    the (family, mmio_base) the register addresses were resolved
    against, and :meth:`bind` refuses a mismatched nano driver.
    """

    def __init__(self, recording: Recording,
                 specs: List[Tuple], names: List[str],
                 srcs: List[str], flags: List[int],
                 intervals: List[int],
                 upload_plan: List[UploadSegment],
                 board_key: Tuple[str, int]):
        self.recording = recording
        self.specs = specs
        self.names = names
        self.srcs = srcs
        self.flags = flags
        self.intervals = intervals
        self.upload_plan = upload_plan
        self.board_key = board_key
        self._superblocks: Optional[Dict[int, "Superblock"]] = None

    def __len__(self) -> int:
        return len(self.specs)

    def superblocks(self) -> Dict[int, "Superblock"]:
        """Superblock index for the mega-batch executor (lazy, cached).

        Purely derived data: the normal :class:`CompiledExecutor` never
        reads it, so the existing fast path is untouched.
        """
        if self._superblocks is None:
            self._superblocks = compile_superblocks(self)
        return self._superblocks

    @property
    def upload_plan_bytes(self) -> int:
        return sum(seg.size for seg in self.upload_plan)

    def bind(self, nano: NanoGpuDriver) -> "CompiledExecutor":
        if (nano.family, nano.mmio_base) != self.board_key:
            raise ReplayError(
                f"compiled program targets {self.board_key}, nano "
                f"driver is ({nano.family!r}, {nano.mmio_base:#x})")
        return CompiledExecutor(self, nano)


# Spec kinds (first element of each spec tuple).
_REG_WRITE = 0
_REG_READ_ONCE = 1
_REG_READ_WAIT = 2
_SET_PGTABLE = 3
_MAP = 4
_UNMAP = 5
_UPLOAD = 6
_WAIT_IRQ = 7
_IRQ_ENTER = 8
_IRQ_EXIT = 9
_SYNTH_COPY = 10
_UNKNOWN = 11


def compile_program(recording: Recording,
                    nano: NanoGpuDriver) -> CompiledProgram:
    """Lower ``recording`` against ``nano``'s board configuration.

    Must only be called after :func:`~repro.core.verifier.
    verify_recording` accepted the recording: compilation resolves
    every register name eagerly and assumes dump indices are in range.
    """
    specs: List[Tuple] = []
    names: List[str] = []
    srcs: List[str] = []
    flags: List[int] = []
    intervals: List[int] = []
    upload_plan: List[UploadSegment] = []

    for index, action in enumerate(recording.actions):
        names.append(type(action).__name__)
        srcs.append(action.src)
        intervals.append(action.min_interval_ns)
        flag = 0
        if isinstance(action, act.RegWrite):
            if action.is_job_kick:
                flag |= FLAG_KICK
            specs.append((_REG_WRITE, nano.resolve(action.reg),
                          action.val, action.mask))
        elif isinstance(action, act.RegReadOnce):
            specs.append((_REG_READ_ONCE, nano.resolve(action.reg),
                          action.val, action.ignore, action.reg))
        elif isinstance(action, act.RegReadWait):
            specs.append((_REG_READ_WAIT, nano.resolve(action.reg),
                          action.mask, action.val, action.timeout_ns,
                          action.reg))
        elif isinstance(action, act.SetGpuPgtable):
            specs.append((_SET_PGTABLE, action.memattr))
        elif isinstance(action, act.MapGpuMem):
            specs.append((_MAP, action.addr, action.num_pages,
                          action.raw_pte_flags))
        elif isinstance(action, act.UnmapGpuMem):
            specs.append((_UNMAP, action.addr, action.num_pages))
        elif isinstance(action, act.Upload):
            dump = recording.dumps[action.dump_index]
            specs.append((_UPLOAD, action.addr, dump.data, dump.digest,
                          dump.size))
            upload_plan.append(UploadSegment(
                index, action.addr, action.dump_index, dump.size,
                dump.digest))
        elif isinstance(action, act.WaitIrq):
            specs.append((_WAIT_IRQ, action.timeout_ns))
        elif isinstance(action, act.IrqEnter):
            specs.append((_IRQ_ENTER,))
        elif isinstance(action, act.IrqExit):
            flag |= FLAG_IRQ_EXIT
            specs.append((_IRQ_EXIT,))
        elif isinstance(action, (act.CopyToGpu, act.CopyFromGpu)):
            specs.append((_SYNTH_COPY, type(action).__name__))
        else:
            specs.append((_UNKNOWN, type(action).__name__))
        flags.append(flag)

    return CompiledProgram(recording, specs, names, srcs, flags,
                           intervals, upload_plan,
                           (nano.family, nano.mmio_base))


@dataclass(frozen=True)
class Superblock:
    """A run of consecutive RegWrite actions fused into one dispatch.

    The mega-batch executor pays one dispatch overhead and one pacing
    computation for the whole run instead of one per action: the block
    occupies ``max(pacing_ns, ACTION_OVERHEAD_NS + length *
    MMIO_ACCESS_NS)`` of virtual time from its start, where
    ``pacing_ns`` is the sum of the members' minimum intervals.
    """

    start: int
    end: int          # half-open [start, end)
    pacing_ns: int    # sum of member minimum pacing intervals

    @property
    def length(self) -> int:
        return self.end - self.start


def compile_superblocks(program: CompiledProgram) -> Dict[int, Superblock]:
    """Index maximal RegWrite runs (length >= 2) by their start action.

    The action right before the input-deposit point
    (``prologue_len - 1``) is never fused: deposits must still fire
    between that action and the next, exactly as in the unfused path.
    """
    blocks: Dict[int, Superblock] = {}
    barrier = program.recording.meta.prologue_len - 1
    specs = program.specs
    intervals = program.intervals
    i, n = 0, len(specs)
    while i < n:
        if specs[i][0] != _REG_WRITE or i == barrier:
            i += 1
            continue
        j = i
        while j < n and specs[j][0] == _REG_WRITE and j != barrier:
            j += 1
        if j - i >= 2:
            blocks[i] = Superblock(i, j, sum(intervals[i:j]))
        i = j
    return blocks


class CompiledExecutor:
    """A compiled program bound to one nano driver and obs session.

    Reusable across replays: ``execute`` resets per-run state. The
    per-action closures are built once at bind time and capture the
    nano driver's bound methods plus pre-created obs counters, so the
    hot loop does no name resolution, no ``isinstance`` dispatch and
    no metric-registry lookups.
    """

    def __init__(self, program: CompiledProgram, nano: NanoGpuDriver):
        self.program = program
        self.nano = nano
        self.obs = nano.machine.obs
        self.stats = InterpreterStats()
        self._actions_track = self.obs.track("replay", "actions")
        self._jobs_track = self.obs.track("replay", "jobs")
        self._job_span = None
        self._flight = nano.flight
        self._steps: List[Callable[[int], None]] = [
            self._build_step(i) for i in range(len(program))]

    # -- closure factory ----------------------------------------------------

    def _build_step(self, index: int) -> Callable[[int], None]:
        spec = self.program.specs[index]
        src = self.program.srcs[index]
        kind = spec[0]
        nano = self.nano
        obs = self.obs
        # With observability off every counter is a null object; build
        # closures without the no-op calls so the hot loop pays for
        # metrics only when a session is attached. (The executor is
        # re-bound when the machine's obs session changes.)
        live = obs.enabled

        if kind == _REG_WRITE:
            _, addr, val, mask = spec
            write_at = nano.reg_write_at
            if not live:
                def step(i, _w=write_at, _a=addr, _v=val, _m=mask):
                    _w(_a, _v, _m)
                return step
            ctr = obs.counter("replay.reg_writes")

            def step(i, _w=write_at, _c=ctr, _a=addr, _v=val, _m=mask):
                _c.inc()
                _w(_a, _v, _m)
            return step

        if kind == _REG_READ_ONCE:
            _, addr, val, ignore, reg = spec
            read_at = nano.reg_read_at
            ctr = obs.counter("replay.reg_reads") if live else None

            def step(i):
                if ctr is not None:
                    ctr.inc()
                value = read_at(addr)
                if not ignore and value != val:
                    raise ReplayDivergence(
                        f"register {reg} read {value:#x}, recorded "
                        f"{val:#x}", i, src)
            return step

        if kind == _REG_READ_WAIT:
            _, addr, mask, val, timeout_ns, reg = spec
            poll_at = nano.reg_poll_at
            ctr = obs.counter("replay.reg_polls") if live else None

            def step(i):
                if ctr is not None:
                    ctr.inc()
                if not poll_at(addr, mask, val, timeout_ns):
                    raise ReplayTimeout(
                        f"poll of {reg} (mask {mask:#x}, want "
                        f"{val:#x}) timed out", i, src)
            return step

        if kind == _SET_PGTABLE:
            _, memattr = spec
            set_pgtable = nano.set_gpu_pgtable

            def step(i):
                set_pgtable(memattr)
            return step

        if kind == _MAP:
            _, addr, num_pages, pte_flags = spec
            map_mem = nano.map_gpu_mem

            def step(i):
                map_mem(addr, num_pages, pte_flags)
            return step

        if kind == _UNMAP:
            _, addr, num_pages = spec
            unmap_mem = nano.unmap_gpu_mem

            def step(i):
                unmap_mem(addr, num_pages)
            return step

        if kind == _UPLOAD:
            _, addr, data, digest, size = spec
            upload = nano.upload
            clock = nano.clock
            if not live:
                def step(i):
                    t0 = clock.now()
                    uploaded = upload(addr, data, digest=digest)
                    stats = self.stats
                    stats.upload_ns += clock.now() - t0
                    stats.upload_bytes += uploaded
                    skipped = size - uploaded
                    if skipped:
                        stats.upload_skipped_bytes += skipped
                return step
            uploads_ctr = obs.counter("replay.uploads")
            bytes_ctr = obs.counter("replay.upload_bytes")
            skip_ctr = obs.counter("replay.upload_skipped_bytes")

            def step(i):
                t0 = clock.now()
                uploaded = upload(addr, data, digest=digest)
                stats = self.stats
                stats.upload_ns += clock.now() - t0
                stats.upload_bytes += uploaded
                uploads_ctr.inc()
                bytes_ctr.inc(uploaded)
                skipped = size - uploaded
                if skipped:
                    stats.upload_skipped_bytes += skipped
                    skip_ctr.inc(skipped)
            return step

        if kind == _WAIT_IRQ:
            _, timeout_ns = spec
            wait_irq = nano.wait_irq
            clock = nano.clock
            if not live:
                def step(i):
                    stats = self.stats
                    stats.irqs_waited += 1
                    t0 = clock.now()
                    ok = wait_irq(timeout_ns)
                    stats.irq_wait_ns += clock.now() - t0
                    if not ok:
                        raise ReplayTimeout(
                            "no GPU interrupt arrived in time", i, src)
                return step
            ctr = obs.counter("replay.irq_waits")
            hist = obs.histogram("replay.irq_wait_ns",
                                 LATENCY_BUCKETS_NS)

            def step(i):
                stats = self.stats
                stats.irqs_waited += 1
                ctr.inc()
                t0 = clock.now()
                ok = wait_irq(timeout_ns)
                waited = clock.now() - t0
                stats.irq_wait_ns += waited
                hist.observe(waited)
                if not ok:
                    raise ReplayTimeout(
                        "no GPU interrupt arrived in time", i, src)
            return step

        if kind == _IRQ_ENTER:
            wait_irq = nano.wait_irq
            clock = nano.clock
            enter = nano.enter_irq_context
            if not live:
                def step(i):
                    if nano.pending_irqs == 0:
                        t0 = clock.now()
                        ok = wait_irq(IMPLICIT_IRQ_TIMEOUT_NS)
                        self.stats.irq_wait_ns += clock.now() - t0
                        if not ok:
                            raise ReplayTimeout(
                                "no GPU interrupt for asynchronous irq "
                                "context", i, src)
                    enter()
                return step
            ctr = obs.counter("replay.irq_waits")
            hist = obs.histogram("replay.irq_wait_ns",
                                 LATENCY_BUCKETS_NS)

            def step(i):
                if nano.pending_irqs == 0:
                    # Record-time interrupt preempted the CPU; replay
                    # synchronizes on its arrival here instead.
                    ctr.inc()
                    t0 = clock.now()
                    ok = wait_irq(IMPLICIT_IRQ_TIMEOUT_NS)
                    waited = clock.now() - t0
                    self.stats.irq_wait_ns += waited
                    hist.observe(waited)
                    if not ok:
                        raise ReplayTimeout(
                            "no GPU interrupt for asynchronous irq "
                            "context", i, src)
                enter()
            return step

        if kind == _IRQ_EXIT:
            exit_irq = nano.exit_irq_context

            def step(i):
                exit_irq()
            return step

        if kind == _SYNTH_COPY:
            _, type_name = spec

            def step(i):
                raise ReplayError(
                    f"{type_name} actions are synthesized by the "
                    "replayer", i, src)
            return step

        _, type_name = spec

        def step(i):
            raise ReplayError(f"unknown action {type_name}", i, src)
        return step

    # -- execution ----------------------------------------------------------

    def execute(self, options: Optional[InterpreterOptions] = None,
                deposit_inputs: Optional[Callable[[], None]] = None,
                start_index: int = 0,
                should_yield: Optional[Callable[[], bool]] = None
                ) -> InterpreterStats:
        """Run the program; semantics mirror ``ReplayInterpreter``.

        ``options.use_recorded_intervals`` is not supported here -- the
        replayer routes that (and checkpointing) to the reference
        interpreter.
        """
        options = options or InterpreterOptions()
        if options.use_recorded_intervals:
            raise ReplayError(
                "compiled programs pace with minimum intervals; use "
                "the reference interpreter for recorded intervals")
        self.stats = InterpreterStats()
        self._job_span = None
        stats = self.stats
        obs = self.obs
        emit = obs.enabled
        clock = self.nano.clock
        clock_now = clock.now
        clock_advance = clock.advance
        steps = self._steps
        names = self.program.names
        srcs = self.program.srcs
        flags = self.program.flags
        intervals = self.program.intervals
        prologue_len = self.program.recording.meta.prologue_len
        actions_ctr = obs.counter("replay.actions")
        pacing_ctr = obs.counter("replay.pacing_wait_ns")
        actions_track = self._actions_track
        jobs_track = self._jobs_track
        extra_delay = options.extra_delay_ns
        delay_range = options.extra_delay_range

        if start_index > 0 and deposit_inputs is not None:
            # Resuming mid-stream (checkpoint restore): inputs are
            # already in GPU memory from the original attempt.
            deposit_inputs = None

        flight = self._flight
        flight_record = flight.record

        # Loop-local accumulators, written back in ``finally`` so a
        # divergence mid-stream leaves stats as the reference path
        # would.
        executed = 0
        pacing_total = 0
        last_end = clock_now()
        try:
            for index in range(start_index, len(steps)):
                flight.action_index = index
                if should_yield is not None and should_yield():
                    raise ReplayAborted("preempted by the environment",
                                        index, srcs[index])

                interval = intervals[index]
                if extra_delay and (delay_range is None or
                                    delay_range[0] <= index
                                    < delay_range[1]):
                    interval += extra_delay
                target = last_end + interval
                now = clock_now()
                if target > now:
                    # Pacing wait and dispatch overhead are one clock
                    # advance; events still fire at their due times, so
                    # this is invisible in virtual time.
                    wait = target - now
                    pacing_total += wait
                    if emit:
                        pacing_ctr.inc(wait)
                    flight_record(now, "Pacing", (wait,))
                    t_start = target
                    clock_advance(wait + ACTION_OVERHEAD_NS)
                else:
                    t_start = now
                    clock_advance(ACTION_OVERHEAD_NS)

                steps[index](index)
                executed += 1
                if emit:
                    actions_ctr.inc()
                    obs.complete(names[index], actions_track, t_start,
                                 clock_now(), cat="replay-action",
                                 args={"index": index,
                                       "src": srcs[index]})
                flag = flags[index]
                if flag:
                    if flag & FLAG_KICK:
                        if stats.first_kick_at_ns < 0:
                            stats.first_kick_at_ns = clock_now()
                        stats.jobs_kicked += 1
                        flight_record(clock_now(), "JobKick",
                                      (stats.jobs_kicked - 1,))
                        if self._job_span is not None:
                            obs.end(self._job_span)
                        self._job_span = obs.begin(
                            f"job[{stats.jobs_kicked - 1}]", jobs_track,
                            cat="replay-job", args={"index": index})
                    if flag & FLAG_IRQ_EXIT:
                        if self._job_span is not None:
                            obs.end(self._job_span)
                            self._job_span = None
                last_end = clock_now()

                if deposit_inputs is not None and \
                        index == prologue_len - 1:
                    deposit_inputs()
                    deposit_inputs = None
                    last_end = clock_now()
        except BaseException:
            # Mirror the reference interpreter's span hygiene: a
            # failed replay must not leak an open job span.
            if self._job_span is not None:
                obs.end(self._job_span)
                self._job_span = None
            raise
        finally:
            stats.actions_executed += executed
            stats.pacing_wait_ns += pacing_total

        if deposit_inputs is not None:
            # Degenerate recording with no prologue: deposit up front.
            deposit_inputs()
        return stats
