"""The recording container and its compressed binary file format.

A recording encodes a fixed sequence of GPU jobs: replay actions plus
the memory dumps they upload, and metadata describing the GPU it was
captured on and the workload's input/output interface. Files are
zlib-compressed (Section 6.2), giving the few-hundred-KB sizes of
Table 6.

Format (little-endian): a 10-byte plain header (magic, version,
flags), then the zlib-compressed body: metadata, string table,
actions, dumps. The format is deliberately self-contained -- the
replayer needs nothing else.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core import actions as act
from repro.core.dumps import MemoryDump
from repro.errors import SerializationError
from repro.soc.memory import PAGE_SIZE

MAGIC = b"GRRC"
VERSION = 1


@dataclass(frozen=True)
class IoBuffer:
    """An input or output interface of a recording (Section 4.4).

    ``optional`` marks inputs the app *may* supply (the "record by
    address + optional value override" pattern): e.g. training weights
    are deposited before the first iteration and then live in GPU
    memory across replays.
    """

    name: str
    gaddr: int
    size: int
    shape: Tuple[int, ...] = ()
    optional: bool = False


@dataclass
class RecordingMeta:
    """Provenance and interface metadata."""

    gpu_model: str = ""
    family: str = ""
    pte_format: str = ""
    board: str = ""
    workload: str = ""
    api: str = ""
    framework: str = ""
    memattr: int = 0
    n_jobs: int = 0
    reg_io: int = 0
    #: Actions before this index set up the address space; input
    #: deposit happens right after them.
    prologue_len: int = 0
    inputs: List[IoBuffer] = field(default_factory=list)
    outputs: List[IoBuffer] = field(default_factory=list)
    #: Firmware power/clock calls needed before MMIO works (baremetal).
    power_sequence: List[Tuple[int, int, int]] = field(default_factory=list)


class Recording:
    """Actions + dumps + metadata for one recorded GPU phase."""

    def __init__(self, meta: RecordingMeta,
                 actions: List[act.Action],
                 dumps: List[MemoryDump]):
        self.meta = meta
        self.actions = actions
        self.dumps = dumps
        self._digest: Optional[str] = None

    # -- content addressing --------------------------------------------------

    def digest(self) -> str:
        """Stable content hash (hex SHA-256 of the uncompressed body).

        Two recordings with identical metadata, actions and dumps have
        the same digest regardless of compression, which file they
        came from, or which process decoded them. The replay fast path
        keys its load cache on it. Memoized: recordings are treated as
        immutable once they reach the replayer (mutating passes such
        as cross-SKU patching build new Recording objects).
        """
        if self._digest is None:
            self._digest = hashlib.sha256(_encode_body(self)).hexdigest()
        return self._digest

    # -- accounting ---------------------------------------------------------

    def dump_bytes(self) -> int:
        return sum(d.size for d in self.dumps)

    def peak_gpu_pages(self) -> int:
        """Maximum concurrently-mapped GPU pages across the action stream.

        This is the §5.1 "maximum GPU physical memory usage" scan that
        lets apps reject memory-hungry recordings before replay.
        """
        live: Dict[int, int] = {}
        peak = 0
        for action in self.actions:
            if isinstance(action, act.MapGpuMem):
                live[action.addr] = action.num_pages
                peak = max(peak, sum(live.values()))
            elif isinstance(action, act.UnmapGpuMem):
                live.pop(action.addr, None)
        return peak

    def summary(self) -> Dict[str, object]:
        return {
            "workload": self.meta.workload,
            "gpu": self.meta.gpu_model,
            "jobs": self.meta.n_jobs,
            "actions": len(self.actions),
            "reg_io": self.meta.reg_io,
            "dump_bytes": self.dump_bytes(),
            "gpu_mem_bytes": self.peak_gpu_pages() * PAGE_SIZE,
        }

    # -- serialization ---------------------------------------------------------

    def to_bytes(self, compress: bool = True) -> bytes:
        body = _encode_body(self)
        flags = 1 if compress else 0
        if compress:
            body = zlib.compress(body, level=6)
        return MAGIC + struct.pack("<HI", VERSION, flags) + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Recording":
        if len(blob) < 10 or blob[:4] != MAGIC:
            raise SerializationError("not a GPUReplay recording")
        version, flags = struct.unpack_from("<HI", blob, 4)
        if version != VERSION:
            raise SerializationError(f"unsupported version {version}")
        body = blob[10:]
        if flags & 1:
            try:
                body = zlib.decompress(body)
            except zlib.error as exc:
                raise SerializationError(f"corrupt recording: {exc}")
        # A truncated or garbage body must always surface as the
        # structured corrupt-recording error, never as whatever raw
        # exception the decoder tripped over (struct.error on a short
        # buffer, UnicodeDecodeError inside a mangled string table,
        # MemoryError on an absurd length field...). `grr` maps
        # SerializationError to exit code 2, like any unusable file.
        try:
            return _decode_body(body)
        except SerializationError:
            raise
        except (struct.error, ValueError, EOFError, IndexError,
                OverflowError, MemoryError) as exc:
            raise SerializationError(
                f"corrupt recording body: {type(exc).__name__}: {exc}")

    def save(self, path: str, compress: bool = True) -> int:
        data = self.to_bytes(compress)
        with open(path, "wb") as f:
            f.write(data)
        return len(data)

    @classmethod
    def load(cls, path: str) -> "Recording":
        with open(path, "rb") as f:
            return cls.from_bytes(f.read())

    def size_unzipped(self) -> int:
        return len(self.to_bytes(compress=False))

    def size_zipped(self) -> int:
        return len(self.to_bytes(compress=True))


# --------------------------------------------------------------------------
# Binary body encoding.
# --------------------------------------------------------------------------


class _Writer:
    def __init__(self) -> None:
        self.parts: List[bytes] = []
        self._strings: Dict[str, int] = {}
        self.string_list: List[str] = []

    def intern(self, s: str) -> int:
        index = self._strings.get(s)
        if index is None:
            index = len(self.string_list)
            self._strings[s] = index
            self.string_list.append(s)
        return index

    def u8(self, v: int) -> None:
        self.parts.append(struct.pack("<B", v))

    def u16(self, v: int) -> None:
        self.parts.append(struct.pack("<H", v))

    def u32(self, v: int) -> None:
        self.parts.append(struct.pack("<I", v))

    def u64(self, v: int) -> None:
        self.parts.append(struct.pack("<Q", v))

    def raw(self, b: bytes) -> None:
        self.parts.append(b)

    def string(self, s: str) -> None:
        encoded = s.encode("utf-8")
        self.u16(len(encoded))
        self.raw(encoded)

    def getvalue(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0
        self.strings: List[str] = []

    def _unpack(self, fmt: str):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise SerializationError("truncated recording body")
        value = struct.unpack_from(fmt, self.data, self.pos)[0]
        self.pos += size
        return value

    def u8(self) -> int:
        return self._unpack("<B")

    def u16(self) -> int:
        return self._unpack("<H")

    def u32(self) -> int:
        return self._unpack("<I")

    def u64(self) -> int:
        return self._unpack("<Q")

    def raw(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise SerializationError("truncated recording body")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def string(self) -> str:
        return self.raw(self.u16()).decode("utf-8")

    def ref(self) -> str:
        index = self.u32()
        if index >= len(self.strings):
            raise SerializationError(f"bad string ref {index}")
        return self.strings[index]


def _encode_io(w: _Writer, buffers: List[IoBuffer]) -> None:
    w.u16(len(buffers))
    for b in buffers:
        w.string(b.name)
        w.u64(b.gaddr)
        w.u64(b.size)
        w.u8(len(b.shape))
        for dim in b.shape:
            w.u32(dim)
        w.u8(1 if b.optional else 0)


def _decode_io(r: _Reader) -> List[IoBuffer]:
    out = []
    for _ in range(r.u16()):
        name = r.string()
        gaddr = r.u64()
        size = r.u64()
        shape = tuple(r.u32() for _ in range(r.u8()))
        optional = bool(r.u8())
        out.append(IoBuffer(name, gaddr, size, shape, optional))
    return out


def encode_skeleton(rec: Recording) -> bytes:
    """The recording body *without* dump payloads.

    The chunked store keeps a recording as this skeleton (metadata,
    string table, actions, and the dump table of VAs and sizes) plus a
    content-defined chunk list per dump; the payload bytes live in the
    shared chunk objects. ``decode_skeleton`` reassembles the exact
    Recording, so ``digest()`` survives a store round-trip unchanged.
    """
    return _encode_body(rec, with_dump_data=False)


def decode_skeleton(skeleton: bytes,
                    payloads: List[bytes]) -> Recording:
    """Rebuild a recording from its skeleton and dump payloads.

    ``payloads[i]`` must be exactly the bytes of dump ``i`` as the
    skeleton's dump table declares them; a count or size mismatch is a
    :class:`SerializationError` (the store's integrity chain should
    have caught it earlier). Payloads may be ``bytes`` or read-only
    ``memoryview``s (the vault's zero-copy fetch path); they land in
    :class:`MemoryDump` untouched, with no intermediate copy.
    """
    try:
        return _decode_body(skeleton, dump_payloads=payloads)
    except SerializationError:
        raise
    except (struct.error, ValueError, EOFError, IndexError,
            OverflowError, MemoryError) as exc:
        raise SerializationError(
            f"corrupt recording skeleton: {type(exc).__name__}: {exc}")


def _encode_body(rec: Recording, with_dump_data: bool = True) -> bytes:
    meta = rec.meta
    w = _Writer()
    for s in (meta.gpu_model, meta.family, meta.pte_format, meta.board,
              meta.workload, meta.api, meta.framework):
        w.string(s)
    w.u32(meta.memattr)
    w.u32(meta.n_jobs)
    w.u32(meta.reg_io)
    w.u32(meta.prologue_len)
    _encode_io(w, meta.inputs)
    _encode_io(w, meta.outputs)
    w.u16(len(meta.power_sequence))
    for tag, dev, val in meta.power_sequence:
        w.u32(tag)
        w.u32(dev)
        w.u64(val)

    # Actions (string table written afterwards, referenced by index).
    aw = _Writer()
    aw.u32(len(rec.actions))
    for action in rec.actions:
        tag = act.ACTION_TAGS.get(type(action))
        if tag is None:
            raise SerializationError(
                f"unserializable action {type(action).__name__}")
        aw.u8(tag)
        aw.u64(action.min_interval_ns)
        aw.u64(action.recorded_interval_ns)
        aw.u32(aw.intern(action.src))
        aw.u32(action.job_index)
        if isinstance(action, act.RegReadOnce):
            aw.u32(aw.intern(action.reg))
            aw.u64(action.val)
            aw.u8(1 if action.ignore else 0)
        elif isinstance(action, act.RegReadWait):
            aw.u32(aw.intern(action.reg))
            aw.u64(action.mask)
            aw.u64(action.val)
            aw.u64(action.timeout_ns)
        elif isinstance(action, act.RegWrite):
            aw.u32(aw.intern(action.reg))
            aw.u64(action.mask)
            aw.u64(action.val)
            aw.u8(1 if action.is_job_kick else 0)
        elif isinstance(action, act.SetGpuPgtable):
            aw.u64(action.memattr)
        elif isinstance(action, act.MapGpuMem):
            aw.u64(action.addr)
            aw.u32(action.num_pages)
            aw.u64(action.raw_pte_flags)
        elif isinstance(action, act.UnmapGpuMem):
            aw.u64(action.addr)
            aw.u32(action.num_pages)
        elif isinstance(action, act.Upload):
            aw.u64(action.addr)
            aw.u32(action.dump_index)
        elif isinstance(action, (act.CopyToGpu, act.CopyFromGpu)):
            aw.u64(action.gaddr)
            aw.u64(action.size)
            aw.u32(aw.intern(action.buffer_name))
        elif isinstance(action, act.WaitIrq):
            aw.u64(action.timeout_ns)
        # IrqEnter / IrqExit carry no extra fields.

    w.u32(len(aw.string_list))
    for s in aw.string_list:
        w.string(s)
    w.raw(aw.getvalue())

    w.u32(len(rec.dumps))
    for dump in rec.dumps:
        w.u64(dump.va)
        w.u32(len(dump.data))
        if with_dump_data:
            w.raw(dump.data)
    return w.getvalue()


def _decode_body(data: bytes,
                 dump_payloads: Optional[List[bytes]] = None
                 ) -> Recording:
    r = _Reader(data)
    meta = RecordingMeta()
    (meta.gpu_model, meta.family, meta.pte_format, meta.board,
     meta.workload, meta.api, meta.framework) = (r.string()
                                                 for _ in range(7))
    meta.memattr = r.u32()
    meta.n_jobs = r.u32()
    meta.reg_io = r.u32()
    meta.prologue_len = r.u32()
    meta.inputs = _decode_io(r)
    meta.outputs = _decode_io(r)
    meta.power_sequence = [
        (r.u32(), r.u32(), r.u64()) for _ in range(r.u16())]

    r.strings = [r.string() for _ in range(r.u32())]
    actions: List[act.Action] = []
    for _ in range(r.u32()):
        tag = r.u8()
        if tag >= len(act.ACTION_TYPES):
            raise SerializationError(f"unknown action tag {tag}")
        cls = act.ACTION_TYPES[tag]
        common = {
            "min_interval_ns": r.u64(),
            "recorded_interval_ns": r.u64(),
            "src": r.ref(),
            "job_index": r.u32(),
        }
        if cls is act.RegReadOnce:
            action = cls(reg=r.ref(), val=r.u64(), ignore=bool(r.u8()),
                         **common)
        elif cls is act.RegReadWait:
            action = cls(reg=r.ref(), mask=r.u64(), val=r.u64(),
                         timeout_ns=r.u64(), **common)
        elif cls is act.RegWrite:
            action = cls(reg=r.ref(), mask=r.u64(), val=r.u64(),
                         is_job_kick=bool(r.u8()), **common)
        elif cls is act.SetGpuPgtable:
            action = cls(memattr=r.u64(), **common)
        elif cls is act.MapGpuMem:
            action = cls(addr=r.u64(), num_pages=r.u32(),
                         raw_pte_flags=r.u64(), **common)
        elif cls is act.UnmapGpuMem:
            action = cls(addr=r.u64(), num_pages=r.u32(), **common)
        elif cls is act.Upload:
            action = cls(addr=r.u64(), dump_index=r.u32(), **common)
        elif cls in (act.CopyToGpu, act.CopyFromGpu):
            action = cls(gaddr=r.u64(), size=r.u64(),
                         buffer_name=r.ref(), **common)
        elif cls is act.WaitIrq:
            action = cls(timeout_ns=r.u64(), **common)
        else:
            action = cls(**common)
        actions.append(action)

    dumps = []
    n_dumps = r.u32()
    if dump_payloads is not None and len(dump_payloads) != n_dumps:
        raise SerializationError(
            f"skeleton declares {n_dumps} dumps, "
            f"{len(dump_payloads)} payloads supplied")
    for index in range(n_dumps):
        va = r.u64()
        size = r.u32()
        if dump_payloads is None:
            dumps.append(MemoryDump(va, r.raw(size)))
        else:
            payload = dump_payloads[index]
            if len(payload) != size:
                raise SerializationError(
                    f"dump #{index}: skeleton declares {size} bytes, "
                    f"payload has {len(payload)}")
            dumps.append(MemoryDump(va, payload))
    return Recording(meta, actions, dumps)
