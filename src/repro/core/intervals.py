"""Interval analysis helpers (Sections 4.5, 7.5; Figures 5 and 10).

Works over the :class:`~repro.core.recorder.IntervalSample` stream a
recorder produces and over finished recordings, answering: how much
record-time wall clock sat between CPU/GPU interactions, how much of
it the GPU-idle heuristic proved skippable, and how that accumulates
per GPU job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.recorder import IntervalSample
from repro.core.recording import Recording


@dataclass
class IntervalStats:
    """Aggregate interval accounting for one recording run."""

    total_ns: int
    skippable_ns: int
    preserved_ns: int
    skippable_count: int
    preserved_count: int

    @property
    def skippable_fraction(self) -> float:
        return self.skippable_ns / self.total_ns if self.total_ns else 0.0


def summarize(samples: Sequence[IntervalSample]) -> IntervalStats:
    total = sum(s.dt_ns for s in samples)
    skippable = sum(s.dt_ns for s in samples if s.skippable)
    return IntervalStats(
        total_ns=total,
        skippable_ns=skippable,
        preserved_ns=total - skippable,
        skippable_count=sum(1 for s in samples if s.skippable),
        preserved_count=sum(1 for s in samples if not s.skippable),
    )


def accumulate_by_job(samples: Sequence[IntervalSample]
                      ) -> Dict[int, int]:
    """Per-job accumulated interval time (the Figure 5 series)."""
    out: Dict[int, int] = {}
    for sample in samples:
        out[sample.job_index] = out.get(sample.job_index, 0) + sample.dt_ns
    return out


def recorded_vs_paced(recording: Recording) -> IntervalStats:
    """Interval accounting straight from a recording's actions."""
    total = sum(a.recorded_interval_ns for a in recording.actions)
    preserved = sum(a.min_interval_ns for a in recording.actions)
    skippable = total - preserved
    return IntervalStats(
        total_ns=total,
        skippable_ns=skippable,
        preserved_ns=preserved,
        skippable_count=sum(
            1 for a in recording.actions
            if a.recorded_interval_ns and not a.min_interval_ns),
        preserved_count=sum(
            1 for a in recording.actions if a.min_interval_ns),
    )
