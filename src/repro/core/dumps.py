"""Memory dumps: captured GPU memory contents.

A dump is a contiguous run of page contents anchored at the GPU
virtual address it must be restored to. Dumps dominate recording size
(72% on average for Mali, Section 7.3), so the recorder works hard to
shrink them and the file format compresses them with zlib.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.soc.memory import PAGE_SIZE


@dataclass(frozen=True)
class MemoryDump:
    """One contiguous region of captured GPU memory.

    ``data`` is any C-contiguous read-only buffer: ``bytes`` from the
    recorder/file loader, or a read-only ``memoryview`` into a
    vault-fetched chunk buffer (the zero-copy fetch path). Everything
    downstream -- digesting, upload-plan compilation, nano-driver
    residency hashing, per-page MMU writes -- must treat it as an
    opaque buffer and never assume ``bytes`` methods beyond len /
    slicing / hashing. Equality compares content either way.
    """

    va: int
    data: bytes  # or a read-only memoryview (buffer protocol)

    @property
    def size(self) -> int:
        return len(self.data)

    def end_va(self) -> int:
        return self.va + len(self.data)

    @property
    def digest(self) -> str:
        """Content hash of the dump bytes (hex SHA-256).

        Computed once and memoized on the instance; the nano driver
        keys its GPU-resident state on it so repeated replays can skip
        re-uploading bytes that are already on the GPU.
        """
        cached = self.__dict__.get("_digest")
        if cached is None:
            cached = hashlib.sha256(self.data).hexdigest()
            object.__setattr__(self, "_digest", cached)
        return cached


def coalesce_pages(pages: Iterable[Tuple[int, bytes]]) -> List[MemoryDump]:
    """Merge per-page captures into contiguous dumps.

    ``pages`` yields (va, page_bytes) for individual pages; adjacent
    VAs are merged so a 40-page shader blob becomes one Upload action
    instead of 40.
    """
    ordered = sorted(pages, key=lambda p: p[0])
    out: List[MemoryDump] = []
    run_va = None
    run_parts: List[bytes] = []
    cursor = 0
    for va, data in ordered:
        if run_va is not None and va == cursor:
            run_parts.append(data)
            cursor += len(data)
            continue
        if run_va is not None:
            out.append(MemoryDump(run_va, b"".join(run_parts)))
        run_va = va
        run_parts = [data]
        cursor = va + len(data)
    if run_va is not None:
        out.append(MemoryDump(run_va, b"".join(run_parts)))
    return out


def zero_page_ratio(dumps: List[MemoryDump]) -> float:
    """Fraction of dumped pages that are all-zero (compressibility)."""
    total = 0
    zero = 0
    zero_page = b"\x00" * PAGE_SIZE
    for dump in dumps:
        for off in range(0, len(dump.data), PAGE_SIZE):
            page = dump.data[off:off + PAGE_SIZE]
            total += 1
            if page == zero_page[:len(page)]:
                zero += 1
    return zero / total if total else 0.0
