"""The replay actions of Table 2.

A recording is a sequence of these actions plus memory dumps. Every
action carries:

- ``min_interval_ns`` -- the pacing interval the replayer must respect
  before executing the action (Section 4.5). Zero for intervals the
  recorder proved skippable (GPU idle throughout);
- ``recorded_interval_ns`` -- the raw record-time interval, kept so the
  skip-interval ablation (Figure 10) can replay without the heuristic;
- ``src`` -- the full-driver source location, used in replay-failure
  reports (Section 5.4);
- ``job_index`` -- which GPU job the action belongs to (0 = before the
  first kick), used by the interval analysis of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass
class Action:
    """Base replay action."""

    min_interval_ns: int = 0
    recorded_interval_ns: int = 0
    src: str = ""
    job_index: int = 0


@dataclass
class RegReadOnce(Action):
    """Read @reg once; a value != @val is a replay error unless ignored."""

    reg: str = ""
    val: int = 0
    #: True for volatile registers expected to return nondeterministic
    #: values; the read still happens but the value is not checked.
    ignore: bool = False


@dataclass
class RegReadWait(Action):
    """Poll @reg until (value & mask) == val, at most timeout_ns."""

    reg: str = ""
    mask: int = 0xFFFFFFFF
    val: int = 0
    timeout_ns: int = 0


@dataclass
class RegWrite(Action):
    """Write @val to @reg; @mask selects the written bits."""

    reg: str = ""
    mask: int = 0xFFFFFFFF
    val: int = 0
    #: True when this write starts a GPU job (the kick register); used
    #: for job accounting and checkpoint safe-points.
    is_job_kick: bool = False


@dataclass
class SetGpuPgtable(Action):
    """Point the GPU at the replayer's page tables.

    ``memattr`` is the recorded translation-config value -- the field
    the cross-SKU patch flips (Section 6.4 item 2).
    """

    memattr: int = 0


@dataclass
class MapGpuMem(Action):
    """Allocate ``num_pages`` and map them at GPU VA ``addr``.

    ``raw_pte_flags`` are the low PTE bits in the *source SKU's*
    encoding, captured from the record-time page tables. The replayer
    decodes them with its own SKU's format -- which silently goes wrong
    across LPAE/non-LPAE SKUs until patched (Section 6.4 item 1).
    """

    addr: int = 0
    num_pages: int = 0
    raw_pte_flags: int = 0


@dataclass
class UnmapGpuMem(Action):
    """Unmap the GPU memory at ``addr`` and free its physical pages."""

    addr: int = 0
    num_pages: int = 0


@dataclass
class Upload(Action):
    """Load memory dump #``dump_index`` at GPU VA ``addr``."""

    addr: int = 0
    dump_index: int = 0


@dataclass
class CopyToGpu(Action):
    """Deposit app-supplied input bytes at GPU VA ``gaddr``."""

    gaddr: int = 0
    size: int = 0
    buffer_name: str = ""


@dataclass
class CopyFromGpu(Action):
    """Extract ``size`` bytes at GPU VA ``gaddr`` for the app."""

    gaddr: int = 0
    size: int = 0
    buffer_name: str = ""


@dataclass
class WaitIrq(Action):
    """Wait for a GPU interrupt; handling = replaying what follows."""

    timeout_ns: int = 0


@dataclass
class IrqEnter(Action):
    """Enter interrupt context (subsequent actions ran in the ISR)."""


@dataclass
class IrqExit(Action):
    """Leave interrupt context (the record-time handler's eret)."""


#: Stable wire tags for serialization (order is part of the format).
ACTION_TYPES: Tuple[type, ...] = (
    RegReadOnce, RegReadWait, RegWrite, SetGpuPgtable, MapGpuMem,
    UnmapGpuMem, Upload, CopyToGpu, CopyFromGpu, WaitIrq, IrqEnter, IrqExit,
)

ACTION_TAGS = {cls: tag for tag, cls in enumerate(ACTION_TYPES)}
