"""Input/output address discovery by magic-value taint (Section 4.4).

The recorder cannot track where the blackbox runtime copies the app's
input (it bypasses the kernel), nor where the GPU code reads it from
(shaders are opaque). Instead, the record harness injects *magic*
input -- synthetic high-entropy data -- and searches GPU memory for it:

- inputs are searched in a snapshot taken at the *first job kick*,
  before any GPU job could duplicate the data;
- outputs are searched in live GPU memory after the run;
- ambiguity (multiple matches) is resolved by repeating the run with
  different magic values and intersecting the match sets.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from repro.errors import TaintError


def make_magic_input(shape: Tuple[int, ...], seed: int) -> np.ndarray:
    """High-entropy float32 input that is vanishingly unlikely to
    coincide with unrelated GPU memory contents."""
    rng = np.random.default_rng(0xC0FFEE ^ seed)
    return rng.uniform(-3.0, 3.0, size=shape).astype(np.float32)


def scan_regions(regions: Iterable[Tuple[int, bytes]],
                 pattern: bytes) -> List[int]:
    """Find every GPU VA where ``pattern`` occurs in the given regions.

    ``regions`` yields (base_va, contents). Matches are aligned to
    4 bytes (tensors are float32)."""
    if not pattern:
        raise TaintError("cannot scan for an empty pattern")
    matches: List[int] = []
    for base_va, contents in regions:
        start = 0
        while True:
            index = contents.find(pattern, start)
            if index < 0:
                break
            if index % 4 == 0:
                matches.append(base_va + index)
            start = index + 4
    return matches


def intersect_matches(match_sets: Sequence[List[int]]) -> List[int]:
    """Addresses present in every run's match set."""
    if not match_sets:
        return []
    common: Set[int] = set(match_sets[0])
    for matches in match_sets[1:]:
        common &= set(matches)
    return sorted(common)


def resolve_unique(match_sets: Sequence[List[int]], what: str) -> int:
    """The single address surviving intersection, or a TaintError."""
    common = intersect_matches(match_sets)
    if len(common) == 1:
        return common[0]
    if not common:
        raise TaintError(f"{what}: no GPU address matched the magic data")
    raise TaintError(
        f"{what}: {len(common)} candidate addresses remain after "
        f"{len(match_sets)} runs: {[hex(a) for a in common]}")
