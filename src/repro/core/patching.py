"""Cross-SKU recording patches (Section 6.4).

A recording from one Mali SKU can run on another SKU of the same
family after a lightweight patch:

1. **Page-table format** -- re-arrange the PTE permission bits when the
   source SKU uses the LPAE layout (G31) and the target does not;
2. **MMU configuration** -- flip the translation-config register value
   (read-allocate bit) to what the target SKU expects;
3. **Core-scheduling hints** -- rewrite the JS_AFFINITY writes so jobs
   spread over all of the target's shader cores (one register per job;
   without it a G31 recording uses one G71 core and runs ~8x slower).

Scaling *down* (recording from a bigger GPU onto a smaller one) is
refused, matching the paper's observation that it would need
proprietary knowledge (shader relocation, memory compaction).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List

from repro.core import actions as act
from repro.core.recording import Recording
from repro.errors import RecordingError
from repro.gpu.mali import MALI_SKUS
from repro.gpu.mmu import PTE_FORMATS


@dataclass
class PatchReport:
    """What a cross-SKU patch changed."""

    source_sku: str = ""
    target_sku: str = ""
    pte_entries_rewritten: int = 0
    memattr_patched: bool = False
    affinity_writes_patched: int = 0
    notes: List[str] = field(default_factory=list)


def patch_recording_for_sku(recording: Recording, target_sku: str,
                            patch_affinity: bool = True) -> "tuple":
    """Return (patched recording copy, PatchReport).

    ``patch_affinity=False`` applies only the page-table and MMU fixes,
    reproducing the intermediate point of Figure 9 where the replay is
    correct but 4-8x slower.
    """
    if recording.meta.family != "mali":
        raise RecordingError("cross-SKU patching is a Mali-family "
                             "capability")
    source_name = recording.meta.gpu_model.replace("mali-", "")
    if source_name not in MALI_SKUS or target_sku not in MALI_SKUS:
        raise RecordingError(
            f"unknown SKU pair {source_name!r} -> {target_sku!r}")
    source = MALI_SKUS[source_name]
    target = MALI_SKUS[target_sku]
    if target.core_count < source.core_count:
        raise RecordingError(
            "cannot replay on a smaller GPU: would require shader "
            "relocation and GPU memory compaction (Section 6.4)")

    patched = copy.deepcopy(recording)
    # The copy is about to be mutated; its content digest must be
    # recomputed, not inherited from the source recording.
    patched._digest = None
    report = PatchReport(source_sku=source_name, target_sku=target_sku)
    source_fmt = PTE_FORMATS[source.pte_format]
    target_fmt = PTE_FORMATS[target.pte_format]
    target_mask = (1 << target.core_count) - 1

    for action in patched.actions:
        if isinstance(action, act.MapGpuMem):
            if source_fmt.name != target_fmt.name:
                _valid, _pa, perms = source_fmt.decode_pte(
                    action.raw_pte_flags)
                action.raw_pte_flags = target_fmt.encode_pte(0, perms)
                report.pte_entries_rewritten += 1
        elif isinstance(action, act.SetGpuPgtable):
            if action.memattr != target.required_memattr:
                action.memattr = target.required_memattr
                report.memattr_patched = True
        elif (patch_affinity and isinstance(action, act.RegWrite)
              and action.reg.endswith("_AFFINITY")):
            if action.val != target_mask:
                action.val = target_mask
                report.affinity_writes_patched += 1

    if patched.meta.memattr != target.required_memattr:
        patched.meta.memattr = target.required_memattr
        report.memattr_patched = True
    patched.meta.gpu_model = f"mali-{target_sku}"
    patched.meta.pte_format = target.pte_format
    if source_fmt.name != target_fmt.name:
        report.notes.append(
            f"permission bits re-arranged: {source_fmt.name} -> "
            f"{target_fmt.name}")
    if not patch_affinity:
        report.notes.append(
            "core-affinity hints left as recorded (expect reduced "
            "shader-core utilization)")
    return patched, report
