"""Conditional NNs: CPU-evaluated branches over separate recordings.

Section 3.1's one exception to the branch-free-job-graph rule: a
conditional NN chooses among normal NNs at run time. GR's answer is to
record each branch as its own recording (or chain) and let the app
evaluate the branch condition *on the CPU*, then replay the chosen
branch.

Branches are typically recorded in separate sessions, so their GPU
address layouts may conflict; switching branches therefore passes
through a fresh ``init()`` -- the same clean GPU handoff apps use when
sharing the GPU cooperatively (Section 5.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.recording import Recording
from repro.core.replayer import Replayer, ReplayResult
from repro.errors import ReplayError
from repro.soc.machine import Machine

BranchSource = Union[Recording, bytes, Sequence[Recording]]


def _as_chain(source: BranchSource) -> List[Recording]:
    if isinstance(source, Recording):
        return [source]
    if isinstance(source, (bytes, bytearray)):
        return [Recording.from_bytes(bytes(source))]
    chain = list(source)
    if not chain or not all(isinstance(r, Recording) for r in chain):
        raise ReplayError("branch must be a Recording, its bytes, or a "
                          "non-empty recording chain")
    return chain


class ConditionalReplayApp:
    """An app that routes inputs to one of several recorded branches.

    The selector runs on the CPU (it sees the raw input); replay
    happens on whichever branch it names. Consecutive replays of the
    *same* branch reuse the loaded session; switching branches resets
    the GPU and rebuilds the address space.
    """

    def __init__(self, machine: Machine,
                 branches: Dict[str, BranchSource],
                 selector: Optional[Callable[[np.ndarray], str]] = None):
        if not branches:
            raise ReplayError("a conditional app needs at least one "
                              "branch")
        self.machine = machine
        self.branches: Dict[str, List[Recording]] = {
            name: _as_chain(source) for name, source in branches.items()}
        self.selector = selector
        self.replayer = Replayer(machine)
        self.replayer.init()
        self._loaded: Optional[str] = None
        self.branch_counts: Dict[str, int] = {name: 0
                                              for name in self.branches}
        self.switches = 0

    def branch_names(self) -> List[str]:
        return sorted(self.branches)

    def _activate(self, branch: str) -> None:
        if branch not in self.branches:
            raise ReplayError(
                f"unknown branch {branch!r}; have {self.branch_names()}")
        if self._loaded == branch:
            return
        if self._loaded is not None:
            # Different branches own different address-space layouts:
            # clean handoff (reset + scrub) before re-mapping.
            self.replayer.init()
            self.switches += 1
        self._loaded = branch

    def run_branch(self, branch: str,
                   inputs: Dict[str, np.ndarray]) -> ReplayResult:
        """Replay one named branch on the given inputs."""
        self._activate(branch)
        chain = self.branches[branch]
        self.branch_counts[branch] += 1
        if len(chain) == 1:
            self.replayer.load(chain[0])
            return self.replayer.replay(inputs=inputs)
        return self.replayer.replay_sequence(chain, inputs=inputs)

    def run(self, x: np.ndarray,
            input_name: str = "input") -> ReplayResult:
        """Evaluate the CPU-side branch condition, then replay it."""
        if self.selector is None:
            raise ReplayError("no selector installed; use run_branch()")
        branch = self.selector(x)
        return self.run_branch(branch, {input_name: x})

    def cleanup(self) -> None:
        self.replayer.cleanup()
        self._loaded = None
