"""Optional GPU-state checkpointing (Section 5.3).

Periodically copies all replayer-mapped GPU memory plus the action
position, so a preempted replay can resume from the most recent
checkpoint instead of starting over. The paper finds this *generally
inferior to re-execution* because the memory copy is expensive
(MobileNet: 140 ms to dump 51 MB vs 45 ms to re-execute) -- the §7.5
benchmark reproduces exactly that trade-off, so the cost here is real
copy work on the virtual clock, not a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.nano_driver import NanoGpuDriver
from repro.obs.metrics import SIZE_BUCKETS_BYTES


@dataclass
class Checkpoint:
    """One restore point: action position + full GPU memory image."""

    action_index: int
    jobs_done: int
    memory: Dict[int, bytes]
    taken_at_ns: int

    @property
    def bytes_captured(self) -> int:
        return sum(len(d) for d in self.memory.values())


@dataclass
class CheckpointPolicy:
    """When to checkpoint: every N completed GPU jobs (0 = never)."""

    every_n_jobs: int = 0
    keep_last: int = 1


class CheckpointManager:
    """Takes and restores checkpoints on safe points (GPU idle)."""

    def __init__(self, nano: NanoGpuDriver, policy: CheckpointPolicy):
        self.nano = nano
        self.policy = policy
        self.checkpoints: List[Checkpoint] = []
        self._last_checkpoint_jobs = 0
        self.total_checkpoint_ns = 0
        self.taken_count = 0

    @property
    def enabled(self) -> bool:
        return self.policy.every_n_jobs > 0

    def maybe_take(self, action_index: int, jobs_done: int) -> bool:
        """Take a checkpoint if the job cadence says so.

        Called by the interpreter only at safe points: after an IrqExit
        with no job in flight, when the GPU register state is
        reconstructable from a reset + page-table reload.
        """
        if not self.enabled:
            return False
        if jobs_done - self._last_checkpoint_jobs < \
                self.policy.every_n_jobs:
            return False
        t0 = self.nano.clock.now()
        checkpoint = Checkpoint(
            action_index=action_index,
            jobs_done=jobs_done,
            memory=self.nano.snapshot_memory(),
            taken_at_ns=t0,
        )
        self.total_checkpoint_ns += self.nano.clock.now() - t0
        self.taken_count += 1
        obs = self.nano.machine.obs
        obs.counter("replay.checkpoints").inc()
        obs.histogram("replay.checkpoint_bytes",
                      SIZE_BUCKETS_BYTES).observe(
                          checkpoint.bytes_captured)
        obs.complete("checkpoint", obs.track("replay", "session"),
                     t0, self.nano.clock.now(), cat="replay",
                     args={"bytes": checkpoint.bytes_captured,
                           "action_index": action_index})
        self.checkpoints.append(checkpoint)
        if len(self.checkpoints) > self.policy.keep_last:
            self.checkpoints.pop(0)
        self._last_checkpoint_jobs = jobs_done
        return True

    def latest(self) -> Optional[Checkpoint]:
        return self.checkpoints[-1] if self.checkpoints else None

    def restore_latest(self, memattr: int) -> Optional[Checkpoint]:
        """Reset the GPU and reload state from the newest checkpoint."""
        checkpoint = self.latest()
        if checkpoint is None:
            return None
        self.nano.soft_reset()
        self.nano.set_gpu_pgtable(memattr)
        self.nano.restore_memory(checkpoint.memory)
        return checkpoint

    def reset(self) -> None:
        self.checkpoints.clear()
        self._last_checkpoint_jobs = 0
        self.total_checkpoint_ns = 0
        self.taken_count = 0
