"""Static verification of recording security properties (Section 5.1).

Before anything touches hardware, the replayer proves three properties
over the loaded recording:

1. *No illegal GPU register access by CPU* -- every register name must
   resolve through the replayer's shipped register map.
2. *No illegal memory access by GPU* -- a recording only names sizes
   and GPU virtual addresses; every Upload/Copy must land inside
   memory the recording itself maps, mappings must not overlap, and
   unmaps must match maps.
3. *Maximum GPU physical memory usage* -- the peak concurrently-mapped
   size is computed so apps (or the replayer) can reject
   memory-hungry recordings up front.

A fabricated recording can at worst hang the GPU; it cannot name
registers outside the map or reach memory outside its own allocations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core import actions as act
from repro.core.recording import Recording
from repro.errors import VerificationError
from repro.gpu.mmu import VA_SPACE_SIZE
from repro.soc.memory import PAGE_SIZE
from repro.units import MIB


@dataclass
class VerificationReport:
    """What the verifier proved about a recording."""

    actions: int = 0
    registers_used: Set[str] = field(default_factory=set)
    peak_mapped_bytes: int = 0
    dump_bytes: int = 0
    warnings: List[str] = field(default_factory=list)


def verify_recording(recording: Recording,
                     register_names: Set[str],
                     max_gpu_bytes: Optional[int] = None,
                     preexisting_maps: Optional[Dict[int, int]] = None
                     ) -> VerificationReport:
    """Verify ``recording``; raises :class:`VerificationError`.

    ``register_names`` is the replayer's register map (the only
    registers the CPU may touch). ``preexisting_maps`` carries the
    VA->pages mappings of earlier recordings in the same replay
    session (per-layer chains re-map them legitimately).
    """
    report = VerificationReport(actions=len(recording.actions))
    live: Dict[int, int] = dict(preexisting_maps or {})
    peak = sum(live.values())

    def require_mapped(addr: int, size: int, what: str, index: int) -> None:
        cursor = addr
        end = addr + size
        while cursor < end:
            for base, pages in live.items():
                if base <= cursor < base + pages * PAGE_SIZE:
                    cursor = base + pages * PAGE_SIZE
                    break
            else:
                raise VerificationError(
                    f"action #{index}: {what} touches unmapped GPU "
                    f"range at {cursor:#x}")

    for index, action in enumerate(recording.actions):
        if isinstance(action, (act.RegReadOnce, act.RegReadWait,
                               act.RegWrite)):
            if action.reg not in register_names:
                raise VerificationError(
                    f"action #{index}: illegal register access "
                    f"{action.reg!r} (not in the replayer's map)")
            report.registers_used.add(action.reg)
        elif isinstance(action, act.MapGpuMem):
            if action.num_pages <= 0:
                raise VerificationError(
                    f"action #{index}: empty mapping at {action.addr:#x}")
            if action.addr % PAGE_SIZE:
                raise VerificationError(
                    f"action #{index}: unaligned mapping {action.addr:#x}")
            end = action.addr + action.num_pages * PAGE_SIZE
            if action.addr < 0 or end > VA_SPACE_SIZE:
                raise VerificationError(
                    f"action #{index}: mapping outside GPU VA space")
            for base, pages in live.items():
                if base == action.addr and pages == action.num_pages:
                    break  # legitimate session re-map
                if action.addr < base + pages * PAGE_SIZE and \
                        base < end:
                    raise VerificationError(
                        f"action #{index}: mapping {action.addr:#x} "
                        f"overlaps existing {base:#x}")
            live[action.addr] = action.num_pages
            peak = max(peak, sum(live.values()))
        elif isinstance(action, act.UnmapGpuMem):
            if action.addr not in live:
                raise VerificationError(
                    f"action #{index}: unmap of unmapped {action.addr:#x}")
            del live[action.addr]
        elif isinstance(action, act.Upload):
            if not 0 <= action.dump_index < len(recording.dumps):
                raise VerificationError(
                    f"action #{index}: dump index {action.dump_index} "
                    "out of range")
            dump = recording.dumps[action.dump_index]
            if dump.va != action.addr:
                report.warnings.append(
                    f"action #{index}: upload address differs from "
                    f"dump anchor")
            require_mapped(action.addr, dump.size, "upload", index)
        elif isinstance(action, (act.CopyToGpu, act.CopyFromGpu)):
            if action.size <= 0:
                raise VerificationError(
                    f"action #{index}: empty copy")
            require_mapped(action.gaddr, action.size, "copy", index)
        elif isinstance(action, act.WaitIrq):
            if action.timeout_ns <= 0:
                raise VerificationError(
                    f"action #{index}: WaitIrq without a timeout")

    for io in recording.meta.inputs + recording.meta.outputs:
        if io.size <= 0:
            raise VerificationError(f"I/O buffer {io.name!r} is empty")
        require_mapped(io.gaddr, io.size, f"I/O buffer {io.name!r}",
                       len(recording.actions))

    report.peak_mapped_bytes = max(peak, sum(live.values())) * PAGE_SIZE
    report.dump_bytes = recording.dump_bytes()
    if max_gpu_bytes is not None and \
            report.peak_mapped_bytes > max_gpu_bytes:
        raise VerificationError(
            f"recording needs {report.peak_mapped_bytes // MIB} MiB of "
            f"GPU memory; policy allows {max_gpu_bytes // MIB} MiB")
    return report
