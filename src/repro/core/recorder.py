"""The in-driver recorder (Section 4).

Subscribes to the driver's trace chokepoints and turns the event stream
into replay actions:

- register writes/reads/polls map 1:1 onto RegWrite / RegReadOnce /
  RegReadWait (polling loops arrive pre-summarized, Section 4.2);
- right before every job kick it captures memory dumps, using the
  family-specific shrink heuristics of Sections 6.1/6.2;
- it tracks GPU idleness from the driver's own accounting and marks
  intervals skippable when the GPU was idle throughout (Section 4.5);
- ``cut()`` splits the stream into multiple recordings (per-layer /
  per-fused-layer granularity, Section 3.1).

The recorder enforces synchronous job submission for the duration of
the recording (queue depth 1 -- the Mali "reduce the job queue length"
change of Table 1) and restores the original depth afterwards.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core import actions as act
from repro.core.dumps import MemoryDump, coalesce_pages
from repro.core.recording import Recording, RecordingMeta
from repro.errors import RecordingError
from repro.gpu import jobs as jobfmt
from repro.obs.metrics import SIZE_BUCKETS_BYTES
from repro.soc import firmware as fw
from repro.soc.memory import PAGE_SIZE
from repro.stack.driver import trace
from repro.stack.driver.base import GpuDriver
from repro.stack.driver.memory import MemFlags
from repro.units import SEC

#: Throughput of the recorder's page hashing/copying (record-time cost).
DUMP_BW = int(1.5 * 1024 ** 3)


@dataclass
class RecorderOptions:
    """Knobs for record-time behaviour (ablations flip these)."""

    #: Enforce queue depth 1 while recording (Section 2.3).
    sync_submission: bool = True
    #: Apply the GPU-idle interval-skip heuristic (Section 4.5).
    skip_idle_intervals: bool = True
    #: Use allocation-flag hints to exclude scratch on v3d (Section 6.2).
    use_flag_hints: bool = True


@dataclass
class _Region:
    va: int
    num_pages: int
    flags: MemFlags

    def end_va(self) -> int:
        return self.va + self.num_pages * PAGE_SIZE


@dataclass
class IntervalSample:
    """One observed inter-action interval (feeds Figures 5 and 10)."""

    job_index: int
    dt_ns: int
    skippable: bool


class GpuRecorder(trace.DriverTracer):
    """Family-independent recorder core; see the two subclasses below."""

    def __init__(self, driver: GpuDriver,
                 options: Optional[RecorderOptions] = None):
        self.driver = driver
        self.machine = driver.machine
        self.options = options or RecorderOptions()
        self.family = driver.gpu.family
        self._fmt = driver.gpu.mmu.fmt
        self._kick_regs = self._kick_register_names()
        self._by_value: List[Tuple[int, int]] = []
        self._recordings: List[Recording] = []
        self._active = False
        self.interval_samples: List[IntervalSample] = []
        self._reset_stream_state()

    # -- family knowledge (Table 1) ------------------------------------------

    def _kick_register_names(self) -> Set[str]:
        raise NotImplementedError

    def _capture_memattr(self) -> int:
        raise NotImplementedError

    def _dump_eligible_regions(self, chain_va: int) -> List[_Region]:
        """Which live regions may contain the job binary."""
        raise NotImplementedError

    def _whole_region_dumps(self) -> bool:
        """True when changed pages pull in their whole region (v3d)."""
        return False

    def _on_begin(self) -> None:
        """Family hook: quiesce hardware state before recording."""

    def _extra_prologue_actions(self) -> List[act.Action]:
        """Family hook: extra address-space setup actions (e.g. the
        Adreno ring configuration registers)."""
        return []

    # -- annotations (the record-harness API of Section 4.4) ---------------------

    def annotate_by_value(self, ranges: List[Tuple[int, int]]) -> None:
        """Mark (va, size) ranges whose *values* must be captured."""
        self._by_value.extend(ranges)

    def _overlaps_by_value(self, region: _Region) -> bool:
        for va, size in self._by_value:
            if va < region.end_va() and region.va < va + size:
                return True
        return False

    # -- session lifecycle ----------------------------------------------------------

    def begin(self, workload: str) -> None:
        if self._active:
            raise RecordingError("recorder already active")
        self._active = True
        self.workload = workload
        self._recordings = []
        self.interval_samples = []
        self._saved_depth = self.driver.queue.depth
        if self.options.sync_submission:
            self.driver.queue.set_depth(1)
        self._live_regions: Dict[int, _Region] = {}
        ctx = self.driver.require_ctx()
        for region in ctx.regions.values():
            self._live_regions[region.va] = _Region(
                region.va, region.num_pages, region.flags)
        self.first_kick_snapshot: List[Tuple[int, bytes]] = []
        self._page_hashes: Dict[int, int] = {}
        obs = self.machine.obs
        self._obs_track = obs.track("recorder", self.family)
        self._session_span = obs.begin(f"record:{workload}",
                                       self._obs_track, cat="record")
        self._rec_span = None
        self._on_begin()
        self._start_recording()
        self.driver.attach_tracer(self)

    def end(self) -> List[Recording]:
        if not self._active:
            raise RecordingError("recorder not active")
        self.driver.detach_tracer(self)
        self._finalize_recording()
        self.machine.obs.end(self._session_span)
        self.driver.queue.set_depth(self._saved_depth)
        self._active = False
        return self._recordings

    def cut(self) -> None:
        """Finish the current recording and start the next one."""
        if not self._active:
            raise RecordingError("recorder not active")
        self._finalize_recording()
        self._start_recording()

    # -- per-recording state ------------------------------------------------------------

    def _reset_stream_state(self) -> None:
        self._actions: List[act.Action] = []
        self._dumps: List[MemoryDump] = []
        # Page hashes deliberately survive cut(): recordings in a
        # per-layer chain share state already uploaded by earlier
        # recordings of the same replay session (weights, prior job
        # binaries), so later recordings carry only their own deltas.
        self._job_counter = 0
        self._reg_action_count = 0
        self._last_t = self.machine.clock.now()
        self._last_busy = False
        self._prologue_len = 0

    def _start_recording(self) -> None:
        self._reset_stream_state()
        self._rec_span = self.machine.obs.begin(
            f"recording[{len(self._recordings)}]", self._obs_track,
            cat="record")
        self._last_busy = self.driver.gpu_busy_hint()
        # Prologue: reconstruct the GPU address space at replay time.
        self._append(act.SetGpuPgtable(memattr=self._capture_memattr(),
                                       src="recorder:prologue"),
                     interval=False)
        for region in sorted(self._live_regions.values(),
                             key=lambda r: r.va):
            self._append(self._map_action(region), interval=False)
        for action in self._extra_prologue_actions():
            self._append(action, interval=False)
        self._prologue_len = len(self._actions)

    def _map_action(self, region: _Region) -> act.MapGpuMem:
        raw = self._fmt.encode_pte(0, region.flags.to_perms())
        return act.MapGpuMem(addr=region.va, num_pages=region.num_pages,
                             raw_pte_flags=raw, src="recorder:map")

    def _finalize_recording(self) -> None:
        meta = RecordingMeta(
            gpu_model=self.driver.gpu.model_name,
            family=self.family,
            pte_format=self._fmt.name,
            board=self.machine.board.name,
            workload=self.workload,
            memattr=self._capture_memattr(),
            n_jobs=self._job_counter,
            reg_io=self._reg_action_count,
            prologue_len=self._prologue_len,
            power_sequence=[
                (tag, dev, val)
                for tag, dev, val in self.machine.firmware.extract_sequence()
                if tag in (fw.TAG_SET_POWER, fw.TAG_SET_CLOCK_RATE)
            ],
        )
        self._recordings.append(Recording(meta, self._actions, self._dumps))
        obs = self.machine.obs
        obs.end(self._rec_span)
        self._rec_span = None
        obs.counter("record.recordings").inc()
        obs.counter("record.actions").inc(len(self._actions))
        obs.counter("record.jobs").inc(self._job_counter)

    @property
    def recordings(self) -> List[Recording]:
        return self._recordings

    # -- action emission -------------------------------------------------------------------

    def _append(self, action: act.Action, interval: bool = True,
                t_ns: Optional[int] = None) -> None:
        now = t_ns if t_ns is not None else self.machine.clock.now()
        if interval:
            dt = max(0, now - self._last_t)
            # An interval ending in (or starting from) an event-driven
            # wait is re-synchronized by the hardware itself at replay
            # time: the WaitIrq/RegReadWait blocks until the GPU is
            # ready, so pacing it again would double-count GPU time.
            event_driven = (
                isinstance(action, (act.IrqEnter, act.IrqExit))
                or isinstance(self._actions[-1] if self._actions else
                              None, (act.WaitIrq, act.RegReadWait)))
            skippable = (self.options.skip_idle_intervals
                         and (not self._last_busy or event_driven))
            action.recorded_interval_ns = dt
            action.min_interval_ns = 0 if skippable else dt
            self.interval_samples.append(
                IntervalSample(self._job_counter, dt, skippable))
            obs = self.machine.obs
            obs.counter("record.intervals").inc()
            if skippable:
                obs.counter("record.intervals_skippable").inc()
        action.job_index = self._job_counter
        self._actions.append(action)
        self._last_t = now

    # -- DriverTracer --------------------------------------------------------------------------

    def emit(self, event: trace.TraceEvent) -> None:
        if isinstance(event, trace.RegWriteEvent):
            kick = event.name in self._kick_regs
            self._reg_action_count += 1
            self._append(act.RegWrite(reg=event.name, mask=event.mask,
                                      val=event.value, is_job_kick=kick,
                                      src=event.src), t_ns=event.t_ns)
            if kick:
                self._job_counter += 1
        elif isinstance(event, trace.RegReadEvent):
            self._reg_action_count += 1
            self._append(act.RegReadOnce(reg=event.name, val=event.value,
                                         ignore=event.volatile,
                                         src=event.src), t_ns=event.t_ns)
        elif isinstance(event, trace.RegPollEvent):
            if not event.success:
                raise RecordingError(
                    f"record-time poll timed out at {event.src}")
            self._reg_action_count += event.polls
            self._append(act.RegReadWait(reg=event.name, mask=event.mask,
                                         val=event.value,
                                         timeout_ns=event.timeout_ns,
                                         src=event.src), t_ns=event.t_ns)
        elif isinstance(event, trace.WaitIrqEvent):
            self._append(act.WaitIrq(timeout_ns=event.timeout_ns,
                                     src=event.src), t_ns=event.t_ns)
        elif isinstance(event, trace.IrqEvent):
            cls = act.IrqEnter if event.phase == "enter" else act.IrqExit
            self._append(cls(src=event.src), t_ns=event.t_ns)
        elif isinstance(event, trace.JobKickEvent):
            self._capture_dumps(event.chain_va)
        elif isinstance(event, trace.MemMapEvent):
            region = _Region(event.va, event.num_pages,
                             MemFlags(event.flags))
            self._live_regions[event.va] = region
            self._append(self._map_action(region), t_ns=event.t_ns)
        elif isinstance(event, trace.MemUnmapEvent):
            self._live_regions.pop(event.va, None)
            self._append(act.UnmapGpuMem(addr=event.va,
                                         num_pages=event.num_pages,
                                         src=event.src), t_ns=event.t_ns)
        self._last_busy = event.gpu_busy_after

    # -- memory dumping (Section 4.3) -----------------------------------------------------------

    def _read_region_page(self, region: _Region, index: int) -> bytes:
        """Read one page of a live region through the driver's tables."""
        ctx = self.driver.require_ctx()
        va = region.va + index * PAGE_SIZE
        entry = ctx.page_table.lookup(va)
        if entry is None:
            raise RecordingError(f"live region page {va:#x} unmapped")
        pa, _perms = entry
        return self.machine.memory.read(pa, PAGE_SIZE)

    def _snapshot_data_regions(self) -> List[Tuple[int, bytes]]:
        """Contents of CPU-mapped data regions (for taint scanning)."""
        out: List[Tuple[int, bytes]] = []
        for region in sorted(self._live_regions.values(),
                             key=lambda r: r.va):
            if region.flags & MemFlags.GPU_EXEC:
                continue
            if not region.flags & MemFlags.CPU_MAPPED:
                continue
            data = b"".join(self._read_region_page(region, i)
                            for i in range(region.num_pages))
            out.append((region.va, data))
        return out

    def _capture_dumps(self, chain_va: int) -> None:
        obs = self.machine.obs
        t0 = self.machine.clock.now()
        if not self.first_kick_snapshot:
            # Taken before any GPU job has run: the only copy of the
            # app's input in GPU memory is the one the runtime wrote,
            # so the taint scan cannot confuse job-made duplicates.
            self.first_kick_snapshot = self._snapshot_data_regions()
        pages: List[Tuple[int, bytes]] = []
        scanned_bytes = 0
        for region in self._dump_eligible_regions(chain_va):
            changed: List[Tuple[int, bytes]] = []
            all_pages: List[Tuple[int, bytes]] = []
            for i in range(region.num_pages):
                va = region.va + i * PAGE_SIZE
                data = self._read_region_page(region, i)
                scanned_bytes += PAGE_SIZE
                digest = zlib.crc32(data)
                if self._whole_region_dumps():
                    all_pages.append((va, data))
                if self._page_hashes.get(va) != digest:
                    self._page_hashes[va] = digest
                    changed.append((va, data))
            if not changed:
                continue
            pages.extend(all_pages if self._whole_region_dumps()
                         else changed)
        obs.counter("record.dump_bytes_scanned").inc(scanned_bytes)
        if not pages:
            return
        # Record-time overhead of copying the pages out (an unintended
        # delay the idle heuristic later removes from replay).
        self.machine.clock.advance(
            max(1, (scanned_bytes + sum(len(d) for _va, d in pages))
                * SEC // DUMP_BW))
        dump_bytes = 0
        for dump in coalesce_pages(pages):
            index = len(self._dumps)
            self._dumps.append(dump)
            dump_bytes += dump.size
            self._append(act.Upload(addr=dump.va, dump_index=index,
                                    src="recorder:dump"))
        obs.counter("record.dump_bytes").inc(dump_bytes)
        obs.histogram("record.dump_capture_bytes",
                      SIZE_BUCKETS_BYTES).observe(dump_bytes)
        obs.complete(f"dump@{chain_va:#x}", self._obs_track, t0,
                     self.machine.clock.now(),
                     cat="record",
                     args={"scanned_bytes": scanned_bytes,
                           "dump_bytes": dump_bytes})


class MaliRecorder(GpuRecorder):
    """Mali recorder: exec-permission dump shrinking (Section 6.1).

    A GPU-visible page mapped *executable* is part of a job chain ->
    dump it. A non-executable page never touched through the CPU
    mapping must be a GPU-internal buffer -> exclude it. Data pages the
    harness annotated record-by-value (NN parameters) are captured too.
    """

    def _kick_register_names(self) -> Set[str]:
        return {f"JS{slot}_COMMAND" for slot in range(2)}

    def _capture_memattr(self) -> int:
        return self.driver.regs.peek("AS0_MEMATTR")

    def _dump_eligible_regions(self, chain_va: int) -> List[_Region]:
        del chain_va  # exec permissions suffice on Mali
        out = []
        for region in self._live_regions.values():
            if region.flags & MemFlags.GPU_EXEC:
                out.append(region)
            elif self._overlaps_by_value(region):
                out.append(region)
        return out


class AdrenoRecorder(MaliRecorder):
    """Adreno recorder: SMMU permissions give the same exec-bit dump
    shrinking as Mali; the kick register is the ring doorbell.

    Amortization in practice (Section 4.1): the Adreno recorder reuses
    the Mali dump policy wholesale -- only the Table 1 interface
    knowledge differs.
    """

    def _kick_register_names(self) -> Set[str]:
        return {"CP_RB_WPTR"}

    def _capture_memattr(self) -> int:
        return self.driver.regs.peek("SMMU_CR0")

    def _on_begin(self) -> None:
        # A recording must start from ring offset zero, matching the
        # freshly-reset state the nano driver provides at replay time.
        self.driver.rewind_ring()

    def _extra_prologue_actions(self) -> List[act.Action]:
        regs = self.driver.regs
        return [
            act.RegWrite(reg=name, val=regs.peek(name),
                         src="recorder:ring-prologue")
            for name in ("CP_RB_BASE_LO", "CP_RB_BASE_HI", "CP_RB_SIZE")
        ]


class V3dRecorder(GpuRecorder):
    """v3d recorder: pointer chasing + flag hints (Section 6.2).

    v3d page tables lack executable bits, so the recorder follows the
    kick registers into the control list and chases shader pointers to
    find the job binary; allocation-flag hints exclude GPU-internal
    scratch (unless disabled, the conservative mode that inflates
    dumps). Dumps are rounded to whole regions -- the conservatism that
    makes v3d recordings larger but highly compressible (Section 7.3).
    """

    def _kick_register_names(self) -> Set[str]:
        return {"CT0QEA"}

    def _capture_memattr(self) -> int:
        return 0  # v3d has no translation-config register to capture.

    def _whole_region_dumps(self) -> bool:
        return True

    def _cpu_read(self, va: int, size: int) -> bytes:
        """Read GPU memory CPU-side through the driver's page tables."""
        ctx = self.driver.require_ctx()
        out = bytearray()
        cursor = va
        while len(out) < size:
            entry = ctx.page_table.lookup(cursor)
            if entry is None:
                raise RecordingError(
                    f"control list walks into unmapped VA {cursor:#x}")
            pa, _ = entry
            in_page = cursor & (PAGE_SIZE - 1)
            chunk = min(size - len(out), PAGE_SIZE - in_page)
            out += self.machine.memory.read(pa + in_page, chunk)
            cursor += chunk
        return bytes(out)

    def _regions_containing(self, va: int, size: int) -> List[_Region]:
        out = []
        for region in self._live_regions.values():
            if va < region.end_va() and region.va < va + size:
                out.append(region)
        return out

    def _dump_eligible_regions(self, chain_va: int) -> List[_Region]:
        eligible: Dict[int, _Region] = {}
        # Pointer-chase the control list from the kick registers.
        entries = jobfmt.walk_control_list(chain_va, self._cpu_read)
        targets: List[Tuple[int, int]] = [(chain_va, 1)]
        for entry in entries:
            if entry.opcode == jobfmt.CL_EXEC_SHADER:
                targets.append((entry.shader_va, entry.shader_size))
            elif entry.opcode == jobfmt.CL_BRANCH:
                targets.append((entry.target_va, 1))
        for va, size in targets:
            for region in self._regions_containing(va, size):
                eligible[region.va] = region
        # By-value annotations and (without flag hints) scratch too.
        for region in self._live_regions.values():
            if self._overlaps_by_value(region):
                eligible[region.va] = region
            elif (not self.options.use_flag_hints
                  and region.flags & MemFlags.SCRATCH):
                eligible[region.va] = region
        return list(eligible.values())


def make_recorder(driver: GpuDriver,
                  options: Optional[RecorderOptions] = None) -> GpuRecorder:
    """Build the family-appropriate recorder for ``driver``."""
    if driver.gpu.family == "mali":
        return MaliRecorder(driver, options)
    if driver.gpu.family == "v3d":
        return V3dRecorder(driver, options)
    if driver.gpu.family == "adreno":
        return AdrenoRecorder(driver, options)
    raise RecordingError(f"no recorder for GPU family {driver.gpu.family}")
