"""A small thread-safe LRU cache shared by the replay fast path.

Two users with the same needs:

- the replayer's content-addressed *load cache* (digest-keyed
  verification reports + compiled action programs), which must stay
  bounded under a long-lived serve loop;
- the bench harness's :class:`~repro.bench.harness.RecordingCache`,
  which memoizes expensive record-side work across experiments.

Both want get-or-produce semantics, hit/miss/eviction accounting, and
a capacity bound with least-recently-used eviction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable, Optional, Tuple

#: Cache entries kept when no capacity is given.
DEFAULT_CAPACITY = 64

_MISSING = object()


class LruCache:
    """Bounded key/value store with LRU eviction and accounting.

    ``capacity=None`` means unbounded (the pre-fast-path behaviour of
    the bench recording cache); any positive integer bounds the entry
    count, evicting the least recently *used* entry first. All
    operations take an internal lock, so a long-lived serve loop can
    share one cache across worker threads.
    """

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"cache capacity must be positive, "
                             f"got {capacity}")
        self._capacity = capacity
        self._entries: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._warms = 0

    # -- core operations ----------------------------------------------------

    def lookup(self, key: Hashable) -> Tuple[object, bool]:
        """Return ``(value, hit)``; counts the hit or miss."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return None, False
            self._entries.move_to_end(key)
            self._hits += 1
            return value, True

    def put(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while self._capacity is not None and \
                    len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_produce(self, key: Hashable,
                       produce: Callable[[], object]) -> object:
        """Return the cached value, producing (and storing) on a miss.

        ``produce`` runs under the cache lock: concurrent callers of
        the same key see exactly one production. Producers must not
        re-enter the cache with a *different* key from another thread.
        """
        with self._lock:
            value, hit = self.lookup(key)
            if hit:
                return value
            value = produce()
            self.put(key, value)
            return value

    def warm(self, key: Hashable,
             produce: Callable[[], object]) -> bool:
        """Prefetch: produce and store ``key`` if absent, *without*
        touching hit/miss accounting.

        ``lookup``/``get_or_produce`` measure demand traffic; a
        prefetcher (the recording vault streaming content into the
        replay load cache ahead of a serve run) is supply, and letting
        it inflate the miss counter would make a fully-warmed cache
        look cold. Returns True when the entry was produced, False
        when it was already present.
        """
        with self._lock:
            if key in self._entries:
                return False
            self.put(key, produce())
            self._warms += 1
            return True

    def clear(self) -> None:
        """Drop every entry; accounting survives (it is cumulative)."""
        with self._lock:
            self._entries.clear()

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def capacity(self) -> Optional[int]:
        return self._capacity

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def warms(self) -> int:
        return self._warms
