"""The CVE corpus of Table 5 and its mapping to GR's design.

Each entry records which design lever eliminates it (removing the GPU
runtime from the app, removing the GPU driver, or disabling
fine-grained GPU sharing) and in which deployment scenarios (D1-D3)
that lever is active.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

DEPLOYMENTS = ("D1", "D2", "D3")

#: Design levers and the deployments where each applies (Table 5 rows).
LEVER_DEPLOYMENTS: Dict[str, Tuple[str, ...]] = {
    "remove-runtime": ("D1", "D2", "D3"),
    "remove-driver": ("D2", "D3"),
    "disable-sharing": ("D1", "D2"),
}


@dataclass(frozen=True)
class CveEntry:
    """One CVE row of Table 5."""

    cve_id: str
    severity: str
    description: str
    effect: str
    #: App./Kernel./GPU. x I/C/A classification from the table.
    vulnerability: str
    #: Which GR design lever eliminates it.
    lever: str


CVE_CORPUS: List[CveEntry] = [
    CveEntry("CVE-2014-1376", "High",
             "Improper restriction of OpenCL calls",
             "Arbitrary code execution", "App.I", "remove-runtime"),
    CveEntry("CVE-2019-5068", "Medium",
             "Exploitable shared memory permissions",
             "Unauthorized mem access", "App.C", "remove-runtime"),
    CveEntry("CVE-2018-6253", "Medium",
             "Malformed shaders cause infinite recursion",
             "App hang", "App.A/GPU.A", "remove-runtime"),
    CveEntry("CVE-2017-18643", "High",
             "Leak of GPU context address of GPU mem region",
             "Sensitive info disclosure", "Kernel.C", "remove-driver"),
    CveEntry("CVE-2019-20577", "High",
             "Invalid address mapping of GPU buffer",
             "Kernel crash", "Kernel.I", "remove-driver"),
    CveEntry("CVE-2020-11179", "High",
             "Race condition by overwriting ring buffer",
             "Arbitrary kernel mem r/w", "Kernel.I", "remove-driver"),
    CveEntry("CVE-2019-10520", "Medium",
             "Continuous GPU mem allocating via IOCTL",
             "GPU mem exhausted", "Kernel.A", "remove-driver"),
    CveEntry("CVE-2014-0972", "N/A",
             "Lack of write protection for IOMMU page table",
             "Kernel mem corruption", "Kernel.I", "remove-driver"),
    CveEntry("CVE-2019-14615", "Medium",
             "Learning app's secret from GPU register file",
             "App data leak", "App.C", "disable-sharing"),
]


def eliminated_cves(deployment: str) -> List[CveEntry]:
    """CVEs a given deployment scenario eliminates."""
    if deployment not in DEPLOYMENTS:
        raise ValueError(f"unknown deployment {deployment!r}; "
                         f"expected one of {DEPLOYMENTS}")
    return [entry for entry in CVE_CORPUS
            if deployment in LEVER_DEPLOYMENTS[entry.lever]]


def eliminated_fraction(deployment: str) -> float:
    return len(eliminated_cves(deployment)) / len(CVE_CORPUS)


def by_lever() -> Dict[str, List[CveEntry]]:
    out: Dict[str, List[CveEntry]] = {lever: [] for lever in
                                      LEVER_DEPLOYMENTS}
    for entry in CVE_CORPUS:
        out[entry.lever].append(entry)
    return out


def table5_rows() -> List[Dict[str, str]]:
    """Rows in the paper's Table 5 layout."""
    return [
        {
            "design": entry.lever,
            "deployments": "/".join(LEVER_DEPLOYMENTS[entry.lever]),
            "cve": entry.cve_id,
            "severity": entry.severity,
            "description": entry.description,
            "effect": entry.effect,
            "vulnerability": entry.vulnerability,
        }
        for entry in CVE_CORPUS
    ]
