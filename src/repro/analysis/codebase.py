"""Codebase accounting: the Table 4 comparison over this repository.

Counts source lines (non-blank, non-comment) of the components we
built, grouped the way Table 4 groups them: the original stack
(framework / runtime / driver) versus GR's recorder and replayer. The
point the table makes -- the replayer is orders of magnitude smaller
than the stack it replaces -- must hold for *our own tree* too, and
the codebase test suite asserts it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List

import repro

#: Component -> package paths relative to the ``repro`` package.
COMPONENT_PATHS: Dict[str, List[str]] = {
    "frameworks": ["stack/framework"],
    "runtimes": ["stack/runtime"],
    "drivers": ["stack/driver"],
    "recorder": ["core/recorder.py", "core/taint.py", "core/harness.py"],
    "replayer": ["core/nano_driver.py", "core/interpreter.py",
                 "core/replayer.py", "core/verifier.py",
                 "core/checkpoints.py"],
    "recording-format": ["core/recording.py", "core/actions.py",
                         "core/dumps.py"],
    "gpu-hardware-model": ["gpu"],
    "soc-substrate": ["soc"],
    "environments": ["environments"],
}


@dataclass
class ComponentStats:
    name: str
    files: int = 0
    sloc: int = 0
    bytes_on_disk: int = 0


@dataclass
class CodebaseReport:
    components: Dict[str, ComponentStats] = field(default_factory=dict)

    def sloc(self, name: str) -> int:
        return self.components[name].sloc

    def stack_sloc(self) -> int:
        return sum(self.sloc(n) for n in
                   ("frameworks", "runtimes", "drivers"))

    def replayer_sloc(self) -> int:
        return self.sloc("replayer")

    def recorder_sloc(self) -> int:
        return self.sloc("recorder")

    def table4_rows(self) -> List[Dict[str, object]]:
        order = ["frameworks", "runtimes", "drivers", "recorder",
                 "recording-format", "replayer"]
        return [
            {
                "component": name,
                "side": ("original stack" if name in
                         ("frameworks", "runtimes", "drivers")
                         else "ours"),
                "sloc": self.components[name].sloc,
                "files": self.components[name].files,
                "bytes": self.components[name].bytes_on_disk,
            }
            for name in order
        ]


def count_sloc(path: str) -> int:
    """Non-blank, non-comment source lines of one Python file."""
    sloc = 0
    in_docstring = False
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if in_docstring:
                if stripped.endswith('"""') or stripped.endswith("'''"):
                    in_docstring = False
                continue
            if not stripped or stripped.startswith("#"):
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                quote = stripped[:3]
                body = stripped[3:]
                if not (body.endswith(quote) and len(stripped) >= 6):
                    in_docstring = True
                continue
            sloc += 1
    return sloc


def _python_files(root: str) -> List[str]:
    if os.path.isfile(root):
        return [root] if root.endswith(".py") else []
    out: List[str] = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(".py"):
                out.append(os.path.join(dirpath, name))
    return out


def analyze_codebase() -> CodebaseReport:
    """Measure every component of this repository."""
    package_root = os.path.dirname(os.path.abspath(repro.__file__))
    report = CodebaseReport()
    for component, rel_paths in COMPONENT_PATHS.items():
        stats = ComponentStats(component)
        for rel in rel_paths:
            for path in _python_files(os.path.join(package_root, rel)):
                stats.files += 1
                stats.sloc += count_sloc(path)
                stats.bytes_on_disk += os.path.getsize(path)
        report.components[component] = stats
    return report
