"""Security and codebase analysis backing the evaluation's Section 7.1.

- :mod:`repro.analysis.cves` -- the CVE corpus of Table 5 and its
  mapping onto GR's design levers and deployment scenarios;
- :mod:`repro.analysis.codebase` -- SLoC/size accounting over this
  repository, regenerating the Table 4 comparison;
- :mod:`repro.analysis.security` -- executable attack simulations
  against the replayer's verified surface.
"""

from repro.analysis.cves import (CVE_CORPUS, CveEntry, eliminated_cves,
                                 eliminated_fraction)
from repro.analysis.codebase import CodebaseReport, analyze_codebase
from repro.analysis.security import AttackResult, run_attack_suite

__all__ = [
    "AttackResult",
    "CVE_CORPUS",
    "CodebaseReport",
    "CveEntry",
    "analyze_codebase",
    "eliminated_cves",
    "eliminated_fraction",
    "run_attack_suite",
]
