"""Executable attack simulations against the replayer (Section 7.1).

The threat model grants the adversary fabricated recordings (a
compromised distribution channel). Each attack here builds a malicious
recording and checks that the replayer's static verifier (Section 5.1)
stops it -- or, for the GPU-hang attack that verification legitimately
cannot prevent, that the replayer fails *safely* with a typed error
and the GPU stays recoverable.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core import actions as act
from repro.core.dumps import MemoryDump
from repro.core.recording import Recording, RecordingMeta
from repro.core.replayer import Replayer
from repro.errors import (ReplayError, SerializationError,
                          VerificationError)
from repro.soc.machine import Machine
from repro.soc.memory import PAGE_SIZE
from repro.units import MIB, MS


@dataclass
class AttackResult:
    """Outcome of one simulated attack."""

    name: str
    blocked: bool
    defense: str
    detail: str = ""


def _base_meta(machine: Machine) -> RecordingMeta:
    gpu = machine.require_gpu()
    return RecordingMeta(gpu_model=gpu.model_name, family=gpu.family,
                         pte_format=gpu.mmu.fmt.name,
                         board=machine.board.name,
                         workload="fabricated")


def attack_illegal_register(machine: Machine) -> AttackResult:
    """Name a register outside the replayer's map (e.g. an SoC secure
    fuse controller the adversary hopes is adjacent in MMIO space)."""
    recording = Recording(_base_meta(machine), [
        act.RegWrite(reg="EFUSE_SECRET_KEY", val=0xDEAD),
    ], [])
    replayer = Replayer(machine)
    replayer.init()
    try:
        replayer.load(recording)
        return AttackResult("illegal-register", False, "none",
                            "verifier accepted an unknown register")
    except VerificationError as error:
        return AttackResult("illegal-register", True,
                            "register-map whitelist", str(error))
    finally:
        replayer.cleanup()


def attack_oob_upload(machine: Machine) -> AttackResult:
    """Upload a dump to GPU memory the recording never mapped."""
    meta = _base_meta(machine)
    recording = Recording(meta, [
        act.SetGpuPgtable(),
        act.MapGpuMem(addr=0x100000, num_pages=1, raw_pte_flags=0x7),
        act.Upload(addr=0x900000, dump_index=0),
    ], [MemoryDump(0x900000, b"\x41" * PAGE_SIZE)])
    meta.prologue_len = 2
    replayer = Replayer(machine)
    replayer.init()
    try:
        replayer.load(recording)
        return AttackResult("oob-upload", False, "none",
                            "verifier accepted an out-of-map upload")
    except VerificationError as error:
        return AttackResult("oob-upload", True,
                            "GPU-memory bounds check", str(error))
    finally:
        replayer.cleanup()


def attack_memory_bomb(machine: Machine) -> AttackResult:
    """Map (nearly) all of GPU memory to exhaust the device."""
    meta = _base_meta(machine)
    actions: List[act.Action] = [act.SetGpuPgtable()]
    huge_pages = 200 * MIB // PAGE_SIZE
    for i in range(4):
        actions.append(act.MapGpuMem(
            addr=0x100000 + i * 210 * MIB // PAGE_SIZE * PAGE_SIZE,
            num_pages=huge_pages, raw_pte_flags=0x7))
    recording = Recording(meta, actions, [])
    replayer = Replayer(machine, max_gpu_bytes=256 * MIB)
    replayer.init()
    try:
        replayer.load(recording)
        return AttackResult("memory-bomb", False, "none",
                            "memory-hungry recording accepted")
    except VerificationError as error:
        return AttackResult("memory-bomb", True,
                            "max-GPU-memory policy", str(error))
    finally:
        replayer.cleanup()


def attack_malformed_file(machine: Machine) -> AttackResult:
    """Feed the replayer a corrupted recording file."""
    replayer = Replayer(machine)
    replayer.init()
    try:
        replayer.load_bytes(b"GRRC" + b"\x99" * 64)
        return AttackResult("malformed-file", False, "none",
                            "corrupt file parsed")
    except SerializationError as error:
        return AttackResult("malformed-file", True,
                            "format validation", str(error))
    finally:
        replayer.cleanup()


def attack_gpu_hang(machine: Machine) -> AttackResult:
    """A verifiable recording that simply hangs the GPU.

    Verification cannot rule this out (Section 7.1: a fabricated
    recording "may hang GPU but cannot break security guarantees");
    what matters is that the replay fails with a typed, bounded error
    and the GPU is recoverable by reset afterwards.
    """
    meta = _base_meta(machine)
    recording = Recording(meta, [
        act.SetGpuPgtable(),
        act.MapGpuMem(addr=0x100000, num_pages=1, raw_pte_flags=0x7),
        act.WaitIrq(timeout_ns=2 * MS, src="fabricated:hang"),
    ], [])
    meta.prologue_len = 2
    replayer = Replayer(machine)
    replayer.init()
    try:
        replayer.load(recording)
        try:
            replayer.replay(max_attempts=1)
            return AttackResult("gpu-hang", False, "none",
                                "hang recording 'succeeded'")
        except ReplayError:
            # Bounded failure; prove the GPU is still recoverable.
            replayer.nano.soft_reset()
            return AttackResult(
                "gpu-hang", True,
                "bounded timeouts + reset recovery",
                "replay failed safely; GPU reset succeeded")
    finally:
        replayer.cleanup()


ATTACKS: Dict[str, Callable[[Machine], AttackResult]] = {
    "illegal-register": attack_illegal_register,
    "oob-upload": attack_oob_upload,
    "memory-bomb": attack_memory_bomb,
    "malformed-file": attack_malformed_file,
    "gpu-hang": attack_gpu_hang,
}


def run_attack_suite(machine_factory: Callable[[], Machine]
                     ) -> List[AttackResult]:
    """Run every attack, each on a fresh machine."""
    return [attack(machine_factory()) for attack in ATTACKS.values()]
