"""The TrustZone replayer (deployment D2, Section 6.3).

A secure monitor at EL3 switches the GPU between the normal world
(running the full stack for ordinary apps) and the secure world
(running the replayer inside an OP-TEE-like kernel). The monitor owns
the *mapping switch*: only the world currently granted the GPU may
touch its registers -- the 100-SLoC OP-TEE driver of Section 6.3.

World switches cost real virtual time, and every replay is bracketed
by a pair of them, which is how the TEE deployment's overhead shows up
in benchmarks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.replayer import Replayer, ReplayResult
from repro.environments.base import (DeploymentEnvironment, TcbProfile,
                                     host_kernel_configures_gpu)
from repro.errors import EnvironmentError_
from repro.soc.machine import Machine
from repro.units import KIB, MS, US

NORMAL_WORLD = "normal"
SECURE_WORLD = "secure"

#: One EL3 world switch (SMC + context save/restore).
WORLD_SWITCH_NS = 12 * US
#: OP-TEE session setup + secure-world mapping of GPU registers/memory.
TEE_SETUP_NS = 5 * MS


class SecureMonitor:
    """EL3 monitor: tracks which world owns the GPU mappings."""

    def __init__(self, machine: Machine):
        self.machine = machine
        self.gpu_owner = NORMAL_WORLD
        self.switch_count = 0

    def switch_gpu_to(self, world: str) -> None:
        if world not in (NORMAL_WORLD, SECURE_WORLD):
            raise EnvironmentError_(f"unknown world {world!r}")
        if world == self.gpu_owner:
            return
        t0 = self.machine.clock.now()
        # Re-map GPU registers and memory into the target world.
        self.machine.clock.advance(WORLD_SWITCH_NS)
        self.gpu_owner = world
        self.switch_count += 1
        obs = self.machine.obs
        obs.counter("env.world_switches").inc()
        obs.complete(f"world-switch:{world}",
                     obs.track("env:tee", "monitor"), t0,
                     self.machine.clock.now(), cat="env")

    def require_owner(self, world: str) -> None:
        if self.gpu_owner != world:
            raise EnvironmentError_(
                f"GPU is mapped to the {self.gpu_owner} world; "
                f"{world}-world access is blocked by the monitor")


class TeeEnvironment(DeploymentEnvironment):
    """Replayer inside the secure world (used on Mali / Hikey960)."""

    name = "tee"

    def __init__(self, machine: Machine,
                 monitor: Optional[SecureMonitor] = None):
        super().__init__(machine)
        self.monitor = monitor or SecureMonitor(machine)

    def tcb(self) -> TcbProfile:
        return TcbProfile(
            name=self.name,
            trusted_components=["TEE kernel (OP-TEE)", "secure monitor",
                                "replayer TA (~1K SLoC)"],
            exposed_to=["local OS adversaries (normal world)",
                        "remote adversaries"],
            replayer_binary_bytes=10 * KIB,
        )

    def _prepare(self) -> None:
        host_kernel_configures_gpu(self.machine)
        self.machine.clock.advance(TEE_SETUP_NS)
        self.monitor.switch_gpu_to(SECURE_WORLD)

    def replay(self, **kwargs) -> ReplayResult:
        """Replay entirely inside the secure world.

        The monitor must have granted the GPU to the secure world; the
        result is returned to the normal world through one more switch
        (shared-memory result passing).
        """
        self.monitor.require_owner(SECURE_WORLD)
        result = self.require_replayer().replay(**kwargs)
        # Return to the caller in the normal world.
        self.machine.clock.advance(WORLD_SWITCH_NS)
        return result

    def yield_gpu_to_normal_world(self) -> int:
        """Give the GPU back to the normal-world stack (D2 handoff)."""
        delay = self.require_replayer().handoff()
        self.monitor.switch_gpu_to(NORMAL_WORLD)
        return delay + WORLD_SWITCH_NS

    def reclaim_gpu(self) -> None:
        self.monitor.switch_gpu_to(SECURE_WORLD)
        self.require_replayer().nano.soft_reset()
