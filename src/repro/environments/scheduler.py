"""GPU handoff between a replayer and interactive apps (D1, §5.3).

On a smartphone the replayer runs GR-supported ML while interactive
apps are off the GPU. When an interactive app asks for the GPU, the OS
preempts the replay *without waiting for ongoing GPU jobs*: the
scheduler flushes caches/TLB and soft-resets -- the sub-millisecond
delay Section 7.5 measures. The disrupted replay later resumes, either
from a checkpoint or by whole re-execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.replayer import Replayer, ReplayResult
from repro.errors import EnvironmentError_, ReplayAborted
from repro.soc.machine import Machine
from repro.units import MS


@dataclass
class InteractiveApp:
    """A foreground app that intermittently needs the GPU."""

    name: str
    #: How long it holds the GPU per burst.
    burst_ns: int = 16 * MS
    grants: int = 0
    total_wait_ns: int = 0


@dataclass
class PreemptionEvent:
    """One preemption: who asked, and how long the handoff took."""

    app: str
    at_ns: int
    handoff_delay_ns: int
    replay_action_index: int


class GpuHandoffScheduler:
    """OS-side arbiter between one replayer and interactive apps."""

    def __init__(self, machine: Machine, replayer: Replayer):
        self.machine = machine
        self.replayer = replayer
        self.owner = "replayer"
        self.events: List[PreemptionEvent] = []
        self._preempt_at_ns: Optional[int] = None

    # -- interactive side -----------------------------------------------------

    def schedule_preemption(self, app: InteractiveApp,
                            delay_ns: int) -> None:
        """Arrange for ``app`` to demand the GPU ``delay_ns`` from now."""
        self._preempt_at_ns = self.machine.clock.now() + delay_ns
        self._pending_app = app

    def _should_yield(self) -> bool:
        return (self._preempt_at_ns is not None
                and self.machine.clock.now() >= self._preempt_at_ns)

    # -- replay under preemption ---------------------------------------------------

    def run_replay(self, inputs: Optional[Dict[str, np.ndarray]] = None
                   ) -> ReplayResult:
        """Run a replay to completion, servicing scheduled preemptions.

        Each preemption hands the GPU to the interactive app for its
        burst, then resumes the replay (checkpoint restore if one is
        available, whole re-execution otherwise).
        """
        while True:
            try:
                if self.events and self.replayer.checkpoints.latest() \
                        is None:
                    # Disrupted with no checkpoint: start over.
                    result = self.replayer.replay(
                        inputs=inputs,
                        should_yield=self._should_yield)
                elif self.events:
                    result = self.replayer.resume_after_preemption()
                else:
                    result = self.replayer.replay(
                        inputs=inputs,
                        should_yield=self._should_yield)
                return result
            except ReplayAborted as aborted:
                self._service_preemption(aborted.action_index)

    def _service_preemption(self, action_index: int) -> None:
        app = getattr(self, "_pending_app", None)
        if app is None:
            raise EnvironmentError_("preemption without a pending app")
        t0 = self.machine.clock.now()
        self.machine.flight.record(t0, "Preempt", (app.name,))
        delay = self.replayer.handoff()
        self.owner = app.name
        self.events.append(PreemptionEvent(
            app=app.name, at_ns=t0, handoff_delay_ns=delay,
            replay_action_index=action_index))
        app.grants += 1
        app.total_wait_ns += delay
        # The interactive app uses the GPU for its burst...
        self.machine.clock.advance(app.burst_ns)
        # ...then the OS hands it back to the replayer.
        self.owner = "replayer"
        self._preempt_at_ns = None
        self.replayer.nano.soft_reset()

    # -- reporting ---------------------------------------------------------------------

    def max_handoff_delay_ns(self) -> int:
        return max((e.handoff_delay_ns for e in self.events), default=0)
