"""The baremetal replayer (deployment D3, Section 6.3).

No OS at all: recordings are statically embedded in the binary (no
filesystem), and the replayer must bring up GPU power and clocks
itself. The bring-up knowledge is not hand-written -- it is the
register/firmware access sequence *extracted from the kernel* at
record time and shipped in the recording's metadata, replayed here
against the SoC firmware mailbox.

The 50-KB executable budget of the paper's Table 4 is tracked as an
explicit component breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.recording import Recording
from repro.environments.base import DeploymentEnvironment, TcbProfile
from repro.errors import EnvironmentError_
from repro.soc import firmware as fw
from repro.units import KIB, MS

#: CPU boot: exception vectors, MMU/caches, page allocator (circle-like
#: baremetal library bring-up).
BOOT_NS = 8 * MS

#: Executable footprint per component, bytes (Section 6.3's breakdown
#: of the ~50 KB binary).
BINARY_BREAKDOWN = {
    "replayer": 8 * KIB,
    "zlib": 9 * KIB,
    "boot+irq+firmware": 15 * KIB,
    "mmu+pages": 4 * KIB,
    "timers": 4 * KIB,
    "strings+lists": 9 * KIB,
}


@dataclass
class EmbeddedRecording:
    """A recording statically linked into the binary (no filesystem)."""

    name: str
    blob: bytes

    @property
    def size(self) -> int:
        return len(self.blob)


class BaremetalEnvironment(DeploymentEnvironment):
    """Standalone replayer without any OS (built for v3d / Pi 4)."""

    name = "baremetal"

    def __init__(self, machine):
        super().__init__(machine)
        self.embedded: Dict[str, EmbeddedRecording] = {}
        self._booted = False

    def tcb(self) -> TcbProfile:
        return TcbProfile(
            name=self.name,
            trusted_components=["replayer binary (~4K SLoC, ~50 KB)"],
            exposed_to=["remote adversaries only"],
            replayer_binary_bytes=sum(BINARY_BREAKDOWN.values()),
        )

    def embed_recording(self, name: str, blob: bytes) -> None:
        """Link a compressed recording into the executable image."""
        self.embedded[name] = EmbeddedRecording(name, blob)

    def binary_size(self) -> int:
        """Executable size including embedded recordings."""
        return sum(BINARY_BREAKDOWN.values()) + \
            sum(r.size for r in self.embedded.values())

    def _prepare(self) -> None:
        obs = self.machine.obs
        with obs.span("baremetal:boot", obs.track("env", self.name),
                      cat="env"):
            self.machine.clock.advance(BOOT_NS)
        self._booted = True
        # Without a kernel, nobody has configured GPU power: apply the
        # firmware sequence extracted at record time, if any recording
        # carries one; Mali boards need only the register bring-up the
        # nano driver performs at init.
        sequence = self._extracted_power_sequence()
        for tag, device_id, value in sequence:
            obs.counter("env.firmware_calls").inc()
            self.machine.firmware.request(tag, device_id, value)

    def _extracted_power_sequence(self) -> List:
        for embedded in self.embedded.values():
            recording = Recording.from_bytes(embedded.blob)
            if recording.meta.power_sequence:
                return recording.meta.power_sequence
        return []

    def load_embedded(self, name: str):
        """Load a statically-linked recording by name."""
        if name not in self.embedded:
            known = sorted(self.embedded)
            raise EnvironmentError_(
                f"no embedded recording {name!r}; linked: {known}")
        return self.require_replayer().load_bytes(self.embedded[name].blob)
