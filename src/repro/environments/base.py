"""Common machinery for replayer deployment environments.

An environment owns the answers to three questions the replayer core
deliberately does not: who configured GPU power/clocks, what the
trusted computing base is, and what per-invocation overhead hosting
adds (syscalls, world switches, nothing at all on baremetal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.recording import Recording
from repro.core.replayer import Replayer, ReplayResult
from repro.errors import EnvironmentError_
from repro.gpu.v3d import V3D_DEFAULT_CLOCK_HZ, V3D_FIRMWARE_ID
from repro.soc import firmware as fw
from repro.soc.machine import Machine


@dataclass
class TcbProfile:
    """What the app must trust in this environment (Section 7.1)."""

    name: str
    trusted_components: List[str]
    exposed_to: List[str]
    #: Approximate executable footprint of the replayer build, bytes
    #: (Table 4's "Ours" column).
    replayer_binary_bytes: int = 0


def host_kernel_configures_gpu(machine: Machine) -> None:
    """What a commodity kernel did at boot: power the GPU rail.

    User/kernel-level replayers "reuse the configuration done by the
    kernel transparently" (Section 6.3); this is that configuration.
    """
    if machine.board.firmware_managed_power:
        machine.firmware.request(fw.TAG_SET_POWER, V3D_FIRMWARE_ID, 1)
        machine.firmware.request(fw.TAG_SET_CLOCK_RATE, V3D_FIRMWARE_ID,
                                 V3D_DEFAULT_CLOCK_HZ)


class DeploymentEnvironment:
    """Base class: set up hosting, then hand out a ready replayer."""

    name = "abstract"

    def __init__(self, machine: Machine):
        self.machine = machine
        self.replayer: Optional[Replayer] = None
        self.setup_ns = 0
        self._ready = False

    def tcb(self) -> TcbProfile:
        raise NotImplementedError

    def _prepare(self) -> None:
        """Environment-specific hosting setup (costed in virtual time)."""
        raise NotImplementedError

    def setup(self) -> Replayer:
        if self._ready:
            raise EnvironmentError_(f"{self.name}: already set up")
        t0 = self.machine.clock.now()
        obs = self.machine.obs
        with obs.span(f"env:{self.name}:setup",
                      obs.track("env", self.name), cat="env"):
            self._prepare()
            self.replayer = self._build_replayer()
            self.replayer.init()
        self.setup_ns = self.machine.clock.now() - t0
        obs.gauge("env.setup_ns").set(self.setup_ns)
        self._ready = True
        return self.replayer

    def _build_replayer(self) -> Replayer:
        return Replayer(self.machine)

    def require_replayer(self) -> Replayer:
        if not self._ready or self.replayer is None:
            raise EnvironmentError_(f"{self.name}: call setup() first")
        return self.replayer

    # -- convenience pass-throughs (environments may wrap these) ----------------

    def load(self, recording: Recording):
        return self.require_replayer().load(recording)

    def replay(self, **kwargs) -> ReplayResult:
        return self.require_replayer().replay(**kwargs)

    def teardown(self) -> None:
        if self.replayer is not None:
            self.replayer.cleanup()
        self._ready = False
