"""The user-level replayer: a daemon with kernel bypass (Section 6.3).

The kernel parses the device tree and exposes GPU registers, memory
and interrupts to userspace (UIO/DPDK-style); the replayer maps the
registers with mmap and manipulates GPU page tables through mapped
memory. Setup therefore costs a handful of syscalls and mappings, and
the host kernel is in the TCB (threat model D1).
"""

from __future__ import annotations

from repro.environments.base import (DeploymentEnvironment, TcbProfile,
                                     host_kernel_configures_gpu)
from repro.units import KIB, MS, US

#: mmap of the register window + GPU memory + interrupt eventfd setup.
MMAP_SETUP_NS = int(1.5 * MS)
#: Device-tree parse + UIO node discovery.
UIO_DISCOVERY_NS = 800 * US


class UserspaceEnvironment(DeploymentEnvironment):
    """Replayer hosted as an unprivileged daemon (used on Mali)."""

    name = "userspace"

    def tcb(self) -> TcbProfile:
        return TcbProfile(
            name=self.name,
            trusted_components=["host OS kernel", "UIO bindings",
                                "replayer (~2.2K SLoC)"],
            exposed_to=["local unprivileged adversaries",
                        "remote adversaries"],
            replayer_binary_bytes=25 * KIB,
        )

    def _prepare(self) -> None:
        host_kernel_configures_gpu(self.machine)
        self.machine.clock.advance(UIO_DISCOVERY_NS + MMAP_SETUP_NS)
