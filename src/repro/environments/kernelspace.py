"""The kernel-level replayer: a module beside the stock driver.

Reuses the stock driver's plumbing (interrupt registration, memory
exception reporting) but *disables the stock driver's execution* while
a replay is in flight, re-enabling it on completion or preemption --
exactly the arrangement Section 6.3 describes for v3d.
"""

from __future__ import annotations

from typing import Optional

from repro.environments.base import (DeploymentEnvironment, TcbProfile,
                                     host_kernel_configures_gpu)
from repro.errors import EnvironmentError_
from repro.stack.driver.base import GpuDriver
from repro.units import KIB, MS


#: insmod + ioctl surface registration.
MODULE_LOAD_NS = 3 * MS


class KernelEnvironment(DeploymentEnvironment):
    """Replayer hosted as a kernel module (used on v3d)."""

    name = "kernel"

    def __init__(self, machine, stock_driver: Optional[GpuDriver] = None):
        super().__init__(machine)
        self.stock_driver = stock_driver
        self._stock_was_connected = False

    def tcb(self) -> TcbProfile:
        return TcbProfile(
            name=self.name,
            trusted_components=["host OS kernel",
                                "replayer module (~1K SLoC)"],
            exposed_to=["local unprivileged adversaries (ioctl surface)",
                        "remote adversaries"],
            replayer_binary_bytes=20 * KIB,
        )

    def _prepare(self) -> None:
        host_kernel_configures_gpu(self.machine)
        self.machine.clock.advance(MODULE_LOAD_NS)
        self._disable_stock_driver()

    def _disable_stock_driver(self) -> None:
        """Once turned on, the replayer owns the GPU exclusively."""
        if self.stock_driver is None:
            return
        if self.stock_driver.outstanding_jobs > 0:
            raise EnvironmentError_(
                "stock driver has jobs in flight; drain it first")
        self._stock_was_connected = self.stock_driver._irq_connected
        self.stock_driver.disconnect_irq()

    def reenable_stock_driver(self) -> None:
        """Hand the GPU back after replay completion or preemption."""
        if self.stock_driver is not None and self._stock_was_connected:
            # The replayer's IRQ stub must release the line first.
            self.require_replayer().nano.disconnect_irq()
            self.stock_driver.connect_irq()

    def teardown(self) -> None:
        super().teardown()
        if self.stock_driver is not None and self._stock_was_connected:
            self.stock_driver.connect_irq()
