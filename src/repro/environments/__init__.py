"""Deployment environments for the replayer (Sections 1, 6.3).

Four hosting environments, matching Table 4's "Replayers" column:

- :class:`~repro.environments.userspace.UserspaceEnvironment` -- a
  daemon with kernel bypass (DPDK/UIO-style), used on Mali;
- :class:`~repro.environments.kernelspace.KernelEnvironment` -- a
  kernel module reusing stock-driver plumbing, used on v3d;
- :class:`~repro.environments.tee.TeeEnvironment` -- the TrustZone
  secure world behind a secure monitor (deployment D2);
- :class:`~repro.environments.baremetal.BaremetalEnvironment` -- no OS
  at all: the replayer brings up GPU power/clocks itself from the
  extracted firmware sequence (deployment D3).

Plus :mod:`repro.environments.scheduler` -- GPU handoff between a
replayer and interactive apps (deployment D1, Section 5.3).
"""

from repro.environments.baremetal import BaremetalEnvironment
from repro.environments.base import DeploymentEnvironment
from repro.environments.kernelspace import KernelEnvironment
from repro.environments.scheduler import GpuHandoffScheduler, InteractiveApp
from repro.environments.tee import SecureMonitor, TeeEnvironment
from repro.environments.userspace import UserspaceEnvironment

__all__ = [
    "BaremetalEnvironment",
    "DeploymentEnvironment",
    "GpuHandoffScheduler",
    "InteractiveApp",
    "KernelEnvironment",
    "SecureMonitor",
    "TeeEnvironment",
    "UserspaceEnvironment",
]
