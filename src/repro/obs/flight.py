"""The flight recorder: always-on, bounded chokepoint history.

Full tracing (:mod:`repro.obs.tracer`) is opt-in and unbounded; the
flight recorder is the opposite trade-off, after rr's "always be
recording" lesson: every machine keeps a fixed-size ring of the most
recent chokepoint events -- register I/O, polls, IRQ waits, memory
maps, uploads, pacing decisions, job kicks -- even when observability
is off. When a replay diverges, the ring *is* the forensic record: the
doctor (:mod:`repro.obs.doctor`) folds its tail into the
:class:`~repro.obs.doctor.DivergenceReport`.

Contract (same as the rest of the obs layer, but stricter because the
recorder cannot be turned off): recording an event never touches the
virtual clock and never allocates beyond the ring -- a bounded deque
of small tuples. Events are stored as plain tuples
``(seq, t_ns, kind, action_index, detail)`` to keep the hot-path cost
at one tuple build plus one deque append; :func:`event_to_dict`
expands them for reports and export.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, NamedTuple, Optional, Tuple

#: Default ring capacity. Sized to hold the full tail of one job --
#: kick, poll, IRQ wait, completion reads -- plus the surrounding
#: memory traffic, while keeping the always-on footprint in the tens
#: of kilobytes.
DEFAULT_RING_SIZE = 256


class FlightEvent(NamedTuple):
    """One chokepoint event, as handed out by :meth:`FlightRecorder.window`."""

    seq: int
    t_ns: int
    kind: str
    action_index: int
    detail: Tuple


#: Field names for each event kind's ``detail`` tuple. This table is
#: part of the stable report schema: renaming a kind or reordering its
#: fields changes what saved DivergenceReports mean.
FLIGHT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "RegWrite": ("addr", "val", "mask"),
    "RegRead": ("addr", "val"),
    "RegPoll": ("addr", "mask", "want", "polls", "ok", "last"),
    "WaitIrq": ("timeout_ns", "ok", "waited_ns"),
    "IrqEnter": (),
    "IrqExit": (),
    "MemMap": ("va", "num_pages"),
    "MemUnmap": ("va", "num_pages"),
    "SetPgtable": ("memattr",),
    "Upload": ("va", "size", "moved"),
    "CopyToGpu": ("va", "size"),
    "CopyFromGpu": ("va", "size"),
    "Reset": ("cause",),
    "Pacing": ("wait_ns",),
    "JobKick": ("job",),
    "GpuIrqRaise": ("line",),
    "GpuJobStart": ("slot", "chain_va"),
    "GpuJobRetire": ("slot", "chain_va"),
    "Preempt": ("app",),
    "Divergence": ("attempt", "error"),
}


def event_to_dict(event: Tuple) -> Dict[str, object]:
    """Expand a raw ring tuple into a JSON-friendly dict."""
    seq, t_ns, kind, action_index, detail = event
    out: Dict[str, object] = {
        "seq": seq, "t_ns": t_ns, "kind": kind,
        "action_index": action_index,
    }
    fields = FLIGHT_FIELDS.get(kind)
    if fields is not None and len(fields) == len(detail):
        out.update(zip(fields, detail))
    else:
        out["detail"] = list(detail)
    return out


class FlightRecorder:
    """Fixed-size ring of recent chokepoint events, always on.

    One per :class:`~repro.soc.machine.Machine` (``machine.flight``).
    Executors keep :attr:`action_index` pointed at the replay action
    currently in flight so every event lands pre-attributed; code that
    runs outside a replay (record-time device activity) tags events
    with whatever index is current, usually ``-1``.
    """

    __slots__ = ("ring", "seq", "action_index", "_tape")

    def __init__(self, capacity: int = DEFAULT_RING_SIZE):
        if capacity < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        self.ring: deque = deque(maxlen=capacity)
        #: Total events ever recorded; the next event's sequence number.
        self.seq = 0
        #: Replay action currently executing (set by the interpreters).
        self.action_index = -1
        self._tape: Optional[list] = None

    # -- hot path -------------------------------------------------------------

    def record(self, t_ns: int, kind: str, detail: Tuple = ()) -> None:
        """Append one event. Never advances the clock."""
        event = (self.seq, t_ns, kind, self.action_index, detail)
        self.seq += 1
        self.ring.append(event)
        tape = self._tape
        if tape is not None:
            tape.append(event)

    # -- capacity accounting --------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.ring.maxlen or 0

    @property
    def ring_size(self) -> int:
        """Alias for :attr:`capacity` (stable report-schema name)."""
        return self.ring.maxlen or 0

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring since the last :meth:`clear`."""
        return self.seq - len(self.ring)

    def __len__(self) -> int:
        return len(self.ring)

    def clear(self) -> None:
        self.ring.clear()
        self.seq = 0
        self.action_index = -1

    def snapshot(self) -> Dict[str, int]:
        """``flight.*`` gauge values (events seen, drops, capacity)."""
        return {
            "flight.events": self.seq,
            "flight.dropped": self.dropped,
            "flight.ring_size": self.ring_size,
        }

    # -- inspection -----------------------------------------------------------

    def window(self, last: Optional[int] = None) -> List[FlightEvent]:
        """The most recent ``last`` events (all retained, by default),
        oldest first."""
        events = list(self.ring)
        if last is not None:
            events = events[-last:]
        return [FlightEvent(*event) for event in events]

    def window_dicts(self, last: Optional[int] = None
                     ) -> List[Dict[str, object]]:
        if last is None:
            return [event_to_dict(e) for e in self.ring]
        return [event_to_dict(tuple(e)) for e in self.window(last)]

    # -- lockstep capture ------------------------------------------------------

    def start_capture(self) -> List[Tuple]:
        """Additionally copy every future event onto an unbounded tape.

        The doctor's fast-vs-reference lockstep comparison needs the
        *complete* event stream of one replay, not just the ring tail;
        the returned list grows as events arrive and stays valid after
        :meth:`stop_capture`.
        """
        self._tape = []
        return self._tape

    def stop_capture(self) -> List[Tuple]:
        tape = self._tape if self._tape is not None else []
        self._tape = None
        return tape
