"""CI smoke run: record MNIST, replay it, export + validate a timeline.

Exercises the full observability path end to end::

    python -m repro.obs.smoke [artifact-dir]

1. bring up the Mali stack, record an MNIST inference;
2. ``grr trace`` the recording -> ``timeline.json`` (validated Chrome
   trace JSON, the artifact CI archives);
3. replay once more with obs enabled and assert the metrics snapshot
   carries nonzero replay counters;
4. ``grr stats --json`` for CLI coverage.

Exit code 0 on success; any failure prints the reason and exits 1.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

#: Counters a successful MNIST replay must have incremented.
REQUIRED_NONZERO = ("replay.reg_writes", "replay.irq_waits",
                    "replay.upload_bytes", "replay.actions")


def main(argv=None) -> int:
    from repro.bench.workloads import build_stack
    from repro.core.harness import record_inference
    from repro.obs import validate_chrome_trace
    from repro.tools import grr

    argv = sys.argv[1:] if argv is None else argv
    outdir = argv[0] if argv else "smoke-artifacts"
    os.makedirs(outdir, exist_ok=True)
    rec_path = os.path.join(outdir, "mnist.grr")
    timeline_path = os.path.join(outdir, "timeline.json")

    print("[1/4] recording mnist on the mali stack ...")
    stack = build_stack("mali", "mnist")
    warm = np.zeros(stack.net.model.input_shape, np.float32)
    stack.net.run(warm)
    workload = record_inference(stack.net)
    with open(rec_path, "wb") as handle:
        handle.write(workload.recording.to_bytes())

    print("[2/4] grr trace -> timeline.json ...")
    code = grr.main(["trace", rec_path, "--out", timeline_path])
    if code != 0:
        print(f"FAIL: grr trace exited {code}")
        return 1
    with open(timeline_path, encoding="utf-8") as handle:
        trace = json.load(handle)
    errors = validate_chrome_trace(trace)
    if errors:
        print(f"FAIL: timeline.json invalid: {errors[:5]}")
        return 1

    print("[3/4] replay with obs on; checking metric snapshot ...")
    recording = grr._load(rec_path)
    machine, replayer, _result = grr._fresh_replay(
        recording, recording.meta.board, seed=2026, with_obs=True)
    replayer.cleanup()
    counters = machine.obs.snapshot()["counters"]
    for name in REQUIRED_NONZERO:
        if counters.get(name, 0) <= 0:
            print(f"FAIL: counter {name} is zero after replay; "
                  f"snapshot: {counters}")
            return 1

    print("[4/4] grr stats --json ...")
    code = grr.main(["stats", rec_path, "--json"])
    if code != 0:
        print(f"FAIL: grr stats exited {code}")
        return 1

    print(f"SMOKE OK ({len(trace['traceEvents'])} trace events, "
          f"artifacts in {outdir}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
