"""CI smoke run: record MNIST, replay it, export + validate a timeline,
then force a divergence and assert the doctor localizes it.

Exercises the full observability path end to end::

    python -m repro.obs.smoke [artifact-dir]

1. bring up the Mali stack, record an MNIST inference;
2. ``grr trace`` the recording -> ``timeline.json`` (validated Chrome
   trace JSON, the artifact CI archives);
3. replay once more with obs enabled and assert the metrics snapshot
   carries nonzero replay counters;
4. ``grr stats --json`` for CLI coverage;
5. flip one dump byte, replay, and assert the doctor's
   DivergenceReport names the exact first diverging action (checked
   against a reference-interpreter ground-truth run); save the report;
6. ``grr trace`` the saved report -> the flight window as a Chrome
   trace.

``--forensics DIR`` instead dumps a post-failure forensics bundle
(flight ring, doctor report, metrics snapshot) into DIR -- the mode CI
jobs run on tier-1 or bench-guard failure so the artifacts explain
what went wrong.

Exit code 0 on success; any failure prints the reason and exits 1.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

#: Counters a successful MNIST replay must have incremented.
REQUIRED_NONZERO = ("replay.reg_writes", "replay.irq_waits",
                    "replay.upload_bytes", "replay.actions")


def _record_mnist(rec_path: str):
    from repro.bench.workloads import build_stack
    from repro.core.harness import record_inference

    stack = build_stack("mali", "mnist")
    warm = np.zeros(stack.net.model.input_shape, np.float32)
    stack.net.run(warm)
    workload = record_inference(stack.net)
    with open(rec_path, "wb") as handle:
        handle.write(workload.recording.to_bytes())
    return workload.recording


def forensics_bundle(outdir: str) -> int:
    """Produce a post-failure forensics bundle in ``outdir``.

    Runs a deliberately corrupted replay so the bundle always contains
    a populated flight ring, a DivergenceReport and a metrics
    snapshot -- CI uploads the directory when a guarded job fails,
    giving the investigating human something better than a log tail.
    """
    from repro.errors import ReplayError
    from repro.obs.doctor import (flip_dump_byte, report_from_error,
                                  _build_replayer, _inputs_for)

    os.makedirs(outdir, exist_ok=True)
    recording = _record_mnist(os.path.join(outdir, "mnist.grr"))
    corrupted, _dump, _off = flip_dump_byte(recording)
    from repro.obs import enable_observability
    machine, replayer = _build_replayer(corrupted,
                                        corrupted.meta.board, 2026,
                                        fast_path=True)
    enable_observability(machine)
    try:
        replayer.replay(inputs=_inputs_for(corrupted, 2026),
                        max_attempts=1)
        print("FORENSICS: corrupted replay unexpectedly succeeded")
        return 1
    except ReplayError as error:
        report = report_from_error(machine, corrupted, error)
    report.save(os.path.join(outdir, "doctor-report.json"))
    with open(os.path.join(outdir, "flight-ring.json"), "w") as handle:
        json.dump(machine.flight.window_dicts(), handle, indent=1)
    with open(os.path.join(outdir, "metrics.json"), "w") as handle:
        json.dump(machine.obs.snapshot(), handle, indent=1,
                  sort_keys=True)
    print(f"forensics bundle in {outdir}/: doctor-report.json, "
          f"flight-ring.json, metrics.json")
    return 0


def main(argv=None) -> int:
    from repro.errors import ReplayError
    from repro.obs import validate_chrome_trace
    from repro.obs.doctor import (flip_dump_byte, run_doctor,
                                  _build_replayer, _inputs_for)
    from repro.tools import grr

    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--forensics":
        return forensics_bundle(argv[1] if len(argv) > 1
                                else "forensics-artifacts")
    outdir = argv[0] if argv else "smoke-artifacts"
    os.makedirs(outdir, exist_ok=True)
    rec_path = os.path.join(outdir, "mnist.grr")
    timeline_path = os.path.join(outdir, "timeline.json")
    report_path = os.path.join(outdir, "doctor-report.json")
    flight_path = os.path.join(outdir, "flight-window.json")

    print("[1/6] recording mnist on the mali stack ...")
    _record_mnist(rec_path)

    print("[2/6] grr trace -> timeline.json ...")
    code = grr.main(["trace", rec_path, "--out", timeline_path])
    if code != 0:
        print(f"FAIL: grr trace exited {code}")
        return 1
    with open(timeline_path, encoding="utf-8") as handle:
        trace = json.load(handle)
    errors = validate_chrome_trace(trace)
    if errors:
        print(f"FAIL: timeline.json invalid: {errors[:5]}")
        return 1

    print("[3/6] replay with obs on; checking metric snapshot ...")
    recording = grr._load(rec_path)
    machine, replayer, _result = grr._fresh_replay(
        recording, recording.meta.board, seed=2026, with_obs=True)
    replayer.cleanup()
    counters = machine.obs.snapshot()["counters"]
    for name in REQUIRED_NONZERO:
        if counters.get(name, 0) <= 0:
            print(f"FAIL: counter {name} is zero after replay; "
                  f"snapshot: {counters}")
            return 1
    if machine.flight.seq <= 0:
        print("FAIL: flight recorder saw no events during replay")
        return 1

    print("[4/6] grr stats --json ...")
    code = grr.main(["stats", rec_path, "--json"])
    if code != 0:
        print(f"FAIL: grr stats exited {code}")
        return 1

    print("[5/6] corrupt one dump byte; doctor must localize it ...")
    corrupted, dump_index, offset = flip_dump_byte(recording)
    # Ground truth: where does the reference interpreter first fail?
    gt_machine, gt_replayer = _build_replayer(
        corrupted, recording.meta.board, 2026, fast_path=False)
    try:
        gt_replayer.replay(inputs=_inputs_for(corrupted, 2026),
                           max_attempts=1)
        print("FAIL: corrupted recording replayed without error")
        return 1
    except ReplayError as error:
        truth_index = error.action_index
    report = run_doctor(corrupted, recording.meta.board, seed=2026)
    if report is None:
        print("FAIL: doctor found no divergence in a corrupted replay")
        return 1
    if report.action_index != truth_index:
        print(f"FAIL: doctor localized action #{report.action_index}, "
              f"first failure is #{truth_index} "
              f"(dump #{dump_index} byte {offset})")
        return 1
    if report.event_index < 0 or not report.flight_window:
        print("FAIL: report carries no flight window/event index")
        return 1
    report.save(report_path)
    with open(flight_path, "w") as handle:
        json.dump(report.flight_window, handle, indent=1)

    print("[6/6] grr trace on the saved doctor report ...")
    code = grr.main(["trace", report_path,
                     "--out", os.path.join(outdir, "flight-trace.json")])
    if code != 0:
        print(f"FAIL: grr trace on the report exited {code}")
        return 1

    print(f"SMOKE OK ({len(trace['traceEvents'])} trace events, doctor "
          f"localized action #{report.action_index}, artifacts in "
          f"{outdir}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
