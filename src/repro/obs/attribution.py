"""Tail-latency attribution over request-scoped event logs.

Answers the question the ROADMAP's fleet-serving item lives or dies
on: *where does p99 virtual time actually go?* Given an rtrace event
log (:mod:`repro.obs.rtrace`) and a percentile band, the analyzer
selects the requests whose end-to-end latency falls in that band and
folds their span trees into per-stage *exclusive* time -- the time a
span owned that no child span accounts for. Because each request's
exclusive times sum exactly to its root duration (see
:meth:`~repro.obs.rtrace.SpanNode.exclusive_ns`), the ranked stage
totals always sum to the band's end-to-end latency: the decomposition
is exhaustive by construction, never "85% explained".

Stage names are the span names the serving engine emits (``queue``,
``attempt``, ``load``, ``replay``, ``upload``, ``exec``, ``pacing``,
``driver``, ``backoff``, ``cpu``, ...); the root ``request`` span's
own exclusive time -- admission bookkeeping and completion plumbing
-- reports as ``request``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ObsError
from repro.obs.rtrace import SpanNode, span_trees


@dataclass
class StageCost:
    """One stage's share of a band's virtual time."""

    stage: str
    total_ns: int
    count: int
    requests: int

    def to_dict(self) -> Dict[str, object]:
        return {"stage": self.stage, "total_ns": self.total_ns,
                "count": self.count, "requests": self.requests}


@dataclass
class AttributionReport:
    """Where a latency band's virtual time went, ranked."""

    p_lo: float
    p_hi: float
    requests: List[int]
    band_floor_ns: int
    band_ceil_ns: int
    total_ns: int
    stages: List[StageCost] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "band": [self.p_lo, self.p_hi],
            "requests": list(self.requests),
            "band_floor_ns": self.band_floor_ns,
            "band_ceil_ns": self.band_ceil_ns,
            "total_ns": self.total_ns,
            "stages": [s.to_dict() for s in self.stages],
        }

    def render(self) -> str:
        lines = [
            f"latency band p{self.p_lo:g}-p{self.p_hi:g}: "
            f"{len(self.requests)} request(s), "
            f"{self.band_floor_ns / 1e6:.3f}-"
            f"{self.band_ceil_ns / 1e6:.3f} ms end-to-end",
            f"total accounted: {self.total_ns / 1e6:.3f} ms "
            "(stages sum to end-to-end by construction)",
        ]
        for cost in self.stages:
            share = (cost.total_ns / self.total_ns * 100
                     if self.total_ns else 0.0)
            lines.append(
                f"  {cost.stage:<12} {cost.total_ns / 1e6:>10.3f} ms "
                f"{share:>6.2f}%  ({cost.count} span(s) across "
                f"{cost.requests} request(s))")
        return "\n".join(lines)


def _latency(root: SpanNode) -> int:
    return root.duration_ns


def attribute(events: Sequence[dict], p_lo: float = 99.0,
              p_hi: float = 100.0,
              statuses: Optional[Sequence[str]] = None
              ) -> AttributionReport:
    """Decompose the [p_lo, p_hi] latency band of an event log.

    Band selection is nearest-rank over the end-to-end latencies of
    requests whose terminal status is in ``statuses`` (default: every
    status except ``shed`` -- a shed request's latency measures the
    shed policy, not the serving path). ``attribute(events, 99)`` is
    "decompose p99 and above".
    """
    if not 0.0 <= p_lo <= p_hi <= 100.0:
        raise ObsError(f"bad percentile band [{p_lo}, {p_hi}]")
    roots = span_trees(events)
    keep = []
    for rid in sorted(roots):
        root = roots[rid]
        status = str(root.args.get("status", "?"))
        if statuses is None:
            if status == "shed":
                continue
        elif status not in statuses:
            continue
        keep.append((rid, root))
    if not keep:
        return AttributionReport(p_lo, p_hi, [], 0, 0, 0, [])

    ranked = sorted(keep, key=lambda item: (_latency(item[1]), item[0]))
    n = len(ranked)
    # Nearest-rank band edges: [p_lo, p_hi] covers ranks
    # ceil(p_lo/100 * n) .. ceil(p_hi/100 * n), 1-based, lower edge
    # exclusive so p0-p100 is everything and p99-p100 is the top 1%
    # (at least one request).
    lo_rank = min(int(p_lo / 100.0 * n), n - 1)
    hi_rank = max(1, math.ceil(p_hi / 100.0 * n))
    band = ranked[lo_rank:hi_rank]
    if not band:
        band = ranked[-1:]

    stage_ns: Dict[str, int] = {}
    stage_count: Dict[str, int] = {}
    stage_reqs: Dict[str, set] = {}
    total = 0
    for rid, root in band:
        total += root.duration_ns
        for node in root.walk():
            ns = node.exclusive_ns
            stage_ns[node.name] = stage_ns.get(node.name, 0) + ns
            stage_count[node.name] = stage_count.get(node.name, 0) + 1
            stage_reqs.setdefault(node.name, set()).add(rid)
    stages = [
        StageCost(name, stage_ns[name], stage_count[name],
                  len(stage_reqs[name]))
        for name in stage_ns]
    stages.sort(key=lambda s: (-s.total_ns, s.stage))
    return AttributionReport(
        p_lo=p_lo, p_hi=p_hi,
        requests=[rid for rid, _ in band],
        band_floor_ns=min(_latency(r) for _, r in band),
        band_ceil_ns=max(_latency(r) for _, r in band),
        total_ns=total, stages=stages)
