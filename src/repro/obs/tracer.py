"""A span tracer keyed to the virtual clock.

Spans are emitted as Chrome trace-event JSON (the format loaded by
``chrome://tracing`` and Perfetto). Every span lives on a *track* --
one (pid, tid) pair per simulated process/thread: the CPU environment
gets one pid with tids for the main thread, the IRQ context and the
replay streams; each GPU gets its own pid with one tid per job slot.

The tracer NEVER advances the clock; it only reads ``clock.now()``.
That is the determinism contract of the whole obs layer: virtual-time
results with tracing enabled are bit-identical to results without.

Internally timestamps stay integer nanoseconds; they are converted to
the trace-event format's microseconds only at export.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Track:
    """One timeline row: a (pid, tid) pair."""

    pid: int
    tid: int


class SpanHandle:
    """An open span; ``closed`` guards against double-ends."""

    __slots__ = ("name", "track", "start_ns", "args", "closed")

    def __init__(self, name: str, track: Track, start_ns: int,
                 args: Optional[dict]):
        self.name = name
        self.track = track
        self.start_ns = start_ns
        self.args = args
        self.closed = False


class SpanTracer:
    """Collects trace events against a virtual clock."""

    def __init__(self, clock):
        self._clock = clock
        self._events: List[dict] = []
        self._tracks: Dict[Tuple[str, str], Track] = {}
        self._pids: Dict[str, int] = {}
        self._next_pid = 1
        self._next_tid = 1
        self._stacks: Dict[Track, List[SpanHandle]] = {}

    # -- tracks ----------------------------------------------------------------

    def track(self, process: str, thread: str = "main") -> Track:
        """Get-or-create the track for a process/thread pair.

        First use emits the ``process_name``/``thread_name`` metadata
        events that make the Perfetto UI label the rows.
        """
        key = (process, thread)
        track = self._tracks.get(key)
        if track is not None:
            return track
        pid = self._pids.get(process)
        if pid is None:
            pid = self._next_pid
            self._next_pid += 1
            self._pids[process] = pid
            self._events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process}})
        tid = self._next_tid
        self._next_tid += 1
        track = Track(pid, tid)
        self._tracks[key] = track
        self._events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": thread}})
        return track

    # -- spans -----------------------------------------------------------------

    def begin(self, name: str, track: Track, cat: str = "",
              args: Optional[dict] = None) -> SpanHandle:
        now = self._clock.now()
        handle = SpanHandle(name, track, now, args)
        self._stacks.setdefault(track, []).append(handle)
        event = {"ph": "B", "name": name, "pid": track.pid,
                 "tid": track.tid, "ts_ns": now}
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = dict(args)
        self._events.append(event)
        return handle

    def end(self, handle: SpanHandle,
            args: Optional[dict] = None) -> None:
        """Close ``handle`` (and, LIFO-style, anything opened inside it
        that was left open -- abandoned children are auto-closed at the
        same timestamp so the exported trace always nests)."""
        if handle.closed:
            return
        stack = self._stacks.get(handle.track, [])
        if handle not in stack:
            handle.closed = True
            return
        now = self._clock.now()
        while stack:
            top = stack.pop()
            top.closed = True
            event = {"ph": "E", "name": top.name, "pid": top.track.pid,
                     "tid": top.track.tid, "ts_ns": now}
            if top is handle and args:
                event["args"] = dict(args)
            self._events.append(event)
            if top is handle:
                break

    @contextmanager
    def span(self, name: str, track: Track, cat: str = "",
             args: Optional[dict] = None):
        handle = self.begin(name, track, cat, args)
        try:
            yield handle
        finally:
            self.end(handle)

    # -- point and interval events ------------------------------------------------

    def instant(self, name: str, track: Track,
                args: Optional[dict] = None) -> None:
        event = {"ph": "i", "name": name, "pid": track.pid,
                 "tid": track.tid, "ts_ns": self._clock.now(), "s": "t"}
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def complete(self, name: str, track: Track, start_ns: int,
                 end_ns: int, args: Optional[dict] = None,
                 cat: str = "") -> None:
        """A closed interval recorded after the fact (ph ``X``)."""
        event = {"ph": "X", "name": name, "pid": track.pid,
                 "tid": track.tid, "ts_ns": start_ns,
                 "dur_ns": max(0, end_ns - start_ns)}
        if cat:
            event["cat"] = cat
        if args:
            event["args"] = dict(args)
        self._events.append(event)

    def counter_sample(self, name: str, track: Track,
                       values: Dict[str, float]) -> None:
        self._events.append({
            "ph": "C", "name": name, "pid": track.pid, "tid": track.tid,
            "ts_ns": self._clock.now(), "args": dict(values)})

    # -- export ---------------------------------------------------------------------

    def open_span_count(self) -> int:
        return sum(len(stack) for stack in self._stacks.values())

    def finalize(self) -> None:
        """Close every still-open span at the current virtual time."""
        for stack in self._stacks.values():
            while stack:
                top = stack[-1]
                self.end(top, args={"auto_closed": True})

    @property
    def event_count(self) -> int:
        return len(self._events)

    def to_chrome_trace(self) -> dict:
        """Export as a Chrome trace-event JSON object.

        Still-open spans are closed at the current instant first, so
        the result always validates. ``ts``/``dur`` are microseconds
        per the trace-event spec; the exact nanosecond values ride
        along in ``args`` consumers that need them can use.
        """
        self.finalize()
        out = []
        for event in self._events:
            converted = {k: v for k, v in event.items()
                         if k not in ("ts_ns", "dur_ns")}
            if "ts_ns" in event:
                converted["ts"] = event["ts_ns"] / 1e3
            if "dur_ns" in event:
                converted["dur"] = event["dur_ns"] / 1e3
            out.append(converted)
        return {
            "traceEvents": out,
            "displayTimeUnit": "ms",
            "otherData": {"clock": "virtual-ns",
                          "exporter": "repro.obs"},
        }
