"""The replay doctor: divergence localization and failure forensics.

When a replay fails -- a checked register read disagrees with the
recording, a poll or IRQ wait times out, the fast path and the
reference interpreter disagree, or an output check fails -- the
question is always the same: *which chokepoint diverged first, and
what did the machine look like when it did?* This module answers it:

- :func:`report_from_error` folds the machine's flight-recorder ring
  (:mod:`repro.obs.flight`) around a :class:`~repro.errors.ReplayError`
  into a :class:`DivergenceReport`;
- :func:`lockstep_compare` replays the same recording twice -- compiled
  fast path vs the reference interpreter -- capturing both complete
  flight tapes, and localizes the first event where they disagree;
- :func:`run_doctor` is the ``grr doctor`` entry point tying the two
  together;
- :func:`flip_dump_byte` / :func:`patch_reg_read` build deliberately
  corrupted recordings (tests, the CI doctor smoke step).

Import note: this module imports the replayer, which imports the
machine, which imports :mod:`repro.obs` -- so it must never be
imported from ``repro/obs/__init__.py``. Import it lazily at the point
of use (``from repro.obs.doctor import run_doctor``).

The report schema is stable (``schema_version``): saved reports are
artifacts that outlive the process that wrote them, and ``grr trace``
can load one back to visualize its flight window.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import actions as act
from repro.core.dumps import MemoryDump
from repro.core.recording import Recording
from repro.core.replayer import Replayer
from repro.errors import ObsError, ReplayError
from repro.obs.flight import event_to_dict
from repro.soc.machine import Machine

#: Bump when a field of :class:`DivergenceReport` changes meaning.
SCHEMA_VERSION = 1

#: Flight events on each side of the anchor included in a report.
WINDOW_EVENTS = 48


@dataclass
class DivergenceReport:
    """Structured forensics for one replay failure.

    ``kind`` is one of ``"replay-error"`` (a replay raised),
    ``"fast-vs-reference"`` (lockstep flight tapes disagreed) or
    ``"output-mismatch"`` (tapes agreed but outputs did not).
    ``event_index`` is the anchoring flight event's global sequence
    number in ``replay-error`` reports, and the tape position of the
    first disagreement in lockstep reports.
    """

    kind: str = "replay-error"
    message: str = ""
    #: The replay action in flight when the divergence surfaced.
    action_index: int = -1
    action: str = ""
    action_src: str = ""
    event_index: int = -1
    t_ns: int = 0
    #: What the recording (or the reference arm) said should happen.
    expected: Optional[Dict[str, object]] = None
    #: What actually happened (flight event of the failing side).
    observed: Optional[Dict[str, object]] = None
    flight_window: List[Dict[str, object]] = field(default_factory=list)
    environment: Dict[str, object] = field(default_factory=dict)
    recording: Dict[str, object] = field(default_factory=dict)
    attempts: int = 1
    schema_version: int = SCHEMA_VERSION

    # -- serialization (stable JSON schema) --------------------------------

    def to_json(self, indent: Optional[int] = 1) -> str:
        return json.dumps(dataclasses.asdict(self), indent=indent,
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DivergenceReport":
        data = json.loads(text)
        if not isinstance(data, dict) or "schema_version" not in data:
            raise ObsError("not a DivergenceReport JSON document")
        version = data["schema_version"]
        if version != SCHEMA_VERSION:
            raise ObsError(
                f"unsupported DivergenceReport schema {version} "
                f"(this build reads {SCHEMA_VERSION})")
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "DivergenceReport":
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- presentation -------------------------------------------------------

    def render(self) -> str:
        """Human-readable multi-line summary (``grr doctor`` output)."""
        lines = [
            f"divergence ({self.kind}) at action #{self.action_index} "
            f"{self.action}",
            f"  {self.message}",
        ]
        if self.action_src:
            lines.append(f"  driver source: {self.action_src}")
        lines.append(f"  first diverging event: #{self.event_index} "
                     f"at t={self.t_ns} ns")
        if self.expected is not None:
            lines.append(f"  expected: {_render_kv(self.expected)}")
        if self.observed is not None:
            lines.append(f"  observed: {_render_kv(self.observed)}")
        env = self.environment
        if env:
            lines.append(
                "  environment: "
                f"{env.get('board')}/{env.get('gpu_model')} "
                f"seed={env.get('seed')} clock={env.get('clock_hz')} Hz "
                f"pte={env.get('pte_format')} "
                f"coherent_tlb={env.get('coherent_tlb')}")
        rec = self.recording
        if rec:
            lines.append(
                f"  recording: {rec.get('workload')} "
                f"({rec.get('actions')} actions, "
                f"digest {str(rec.get('digest'))[:12]}...)")
        lines.append(f"  flight window: {len(self.flight_window)} events, "
                     f"attempts: {self.attempts}")
        tail = self.flight_window[-8:]
        for event in tail:
            lines.append(
                f"    [{event.get('seq')}] t={event.get('t_ns')} "
                f"a#{event.get('action_index')} {event.get('kind')} "
                f"{_render_kv(event, skip=('seq', 't_ns', 'kind', 'action_index'))}")
        return "\n".join(lines)

    def flight_chrome_trace(self) -> Dict[str, object]:
        """The flight window as Chrome trace-event JSON (``grr trace``)."""
        events: List[Dict[str, object]] = [
            {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
             "args": {"name": "flight-recorder"}},
            {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
             "args": {"name": f"doctor:{self.kind}"}},
        ]
        for entry in self.flight_window:
            args = {k: v for k, v in entry.items()
                    if k not in ("t_ns", "kind")}
            events.append({
                "ph": "i", "pid": 1, "tid": 1, "s": "t",
                "name": str(entry.get("kind", "?")),
                "ts": entry.get("t_ns", 0) / 1e3,
                "args": args,
            })
        events.append({
            "ph": "i", "pid": 1, "tid": 1, "s": "t",
            "name": f"DIVERGENCE:{self.kind}",
            "ts": self.t_ns / 1e3,
            "args": {"action_index": self.action_index,
                     "event_index": self.event_index,
                     "message": self.message},
        })
        return {"traceEvents": events, "displayTimeUnit": "ns"}


def _render_kv(mapping: Dict[str, object],
               skip: Tuple[str, ...] = ()) -> str:
    parts = []
    for key, value in mapping.items():
        if key in skip:
            continue
        if isinstance(value, int) and not isinstance(value, bool) \
                and abs(value) > 9:
            parts.append(f"{key}={value:#x}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


# --------------------------------------------------------------------------
# Fingerprinting and report construction.
# --------------------------------------------------------------------------


def environment_fingerprint(machine: Machine) -> Dict[str, object]:
    """Everything about the host machine a report reader needs to
    reproduce the run: board, GPU, seed, clocking, MMU configuration."""
    gpu = machine.require_gpu()
    return {
        "board": machine.board.name,
        "soc": machine.board.soc,
        "gpu_model": gpu.model_name,
        "gpu_family": gpu.family,
        "cores": gpu.core_count,
        "clock_hz": gpu.clock_hz,
        "seed": machine.seed,
        "pte_format": gpu.mmu.fmt.name,
        "coherent_tlb": gpu.mmu.coherent_tlb,
        "flight_ring_size": machine.flight.ring_size,
    }


def _recording_fingerprint(recording: Recording) -> Dict[str, object]:
    return {
        "workload": recording.meta.workload,
        "board": recording.meta.board,
        "gpu_model": recording.meta.gpu_model,
        "digest": recording.digest(),
        "actions": len(recording.actions),
        "dumps": len(recording.dumps),
    }


def _action_expectation(recording: Recording,
                        index: int) -> Tuple[str, str,
                                             Optional[Dict[str, object]]]:
    """(type name, src, field dict) for the action at ``index``."""
    if not 0 <= index < len(recording.actions):
        return "", "", None
    action = recording.actions[index]
    expected = dataclasses.asdict(action)
    expected["type"] = type(action).__name__
    return type(action).__name__, action.src, expected


def report_from_error(machine: Machine, recording: Recording,
                      error: ReplayError,
                      attempts: int = 1) -> DivergenceReport:
    """Fold the flight ring around a raised ReplayError into a report.

    The anchor is the last ring event attributed to the failing action
    (skipping the replayer's own ``Divergence`` marker); if the ring
    rolled past it, the last retained event stands in.
    """
    window = machine.flight.window_dicts()
    fail_index = getattr(error, "action_index", -1)
    anchor: Optional[Dict[str, object]] = None
    for entry in reversed(window):
        if entry["kind"] == "Divergence":
            continue
        if entry["action_index"] == fail_index or anchor is None:
            anchor = entry
            if entry["action_index"] == fail_index:
                break
    action_name, action_src, expected = _action_expectation(
        recording, fail_index)
    return DivergenceReport(
        kind="replay-error",
        message=str(error),
        action_index=fail_index,
        action=action_name,
        action_src=action_src or getattr(error, "source", ""),
        event_index=int(anchor["seq"]) if anchor else -1,
        t_ns=int(anchor["t_ns"]) if anchor else machine.clock.now(),
        expected=expected,
        observed=anchor,
        flight_window=window[-2 * WINDOW_EVENTS:],
        environment=environment_fingerprint(machine),
        recording=_recording_fingerprint(recording),
        attempts=attempts,
    )


# --------------------------------------------------------------------------
# Running replays for diagnosis.
# --------------------------------------------------------------------------


def _build_replayer(recording: Recording, board: str, seed: int,
                    fast_path: bool) -> Tuple[Machine, Replayer]:
    from repro.environments.base import host_kernel_configures_gpu

    machine = Machine.create(board, seed=seed)
    host_kernel_configures_gpu(machine)
    replayer = Replayer(machine, fast_path=fast_path)
    replayer.init()
    replayer.load(recording)
    return machine, replayer


def _inputs_for(recording: Recording,
                seed: int) -> Dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for io in recording.meta.inputs:
        if io.optional:
            continue
        shape = io.shape or (io.size // 4,)
        inputs[io.name] = rng.standard_normal(shape).astype(np.float32)
    return inputs


def _quiet_cleanup(replayer: Replayer) -> None:
    try:
        replayer.cleanup()
    except ReplayError:
        # A GPU left faulted by the very failure under diagnosis may
        # refuse the cleanup reset; the report matters more.
        pass


def run_doctor(recording: Recording, board: str, seed: int = 2026,
               vs_reference: bool = False,
               ref_seed: Optional[int] = None
               ) -> Optional[DivergenceReport]:
    """Diagnose one recording. Returns None when the replay is healthy.

    Plain mode replays once (no §5.4 retries -- the doctor wants the
    *first* divergence, pristine in the flight ring) and reports any
    ReplayError. ``vs_reference`` instead runs the compiled fast path
    and the reference interpreter in lockstep and localizes the first
    flight event where the two disagree; ``ref_seed`` seeds the
    reference arm differently, turning environment sensitivity (the
    wrong-seed case) into a localized first-divergence report.
    """
    if vs_reference:
        return lockstep_compare(recording, board, seed=seed,
                                ref_seed=ref_seed)
    machine, replayer = _build_replayer(recording, board, seed,
                                        fast_path=True)
    try:
        replayer.replay(inputs=_inputs_for(recording, seed),
                        max_attempts=1)
    except ReplayError as error:
        return report_from_error(machine, recording, error, attempts=1)
    finally:
        _quiet_cleanup(replayer)
    return None


def lockstep_compare(recording: Recording, board: str, seed: int = 2026,
                     ref_seed: Optional[int] = None
                     ) -> Optional[DivergenceReport]:
    """Fast path vs reference interpreter, compared chokepoint by
    chokepoint on their complete flight tapes."""
    fast_machine, fast_replayer = _build_replayer(recording, board, seed,
                                                  fast_path=True)
    ref_machine, ref_replayer = _build_replayer(
        recording, board, seed if ref_seed is None else ref_seed,
        fast_path=False)
    # Capture only the replay itself: init/load jitter is not part of
    # the comparison. Both arms get the same inputs.
    inputs = _inputs_for(recording, seed)
    fast_tape = fast_machine.flight.start_capture()
    ref_tape = ref_machine.flight.start_capture()
    fast_outputs = ref_outputs = None
    fast_error: Optional[ReplayError] = None
    ref_error: Optional[ReplayError] = None
    try:
        fast_outputs = fast_replayer.replay(inputs=inputs,
                                            max_attempts=1).outputs
    except ReplayError as error:
        fast_error = error
    try:
        ref_outputs = ref_replayer.replay(inputs=inputs,
                                          max_attempts=1).outputs
    except ReplayError as error:
        ref_error = error
    fast_machine.flight.stop_capture()
    ref_machine.flight.stop_capture()
    _quiet_cleanup(fast_replayer)
    _quiet_cleanup(ref_replayer)

    report = _first_tape_divergence(recording, fast_machine, fast_tape,
                                    ref_tape)
    if report is not None:
        return report
    if fast_error is not None or ref_error is not None:
        # Both arms failed identically chokepoint-for-chokepoint:
        # report it as a plain replay error on the fast arm.
        error = fast_error or ref_error
        return report_from_error(fast_machine, recording, error,
                                 attempts=1)
    mismatch = _first_output_mismatch(fast_outputs, ref_outputs)
    if mismatch is not None:
        name, detail = mismatch
        last = fast_tape[-1] if fast_tape else None
        return DivergenceReport(
            kind="output-mismatch",
            message=f"flight tapes identical but output {name!r} "
                    f"differs: {detail}",
            action_index=int(last[3]) if last else -1,
            event_index=len(fast_tape) - 1,
            t_ns=int(last[1]) if last else 0,
            expected={"output": name, "arm": "reference"},
            observed={"output": name, "arm": "fast", "detail": detail},
            flight_window=[event_to_dict(e)
                           for e in fast_tape[-2 * WINDOW_EVENTS:]],
            environment=environment_fingerprint(fast_machine),
            recording=_recording_fingerprint(recording),
        )
    return None


def _first_tape_divergence(recording: Recording, fast_machine: Machine,
                           fast_tape: List[Tuple],
                           ref_tape: List[Tuple]
                           ) -> Optional[DivergenceReport]:
    """The report for the first position where the tapes disagree
    (ignoring the global sequence number), or None if they match."""
    shared = min(len(fast_tape), len(ref_tape))
    where = -1
    for i in range(shared):
        if fast_tape[i][1:] != ref_tape[i][1:]:
            where = i
            break
    else:
        if len(fast_tape) == len(ref_tape):
            return None
        where = shared
    fast_event = fast_tape[where] if where < len(fast_tape) else None
    ref_event = ref_tape[where] if where < len(ref_tape) else None
    anchor = fast_event or ref_event
    fail_index = int(anchor[3])
    action_name, action_src, _ = _action_expectation(recording,
                                                     fail_index)
    if fast_event is None:
        message = (f"fast path stopped after {len(fast_tape)} events; "
                   f"reference continued with "
                   f"{ref_tape[where][2]}")
    elif ref_event is None:
        message = (f"reference stopped after {len(ref_tape)} events; "
                   f"fast path continued with {fast_tape[where][2]}")
    else:
        message = (f"first diverging chokepoint: fast recorded "
                   f"{fast_event[2]} where reference recorded "
                   f"{ref_event[2]}"
                   if fast_event[2] != ref_event[2] else
                   f"first diverging chokepoint: {fast_event[2]} "
                   f"fields differ")
    start = max(0, where - WINDOW_EVENTS)
    return DivergenceReport(
        kind="fast-vs-reference",
        message=message,
        action_index=fail_index,
        action=action_name,
        action_src=action_src,
        event_index=where,
        t_ns=int(anchor[1]),
        expected=event_to_dict(ref_event) if ref_event else None,
        observed=event_to_dict(fast_event) if fast_event else None,
        flight_window=[event_to_dict(e)
                       for e in fast_tape[start:where + WINDOW_EVENTS]],
        environment=environment_fingerprint(fast_machine),
        recording=_recording_fingerprint(recording),
    )


def _first_output_mismatch(fast_outputs, ref_outputs
                           ) -> Optional[Tuple[str, str]]:
    if fast_outputs is None or ref_outputs is None:
        return None
    for name in sorted(set(fast_outputs) | set(ref_outputs)):
        a = fast_outputs.get(name)
        b = ref_outputs.get(name)
        if a is None or b is None:
            return name, "missing on one arm"
        if a.shape != b.shape:
            return name, f"shape {a.shape} vs {b.shape}"
        if not np.array_equal(a, b):
            bad = int(np.flatnonzero(a.reshape(-1) != b.reshape(-1))[0])
            return name, (f"first differing element #{bad}: "
                          f"{a.reshape(-1)[bad]!r} vs "
                          f"{b.reshape(-1)[bad]!r}")
    return None


# --------------------------------------------------------------------------
# Deliberate corruption (tests, CI doctor smoke).
# --------------------------------------------------------------------------


def first_kick_chain_va(recording: Recording) -> int:
    """GPU VA of the first kicked job's descriptor chain.

    Replays the register writes symbolically up to the first
    ``is_job_kick`` write: Mali latches the chain head in
    ``JS{slot}_HEAD_HI/LO`` before ``JS{slot}_COMMAND``; v3d keeps the
    control-list base in ``CT0QBA`` and kicks via ``CT0QEA``; Adreno
    programs the ring-buffer base into ``CP_RB_BASE_HI/LO`` and kicks
    by bumping ``CP_RB_WPTR``, so the first packets decode from the
    ring base.
    """
    regs: Dict[str, int] = {}
    for action in recording.actions:
        if not isinstance(action, act.RegWrite):
            continue
        if not action.is_job_kick:
            regs[action.reg] = action.val
            continue
        if action.reg.startswith("JS") and action.reg.endswith("_COMMAND"):
            slot = action.reg[2:-len("_COMMAND")]
            return (regs.get(f"JS{slot}_HEAD_HI", 0) << 32) \
                | regs.get(f"JS{slot}_HEAD_LO", 0)
        if action.reg == "CT0QEA":
            return regs.get("CT0QBA", 0)
        if action.reg == "CP_RB_WPTR":
            return (regs.get("CP_RB_BASE_HI", 0) << 32) \
                | regs.get("CP_RB_BASE_LO", 0)
        raise ObsError(
            f"unrecognized kick register {action.reg!r}")
    raise ObsError("recording has no job kick")


def flip_dump_byte(recording: Recording
                   ) -> Tuple[Recording, int, int]:
    """A copy of ``recording`` with one dump byte flipped -- the first
    byte of the first job's descriptor chain, so the corruption is
    guaranteed to surface at the first kick. Returns
    ``(corrupted, dump_index, offset)``."""
    chain_va = first_kick_chain_va(recording)
    for index, dump in enumerate(recording.dumps):
        if dump.va <= chain_va < dump.end_va():
            offset = chain_va - dump.va
            data = bytearray(dump.data)
            data[offset] ^= 0xFF
            dumps = list(recording.dumps)
            dumps[index] = MemoryDump(dump.va, bytes(data))
            return (Recording(recording.meta, recording.actions, dumps),
                    index, offset)
    raise ObsError(
        f"no dump covers the first job chain at {chain_va:#x}")


def patch_reg_read(recording: Recording,
                   after_index: int = 0) -> Tuple[Recording, int]:
    """A copy of ``recording`` whose first checked ``RegReadOnce`` at or
    after ``after_index`` expects a wrong value. Returns
    ``(patched, action_index)`` -- the replay must diverge exactly
    there."""
    for index, action in enumerate(recording.actions):
        if index < after_index:
            continue
        if isinstance(action, act.RegReadOnce) and not action.ignore:
            patched = dataclasses.replace(action, val=action.val ^ 0x1)
            actions = list(recording.actions)
            actions[index] = patched
            return (Recording(recording.meta, actions,
                              list(recording.dumps)), index)
    raise ObsError("recording has no checked RegReadOnce to patch")
