"""Validation for exported Chrome trace-event JSON.

Checks the structural subset of the trace-event format that our
exporter produces and that Perfetto requires to load a file:

- a top-level object with a ``traceEvents`` list;
- every event has a phase, pid, tid, and (except metadata) a numeric
  timestamp;
- ``B``/``E`` events balance per (pid, tid) with non-decreasing
  timestamps -- stack discipline, i.e. spans nest;
- ``X`` events on one (pid, tid) are either disjoint or properly
  contained in each other (no partial overlap).

Used by the ``grr trace`` exporter, the obs integration tests, and the
CI smoke job.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

_KNOWN_PHASES = {"B", "E", "X", "i", "I", "M", "C"}


def _ns(ts_us: float) -> int:
    """Quantize a trace-event microsecond stamp to integer ns.

    The exporter's timestamps are integer nanoseconds divided by 1e3;
    comparing the floats directly makes touching intervals look
    overlapping (ts + dur accumulates rounding error), so all ordering
    checks run on the recovered integers.
    """
    return round(ts_us * 1000)


def validate_chrome_trace(obj: object) -> List[str]:
    """Return a list of problems (empty == valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["top level is not a JSON object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]

    span_stacks: Dict[Tuple[int, int], List[dict]] = {}
    complete: Dict[Tuple[int, int], List[Tuple[int, int, str]]] = {}

    for index, event in enumerate(events):
        where = f"event #{index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            errors.append(f"{where}: missing integer pid/tid")
            continue
        if phase != "M" and not isinstance(event.get("ts"), (int, float)):
            errors.append(f"{where}: missing numeric ts")
            continue
        if phase != "E" and not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
            continue
        key = (pid, tid)
        if phase == "B":
            span_stacks.setdefault(key, []).append(event)
        elif phase == "E":
            stack = span_stacks.get(key)
            if not stack:
                errors.append(f"{where}: E with no open B on tid {tid}")
                continue
            begin = stack.pop()
            if _ns(event["ts"]) < _ns(begin["ts"]):
                errors.append(
                    f"{where}: span {begin.get('name')!r} ends at "
                    f"{event['ts']} before it begins at {begin['ts']}")
        elif phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                errors.append(f"{where}: X without non-negative dur")
                continue
            complete.setdefault(key, []).append(
                (_ns(event["ts"]), _ns(event["ts"]) + _ns(dur),
                 event.get("name", "")))

    for (pid, tid), stack in span_stacks.items():
        for begin in stack:
            errors.append(
                f"unclosed span {begin.get('name')!r} on "
                f"pid {pid} tid {tid}")

    for (pid, tid), intervals in complete.items():
        errors.extend(_check_interval_nesting(pid, tid, intervals))
    return errors


def _check_interval_nesting(
        pid: int, tid: int,
        intervals: List[Tuple[int, int, str]]) -> List[str]:
    """X events per tid must be disjoint or properly nested."""
    errors: List[str] = []
    open_ends: List[Tuple[float, str]] = []
    ordered = sorted(intervals, key=lambda iv: (iv[0], -iv[1]))
    for start, end, name in ordered:
        while open_ends and open_ends[-1][0] <= start:
            open_ends.pop()
        if open_ends and end > open_ends[-1][0]:
            errors.append(
                f"X event {name!r} on pid {pid} tid {tid} partially "
                f"overlaps {open_ends[-1][1]!r}")
        open_ends.append((end, name))
    return errors
