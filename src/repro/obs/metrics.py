"""The metrics registry: counters, gauges and fixed-bucket histograms.

Metric names form a stable interface (documented in DESIGN.md and
README.md): experiments and the ``BENCH_*.json`` trajectory key on
them, so renaming one is an API change. Histograms use *fixed* bucket
boundaries chosen at creation, so snapshots from different runs are
directly comparable -- no adaptive binning.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.units import KIB, MIB, MS, SEC, US

#: Default boundaries for duration histograms (virtual nanoseconds).
LATENCY_BUCKETS_NS: Tuple[int, ...] = (
    1 * US, 10 * US, 100 * US, 1 * MS, 10 * MS, 100 * MS, 1 * SEC,
    10 * SEC)

#: Default boundaries for size histograms (bytes).
SIZE_BUCKETS_BYTES: Tuple[int, ...] = (
    4 * KIB, 64 * KIB, 1 * MIB, 16 * MIB, 64 * MIB, 256 * MIB)


class Counter:
    """A monotonically increasing integer-or-float count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """A value that can move both ways (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """A fixed-boundary histogram (cumulative-style buckets).

    ``boundaries`` are the inclusive upper edges of the first
    ``len(boundaries)`` buckets; one implicit overflow bucket catches
    everything above the last edge.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "count", "sum")

    def __init__(self, name: str,
                 boundaries: Sequence[float] = LATENCY_BUCKETS_NS):
        if not boundaries or list(boundaries) != sorted(boundaries):
            raise ObsError(
                f"histogram {name}: boundaries must be sorted, non-empty")
        self.name = name
        self.boundaries = tuple(boundaries)
        self.bucket_counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0

    def observe(self, value: float) -> None:
        index = len(self.boundaries)
        for i, edge in enumerate(self.boundaries):
            if value <= edge:
                index = i
                break
        self.bucket_counts[index] += 1
        self.count += 1
        self.sum += value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def overflow_count(self) -> int:
        """Observations above the last boundary.

        These are invisible to :meth:`percentile` beyond the clamp to
        the last edge, so snapshots report them explicitly: a non-zero
        overflow count is the signal that high quantiles are
        underestimates and the boundaries need widening.
        """
        return self.bucket_counts[-1]

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile from the bucket counts.

        Linear interpolation inside the bucket holding the requested
        rank, assuming observations spread evenly across it (the
        standard fixed-bucket estimator). The overflow bucket has no
        upper edge, so estimates clamp to the last boundary -- a known
        property of fixed-bucket percentiles, not a bug.
        """
        if not 0.0 <= q <= 100.0:
            raise ObsError(
                f"histogram {self.name}: percentile {q} not in [0, 100]")
        if self.count == 0:
            return 0.0
        rank = (q / 100.0) * self.count
        cumulative = 0.0
        lower = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            if i == len(self.boundaries):
                # Overflow bucket: no upper edge, so any rank landing
                # here clamps to the last boundary (see docstring).
                return float(self.boundaries[-1])
            upper = float(self.boundaries[i])
            if bucket_count and cumulative + bucket_count >= rank:
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
            lower = upper
        return float(self.boundaries[-1])


class MetricsRegistry:
    """Name -> metric map with get-or-create accessors.

    A name is bound to one metric kind forever; asking for the same
    name as a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ObsError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None
                  ) -> Histogram:
        if boundaries is None:
            boundaries = LATENCY_BUCKETS_NS
        metric = self._get_or_create(name, Histogram, boundaries)
        if metric.boundaries != tuple(boundaries):
            raise ObsError(
                f"histogram {name!r} re-requested with different "
                "boundaries")
        return metric

    def get(self, name: str) -> Optional[object]:
        return self._metrics.get(name)

    def names(self):
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-serializable dump of every metric, keyed by kind."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                hist: Histogram = metric  # type: ignore[assignment]
                out["histograms"][name] = {
                    "boundaries": list(hist.boundaries),
                    "bucket_counts": list(hist.bucket_counts),
                    "count": hist.count,
                    "sum": hist.sum,
                    "overflow_count": hist.overflow_count,
                    "p50": hist.percentile(50),
                    "p95": hist.percentile(95),
                    "p99": hist.percentile(99),
                }
        return out

    def reset(self) -> None:
        self._metrics.clear()


def namespace_snapshot(prefix: str,
                       snapshot: Dict[str, Dict[str, object]]
                       ) -> Dict[str, Dict[str, object]]:
    """The same snapshot with every name prefixed ``prefix.name`` --
    how a fleet report keeps per-node metrics apart (``node0.serve.*``)
    without a label dimension the exporters don't have."""
    return {kind: {f"{prefix}.{name}": value
                   for name, value in (snapshot.get(kind) or {}).items()}
            for kind in ("counters", "gauges", "histograms")}


def merge_snapshots(snapshots: list) -> Dict[str, Dict[str, object]]:
    """Aggregate registry snapshots (one per fleet node) into one.

    Counters and gauges sum name-wise (the gauges that survive
    aggregation meaningfully -- worker counts, queue depths -- are
    additive; rate gauges should be recomputed fleet-side, not
    merged). Histograms with identical boundaries merge bucket-wise
    and re-derive their percentiles from the merged buckets, so the
    fleet p99 is estimated from fleet-wide data, not averaged.
    """
    merged: Dict[str, Dict[str, object]] = {
        "counters": {}, "gauges": {}, "histograms": {}}
    for snapshot in snapshots:
        for kind in ("counters", "gauges"):
            for name, value in (snapshot.get(kind) or {}).items():
                merged[kind][name] = merged[kind].get(name, 0) + value
        for name, hist in (snapshot.get("histograms") or {}).items():
            into = merged["histograms"].get(name)
            if into is None:
                merged["histograms"][name] = {
                    "boundaries": list(hist["boundaries"]),
                    "bucket_counts": list(hist["bucket_counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                }
                continue
            if into["boundaries"] != list(hist["boundaries"]):
                raise ObsError(
                    f"histogram {name!r}: cannot merge differing "
                    "boundaries")
            into["bucket_counts"] = [
                a + b for a, b in zip(into["bucket_counts"],
                                      hist["bucket_counts"])]
            into["count"] += hist["count"]
            into["sum"] += hist["sum"]
    for name, hist in merged["histograms"].items():
        scratch = Histogram(name, hist["boundaries"])
        scratch.bucket_counts = list(hist["bucket_counts"])
        scratch.count = hist["count"]
        scratch.sum = hist["sum"]
        hist["overflow_count"] = scratch.overflow_count
        hist["p50"] = scratch.percentile(50)
        hist["p95"] = scratch.percentile(95)
        hist["p99"] = scratch.percentile(99)
    merged["counters"] = dict(sorted(merged["counters"].items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    return merged


def snapshot_diff(before: Dict[str, Dict[str, object]],
                  after: Dict[str, Dict[str, object]]
                  ) -> Dict[str, object]:
    """Structured comparison of two :meth:`MetricsRegistry.snapshot` dumps.

    Returns a JSON-serializable report with, per metric kind, the
    series that appeared (``added``), vanished (``removed``), and
    changed value (``changed``). Counters and gauges report numeric
    deltas; histograms report count/sum deltas plus percentile shifts
    -- the before/after triage view ``grr stats --diff`` renders.

    Snapshots may come from different runs of different code versions
    (that is the whole point), so the diff is defensive: metrics
    present only in ``after`` (counters registered mid-run) land in
    ``added``, kind sections may be missing or ``None`` entirely, and
    malformed values degrade to a before/after report without a delta
    instead of raising.
    """
    def _numeric(value) -> bool:
        return isinstance(value, (int, float)) \
            and not isinstance(value, bool)

    report: Dict[str, object] = {}
    for kind in ("counters", "gauges"):
        a = dict(before.get(kind) or {})
        b = dict(after.get(kind) or {})
        added = {name: b[name] for name in sorted(set(b) - set(a))}
        removed = {name: a[name] for name in sorted(set(a) - set(b))}
        changed = {}
        for name in sorted(set(a) & set(b)):
            if a[name] != b[name]:
                entry = {"before": a[name], "after": b[name]}
                if _numeric(a[name]) and _numeric(b[name]):
                    entry["delta"] = b[name] - a[name]
                changed[name] = entry
        report[kind] = {
            "added": added, "removed": removed, "changed": changed}
    a = dict(before.get("histograms") or {})
    b = dict(after.get("histograms") or {})
    hadded = {name: b[name] for name in sorted(set(b) - set(a))}
    hremoved = {name: a[name] for name in sorted(set(a) - set(b))}
    hchanged: Dict[str, object] = {}
    for name in sorted(set(a) & set(b)):
        ha, hb = a[name], b[name]
        if ha == hb:
            continue
        if not isinstance(ha, dict) or not isinstance(hb, dict):
            hchanged[name] = {"before": ha, "after": hb}
            continue

        def _field_delta(field: str, pa=ha, pb=hb):
            va, vb = pa.get(field, 0), pb.get(field, 0)
            if _numeric(va) and _numeric(vb):
                return vb - va
            return 0

        entry: Dict[str, object] = {
            "count_delta": _field_delta("count"),
            "sum_delta": _field_delta("sum"),
            "overflow_delta": _field_delta("overflow_count"),
        }
        for p in ("p50", "p95", "p99"):
            pa, pb = ha.get(p, 0.0), hb.get(p, 0.0)
            shift = pb - pa if _numeric(pa) and _numeric(pb) else 0
            entry[p] = {"before": pa, "after": pb, "shift": shift}
        hchanged[name] = entry
    report["histograms"] = {
        "added": hadded, "removed": hremoved, "changed": hchanged}
    return report


#: Process-wide registry for telemetry that is not tied to one machine
#: (the bench recording cache, report-level aggregates).
_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    return _GLOBAL
