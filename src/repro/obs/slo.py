"""Declarative SLOs with burn rates over sliding virtual-time windows.

An :class:`SloSpec` states an objective over the serving path -- "99%
of requests answer under 50 ms", "99.9% of requests are not shed" --
and the evaluator replays an rtrace event log
(:mod:`repro.obs.rtrace`) against it. Evaluation is event-driven on
the deterministic virtual clock: at each request's terminal event the
trailing window's failure rate is recomputed, the *burn rate* (failure
rate divided by the error budget ``1 - target``) is updated, and
alerts fire/clear as the burn crosses the threshold. Everything is a
pure function of the event log, so same-seed serve runs produce
byte-identical SLO reports -- alert timestamps included -- which is
what lets CI diff them.

Burn-rate semantics follow the standard error-budget reading: burn
1.0 means the window is consuming exactly its budget (the objective
holds with nothing to spare); burn 2.0 at threshold (the default)
means the budget would be exhausted in half the period the window
represents. Latency objectives count a request as *good* when its
end-to-end virtual latency is <= ``latency_ns`` AND its terminal
status is in ``good_statuses``; availability objectives
(``latency_ns=None``) count status alone.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ObsError
from repro.obs.rtrace import span_trees
from repro.units import MS, SEC

#: Statuses that count as "answered correctly" by default: everything
#: the failure ladder saved, however slowly ("ok" is the fast path,
#: "degraded" covers reference and CPU answers), but not sheds.
DEFAULT_GOOD_STATUSES = ("ok", "degraded")


@dataclass(frozen=True)
class SloSpec:
    """One objective: a target fraction of good requests in a window."""

    name: str
    #: Fraction of requests that must be good, e.g. 0.99.
    target: float
    #: Latency cutoff for "good" (None = availability-only objective).
    latency_ns: Optional[int] = None
    #: Sliding window the rate is computed over (virtual time).
    window_ns: int = 1 * SEC
    #: Terminal statuses that count as good.
    good_statuses: Tuple[str, ...] = DEFAULT_GOOD_STATUSES
    #: Burn rate at/above which the alert fires.
    burn_threshold: float = 2.0

    def validate(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ObsError(
                f"slo {self.name}: target must be in (0, 1)")
        if self.window_ns <= 0:
            raise ObsError(f"slo {self.name}: window must be positive")
        if self.burn_threshold <= 0:
            raise ObsError(
                f"slo {self.name}: burn threshold must be positive")


#: The default objective set ``grr slo`` evaluates: one latency SLO at
#: the deadline scale, one availability SLO over sheds.
def default_slos(deadline_ns: int = 100 * MS) -> List[SloSpec]:
    return [
        SloSpec(name="latency", target=0.99, latency_ns=deadline_ns),
        SloSpec(name="availability", target=0.95, latency_ns=None),
    ]


@dataclass
class SloAlert:
    """One fire or clear transition of an objective's alert."""

    slo: str
    kind: str  # "fire" | "clear"
    t_ns: int
    burn: float
    window_good: int
    window_total: int

    def to_dict(self) -> Dict[str, object]:
        return {"slo": self.slo, "kind": self.kind, "t_ns": self.t_ns,
                "burn": self.burn, "window_good": self.window_good,
                "window_total": self.window_total}


@dataclass
class SloResult:
    """One objective's outcome over a whole run."""

    spec: SloSpec
    total: int
    good: int
    max_burn: float
    max_burn_t_ns: int
    alerts: List[SloAlert] = field(default_factory=list)

    @property
    def compliance(self) -> float:
        return self.good / self.total if self.total else 1.0

    @property
    def budget_consumed(self) -> float:
        """Fraction of the whole-run error budget spent (>1 = blown)."""
        if not self.total:
            return 0.0
        budget = (1.0 - self.spec.target) * self.total
        return (self.total - self.good) / budget if budget else 0.0

    @property
    def met(self) -> bool:
        return self.compliance >= self.spec.target

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "target": self.spec.target,
            "latency_ns": self.spec.latency_ns,
            "window_ns": self.spec.window_ns,
            "burn_threshold": self.spec.burn_threshold,
            "total": self.total,
            "good": self.good,
            "compliance": self.compliance,
            "budget_consumed": self.budget_consumed,
            "met": self.met,
            "max_burn": self.max_burn,
            "max_burn_t_ns": self.max_burn_t_ns,
            "alerts": [a.to_dict() for a in self.alerts],
        }

    def render(self) -> str:
        state = "MET" if self.met else "MISSED"
        cutoff = (f" <= {self.spec.latency_ns / 1e6:g} ms"
                  if self.spec.latency_ns is not None else "")
        lines = [
            f"{self.spec.name}: {state}  target "
            f"{self.spec.target:.2%}{cutoff}  compliance "
            f"{self.compliance:.2%} ({self.good}/{self.total})  "
            f"budget consumed {self.budget_consumed:.2f}x  "
            f"max burn {self.max_burn:.2f} "
            f"@ {self.max_burn_t_ns / 1e6:.3f} ms"]
        for alert in self.alerts:
            lines.append(
                f"  alert {alert.kind:<5} @ {alert.t_ns / 1e6:.3f} ms "
                f"burn {alert.burn:.2f} "
                f"({alert.window_good}/{alert.window_total} good in "
                "window)")
        return "\n".join(lines)


def evaluate_slos(events: Sequence[dict],
                  specs: Optional[Sequence[SloSpec]] = None
                  ) -> List[SloResult]:
    """Evaluate objectives against an event log, deterministically.

    Terminal events are processed in virtual-time order (rid breaking
    ties); each drives one window update per objective. The output
    depends only on the event log and the specs.
    """
    specs = list(specs) if specs is not None else default_slos()
    for spec in specs:
        spec.validate()

    roots = span_trees(events)
    terminals = sorted(
        ((root.end_ns, rid, root.duration_ns,
          str(root.args.get("status", "?")))
         for rid, root in roots.items()),
        key=lambda item: (item[0], item[1]))

    results = []
    for spec in specs:
        window: deque = deque()  # (t_ns, good)
        good_in_window = 0
        total_good = 0
        firing = False
        max_burn = 0.0
        max_burn_t = 0
        alerts: List[SloAlert] = []
        budget = 1.0 - spec.target
        for t_ns, rid, latency_ns, status in terminals:
            good = status in spec.good_statuses
            if good and spec.latency_ns is not None:
                good = latency_ns <= spec.latency_ns
            total_good += 1 if good else 0
            window.append((t_ns, good))
            good_in_window += 1 if good else 0
            horizon = t_ns - spec.window_ns
            while window and window[0][0] <= horizon:
                _, was_good = window.popleft()
                good_in_window -= 1 if was_good else 0
            total = len(window)
            error_rate = (total - good_in_window) / total
            burn = error_rate / budget
            if burn > max_burn:
                max_burn = burn
                max_burn_t = t_ns
            if burn >= spec.burn_threshold and not firing:
                firing = True
                alerts.append(SloAlert(spec.name, "fire", t_ns, burn,
                                       good_in_window, total))
            elif burn < spec.burn_threshold and firing:
                firing = False
                alerts.append(SloAlert(spec.name, "clear", t_ns, burn,
                                       good_in_window, total))
        results.append(SloResult(
            spec=spec, total=len(terminals), good=total_good,
            max_burn=max_burn, max_burn_t_ns=max_burn_t,
            alerts=alerts))
    return results


def slo_report(events: Sequence[dict],
               specs: Optional[Sequence[SloSpec]] = None
               ) -> Dict[str, object]:
    """The JSON-shaped report ``grr slo`` prints (deterministic)."""
    results = evaluate_slos(events, specs)
    return {
        "schema": "slo.v1",
        "requests": len(span_trees(events)),
        "slos": [result.to_dict() for result in results],
    }
