"""The obs layer's subscription to the driver's trace chokepoints.

The same :class:`~repro.stack.driver.trace.TraceEvent` stream the
recorder consumes (Section 4.1's instrumentation) also feeds metrics
and the timeline here -- fan-out through the driver's
:class:`~repro.stack.driver.trace.TracerMux` means both subscribers
see every event, simultaneously, with zero virtual-time cost.

Metric names emitted here (``driver.*``) are part of the stable
metrics interface documented in DESIGN.md.
"""

from __future__ import annotations

from repro.stack.driver import trace


class ObsDriverTracer(trace.DriverTracer):
    """Converts driver chokepoint events into metrics + timeline rows."""

    def __init__(self, obs):
        self.obs = obs
        self._cpu = obs.track("cpu", "driver")
        self._irq_track = obs.track("cpu", "irq")
        self._irq_span = None

    def emit(self, event: trace.TraceEvent) -> None:
        obs = self.obs
        if isinstance(event, trace.RegWriteEvent):
            obs.counter("driver.reg_writes").inc()
        elif isinstance(event, trace.RegReadEvent):
            obs.counter("driver.reg_reads").inc()
        elif isinstance(event, trace.RegPollEvent):
            obs.counter("driver.poll_loops").inc()
            obs.counter("driver.poll_iterations").inc(event.polls)
            obs.instant(f"poll:{event.name}", self._cpu,
                        args={"polls": event.polls,
                              "success": event.success,
                              "src": event.src})
        elif isinstance(event, trace.WaitIrqEvent):
            obs.counter("driver.irq_waits").inc()
            obs.instant("wait-irq", self._cpu,
                        args={"timeout_ns": event.timeout_ns,
                              "src": event.src})
        elif isinstance(event, trace.IrqEvent):
            if event.phase == "enter":
                obs.counter("driver.irq_entries").inc()
                self._irq_span = obs.begin("irq", self._irq_track,
                                           cat="irq",
                                           args={"src": event.src})
            elif self._irq_span is not None:
                obs.end(self._irq_span)
                self._irq_span = None
        elif isinstance(event, trace.JobKickEvent):
            obs.counter("driver.job_kicks").inc()
            obs.instant(f"job-kick:slot{event.slot}", self._cpu,
                        args={"chain_va": event.chain_va,
                              "job_index": event.job_index,
                              "src": event.src})
        elif isinstance(event, trace.MemMapEvent):
            obs.counter("driver.mem_maps").inc()
            obs.counter("driver.mapped_pages").inc(event.num_pages)
        elif isinstance(event, trace.MemUnmapEvent):
            obs.counter("driver.mem_unmaps").inc()
