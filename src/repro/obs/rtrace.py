"""Request-scoped tracing for the serving path (event-log schema v1).

The span tracer (:mod:`repro.obs.tracer`) answers "what was this
*machine* doing over time"; it cannot answer "where did *request 173*
spend its 40 ms", because one request hops between the server queue,
several workers, the vault and the CPU fallback. This module owns
that second question: every request admitted by the serving engine
gets a :class:`RequestTracer` context that follows it through
admission, queueing, batching, worker assignment, vault fetches,
load-cache hits, the replay fast path, every failure-ladder rung and
the final completion or shed -- one causally-linked span tree per
request, on the deterministic virtual clock.

Event-log schema v1
-------------------

The log is a flat list of dict events; exported JSONL carries one
event per line, sorted by ``(t_ns, seq)`` with compact sorted-key
encoding, so same-seed runs serialize byte-identically. Fields:

- ``seq``   -- global emission order (tie-break within one instant);
- ``t_ns``  -- virtual-time stamp (integer nanoseconds);
- ``rid``   -- request id, or ``-1`` for run-level ``meta`` events;
- ``ev``    -- ``begin`` | ``end`` | ``mark`` | ``meta``;
- ``name``  -- span or mark name (``end`` repeats the span's name);
- ``sid``   -- span id, an ordinal *per request* (root span is 0);
- ``psid``  -- causal parent span id (root has ``-1``);
- ``args``  -- free-form JSON-safe details.

Causality is explicit: the engine passes the parent ``sid`` when it
opens a child span, so the tree survives the request migrating
between workers (there is no thread-local "current span" to lose).
Every request's tree is rooted at one ``request`` span (opened by
:meth:`RequestTracer.submit`) and closed exactly once by
:meth:`RequestTracer.finish`, which also emits the single ``terminal``
mark carrying the outcome status. :func:`validate_events` checks all
of these invariants; :func:`span_trees` rebuilds the trees for the
attribution analyzer (:mod:`repro.obs.attribution`) and the SLO
engine (:mod:`repro.obs.slo`).

Determinism contract: like the rest of the obs layer, the request
tracer only ever *reads* the clock. Timestamps may also be supplied
explicitly (``t_ns=...``) because the serving engine scores batch
work onto its timeline before the server clock advances past it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Schema tag stamped on the run-level header meta event.
SCHEMA = "rtrace.v1"

#: Span id of every request's root ``request`` span.
ROOT_SID = 0

#: Name of the one mark that ends a request's story.
TERMINAL = "terminal"


class RequestTracer:
    """Collects request-scoped events against a virtual clock."""

    def __init__(self, clock):
        self._clock = clock
        self.events: List[dict] = []
        self._seq = 0
        #: rid -> {sid: name} of spans currently open.
        self._open: Dict[int, Dict[int, str]] = {}
        #: rid -> next span ordinal.
        self._next_sid: Dict[int, int] = {}
        self._finished: Dict[int, bool] = {}

    #: Distinguishes the live tracer from :data:`NULL_RTRACE`.
    enabled = True

    # -- emission -------------------------------------------------------------

    def _stamp(self, t_ns: Optional[int]) -> int:
        return self._clock.now() if t_ns is None else t_ns

    def _emit(self, t_ns: int, rid: int, ev: str, name: str, sid: int,
              psid: int, args: Optional[dict]) -> None:
        self.events.append({
            "seq": self._seq, "t_ns": t_ns, "rid": rid, "ev": ev,
            "name": name, "sid": sid, "psid": psid,
            "args": dict(args) if args else {},
        })
        self._seq += 1

    def meta(self, name: str, args: Optional[dict] = None,
             t_ns: Optional[int] = None) -> None:
        """A run-level event (config, store contents, loadgen seed)."""
        self._emit(self._stamp(t_ns), -1, "meta", name, -1, -1, args)

    def submit(self, rid: int, t_ns: Optional[int] = None,
               args: Optional[dict] = None) -> int:
        """Open request ``rid``'s root span; returns its sid (0)."""
        t = self._stamp(t_ns)
        self._open[rid] = {ROOT_SID: "request"}
        self._next_sid[rid] = ROOT_SID + 1
        self._finished[rid] = False
        self._emit(t, rid, "begin", "request", ROOT_SID, -1, args)
        return ROOT_SID

    def begin(self, rid: int, name: str, psid: int = ROOT_SID,
              t_ns: Optional[int] = None,
              args: Optional[dict] = None) -> int:
        """Open a child span under ``psid``; returns the new sid."""
        t = self._stamp(t_ns)
        sid = self._next_sid.get(rid, ROOT_SID + 1)
        self._next_sid[rid] = sid + 1
        self._open.setdefault(rid, {})[sid] = name
        self._emit(t, rid, "begin", name, sid, psid, args)
        return sid

    def end(self, rid: int, sid: int, t_ns: Optional[int] = None,
            args: Optional[dict] = None) -> None:
        t = self._stamp(t_ns)
        name = self._open.get(rid, {}).pop(sid, None)
        self._emit(t, rid, "end", name or "?", sid, -1, args)

    def mark(self, rid: int, name: str, psid: int = ROOT_SID,
             t_ns: Optional[int] = None,
             args: Optional[dict] = None) -> None:
        """An instant event attached to span ``psid``."""
        self._emit(self._stamp(t_ns), rid, "mark", name, -1, psid, args)

    def finish(self, rid: int, status: str, t_ns: Optional[int] = None,
               args: Optional[dict] = None) -> None:
        """Close ``rid``'s tree: auto-close leftovers, end the root,
        emit the one ``terminal`` mark carrying ``status``.

        A second finish for the same rid emits a second terminal mark
        rather than raising -- :func:`validate_events` flags it, which
        is how the completeness tests catch double-completion bugs in
        the engine without masking them.
        """
        t = self._stamp(t_ns)
        open_spans = self._open.get(rid, {})
        for sid in sorted((s for s in open_spans if s != ROOT_SID),
                          reverse=True):
            open_spans.pop(sid)
            self._emit(t, rid, "end", "?", sid, -1, {"auto": True})
        if open_spans.pop(ROOT_SID, None) is not None:
            self._emit(t, rid, "end", "request", ROOT_SID, -1,
                       {"status": status})
        terminal_args = {"status": status}
        if args:
            terminal_args.update(args)
        self._emit(t, rid, "mark", TERMINAL, -1, ROOT_SID, terminal_args)
        self._finished[rid] = True

    def finished(self, rid: int) -> bool:
        return self._finished.get(rid, False)


class NullRequestTracer:
    """No-op twin of :class:`RequestTracer` (tracing disabled)."""

    enabled = False
    events: List[dict] = []

    def meta(self, name, args=None, t_ns=None):
        pass

    def submit(self, rid, t_ns=None, args=None):
        return ROOT_SID

    def begin(self, rid, name, psid=ROOT_SID, t_ns=None, args=None):
        return -1

    def end(self, rid, sid, t_ns=None, args=None):
        pass

    def mark(self, rid, name, psid=ROOT_SID, t_ns=None, args=None):
        pass

    def finish(self, rid, status, t_ns=None, args=None):
        pass

    def finished(self, rid):
        return False


#: Shared no-op instance (the engine's default when tracing is off).
NULL_RTRACE = NullRequestTracer()


# -- export -------------------------------------------------------------------


def sorted_events(events: Sequence[dict]) -> List[dict]:
    """Events in virtual-time order, emission order breaking ties.

    The engine scores batch work onto its timeline before the server
    clock reaches it, so the raw list is *not* time-sorted; exports
    always are.
    """
    return sorted(events, key=lambda e: (e["t_ns"], e["seq"]))


def events_to_jsonl(events: Sequence[dict]) -> str:
    """Compact JSONL, one event per line -- byte-identical for
    same-seed runs (sorted keys, fixed separators, time-sorted)."""
    lines = [json.dumps(event, sort_keys=True, separators=(",", ":"))
             for event in sorted_events(events)]
    return "\n".join(lines) + "\n" if lines else ""


def load_events(path: str) -> List[dict]:
    """Load a JSONL event log written by :func:`events_to_jsonl`."""
    events = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def events_to_chrome(events: Sequence[dict]) -> dict:
    """Export as Chrome trace-event JSON: one pid for the serve run,
    one tid (timeline row) per request, spans as complete ``X``
    events, marks as instants."""
    out: List[dict] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": "serve"}}]
    begins: Dict[tuple, dict] = {}
    spans: List[dict] = []
    marks: List[dict] = []
    rids = set()
    for event in sorted_events(events):
        rid = event["rid"]
        if rid < 0:
            continue
        rids.add(rid)
        tid = rid + 1
        if event["ev"] == "begin":
            begins[(rid, event["sid"])] = event
        elif event["ev"] == "end":
            begin = begins.pop((rid, event["sid"]), None)
            if begin is None:
                continue
            args = dict(begin["args"])
            args.update(event["args"])
            args["sid"] = event["sid"]
            spans.append({
                "ph": "X", "name": begin["name"], "pid": 1, "tid": tid,
                "cat": "request", "ts": begin["t_ns"] / 1e3,
                "dur": max(0, event["t_ns"] - begin["t_ns"]) / 1e3,
                "args": args})
        elif event["ev"] == "mark":
            marks.append({
                "ph": "i", "name": event["name"], "pid": 1, "tid": tid,
                "s": "t", "ts": event["t_ns"] / 1e3,
                "args": dict(event["args"])})
    for rid in sorted(rids):
        out.append({"ph": "M", "name": "thread_name", "pid": 1,
                    "tid": rid + 1, "args": {"name": f"request {rid}"}})
    out.extend(spans)
    out.extend(marks)
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "virtual-ns",
                      "exporter": "repro.obs.rtrace"},
    }


# -- analysis -----------------------------------------------------------------


@dataclass
class SpanNode:
    """One reconstructed span of a request's tree."""

    name: str
    sid: int
    start_ns: int
    end_ns: int
    args: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def duration_ns(self) -> int:
        return max(0, self.end_ns - self.start_ns)

    @property
    def exclusive_ns(self) -> int:
        """Time inside this span not covered by any child span.

        Children are emitted sequentially by the engine, so summing
        their durations (no overlap handling) is exact; the residue is
        the span's own cost. Exclusive times over a whole tree always
        sum to the root's duration -- the invariant the attribution
        analyzer's "stages sum to end-to-end latency" claim rests on.
        """
        return max(0, self.duration_ns
                   - sum(c.duration_ns for c in self.children))

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


def span_trees(events: Sequence[dict]) -> Dict[int, SpanNode]:
    """Rebuild each request's span tree from a (validated) event log.

    Returns ``{rid: root SpanNode}``. Spans missing an ``end`` get
    ``end_ns = start_ns`` (the validator reports them separately);
    terminal status lands in the root's ``args``.
    """
    nodes: Dict[tuple, SpanNode] = {}
    roots: Dict[int, SpanNode] = {}
    for event in sorted_events(events):
        rid = event["rid"]
        if rid < 0:
            continue
        key = (rid, event["sid"])
        if event["ev"] == "begin":
            node = SpanNode(event["name"], event["sid"], event["t_ns"],
                            event["t_ns"], dict(event["args"]))
            nodes[key] = node
            if event["sid"] == ROOT_SID:
                roots[rid] = node
            else:
                parent = nodes.get((rid, event["psid"]))
                if parent is not None:
                    parent.children.append(node)
        elif event["ev"] == "end":
            node = nodes.get(key)
            if node is not None:
                node.end_ns = event["t_ns"]
                node.args.update(event["args"])
        elif event["ev"] == "mark" and event["name"] == TERMINAL:
            root = roots.get(rid)
            if root is not None:
                root.args.setdefault("status",
                                     event["args"].get("status"))
    return roots


def validate_events(events: Sequence[dict],
                    expected_rids: Optional[Sequence[int]] = None
                    ) -> List[str]:
    """Completeness check; returns problems (empty == valid).

    Invariants of one *complete* trace per request:

    - exactly one root ``request`` span per rid, begun once;
    - every ``begin`` matched by exactly one ``end`` (no orphans, no
      double-ends) and no span auto-closed by ``finish``;
    - exactly one ``terminal`` mark per rid, at or after every other
      event of that rid;
    - child spans reference a parent that already began;
    - with ``expected_rids``, exactly that rid set appears.
    """
    errors: List[str] = []
    begun: Dict[int, Dict[int, dict]] = {}
    ended: Dict[int, Dict[int, int]] = {}
    terminals: Dict[int, int] = {}
    last_t: Dict[int, int] = {}
    terminal_t: Dict[int, int] = {}

    for event in sorted_events(events):
        rid = event["rid"]
        if rid < 0:
            if event["ev"] != "meta":
                errors.append(f"rid -1 on non-meta event {event}")
            continue
        sid = event["sid"]
        ev = event["ev"]
        last_t[rid] = event["t_ns"]
        if ev == "begin":
            per_rid = begun.setdefault(rid, {})
            if sid in per_rid:
                errors.append(f"rid {rid}: span {sid} begun twice")
            per_rid[sid] = event
            if sid == ROOT_SID and event["name"] != "request":
                errors.append(
                    f"rid {rid}: root span named {event['name']!r}")
            if sid != ROOT_SID:
                psid = event["psid"]
                if psid not in begun.get(rid, {}):
                    errors.append(
                        f"rid {rid}: span {sid} ({event['name']!r}) "
                        f"has unknown parent {psid}")
        elif ev == "end":
            counts = ended.setdefault(rid, {})
            counts[sid] = counts.get(sid, 0) + 1
            if sid not in begun.get(rid, {}):
                errors.append(f"rid {rid}: end for unknown span {sid}")
            if event["args"].get("auto"):
                errors.append(
                    f"rid {rid}: span {sid} auto-closed by finish "
                    "(engine left it open)")
        elif ev == "mark" and event["name"] == TERMINAL:
            terminals[rid] = terminals.get(rid, 0) + 1
            terminal_t[rid] = event["t_ns"]

    for rid, spans in begun.items():
        if ROOT_SID not in spans:
            errors.append(f"rid {rid}: no root request span")
        for sid in spans:
            count = ended.get(rid, {}).get(sid, 0)
            if count == 0:
                errors.append(f"rid {rid}: span {sid} never ended")
            elif count > 1:
                errors.append(f"rid {rid}: span {sid} ended {count}x")
        count = terminals.get(rid, 0)
        if count != 1:
            errors.append(f"rid {rid}: {count} terminal marks")
        elif terminal_t[rid] < last_t[rid]:
            errors.append(
                f"rid {rid}: events after the terminal mark")

    for rid in ended:
        if rid not in begun:
            errors.append(f"rid {rid}: ends without any begin")
    for rid in terminals:
        if rid not in begun:
            errors.append(f"rid {rid}: terminal without a trace")

    if expected_rids is not None:
        expected = set(expected_rids)
        seen = set(begun)
        for rid in sorted(expected - seen):
            errors.append(f"rid {rid}: expected but never traced")
        for rid in sorted(seen - expected):
            errors.append(f"rid {rid}: traced but not expected")
    return errors
