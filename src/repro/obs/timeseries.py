"""Time-series metrics: periodic virtual-clock scrapes of the registry.

The :class:`~repro.obs.metrics.MetricsRegistry` is a point-in-time
view; CI diffs two snapshots at most.  This module adds the third
dimension: a :class:`TimeSeriesCollector` scrapes the registry at
fixed *virtual-clock* intervals into bounded ring-buffer series, so a
serve run yields queue depth / shed rate / cache hit ratio curves
instead of a single end-state number.

Determinism: scrapes are pinned to exact interval boundaries
``t_k = k * interval_ns``.  ``maybe_scrape(now)`` is piggybacked on
the serving engine's event loop (a virtual clock has no timers of its
own and a recurring scheduled event would keep the drain loop alive
forever); each boundary crossed since the last call emits one sample
stamped at the boundary, carrying the registry state at the first
event point past it.  Same seed, same event sequence, same samples --
byte for byte in the JSONL export.

Exports are OpenMetrics text (dots become underscores, counters gain
``_total``) and JSONL (one ``{"series", "t_ns", "value"}`` object per
sample, sorted), plus sparkline-ready access for ``grr dash``.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional, Tuple

#: Default scrape cadence: 1 ms of virtual time.
DEFAULT_INTERVAL_NS = 1_000_000

#: Ring capacity per series; older samples are dropped (and counted).
DEFAULT_CAPACITY = 1024

#: Hard cap on distinct series so a misbehaving caller cannot grow
#: the collector without bound.
MAX_SERIES = 256


class Series:
    """One named metric over time, ring-bounded."""

    __slots__ = ("name", "kind", "capacity", "samples", "dropped")

    def __init__(self, name: str, kind: str,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.name = name
        self.kind = kind  # "counter" | "gauge"
        self.capacity = capacity
        self.samples: List[Tuple[int, float]] = []
        self.dropped = 0

    def append(self, t_ns: int, value: float) -> None:
        if len(self.samples) >= self.capacity:
            del self.samples[0]
            self.dropped += 1
        self.samples.append((t_ns, value))

    def last(self) -> Optional[float]:
        return self.samples[-1][1] if self.samples else None

    def values(self) -> List[float]:
        return [value for _, value in self.samples]


class TimeSeriesCollector:
    """Scrape a metrics registry into ring-buffered series.

    ``derive`` is an optional hook mapping a registry snapshot to
    extra gauge values (``{"serve.cache.hit_ratio": 0.93, ...}``) --
    the serving engine uses it for ratios that only make sense as a
    time series, without polluting the registry itself.
    """

    def __init__(self, registry, interval_ns: int = DEFAULT_INTERVAL_NS,
                 capacity: int = DEFAULT_CAPACITY,
                 derive: Optional[Callable[[dict], Dict[str, float]]]
                 = None) -> None:
        self.registry = registry
        self.interval_ns = max(1, int(interval_ns))
        self.capacity = capacity
        self.derive = derive
        self.series: Dict[str, Series] = {}
        self.dropped_series = 0
        self.scrapes = 0
        self._next_t = 0

    # -- recording -----------------------------------------------------

    def _series(self, name: str, kind: str) -> Optional[Series]:
        entry = self.series.get(name)
        if entry is None:
            if len(self.series) >= MAX_SERIES:
                self.dropped_series += 1
                return None
            entry = Series(name, kind, self.capacity)
            self.series[name] = entry
        return entry

    def record(self, t_ns: int, name: str, value: float,
               kind: str = "gauge") -> None:
        entry = self._series(name, kind)
        if entry is not None:
            entry.append(t_ns, value)

    def scrape(self, t_ns: int) -> None:
        """Sample every registry metric once, stamped at ``t_ns``."""
        snapshot = self.registry.snapshot()
        for name in sorted(snapshot["counters"]):
            self.record(t_ns, name, snapshot["counters"][name],
                        kind="counter")
        for name in sorted(snapshot["gauges"]):
            self.record(t_ns, name, snapshot["gauges"][name])
        for name in sorted(snapshot["histograms"]):
            hist = snapshot["histograms"][name]
            self.record(t_ns, name + ".count", hist.get("count", 0),
                        kind="counter")
            if "p95" in hist:
                self.record(t_ns, name + ".p95", hist["p95"])
        if self.derive is not None:
            for name in sorted(derived := self.derive(snapshot)):
                self.record(t_ns, name, derived[name])
        self.scrapes += 1

    def maybe_scrape(self, now_ns: int) -> int:
        """Emit one sample per interval boundary crossed up to ``now``.

        Called from the engine's event loop; returns how many scrapes
        fired.  Boundary timestamps are exact multiples of the
        interval, so the export is independent of *which* event
        crossed them.
        """
        fired = 0
        while self._next_t <= now_ns:
            self.scrape(self._next_t)
            self._next_t += self.interval_ns
            fired += 1
        return fired

    # -- export --------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per sample, sorted by (t_ns, series)."""
        rows = []
        for name in sorted(self.series):
            for t_ns, value in self.series[name].samples:
                rows.append((t_ns, name, value))
        rows.sort()
        lines = [json.dumps({"series": name, "t_ns": t_ns,
                             "value": value}, sort_keys=True,
                            separators=(",", ":"))
                 for t_ns, name, value in rows]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_openmetrics(self) -> str:
        """OpenMetrics text exposition of every series.

        Metric names swap dots for underscores; counters gain the
        conventional ``_total`` suffix.  Timestamps are seconds with
        nanosecond precision.  Ends with ``# EOF`` per the spec.
        """
        lines: List[str] = []
        for name in sorted(self.series):
            entry = self.series[name]
            metric = name.replace(".", "_").replace("-", "_")
            if entry.kind == "counter":
                lines.append(f"# TYPE {metric} counter")
                sample_name = metric + "_total"
            else:
                lines.append(f"# TYPE {metric} gauge")
                sample_name = metric
            for t_ns, value in entry.samples:
                lines.append(f"{sample_name} {_fmt_value(value)} "
                             f"{t_ns / 1e9:.9f}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-ready structural view (report plumbing + tests)."""
        return {
            "schema": "timeseries.v1",
            "interval_ns": self.interval_ns,
            "scrapes": self.scrapes,
            "dropped_series": self.dropped_series,
            "series": {
                name: {"kind": entry.kind,
                       "dropped": entry.dropped,
                       "samples": [[t, v] for t, v in entry.samples]}
                for name, entry in sorted(self.series.items())
            },
        }


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_jsonl(text: str) -> Dict[str, List[Tuple[int, float]]]:
    """Parse a JSONL export back into ``{series: [(t_ns, value)]}``."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        series.setdefault(row["series"], []).append(
            (row["t_ns"], row["value"]))
    return series


def validate_openmetrics(text: str) -> List[str]:
    """Schema-check OpenMetrics text; returns problems (CI gate)."""
    problems: List[str] = []
    if not text.endswith("# EOF\n"):
        problems.append("missing terminating '# EOF'")
    typed: set = set()
    for number, line in enumerate(text.splitlines(), start=1):
        if line == "# EOF":
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge",
                                                   "histogram"):
                problems.append(f"line {number}: malformed TYPE")
                continue
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 3:
            problems.append(f"line {number}: expected "
                            f"'name value timestamp'")
            continue
        name = parts[0]
        base = name[:-len("_total")] if name.endswith("_total") \
            else name
        if base not in typed and name not in typed:
            problems.append(f"line {number}: sample {name!r} has no "
                            f"preceding TYPE")
        if not all(c.isalnum() or c == "_" for c in name):
            problems.append(f"line {number}: invalid metric name "
                            f"{name!r}")
        try:
            float(parts[1])
            float(parts[2])
        except ValueError:
            problems.append(f"line {number}: non-numeric value or "
                            f"timestamp")
    return problems
