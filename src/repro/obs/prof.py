"""Continuous profiler over request traces -- folded stacks on the
virtual clock.

``repro.obs.rtrace`` records one causal span tree per request.  This
module turns a batch of those trees into a *profile*: every span's
**exclusive** virtual time (its duration minus its children's) is
attributed to a hierarchical frame stack

    server -> worker[i] -> rung[mode] -> action -> kernel

and aggregated across requests.  Because exclusive time partitions
each request's end-to-end duration exactly (children are sequential by
construction -- see ``SpanNode.exclusive_ns``), the sum of all frame
values equals the sum of all request durations: the profile never
invents or loses a nanosecond.

Exports:

* ``folded_stacks(events)`` -- ``{"a;b;c": exclusive_ns}`` frame map
* ``to_folded_text(stacks)`` -- flamegraph.pl-compatible ``.folded``
  text, lexicographically sorted, byte-identical for same-seed runs
* ``chrome_flame(stacks)`` -- a Chrome-trace flamegraph layout of the
  aggregate profile (one ``X`` slice per frame, children packed
  left-to-right), mergeable into the serve timeline
* ``validate_folded(text)`` -- schema check for CI

Everything runs on recorded virtual timestamps; the profiler itself
never touches the clock, so enabling it cannot change replay results.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.rtrace import SpanNode, span_trees

#: Root frame every stack hangs under.
ROOT_FRAME = "server"


def _frames_for(node: SpanNode) -> List[str]:
    """Map one span to the frame(s) it contributes to the stack.

    ``attempt`` spans expand to two frames (the worker identity and
    the ladder rung) so the flamegraph groups time by worker first and
    by rung second; the synthetic ``worker[i]`` frame accrues no
    exclusive time of its own, which keeps the sum invariant intact.
    ``cpu`` degradations become the terminal ``rung[cpu]``.
    """
    name = node.name
    if name == "request":
        return []  # the root folds into the server frame
    if name == "attempt":
        worker = node.args.get("worker", "?")
        mode = node.args.get("mode", "?")
        return [f"worker[{worker}]", f"rung[{mode}]"]
    if name == "cpu":
        return ["rung[cpu]"]
    return [name]


def _accumulate(node: SpanNode, path: Tuple[str, ...],
                stacks: Dict[str, int]) -> None:
    frames = path + tuple(_frames_for(node))
    key = ";".join(frames)
    # Virtual timestamps are integral nanoseconds, but JSON round-trips
    # (and histogram-derived args) can surface them as floats; coerce
    # so the .folded export stays integer-valued and byte-stable.
    stacks[key] = stacks.get(key, 0) + int(node.exclusive_ns)
    for child in node.children:
        _accumulate(child, frames, stacks)


def folded_stacks(events: List[dict]) -> Dict[str, int]:
    """Aggregate exclusive virtual time per frame stack.

    ``events`` is an rtrace.v1 event list (as written by
    ``grr serve --trace-out``).  Returns ``{stack: exclusive_ns}``
    where ``stack`` joins frames with ``;`` in flamegraph convention.
    """
    stacks: Dict[str, int] = {}
    trees = span_trees(events)
    for rid in sorted(trees):
        _accumulate(trees[rid], (ROOT_FRAME,), stacks)
    return stacks


def total_ns(stacks: Dict[str, int]) -> int:
    """Sum of all frame values == sum of request durations."""
    return sum(stacks.values())


def request_total_ns(events: List[dict]) -> int:
    """Sum of root-span durations -- the profile's conservation target."""
    return sum(int(tree.duration_ns)
               for tree in span_trees(events).values())


def to_folded_text(stacks: Dict[str, int]) -> str:
    """Render ``stacks`` as flamegraph.pl folded text.

    One ``frame;frame;frame value`` line per stack, sorted
    lexicographically -- the byte-identical export format the
    determinism tests pin.
    """
    lines = [f"{stack} {value}" for stack, value in
             sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_folded(text: str) -> Dict[str, int]:
    """Inverse of :func:`to_folded_text` (used by tests and grr)."""
    stacks: Dict[str, int] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        stack, _, value = line.rpartition(" ")
        stacks[stack] = stacks.get(stack, 0) + int(value)
    return stacks


def validate_folded(text: str) -> List[str]:
    """Schema-check folded text; returns a list of problems (CI gate)."""
    problems: List[str] = []
    if not text:
        return ["empty profile"]
    if not text.endswith("\n"):
        problems.append("missing trailing newline")
    seen = []
    for number, line in enumerate(text.splitlines(), start=1):
        stack, sep, value = line.rpartition(" ")
        if not sep or not stack:
            problems.append(f"line {number}: not 'stack value'")
            continue
        if not value.isdigit():
            problems.append(f"line {number}: value {value!r} is not a "
                            f"non-negative integer")
        if not stack.startswith(ROOT_FRAME):
            problems.append(f"line {number}: stack does not start at "
                            f"{ROOT_FRAME!r}")
        seen.append(stack)
    if seen != sorted(seen):
        problems.append("stacks are not lexicographically sorted")
    if len(set(seen)) != len(seen):
        problems.append("duplicate stacks")
    return problems


# -- Chrome flamegraph layout -----------------------------------------

class _Frame:
    __slots__ = ("self_ns", "children")

    def __init__(self) -> None:
        self.self_ns = 0
        self.children: Dict[str, _Frame] = {}

    def total_ns(self) -> int:
        return self.self_ns + sum(child.total_ns() for child in
                                  self.children.values())


def _build_tree(stacks: Dict[str, int]) -> _Frame:
    root = _Frame()
    for stack, value in stacks.items():
        node = root
        for frame in stack.split(";"):
            node = node.children.setdefault(frame, _Frame())
        node.self_ns += value
    return root


def _emit(name: str, node: _Frame, offset_ns: int, depth: int,
          pid: int, tid: int, out: List[dict]) -> None:
    out.append({
        "name": name, "ph": "X", "pid": pid, "tid": tid,
        "ts": offset_ns / 1000.0, "dur": node.total_ns() / 1000.0,
        "cat": "flame", "args": {"exclusive_ns": node.self_ns,
                                 "depth": depth},
    })
    cursor = offset_ns
    for child_name in sorted(node.children):
        child = node.children[child_name]
        _emit(child_name, child, cursor, depth + 1, pid, tid, out)
        cursor += child.total_ns()


def chrome_flame(stacks: Dict[str, int], pid: int = 99,
                 tid: int = 0) -> List[dict]:
    """Lay the aggregate profile out as Chrome trace ``X`` slices.

    Children pack left-to-right in sorted order inside their parent,
    so the result renders as a flamegraph in Perfetto / chrome://
    tracing.  Returns the event list; append it to an existing
    ``traceEvents`` array to merge with the serve timeline.
    """
    tree = _build_tree(stacks)
    out: List[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": tid,
        "args": {"name": "profile (aggregate flame)"},
    }]
    cursor = 0
    for name in sorted(tree.children):
        node = tree.children[name]
        _emit(name, node, cursor, 0, pid, tid, out)
        cursor += node.total_ns()
    return out


def chrome_trace(stacks: Dict[str, int]) -> dict:
    """A standalone Chrome trace document for the aggregate profile."""
    return {"traceEvents": chrome_flame(stacks),
            "displayTimeUnit": "ns",
            "otherData": {"generator": "repro.obs.prof",
                          "total_ns": total_ns(stacks)}}
