"""``repro.obs`` -- unified observability for the whole reproduction.

The paper's evaluation is built on *seeing* the CPU/GPU boundary:
register I/O counts, polling iterations, dump bytes, IRQ wait
latencies, replay retries (Section 7, Figures 3-11). This package is
the one place all of that telemetry flows through:

- :mod:`repro.obs.tracer` -- a span tracer keyed to the virtual clock,
  exporting Chrome trace-event JSON (``chrome://tracing`` / Perfetto);
- :mod:`repro.obs.metrics` -- counters, gauges and fixed-boundary
  histograms with a JSON-serializable snapshot;
- :mod:`repro.obs.session` -- the :class:`Observability` object that a
  :class:`~repro.soc.machine.Machine` carries (a no-op null object by
  default, so the instrumented code paths cost nothing when disabled);
- :mod:`repro.obs.chrome_trace` -- a validator for the exported
  timeline (used by tests, ``grr trace`` and the CI smoke job);
- :mod:`repro.obs.flight` -- the always-on bounded flight recorder
  every machine carries (forensics for ``grr doctor``);
- :mod:`repro.obs.rtrace` -- request-scoped tracing for the serving
  path: one causal span tree per request, JSONL/Chrome export,
  completeness validation (event-log schema v1);
- :mod:`repro.obs.attribution` -- tail-latency attribution over
  rtrace logs (exclusive-time decomposition by stage);
- :mod:`repro.obs.slo` -- declarative latency/error-budget objectives
  with sliding-window burn rates and deterministic alerts;
- :mod:`repro.obs.prof` -- the continuous profiler: exclusive
  virtual time folded onto server/worker/rung/action/kernel frame
  stacks (``.folded`` + Chrome flamegraph export);
- :mod:`repro.obs.timeseries` -- periodic virtual-clock scrapes of
  the metrics registry into ring-buffered series (OpenMetrics +
  JSONL exporters, ``grr dash``);
- :mod:`repro.obs.doctor` -- divergence localization and failure
  forensics (NOT imported here: it depends on the replayer, which
  depends on the machine, which imports this package -- import it
  lazily, ``from repro.obs.doctor import run_doctor``).

Determinism contract: observability only ever *reads* the virtual
clock. Enabling it must change recorded/replayed virtual-time results
by exactly zero.
"""

from repro.obs.attribution import AttributionReport, attribute
from repro.obs.chrome_trace import validate_chrome_trace
from repro.obs.metrics import (LATENCY_BUCKETS_NS, SIZE_BUCKETS_BYTES,
                               Counter, Gauge, Histogram, MetricsRegistry,
                               global_registry, snapshot_diff)
from repro.obs.prof import (chrome_flame, folded_stacks, parse_folded,
                            to_folded_text, validate_folded)
from repro.obs.rtrace import (NULL_RTRACE, NullRequestTracer,
                              RequestTracer, SpanNode, events_to_chrome,
                              events_to_jsonl, load_events, span_trees,
                              validate_events)
from repro.obs.session import (NULL_OBS, NullObservability, Observability,
                               enable_observability)
from repro.obs.slo import (SloAlert, SloResult, SloSpec, default_slos,
                           evaluate_slos, slo_report)
from repro.obs.timeseries import (TimeSeriesCollector,
                                  validate_openmetrics)
from repro.obs.tracer import SpanTracer, Track

__all__ = [
    "AttributionReport",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_NS",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_RTRACE",
    "NullObservability",
    "NullRequestTracer",
    "Observability",
    "RequestTracer",
    "SIZE_BUCKETS_BYTES",
    "SloAlert",
    "SloResult",
    "SloSpec",
    "SpanNode",
    "SpanTracer",
    "TimeSeriesCollector",
    "Track",
    "attribute",
    "chrome_flame",
    "default_slos",
    "enable_observability",
    "evaluate_slos",
    "events_to_chrome",
    "events_to_jsonl",
    "folded_stacks",
    "global_registry",
    "load_events",
    "parse_folded",
    "slo_report",
    "snapshot_diff",
    "span_trees",
    "to_folded_text",
    "validate_chrome_trace",
    "validate_events",
    "validate_folded",
    "validate_openmetrics",
]
