"""The per-machine observability session and its null twin.

Every :class:`~repro.soc.machine.Machine` carries an ``obs`` attribute.
By default it is :data:`NULL_OBS` -- an object with the same surface
as :class:`Observability` whose every method is a no-op -- so the
instrumented code paths (driver, recorder, interpreter, environments)
never branch on "is obs on?" and never pay more than one attribute
lookup and a call when it is off.

``enable_observability(machine)`` swaps in a live session *before*
stack bring-up; components constructed afterwards subscribe to it.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Sequence

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import SpanHandle, SpanTracer, Track


class Observability:
    """One machine's telemetry: a span tracer plus a metrics registry."""

    enabled = True

    def __init__(self, clock):
        self.tracer = SpanTracer(clock)
        self.metrics = MetricsRegistry()
        self._driver_tracer = None

    # -- tracing shortcuts -----------------------------------------------------

    def track(self, process: str, thread: str = "main") -> Track:
        return self.tracer.track(process, thread)

    def span(self, name: str, track: Track, cat: str = "",
             args: Optional[dict] = None):
        return self.tracer.span(name, track, cat, args)

    def begin(self, name: str, track: Track, cat: str = "",
              args: Optional[dict] = None) -> SpanHandle:
        return self.tracer.begin(name, track, cat, args)

    def end(self, handle: SpanHandle,
            args: Optional[dict] = None) -> None:
        self.tracer.end(handle, args)

    def instant(self, name: str, track: Track,
                args: Optional[dict] = None) -> None:
        self.tracer.instant(name, track, args)

    def complete(self, name: str, track: Track, start_ns: int,
                 end_ns: int, args: Optional[dict] = None,
                 cat: str = "") -> None:
        self.tracer.complete(name, track, start_ns, end_ns, args, cat)

    # -- metrics shortcuts -----------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str,
                  boundaries: Optional[Sequence[float]] = None
                  ) -> Histogram:
        return self.metrics.histogram(name, boundaries)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return self.metrics.snapshot()

    # -- driver chokepoint subscription ----------------------------------------

    def driver_tracer(self):
        """The DriverTracer that feeds this session (lazily built).

        Imported lazily: :mod:`repro.obs.driver_hook` pulls in
        :mod:`repro.stack.driver.trace`, and the stack package imports
        :mod:`repro.soc.machine`, which imports this module.
        """
        if self._driver_tracer is None:
            from repro.obs.driver_hook import ObsDriverTracer
            self._driver_tracer = ObsDriverTracer(self)
        return self._driver_tracer

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        return self.tracer.to_chrome_trace()

    def export_timeline(self, path: str) -> dict:
        trace = self.to_chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(trace, handle, indent=1)
        return trace


class _NullSpan:
    """A reusable no-op span handle / context manager."""

    __slots__ = ()
    closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def end(self, args: Optional[dict] = None) -> None:
        pass


class _NullMetric:
    """Accepts every Counter/Gauge/Histogram mutation, records nothing."""

    __slots__ = ()
    value = 0
    count = 0
    sum = 0

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def mean(self) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()
_NULL_TRACK = Track(0, 0)


class NullObservability:
    """Same surface as :class:`Observability`; does nothing."""

    enabled = False

    def track(self, process: str, thread: str = "main") -> Track:
        return _NULL_TRACK

    def span(self, name, track, cat="", args=None):
        return _NULL_SPAN

    def begin(self, name, track, cat="", args=None):
        return _NULL_SPAN

    def end(self, handle, args=None) -> None:
        pass

    def instant(self, name, track, args=None) -> None:
        pass

    def complete(self, name, track, start_ns, end_ns, args=None,
                 cat="") -> None:
        pass

    def counter(self, name):
        return _NULL_METRIC

    def gauge(self, name):
        return _NULL_METRIC

    def histogram(self, name, boundaries=None):
        return _NULL_METRIC

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def driver_tracer(self):
        return None

    def to_chrome_trace(self) -> dict:
        return {"traceEvents": [], "displayTimeUnit": "ms"}


NULL_OBS = NullObservability()


def enable_observability(machine) -> Observability:
    """Attach a live obs session to ``machine`` (idempotent).

    Call *before* constructing drivers/runtimes so their chokepoint
    subscriptions land on the live session.
    """
    if isinstance(machine.obs, Observability):
        return machine.obs
    obs = Observability(machine.clock)
    machine.obs = obs
    return obs
