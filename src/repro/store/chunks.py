"""Content-defined chunking of dump payloads.

Dumps dominate recording size (Section 7.3), and a fleet's recordings
of the same model family overlap heavily: a cross-SKU patched variant
(Section 6.4) rewrites only PTE entries, leaving weights and shader
blobs untouched. Splitting on *content* rather than fixed offsets
makes those shared runs land in identical chunks even when the
surrounding bytes shift, so the vault stores them once.

The splitter is a gear rolling hash (Xia et al.'s FastCDC family): a
256-entry random table indexed by the incoming byte, folded into a
shift-and-add fingerprint. A boundary falls wherever the low
``CHUNK_AVG_BITS`` bits of the fingerprint are all ones -- on random
data that happens once every ``2**CHUNK_AVG_BITS`` bytes --
constrained to ``[CHUNK_MIN, CHUNK_MAX]``. Everything is seeded and
deterministic: the same payload always splits into the same chunks on
every machine, which is what lets two vendors' vaults agree on chunk
digests.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List

#: Chunk-size bounds. Dumps are page-granular (often one 4-KiB page),
#: so the window is small: boundaries every ~1 KiB on average keep
#: single-page dumps at 2-6 chunks -- fine-grained enough that a
#: patched PTE run dirties one chunk, not the whole page.
CHUNK_MIN = 256
CHUNK_AVG_BITS = 10
CHUNK_MAX = 4096

#: Version tag of the chunking scheme (table seed + parameters). Two
#: vaults can only share chunks when their schemes match, so the
#: manifest records it and the compatibility index filters on it.
CHUNK_SCHEME = f"gear-v1/{CHUNK_MIN}-{1 << CHUNK_AVG_BITS}-{CHUNK_MAX}"

_MASK64 = 0xFFFF_FFFF_FFFF_FFFF


def _gear_table(seed: int = 0x9E3779B9) -> List[int]:
    rng = random.Random(seed)
    return [rng.randrange(1 << 64) for _ in range(256)]


#: The shared gear table. Module-level so every splitter in the
#: process (and every process, given the fixed seed) agrees.
GEAR = _gear_table()


def iter_boundaries(data: bytes,
                    min_size: int = CHUNK_MIN,
                    avg_bits: int = CHUNK_AVG_BITS,
                    max_size: int = CHUNK_MAX) -> Iterator[int]:
    """Yield the end offset of each chunk in ``data``, in order.

    The final boundary is always ``len(data)``; empty input yields
    nothing.
    """
    if min_size <= 0 or max_size < min_size:
        raise ValueError(f"bad chunk bounds [{min_size}, {max_size}]")
    mask = (1 << avg_bits) - 1
    gear = GEAR
    n = len(data)
    start = 0
    fingerprint = 0
    index = 0
    while index < n:
        fingerprint = ((fingerprint << 1) + gear[data[index]]) & _MASK64
        index += 1
        length = index - start
        if (length >= min_size and (fingerprint & mask) == mask) \
                or length >= max_size:
            yield index
            start = index
            fingerprint = 0
    if start < n:
        yield n


def split(data: bytes,
          min_size: int = CHUNK_MIN,
          avg_bits: int = CHUNK_AVG_BITS,
          max_size: int = CHUNK_MAX) -> List[bytes]:
    """Split ``data`` into content-defined chunks.

    Invariant: ``b"".join(split(data)) == data`` for every input,
    including ``b""`` (which splits into no chunks) and inputs shorter
    than ``min_size`` (one chunk).
    """
    out: List[bytes] = []
    start = 0
    for end in iter_boundaries(data, min_size, avg_bits, max_size):
        out.append(data[start:end])
        start = end
    return out


def chunk_digest(piece: bytes) -> str:
    """Content address of one chunk (hex SHA-256 of its raw bytes)."""
    return hashlib.sha256(piece).hexdigest()
