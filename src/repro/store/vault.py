"""The content-addressed recording vault.

On-disk layout under one root directory::

    objects/<aa>/<sha256>.z   zlib-compressed blobs: dump chunks and
                              recording skeletons, named by the SHA-256
                              of their *uncompressed* bytes
    manifests/<digest>.json   one per packed recording: the skeleton
                              object, the per-dump chunk lists, and the
                              recording digest the reassembly must hash
                              back to
    index.json                the compatibility index (repro.store.index)

Integrity is a chain with the recording digest at the root: the
manifest names every chunk by content hash, ``fetch`` re-hashes each
chunk as it streams it in, and the reassembled recording must hash
back to the manifest's ``digest`` -- the same value
``Recording.digest()`` computes and the replay load cache keys on. A
mismatch anywhere raises :class:`StoreCorruptionError` carrying the
chunk and the dump location, so the damaged recording can be handed
straight to the replay doctor (:meth:`Vault.diagnose`).

Garbage collection is refcount-shaped: a chunk is live while any
manifest references it, and ``gc()`` deletes only objects no manifest
can reach. Removing a recording deletes its manifest (and index entry)
first, so a crash between ``remove`` and ``gc`` leaves garbage, never
a dangling manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.recording import (Recording, decode_skeleton,
                                  encode_skeleton)
from repro.errors import (StoreCorruptionError, StoreError,
                          StoreNotFoundError)
from repro.obs.session import NULL_OBS
from repro.store import chunks as cdc
from repro.store.index import (CompatEntry, CompatIndex, gpu_clock_hz)

#: zlib level for stored objects; fixed so two packs of the same
#: content produce byte-identical vaults.
OBJECT_ZLIB_LEVEL = 6

MANIFEST_SCHEMA = 1


@dataclass
class Manifest:
    """Everything needed to reassemble (and trust) one recording."""

    digest: str
    skeleton_digest: str
    skeleton_size: int
    #: Per dump: (va, size, [(chunk_digest, size), ...]).
    dumps: List[Tuple[int, int, List[Tuple[str, int]]]]
    workload: str = ""
    family: str = ""
    board: str = ""
    gpu_model: str = ""
    chunk_scheme: str = cdc.CHUNK_SCHEME
    schema: int = MANIFEST_SCHEMA

    def chunk_refs(self) -> List[str]:
        """Every chunk digest this recording references, with repeats."""
        return [digest for _va, _size, chunk_list in self.dumps
                for digest, _csize in chunk_list]

    def objects(self) -> List[str]:
        """Every object digest the recording needs (skeleton first)."""
        return [self.skeleton_digest] + self.chunk_refs()

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "digest": self.digest,
            "workload": self.workload,
            "family": self.family,
            "board": self.board,
            "gpu_model": self.gpu_model,
            "chunk_scheme": self.chunk_scheme,
            "skeleton": {"digest": self.skeleton_digest,
                         "size": self.skeleton_size},
            "dumps": [{"va": va, "size": size,
                       "chunks": [[digest, csize]
                                  for digest, csize in chunk_list]}
                      for va, size, chunk_list in self.dumps],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Manifest":
        if data.get("schema") != MANIFEST_SCHEMA:
            raise StoreError(
                f"unsupported manifest schema {data.get('schema')!r}")
        return cls(
            digest=data["digest"],
            skeleton_digest=data["skeleton"]["digest"],
            skeleton_size=data["skeleton"]["size"],
            dumps=[(d["va"], d["size"],
                    [(digest, csize) for digest, csize in d["chunks"]])
                   for d in data["dumps"]],
            workload=data.get("workload", ""),
            family=data.get("family", ""),
            board=data.get("board", ""),
            gpu_model=data.get("gpu_model", ""),
            chunk_scheme=data.get("chunk_scheme", cdc.CHUNK_SCHEME))


@dataclass
class VaultStats:
    """Aggregate accounting for one vault."""

    recordings: int = 0
    chunk_refs: int = 0
    unique_chunks: int = 0
    #: Dump + skeleton bytes as the recordings see them (uncompressed,
    #: with duplicates counted once per recording).
    logical_bytes: int = 0
    #: Compressed object files on disk.
    object_bytes: int = 0
    manifest_bytes: int = 0
    index_bytes: int = 0

    @property
    def disk_bytes(self) -> int:
        return self.object_bytes + self.manifest_bytes + self.index_bytes

    @property
    def shared_chunk_ratio(self) -> float:
        """Fraction of chunk references resolved by dedup."""
        if not self.chunk_refs:
            return 0.0
        return 1.0 - self.unique_chunks / self.chunk_refs


class Vault:
    """A content-addressed recording store rooted at one directory."""

    def __init__(self, root: str, obs=NULL_OBS):
        self.root = root
        self.obs = obs
        self._objects_dir = os.path.join(root, "objects")
        self._manifests_dir = os.path.join(root, "manifests")
        self._index_path = os.path.join(root, "index.json")
        os.makedirs(self._objects_dir, exist_ok=True)
        os.makedirs(self._manifests_dir, exist_ok=True)
        self.index = CompatIndex.load(self._index_path)
        #: What the most recent :meth:`fetch` moved -- chunk and byte
        #: counts plus the digest prefix. Read by the serving engine's
        #: request tracer; purely informational.
        self.last_fetch_info: Dict[str, object] = {}

    @classmethod
    def open(cls, root: str, obs=NULL_OBS) -> "Vault":
        """Open an existing vault; unlike the constructor, a missing
        directory is a usage error, not a fresh vault."""
        if not os.path.isdir(os.path.join(root, "manifests")):
            raise StoreNotFoundError(f"no vault at {root}")
        return cls(root, obs=obs)

    # -- object plumbing -----------------------------------------------------

    def _object_path(self, digest: str) -> str:
        return os.path.join(self._objects_dir, digest[:2],
                            digest + ".z")

    def _manifest_path(self, digest: str) -> str:
        return os.path.join(self._manifests_dir, digest + ".json")

    def _put_object(self, payload: bytes) -> Tuple[str, bool]:
        """Store ``payload`` content-addressed; returns (digest, new)."""
        digest = hashlib.sha256(payload).hexdigest()
        path = self._object_path(digest)
        if os.path.exists(path):
            return digest, False
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(zlib.compress(payload, OBJECT_ZLIB_LEVEL))
        os.replace(tmp, path)
        return digest, True

    def _get_object(self, digest: str, expect_size: int = -1,
                    context: Optional[dict] = None) -> bytes:
        """Read and integrity-check one object.

        ``context`` (recording digest / dump location) flows into the
        corruption error so the caller can hand off to the doctor.
        """
        ctx = context or {}
        path = self._object_path(digest)
        try:
            with open(path, "rb") as handle:
                compressed = handle.read()
        except FileNotFoundError:
            raise StoreNotFoundError(
                f"missing object {digest[:12]} "
                f"(expected at {path})")
        try:
            payload = zlib.decompress(compressed)
        except zlib.error as exc:
            raise StoreCorruptionError(
                f"object {digest[:12]} is not valid zlib: {exc}",
                chunk_digest=digest, **ctx)
        if hashlib.sha256(payload).hexdigest() != digest:
            raise StoreCorruptionError(
                "object content does not match its address",
                chunk_digest=digest, **ctx)
        if expect_size >= 0 and len(payload) != expect_size:
            raise StoreCorruptionError(
                f"object {digest[:12]} has {len(payload)} bytes, "
                f"manifest says {expect_size}",
                chunk_digest=digest, **ctx)
        return payload

    # -- pack ----------------------------------------------------------------

    def pack(self, recording: Recording) -> Manifest:
        """Add one recording; idempotent on content.

        Splits every dump with the content-defined chunker, stores the
        new chunks and the skeleton as compressed objects, writes the
        manifest, and registers the recording in the compatibility
        index. Returns the manifest (the existing one when the same
        content was already packed).
        """
        obs = self.obs
        digest = recording.digest()
        with obs.span("store:pack", obs.track("store", "vault"),
                      cat="store",
                      args={"digest": digest[:12],
                            "workload": recording.meta.workload}):
            existing = self.load_manifest(digest, missing_ok=True)
            if existing is not None:
                obs.counter("store.pack.duplicate_recordings").inc()
                return existing
            skeleton = encode_skeleton(recording)
            skeleton_digest, new = self._put_object(skeleton)
            new_chunks = 0 + (1 if new else 0)
            shared_chunks = 0 if new else 1
            stored_bytes = 0
            dumps: List[Tuple[int, int, List[Tuple[str, int]]]] = []
            for dump in recording.dumps:
                chunk_list: List[Tuple[str, int]] = []
                for piece in cdc.split(dump.data):
                    piece_digest, new = self._put_object(piece)
                    if new:
                        new_chunks += 1
                        stored_bytes += len(piece)
                    else:
                        shared_chunks += 1
                    chunk_list.append((piece_digest, len(piece)))
                dumps.append((dump.va, dump.size, chunk_list))
            manifest = Manifest(
                digest=digest,
                skeleton_digest=skeleton_digest,
                skeleton_size=len(skeleton),
                dumps=dumps,
                workload=recording.meta.workload,
                family=recording.meta.family,
                board=recording.meta.board,
                gpu_model=recording.meta.gpu_model)
            self._write_manifest(manifest)
            self.index.add(CompatEntry(
                digest=digest,
                family=recording.meta.family,
                board=recording.meta.board,
                gpu_model=recording.meta.gpu_model,
                clock_hz=gpu_clock_hz(recording.meta.gpu_model),
                workload=recording.meta.workload,
                body_bytes=len(skeleton) + recording.dump_bytes()))
            self.index.save(self._index_path)
            obs.counter("store.pack.recordings").inc()
            obs.counter("store.pack.chunks_new").inc(new_chunks)
            obs.counter("store.pack.chunks_shared").inc(shared_chunks)
            obs.counter("store.pack.bytes_logical").inc(
                recording.dump_bytes())
            obs.counter("store.pack.bytes_stored").inc(stored_bytes)
            return manifest

    def _write_manifest(self, manifest: Manifest) -> None:
        path = self._manifest_path(manifest.digest)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest.to_dict(), handle,
                      separators=(",", ":"), sort_keys=True)
        os.replace(tmp, path)

    # -- manifest access -----------------------------------------------------

    def load_manifest(self, digest: str,
                      missing_ok: bool = False) -> Optional[Manifest]:
        try:
            with open(self._manifest_path(digest),
                      encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            if missing_ok:
                return None
            raise StoreNotFoundError(
                f"no recording {digest[:12]} in vault {self.root}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorruptionError(
                f"manifest unreadable: {exc}", recording_digest=digest)
        manifest = Manifest.from_dict(data)
        if manifest.digest != digest:
            raise StoreCorruptionError(
                f"manifest claims digest {manifest.digest[:12]}",
                recording_digest=digest)
        return manifest

    def digests(self) -> List[str]:
        return sorted(
            name[:-len(".json")]
            for name in os.listdir(self._manifests_dir)
            if name.endswith(".json"))

    def __contains__(self, digest: str) -> bool:
        return os.path.exists(self._manifest_path(digest))

    def resolve(self, prefix: str) -> str:
        """Expand a digest prefix against the packed recordings."""
        matches = [d for d in self.digests() if d.startswith(prefix)]
        if not matches:
            raise StoreNotFoundError(
                f"no recording matching {prefix!r} in {self.root}")
        if len(matches) > 1:
            raise StoreError(
                f"ambiguous digest prefix {prefix!r}: "
                f"{', '.join(m[:12] for m in matches)}")
        return matches[0]

    # -- fetch ---------------------------------------------------------------

    def fetch(self, digest: str, verify: bool = True) -> Recording:
        """Reassemble one recording, verifying the integrity chain.

        Every chunk is re-hashed on the way in and the reassembled
        recording must hash back to the manifest digest; with
        ``verify=False`` only structural checks run (sizes must still
        line up for decoding to succeed).
        """
        obs = self.obs
        with obs.span("store:fetch", obs.track("store", "vault"),
                      cat="store", args={"digest": digest[:12]}):
            manifest, recording = self._fetch_checked(digest, verify)
            chunks = len(manifest.chunk_refs())
            nbytes = sum(size for _va, size, _c in manifest.dumps)
            obs.counter("store.fetch.recordings").inc()
            obs.counter("store.fetch.chunks").inc(chunks)
            obs.counter("store.fetch.bytes").inc(nbytes)
            self.last_fetch_info = {
                "digest": digest[:12], "chunks": chunks,
                "bytes": nbytes}
            return recording

    def _fetch_checked(self, digest: str,
                       verify: bool) -> Tuple[Manifest, Recording]:
        """Reassembly + integrity check, no demand-fetch accounting
        (``verify()`` scrubs through here without looking like
        traffic)."""
        manifest = self.load_manifest(digest)
        recording = self._reassemble(manifest, verify=verify)
        if verify and recording.digest() != manifest.digest:
            raise StoreCorruptionError(
                "reassembled recording does not hash back to the "
                "manifest digest", recording_digest=digest)
        return manifest, recording

    def fetch_interface(self, digest: str) -> Recording:
        """The recording's skeleton with zero-filled dumps.

        Enough for interface questions -- metadata, input/output
        buffers, action stream -- and it stays answerable while the
        recording's chunks are damaged, which is what lets a serve
        fleet degrade to the CPU reference on store corruption instead
        of losing the request.
        """
        manifest = self.load_manifest(digest)
        skeleton = self._get_object(
            manifest.skeleton_digest, manifest.skeleton_size,
            context={"recording_digest": digest})
        payloads = [b"\x00" * size for _va, size, _c in manifest.dumps]
        return decode_skeleton(skeleton, payloads)

    def _reassemble(self, manifest: Manifest,
                    verify: bool) -> Recording:
        """Rebuild a Recording, handing dump payloads out as read-only
        ``memoryview``s instead of reassembled ``bytes``.

        A single-chunk dump (the common case under content-defined
        chunking) is a zero-copy view straight into the fetched chunk
        buffer; multi-chunk dumps are assembled once into a buffer and
        viewed. Downstream -- ``MemoryDump`` digesting, the compiled
        upload plan, nano-driver residency hashing and per-page writes
        -- operates on the views without materializing ``bytes``, so
        the chunk buffer is the *only* copy of the payload in memory.
        Views are read-only: the vault owns the underlying buffers and
        nothing downstream may mutate them.
        """
        skeleton = self._get_object(
            manifest.skeleton_digest, manifest.skeleton_size,
            context={"recording_digest": manifest.digest})
        payloads: List[memoryview] = []
        for dump_index, (va, size, chunk_list) in \
                enumerate(manifest.dumps):
            parts: List[bytes] = []
            offset = 0
            for chunk_digest, chunk_size in chunk_list:
                context = {"recording_digest": manifest.digest,
                           "dump_index": dump_index, "dump_va": va,
                           "dump_offset": offset}
                if verify:
                    parts.append(self._get_object(
                        chunk_digest, chunk_size, context=context))
                else:
                    parts.append(self._read_object_best_effort(
                        chunk_digest, chunk_size))
                offset += chunk_size
            if len(parts) == 1:
                payload = memoryview(parts[0])
            else:
                buf = bytearray(sum(len(p) for p in parts))
                cursor = 0
                for p in parts:
                    buf[cursor:cursor + len(p)] = p
                    cursor += len(p)
                payload = memoryview(buf).toreadonly()
            if len(payload) != size:
                raise StoreCorruptionError(
                    f"dump reassembled to {len(payload)} bytes, "
                    f"manifest says {size}",
                    recording_digest=manifest.digest,
                    dump_index=dump_index, dump_va=va)
            payloads.append(payload)
        return decode_skeleton(skeleton, payloads)

    def _read_object_best_effort(self, digest: str,
                                 size: int) -> bytes:
        """The object's bytes, corrupt or not, padded/clipped to
        ``size`` -- the forensics path: the doctor wants to replay the
        damage, not be stopped by it."""
        try:
            with open(self._object_path(digest), "rb") as handle:
                compressed = handle.read()
        except FileNotFoundError:
            return b"\x00" * size
        try:
            payload = zlib.decompress(compressed)
        except zlib.error:
            payload = compressed
        return payload[:size].ljust(size, b"\x00")

    # -- replication ---------------------------------------------------------

    def replicate_from(self, peer: "Vault", digest: str) -> Manifest:
        """Copy one recording's manifest + objects from ``peer``.

        Every object streams through the same integrity check a local
        fetch applies (decompress, re-hash against its address, size
        against the manifest), so a corrupt peer chunk raises
        :class:`StoreCorruptionError` *mid-fetch* -- before anything
        damaged lands locally -- carrying the chunk and dump location
        for the doctor handoff. Objects already present locally are
        skipped (content addressing makes the copy idempotent and
        dedup-aware). Returns the replicated manifest.
        """
        obs = self.obs
        manifest = peer.load_manifest(digest)
        with obs.span("store:replicate", obs.track("store", "vault"),
                      cat="store", args={"digest": digest[:12],
                                         "peer": peer.root}):
            sizes = {manifest.skeleton_digest: manifest.skeleton_size}
            contexts: Dict[str, dict] = {
                manifest.skeleton_digest:
                    {"recording_digest": digest}}
            for dump_index, (va, _size, chunk_list) in \
                    enumerate(manifest.dumps):
                offset = 0
                for chunk_digest, chunk_size in chunk_list:
                    sizes.setdefault(chunk_digest, chunk_size)
                    contexts.setdefault(chunk_digest, {
                        "recording_digest": digest,
                        "dump_index": dump_index, "dump_va": va,
                        "dump_offset": offset})
                    offset += chunk_size
            copied = 0
            copied_bytes = 0
            healed = 0
            for obj in manifest.objects():
                local = self._object_path(obj)
                if os.path.exists(local):
                    try:
                        self._get_object(obj, sizes[obj],
                                         context=contexts[obj])
                        continue
                    except StoreError:
                        # Local copy is damaged: replace it from the
                        # peer (replication doubles as repair).
                        os.remove(local)
                        healed += 1
                payload = peer._get_object(obj, sizes[obj],
                                           context=contexts[obj])
                self._put_object(payload)
                copied += 1
                copied_bytes += len(payload)
            self._write_manifest(manifest)
            entry = peer.index.entries.get(digest)
            if entry is not None:
                # Copy: CompatIndex.add assigns a local seq, and the
                # peer's entry object must not be mutated.
                self.index.add(CompatEntry.from_dict(entry.to_dict()))
                self.index.save(self._index_path)
            obs.counter("store.replicate.recordings").inc()
            obs.counter("store.replicate.objects").inc(copied)
            obs.counter("store.replicate.bytes").inc(copied_bytes)
            if healed:
                obs.counter("store.replicate.healed").inc(healed)
            return manifest

    # -- verify --------------------------------------------------------------

    def verify(self, digest: Optional[str] = None
               ) -> List[StoreCorruptionError]:
        """Scrub the integrity chain; returns every corruption found.

        With ``digest`` it checks that one recording; otherwise every
        manifest in the vault. Each returned error names the damaged
        chunk and where it lands (dump index / VA / offset), ready for
        :meth:`diagnose`.
        """
        obs = self.obs
        targets = [digest] if digest else self.digests()
        problems: List[StoreCorruptionError] = []
        with obs.span("store:verify", obs.track("store", "vault"),
                      cat="store", args={"recordings": len(targets)}):
            for target in targets:
                try:
                    self._fetch_checked(target, verify=True)
                except StoreCorruptionError as error:
                    problems.append(error)
                obs.counter("store.verify.recordings").inc()
            if problems:
                obs.counter("store.verify.corrupt").inc(len(problems))
        return problems

    def diagnose(self, digest: str, board: Optional[str] = None,
                 seed: int = 2026):
        """Hand a damaged recording to the replay doctor.

        Reassembles the recording *without* integrity enforcement --
        corrupt chunk bytes included -- and runs
        :func:`repro.obs.doctor.run_doctor` on it, localizing the
        first diverging chokepoint the damage causes. Returns the
        DivergenceReport (None when the replay is somehow healthy,
        e.g. the corruption sits in a dump no job reads).
        """
        from repro.obs.doctor import run_doctor

        manifest = self.load_manifest(digest)
        recording = self._reassemble(manifest, verify=False)
        return run_doctor(recording, board or manifest.board, seed=seed)

    # -- gc / remove ---------------------------------------------------------

    def remove(self, digest: str) -> bool:
        """Drop a recording: manifest + index entry. Chunks stay until
        ``gc()`` -- they may be shared, and an unreferenced chunk is
        harmless garbage, while a missing referenced chunk is a broken
        recording."""
        path = self._manifest_path(digest)
        if not os.path.exists(path):
            return False
        os.remove(path)
        if self.index.remove(digest):
            self.index.save(self._index_path)
        return True

    def chunk_refcounts(self) -> Dict[str, int]:
        """object digest -> number of manifests referencing it."""
        counts: Dict[str, int] = {}
        for digest in self.digests():
            manifest = self.load_manifest(digest)
            for obj in set(manifest.objects()):
                counts[obj] = counts.get(obj, 0) + 1
        return counts

    def _object_files(self) -> Iterable[Tuple[str, str]]:
        for shard in sorted(os.listdir(self._objects_dir)):
            shard_dir = os.path.join(self._objects_dir, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".z"):
                    yield name[:-2], os.path.join(shard_dir, name)

    def gc(self) -> Tuple[int, int]:
        """Delete objects no manifest references.

        Returns ``(objects_removed, bytes_freed)``. Safe by
        construction against in-flight fetches of *live* recordings:
        liveness is "referenced by any manifest", and fetch
        materializes a whole Recording in memory before anyone replays
        it -- see DESIGN.md.
        """
        obs = self.obs
        live = self.chunk_refcounts()
        removed = 0
        freed = 0
        with obs.span("store:gc", obs.track("store", "vault"),
                      cat="store"):
            for digest, path in list(self._object_files()):
                if digest in live:
                    continue
                freed += os.path.getsize(path)
                os.remove(path)
                removed += 1
            obs.counter("store.gc.removed").inc(removed)
            obs.counter("store.gc.freed_bytes").inc(freed)
        return removed, freed

    # -- accounting ----------------------------------------------------------

    def stats(self) -> VaultStats:
        stats = VaultStats()
        unique: set = set()
        for digest in self.digests():
            manifest = self.load_manifest(digest)
            stats.recordings += 1
            refs = manifest.chunk_refs()
            stats.chunk_refs += len(refs)
            unique.update(refs)
            stats.logical_bytes += manifest.skeleton_size + sum(
                size for _va, size, _c in manifest.dumps)
            stats.manifest_bytes += os.path.getsize(
                self._manifest_path(digest))
        stats.unique_chunks = len(unique)
        stats.object_bytes = sum(os.path.getsize(path)
                                 for _d, path in self._object_files())
        if os.path.exists(self._index_path):
            stats.index_bytes = os.path.getsize(self._index_path)
        return stats

    def recording_stats(self, digest: str) -> Dict[str, object]:
        """Per-recording chunk accounting for ``grr inspect --store``:
        chunk count, how much of it dedups against the rest of the
        vault, and which recordings it shares chunks with."""
        manifest = self.load_manifest(digest)
        own = manifest.chunk_refs()
        own_set = set(own)
        shared_with: Dict[str, int] = {}
        others: set = set()
        for other in self.digests():
            if other == digest:
                continue
            other_chunks = set(self.load_manifest(other).chunk_refs())
            overlap = len(own_set & other_chunks)
            if overlap:
                shared_with[other] = overlap
            others.update(other_chunks)
        shared_refs = sum(1 for c in own if c in others)
        return {
            "digest": digest,
            "workload": manifest.workload,
            "chunks": len(own),
            "unique_chunks": len(own_set),
            "shared_chunks": shared_refs,
            "dedup_ratio": shared_refs / len(own) if own else 0.0,
            "shared_with": dict(sorted(shared_with.items())),
            "dump_bytes": sum(size for _va, size, _c in manifest.dumps),
        }

    def job_sharing_stats(self) -> Dict[str, object]:
        """Job-level dedup accounting across the vault's
        micro-recordings (``repro.surgery`` slices, whose workloads
        carry a ``#job`` marker, and ``synthetic/`` compositions).

        Slicing multiplies recordings that share content wholesale --
        sibling-SKU slices differ only in actions/metadata, and a
        composed session re-uses its slices' tensor dumps -- so the
        interesting number is how many of each micro-recording's dump
        chunk refs resolve to chunks some *other* recording already
        put in the vault. ``grr store pack`` prints this breakdown and
        the surgery bench pins the sibling-SKU ratio.
        """
        per: List[Dict[str, object]] = []
        for digest in self.digests():
            manifest = self.load_manifest(digest)
            if ("#job" not in manifest.workload
                    and not manifest.workload.startswith("synthetic/")):
                continue
            stats = self.recording_stats(digest)
            per.append(stats)
        chunk_refs = sum(int(p["chunks"]) for p in per)
        shared_refs = sum(int(p["shared_chunks"]) for p in per)
        return {
            "micro_recordings": len(per),
            "chunk_refs": chunk_refs,
            "shared_chunk_refs": shared_refs,
            "dump_chunk_dedup": shared_refs / chunk_refs
            if chunk_refs else 0.0,
            "per_recording": sorted(
                per, key=lambda p: str(p["workload"])),
        }

    # -- queries -------------------------------------------------------------

    def best_for(self, family: str, board: Optional[str] = None,
                 workload: Optional[str] = None) -> Optional[str]:
        """Digest of the best recording for a board (via the index)."""
        entry = self.index.best_for(family, board=board,
                                    workload=workload)
        return entry.digest if entry else None
