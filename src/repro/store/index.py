"""The compatibility index: which recording fits which board.

Recordings are board- and clockrate-specific (Section 4): a serve
fleet holding a vault needs to answer "best recording for this board"
without decoding manifests one by one. The index is a small JSON
document the vault keeps next to its objects, one entry per packed
recording, keyed on everything replay compatibility depends on:

- GPU ``family`` (mali / v3d / adreno) -- hard requirement;
- ``board`` and GPU ``clock_hz`` -- exact match preferred, same-SKU
  fallback allowed (the paper's cross-board replay, Section 6.4);
- ``schema`` (the recording file format version) and ``chunk_scheme``
  (the CDC parameters) -- hard requirements: a reader that does not
  speak the schema cannot replay, a vault that chunks differently
  cannot share objects.

Queries are deterministic: candidates are scored, ties broken by pack
order then digest, so every fleet node resolves the same digest for
the same board.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.core.recording import VERSION as RECORDING_SCHEMA
from repro.errors import StoreError
from repro.store.chunks import CHUNK_SCHEME


def gpu_clock_hz(gpu_model: str) -> int:
    """The nominal GPU clock for a recorded GPU model string.

    Resolved from the simulator's own device constants so the index
    and the machines it routes to can never disagree.
    """
    if gpu_model.startswith("mali-"):
        from repro.gpu.mali import MALI_SKUS
        sku = MALI_SKUS.get(gpu_model[len("mali-"):])
        return sku.clock_hz if sku else 0
    if gpu_model == "v3d":
        from repro.gpu.v3d import V3D_DEFAULT_CLOCK_HZ
        return V3D_DEFAULT_CLOCK_HZ
    if gpu_model.startswith("adreno"):
        from repro.gpu.adreno import ADRENO_CLOCK_HZ
        return ADRENO_CLOCK_HZ
    return 0


@dataclass
class CompatEntry:
    """One packed recording's compatibility coordinates."""

    digest: str
    family: str
    board: str
    gpu_model: str
    clock_hz: int
    workload: str
    schema: int = RECORDING_SCHEMA
    chunk_scheme: str = CHUNK_SCHEME
    #: Monotone pack order, the deterministic tie-breaker.
    seq: int = 0
    #: Raw (uncompressed body) size, for capacity planning.
    body_bytes: int = 0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompatEntry":
        return cls(**data)


@dataclass
class CompatIndex:
    """The queryable registry of every recording in a vault."""

    entries: Dict[str, CompatEntry] = field(default_factory=dict)
    next_seq: int = 0

    # -- mutation ------------------------------------------------------------

    def add(self, entry: CompatEntry) -> CompatEntry:
        """Register ``entry`` (idempotent on digest; keeps first seq)."""
        existing = self.entries.get(entry.digest)
        if existing is not None:
            return existing
        entry.seq = self.next_seq
        self.next_seq += 1
        self.entries[entry.digest] = entry
        return entry

    def remove(self, digest: str) -> bool:
        return self.entries.pop(digest, None) is not None

    # -- queries -------------------------------------------------------------

    def resolve(self, prefix: str) -> str:
        """Expand a digest prefix to the unique full digest."""
        matches = sorted(d for d in self.entries
                         if d.startswith(prefix))
        if not matches:
            raise StoreError(f"no recording matching {prefix!r}")
        if len(matches) > 1:
            raise StoreError(
                f"ambiguous digest prefix {prefix!r}: "
                f"{', '.join(m[:12] for m in matches)}")
        return matches[0]

    def best_for(self, family: str, board: Optional[str] = None,
                 workload: Optional[str] = None,
                 schema: int = RECORDING_SCHEMA,
                 chunk_scheme: str = CHUNK_SCHEME
                 ) -> Optional[CompatEntry]:
        """The best-matching recording for a board, or None.

        Hard filters: family, schema, chunk scheme, and workload when
        given. Preference order among survivors: exact board match
        (which implies the exact clock rate), then same GPU model
        (same SKU and clock on a different board), then anything in
        the family -- the recording a cross-SKU patch could start
        from. Ties go to the earliest packed entry.
        """
        candidates = [e for e in self.entries.values()
                      if e.family == family
                      and e.schema == schema
                      and e.chunk_scheme == chunk_scheme
                      and (workload is None or e.workload == workload)]
        if board:
            clock = max((e.clock_hz for e in candidates
                         if e.board == board), default=None)

            def score(e: CompatEntry):
                exact_board = e.board == board
                same_clock = clock is not None and e.clock_hz == clock
                return (not exact_board, not same_clock, e.seq, e.digest)
        else:
            def score(e: CompatEntry):
                return (e.seq, e.digest)
        return min(candidates, key=score) if candidates else None

    def list(self, family: Optional[str] = None) -> List[CompatEntry]:
        entries = [e for e in self.entries.values()
                   if family is None or e.family == family]
        return sorted(entries, key=lambda e: (e.seq, e.digest))

    # -- persistence ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": 1,
            "next_seq": self.next_seq,
            "entries": [e.to_dict() for e in
                        sorted(self.entries.values(),
                               key=lambda e: (e.seq, e.digest))],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CompatIndex":
        if data.get("schema") != 1:
            raise StoreError(
                f"unsupported index schema {data.get('schema')!r}")
        index = cls(next_seq=int(data.get("next_seq", 0)))
        for raw in data.get("entries", []):
            entry = CompatEntry.from_dict(raw)
            index.entries[entry.digest] = entry
        return index

    def save(self, path: str) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "CompatIndex":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return cls()
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreError(f"corrupt index at {path}: {exc}")
        return cls.from_dict(data)
