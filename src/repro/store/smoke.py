"""CI smoke run for the recording vault, end to end::

    python -m repro.store.smoke [artifact-dir]

1. record zoo workloads for two families (mali: mnist + kws, v3d:
   mnist) plus a g71 cross-SKU patch, and ``grr store pack`` them
   into a fresh vault;
2. assert the patched variant actually dedups against its base and
   ``grr store verify`` passes on the pristine vault;
3. corrupt one chunk on disk -- the one holding the first job's
   descriptor chain -- and assert ``grr store verify`` exits 1
   naming that exact chunk, and that the doctor handoff
   (``vault.diagnose``) localizes the divergence to an action;
4. restore the chunk, re-verify clean;
5. serve 50 requests out of the vault (``VaultRecordingStore`` with
   worker prefetch) and check every answer against the CPU reference.

``--forensics DIR`` instead dumps a vault forensics bundle (the
corrupt-chunk verify report, the doctor's DivergenceReport, vault
stats) into DIR -- what CI uploads when the store-smoke job fails.

Exit code 0 on success; any failure prints the reason and exits 1.
"""

from __future__ import annotations

import json
import os
import shutil
import sys

#: The two-family zoo corpus the smoke packs and serves.
SMOKE_MIX = (("mali", "mnist"), ("mali", "kws"), ("v3d", "mnist"))


def _write_corpus(outdir: str):
    """Record the corpus; returns (paths, recordings, g71 path)."""
    from repro.bench.workloads import get_recorded
    from repro.core.patching import patch_recording_for_sku

    paths, recordings = [], []
    for family, model in SMOKE_MIX:
        workload, _stack = get_recorded(family, model)
        path = os.path.join(outdir, f"{family}-{model}.grr")
        workload.recording.save(path)
        paths.append(path)
        recordings.append(workload.recording)
    base_wl, _stack = get_recorded("mali", "mnist", True,
                                   "monolithic", "odroid-c4")
    patched, _report = patch_recording_for_sku(base_wl.recording, "g71")
    base_path = os.path.join(outdir, "mali-mnist-g31.grr")
    patched_path = os.path.join(outdir, "mali-mnist-g71.grr")
    base_wl.recording.save(base_path)
    patched.save(patched_path)
    paths += [base_path, patched_path]
    recordings += [base_wl.recording, patched]
    return paths, recordings


def _descriptor_chunk(vault, recording) -> str:
    """The chunk object holding the first job's descriptor chain."""
    from repro.obs.doctor import first_kick_chain_va

    manifest = vault.load_manifest(recording.digest())
    chain_va = first_kick_chain_va(recording)
    for va, size, chunk_list in manifest.dumps:
        if va <= chain_va < va + size:
            offset = chain_va - va
            acc = 0
            for digest, csize in chunk_list:
                if acc <= offset < acc + csize:
                    return digest
                acc += csize
    raise AssertionError("no chunk covers the first job chain")


def _flip_byte(path: str) -> None:
    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0xFF
    open(path, "wb").write(bytes(raw))


def forensics_bundle(outdir: str) -> int:
    """A vault forensics bundle: pack, corrupt a descriptor chunk,
    capture the verify report + doctor localization + vault stats."""
    from repro.store import Vault

    os.makedirs(outdir, exist_ok=True)
    _paths, recordings = _write_corpus(outdir)
    vault = Vault(os.path.join(outdir, "vault"))
    for recording in recordings:
        vault.pack(recording)
    victim = recordings[0]
    chunk = _descriptor_chunk(vault, victim)
    _flip_byte(vault._object_path(chunk))
    problems = vault.verify()
    with open(os.path.join(outdir, "verify-report.json"), "w") as f:
        json.dump([{"recording": p.recording_digest,
                    "chunk": p.chunk_digest, "dump": p.dump_index,
                    "va": p.dump_va, "offset": p.dump_offset,
                    "error": str(p)} for p in problems], f, indent=1)
    report = vault.diagnose(victim.digest())
    if report is not None:
        report.save(os.path.join(outdir, "doctor-report.json"))
    stats = vault.stats()
    with open(os.path.join(outdir, "vault-stats.json"), "w") as f:
        json.dump({"recordings": stats.recordings,
                   "chunk_refs": stats.chunk_refs,
                   "unique_chunks": stats.unique_chunks,
                   "disk_bytes": stats.disk_bytes,
                   "logical_bytes": stats.logical_bytes}, f, indent=1)
    print(f"forensics bundle in {outdir}/: verify-report.json, "
          f"doctor-report.json, vault-stats.json")
    return 0


def main(argv=None) -> int:
    from repro.serve import (LoadgenConfig, ReplayServer, ServerConfig,
                             VaultRecordingStore, generate_requests,
                             verify_report)
    from repro.store import Vault
    from repro.tools import grr

    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "--forensics":
        return forensics_bundle(argv[1] if len(argv) > 1
                                else "forensics-artifacts")
    outdir = argv[0] if argv else "store-smoke-artifacts"
    os.makedirs(outdir, exist_ok=True)
    vault_dir = os.path.join(outdir, "vault")

    print("[1/5] recording two families + a g71 patch; packing ...")
    paths, recordings = _write_corpus(outdir)
    code = grr.main(["store", "pack", vault_dir] + paths)
    if code != 0:
        print(f"FAIL: grr store pack exited {code}")
        return 1

    print("[2/5] dedup + pristine verify ...")
    vault = Vault(vault_dir)
    patched_stats = vault.recording_stats(recordings[-1].digest())
    if not patched_stats["shared_chunks"]:
        print(f"FAIL: g71 patch shares no chunks with its base: "
              f"{patched_stats}")
        return 1
    code = grr.main(["store", "verify", vault_dir])
    if code != 0:
        print(f"FAIL: pristine vault failed verify (exit {code})")
        return 1

    print("[3/5] corrupting a descriptor chunk on disk ...")
    victim = recordings[0]
    chunk = _descriptor_chunk(vault, victim)
    chunk_path = vault._object_path(chunk)
    shutil.copy(chunk_path, chunk_path + ".pristine")
    _flip_byte(chunk_path)
    code = grr.main(["store", "verify", vault_dir])
    if code != 1:
        print(f"FAIL: verify of corrupt vault exited {code}, want 1")
        return 1
    problems = vault.verify(victim.digest())
    if not problems or problems[0].chunk_digest != chunk:
        print(f"FAIL: verify did not name the damaged chunk "
              f"{chunk[:12]}: {problems}")
        return 1
    report = vault.diagnose(victim.digest())
    if report is None or report.action_index < 0:
        print("FAIL: doctor did not localize the corrupt-chunk damage")
        return 1
    report.save(os.path.join(outdir, "doctor-report.json"))
    print(f"      verify flagged chunk {chunk[:12]}, doctor localized "
          f"action #{report.action_index}")

    print("[4/5] restoring the chunk; re-verify ...")
    shutil.move(chunk_path + ".pristine", chunk_path)
    code = grr.main(["store", "verify", vault_dir])
    if code != 0:
        print(f"FAIL: restored vault failed verify (exit {code})")
        return 1

    print("[5/5] serving 50 requests out of the vault ...")
    store = VaultRecordingStore(vault, list(SMOKE_MIX))
    server = ReplayServer(store, ServerConfig(
        families=("mali", "mali", "v3d"), seed=2026, prefetch=True))
    stream = generate_requests(LoadgenConfig(
        mix=list(SMOKE_MIX), requests=50, seed=2026))
    serve_report = server.serve(stream)
    server.close()
    counts = serve_report.counts()
    if serve_report.lost or counts["shed"] or counts["degraded"]:
        print(f"FAIL: vault serve was not clean: {counts}, "
              f"lost={serve_report.lost}")
        return 1
    mismatches = verify_report(serve_report, store)
    if mismatches:
        print(f"FAIL: {len(mismatches)} served outputs disagree with "
              f"the CPU reference: {mismatches[:5]}")
        return 1
    with open(os.path.join(outdir, "serve-summary.json"), "w") as f:
        json.dump(serve_report.summary(), f, indent=1, sort_keys=True)

    print(f"SMOKE OK ({counts['ok']} requests served from the vault, "
          f"doctor localized action #{report.action_index}, artifacts "
          f"in {outdir}/)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
