"""``repro.store`` -- the content-addressed recording vault.

The deployment story of the paper (record once at the vendor, ship
recordings to client devices) needs recordings to be real *artifacts*:
packed, deduplicated, integrity-checked and queryable by the board
they were recorded for. This package provides that registry layer:

- :mod:`repro.store.chunks`: deterministic content-defined chunking of
  dump payloads (gear rolling hash), so recordings of the same model
  family share storage;
- :mod:`repro.store.vault`: the on-disk object store -- zlib chunk
  objects, per-recording JSON manifests forming an integrity chain,
  verification, refcounted garbage collection, and a fetch path that
  reconstructs byte-identical recordings;
- :mod:`repro.store.index`: the compatibility index keyed on
  (family, board, clock rate, schema versions) that lets a serve
  fleet ask "best recording for this board".
"""

from repro.store.chunks import (CHUNK_AVG_BITS, CHUNK_MAX, CHUNK_MIN,
                                CHUNK_SCHEME, chunk_digest, split)
from repro.store.index import CompatEntry, CompatIndex, gpu_clock_hz
from repro.store.vault import Manifest, Vault, VaultStats

__all__ = [
    "CHUNK_AVG_BITS",
    "CHUNK_MAX",
    "CHUNK_MIN",
    "CHUNK_SCHEME",
    "CompatEntry",
    "CompatIndex",
    "Manifest",
    "Vault",
    "VaultStats",
    "chunk_digest",
    "gpu_clock_hz",
    "split",
]
