"""GPUReplay reproduction: a record-and-replay GPU stack for client ML.

This package reproduces the system described in "GPUReplay: A 50-KB GPU
Stack for Client ML" (Park & Lin, ASPLOS 2022) on top of a simulated SoC.

Layering (bottom-up):

- :mod:`repro.soc` -- the SoC substrate: virtual clock, physical memory,
  MMIO, interrupts, power/clock domains, firmware, boards.
- :mod:`repro.gpu` -- register-level GPU device models (Mali-like and
  v3d-like), GPU MMU and page tables, a shader bytecode ISA executed with
  numpy, and job-binary formats.
- :mod:`repro.stack` -- the *original* full GPU software stack that
  GPUReplay replaces: drivers, JIT runtimes and ML frameworks.
- :mod:`repro.core` -- GPUReplay itself: the recorder, recordings, the
  verifier and the replayer.
- :mod:`repro.environments` -- deployment environments for the replayer
  (userspace, kernel, TEE, baremetal) and GPU handoff scheduling.
- :mod:`repro.analysis` -- security/codebase analysis used by the
  evaluation.
- :mod:`repro.bench` -- the experiment harness regenerating every table
  and figure of the paper's evaluation.
"""

from repro.errors import (
    GpuFault,
    RecordingError,
    ReplayDivergence,
    ReplayError,
    ReplayTimeout,
    ReproError,
    VerificationError,
)

__version__ = "1.0.0"

__all__ = [
    "GpuFault",
    "RecordingError",
    "ReplayDivergence",
    "ReplayError",
    "ReplayTimeout",
    "ReproError",
    "VerificationError",
    "__version__",
]
