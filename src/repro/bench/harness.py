"""Experiment plumbing: result tables and a recording cache.

Recordings are expensive to produce (a full stack bring-up plus a
taint-instrumented run), and many experiments share them; the cache
keys them by (board, model, fuse, granularity) so the whole benchmark
suite records each workload once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class ResultTable:
    """One regenerated table/figure: rows of named values."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"{self.title}: row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Dict[str, object]:
        for row in self.rows:
            if row[key_column] == key:
                return row
        raise KeyError(f"{self.title}: no row with {key_column}={key!r}")

    def render(self) -> str:
        """Plain-text rendering (what the bench harness prints)."""
        widths = {c: len(c) for c in self.columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {}
            for c in self.columns:
                value = row[c]
                if isinstance(value, float):
                    text = f"{value:.3f}"
                else:
                    text = str(value)
                rendered[c] = text
                widths[c] = max(widths[c], len(text))
            rendered_rows.append(rendered)
        lines = [self.title,
                 "  ".join(c.ljust(widths[c]) for c in self.columns),
                 "  ".join("-" * widths[c] for c in self.columns)]
        for rendered in rendered_rows:
            lines.append("  ".join(rendered[c].ljust(widths[c])
                                   for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


#: (board, model, fuse, granularity) -> (RecordedWorkload, stack info)
_RECORDING_CACHE: Dict[tuple, object] = {}


def cached(key: tuple, produce: Callable[[], object]) -> object:
    value = _RECORDING_CACHE.get(key)
    if value is None:
        value = produce()
        _RECORDING_CACHE[key] = value
    return value


def clear_recording_cache() -> None:
    _RECORDING_CACHE.clear()


def geomean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
