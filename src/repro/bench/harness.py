"""Experiment plumbing: result tables and a recording cache.

Recordings are expensive to produce (a full stack bring-up plus a
taint-instrumented run), and many experiments share them; the cache
keys them by (board, model, fuse, granularity) so the whole benchmark
suite records each workload once.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.cache import LruCache
from repro.obs.metrics import global_registry


@dataclass
class ResultTable:
    """One regenerated table/figure: rows of named values."""

    title: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"{self.title}: row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]

    def row_for(self, key_column: str, key: object) -> Dict[str, object]:
        for row in self.rows:
            if row[key_column] == key:
                return row
        raise KeyError(f"{self.title}: no row with {key_column}={key!r}")

    def render(self) -> str:
        """Plain-text rendering (what the bench harness prints)."""
        widths = {c: len(c) for c in self.columns}
        rendered_rows = []
        for row in self.rows:
            rendered = {}
            for c in self.columns:
                value = row[c]
                if isinstance(value, float):
                    text = f"{value:.3f}"
                else:
                    text = str(value)
                rendered[c] = text
                widths[c] = max(widths[c], len(text))
            rendered_rows.append(rendered)
        lines = [self.title,
                 "  ".join(c.ljust(widths[c]) for c in self.columns),
                 "  ".join("-" * widths[c] for c in self.columns)]
        for rendered in rendered_rows:
            lines.append("  ".join(rendered[c].ljust(widths[c])
                                   for c in self.columns))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    # -- serialization (bench JSON output / CI artifacts) ------------------

    def to_dict(self) -> Dict[str, object]:
        def coerce(value: object) -> object:
            # numpy scalars sneak into rows from result arrays; strip
            # them so json.dumps and round-trip equality both work.
            if hasattr(value, "item") and not isinstance(
                    value, (str, bytes)):
                return value.item()
            return value

        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [{c: coerce(v) for c, v in row.items()}
                     for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ResultTable":
        table = cls(title=payload["title"],
                    columns=list(payload["columns"]),
                    notes=list(payload.get("notes", [])))
        for row in payload.get("rows", []):
            table.add_row(**row)
        return table

    def to_json(self, **dump_kwargs: object) -> str:
        return json.dumps(self.to_dict(), **dump_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        return cls.from_dict(json.loads(text))


#: Default bound on the recording cache: comfortably above the bench
#: suite's distinct workload count, finite under a long-lived serve
#: loop that cycles through arbitrarily many recordings.
RECORDING_CACHE_CAPACITY = 32


class RecordingCache:
    """Bounded, thread-safe store of recorded workloads (LRU).

    A thin veneer over :class:`repro.core.cache.LruCache` keeping the
    historical bench API. Hits, misses and evictions are mirrored into
    the global metrics registry (``bench.recording_cache.hits`` /
    ``.misses`` / ``.evictions``) so bench JSON output shows how much
    record work the cache saved.
    """

    def __init__(self, capacity: Optional[int] = RECORDING_CACHE_CAPACITY):
        self._lru = LruCache(capacity=capacity)

    def get_or_produce(self, key: tuple,
                       produce: Callable[[], object]) -> object:
        value, hit = self._lru.lookup(key)
        if hit:
            global_registry().counter("bench.recording_cache.hits").inc()
            return value
        global_registry().counter("bench.recording_cache.misses").inc()
        value = produce()
        evictions_before = self._lru.evictions
        self._lru.put(key, value)
        evicted = self._lru.evictions - evictions_before
        if evicted:
            global_registry().counter(
                "bench.recording_cache.evictions").inc(evicted)
        return value

    def clear(self) -> None:
        self._lru.clear()

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def capacity(self) -> Optional[int]:
        return self._lru.capacity

    @property
    def hits(self) -> int:
        return self._lru.hits

    @property
    def misses(self) -> int:
        return self._lru.misses

    @property
    def evictions(self) -> int:
        return self._lru.evictions


#: (board, model, fuse, granularity) -> (RecordedWorkload, stack info)
RECORDING_CACHE = RecordingCache()


def cached(key: tuple, produce: Callable[[], object]) -> object:
    return RECORDING_CACHE.get_or_produce(key, produce)


def clear_recording_cache() -> None:
    RECORDING_CACHE.clear()


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, accumulated in log space.

    A naive running product overflows to ``inf`` (or underflows to
    0.0) long before the mean itself is out of float range; summing
    logs keeps every intermediate bounded. Any non-positive value
    makes the geometric mean ill-defined, so it yields 0.0.
    """
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        return 0.0
    if len(values) == 1:
        return float(values[0])
    return math.exp(math.fsum(math.log(v) for v in values)
                    / len(values))
