"""Replay fast path: warm loads, compiled replay throughput, skipping.

Three measurements for the steady-state serve loop (same recording,
new inputs, many times):

- **warm vs cold load** (virtual time): the first ``load()`` of a
  content pays decompression + verification; later loads of the same
  content hit the content-addressed load cache and pay
  :data:`~repro.core.replayer.WARM_LOAD_NS`.
- **replays/sec** (wall clock): the compiled fast path (pre-resolved
  registers, closure dispatch, coherent GPU TLB, resident-dump
  skipping) against the pre-fast-path configuration -- the reference
  interpreter with resident-dump knowledge dropped before every
  replay and the GPU TLB in its historical flush-on-command mode,
  i.e. every dump re-uploaded and every page re-walked, exactly what
  a replay cost before the fast path existed.
- **upload skipping** (bytes): how much of the recording's dump bytes
  repeat replays avoid re-uploading.

The default workload is ``dense-serve``: the one zoo model whose
weight bytes are *not* shrunk (several MB of dense weights), so the
wall-clock cost of re-uploading dumps -- the thing resident-dump
skipping removes -- is realistic rather than scaled away.

The ratios (not the absolute wall-clock numbers) are what
``BENCH_replay_fastpath.json`` pins and CI guards: they compare two
code paths in the same process on the same machine, so they are stable
across hosts in a way raw replays/sec is not.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.harness import ResultTable
from repro.bench.workloads import (fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer, clear_load_cache


def measure_fastpath(family: str = "mali", model_name: str = "dense-serve",
                     replays: int = 20, rounds: int = 3,
                     seed: int = 1234) -> Dict[str, object]:
    """Run the three fast-path measurements; returns a flat dict."""
    workload, _stack = get_recorded(family, model_name)
    recording = workload.recording
    inputs = {"input": model_input(model_name)}

    # -- load: cold vs warm (virtual ns) --------------------------------
    clear_load_cache()
    machine = fresh_replay_machine(family, seed=seed)
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(recording)
    cold_load_ns = replayer.load_ns
    replayer.load(recording)
    warm_load_ns = replayer.load_ns

    # -- replays/sec: pre-fast-path baseline vs compiled fast path ------
    # CPU time (not wall clock) so a noisy/shared host doesn't skew
    # the ratio, and best-of-rounds so one descheduled burst doesn't
    # either. Each round warms its path once before timing.
    mmu = machine.gpu.mmu
    reference_s = float("inf")
    fast_s = float("inf")
    for _ in range(rounds):
        # Pre-PR behaviour: no residency (re-upload every dump) and a
        # TLB that architectural flushes discard (re-walk every page).
        replayer.fast_path = False
        mmu.coherent_tlb = False
        mmu.flush_tlb()
        replayer.nano.forget_resident()
        replayer.replay(inputs=inputs)
        t0 = time.process_time()
        for _ in range(replays):
            replayer.nano.forget_resident()
            replayer.replay(inputs=inputs)
        reference_s = min(reference_s, time.process_time() - t0)

        replayer.fast_path = True
        mmu.coherent_tlb = True
        replayer.replay(inputs=inputs)
        t0 = time.process_time()
        for _ in range(replays):
            replayer.replay(inputs=inputs)
        fast_s = min(fast_s, time.process_time() - t0)

    # -- mega-batch replays/sec: one fused pass for a whole batch -------
    # Same wall-clock discipline as above; a "replay" here is one
    # member answer, so the rate is members-served over fused time.
    mega_batch = 8
    batch_inputs = [{"input": model_input(model_name, seed=40 + k)}
                    for k in range(mega_batch)]
    mega_s = float("inf")
    for _ in range(rounds):
        replayer.fast_path = True
        mmu.coherent_tlb = True
        replayer.replay_mega(batch_inputs)
        t0 = time.process_time()
        for _ in range(replays):
            replayer.replay_mega(batch_inputs)
        mega_s = min(mega_s, time.process_time() - t0)

    # -- upload skipping on a repeat replay (bytes) ----------------------
    repeat = replayer.replay(inputs=inputs)

    return {
        "family": family,
        "model": model_name,
        "replays": replays,
        "cold_load_ns": int(cold_load_ns),
        "warm_load_ns": int(warm_load_ns),
        "warm_load_speedup": cold_load_ns / warm_load_ns,
        "reference_replays_per_sec": replays / reference_s,
        "fast_replays_per_sec": replays / fast_s,
        "replay_speedup": reference_s / fast_s,
        "mega_batch": mega_batch,
        "mega_replays_per_sec": replays * mega_batch / mega_s,
        "mega_speedup": (replays * mega_batch / mega_s) / (replays / fast_s),
        "upload_skipped_bytes": int(repeat.stats.upload_skipped_bytes),
        "upload_bytes": int(repeat.stats.upload_bytes),
    }


def replay_fastpath(family: str = "mali", model_name: str = "dense-serve",
                    replays: int = 20) -> ResultTable:
    """The fast-path benchmark as a printable result table."""
    m = measure_fastpath(family, model_name, replays=replays)
    table = ResultTable(
        f"Replay fast path ({family}/{model_name}): "
        "warm loads, compiled dispatch, resident dumps",
        ["metric", "value"])
    for metric in ("cold_load_ns", "warm_load_ns", "warm_load_speedup",
                   "reference_replays_per_sec", "fast_replays_per_sec",
                   "replay_speedup", "mega_replays_per_sec",
                   "mega_speedup", "upload_skipped_bytes",
                   "upload_bytes"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "warm_load_speedup and replay_speedup are the CI-guarded "
        "ratios; wall-clock rates are informational")
    table.notes.append(
        f"mega_replays_per_sec fuses {m['mega_batch']}-member batches "
        "into one pass (member answers per second)")
    return table
