"""Figure 3: synchronous job submission adds modest inference delay.

Paper result (ACL + OpenCL on Mali G71, six NNs): enforcing
synchronous jobs adds 4% delay on average (max 11%, min 2%).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import MALI_INFERENCE_SET, build_stack


def _timed_inference(family: str, model_name: str, sync: bool) -> int:
    stack = build_stack(family, model_name, fuse=False)
    stack.runtime.set_sync_submission(sync)
    x = np.random.default_rng(1).standard_normal(
        stack.net.model.input_shape).astype(np.float32)
    stack.net.run(x)  # warm-up: job-binary regions come from the pool
    t0 = stack.machine.clock.now()
    stack.net.run(x)
    return stack.machine.clock.now() - t0


def sync_submission_overhead(
        models: Sequence[str] = MALI_INFERENCE_SET,
        family: str = "mali") -> ResultTable:
    table = ResultTable(
        "Figure 3: sync vs async job submission (inference delay)",
        ["model", "async_ms", "sync_ms", "overhead_pct"])
    for model_name in models:
        async_ns = _timed_inference(family, model_name, sync=False)
        sync_ns = _timed_inference(family, model_name, sync=True)
        table.add_row(
            model=model_name,
            async_ms=async_ns / 1e6,
            sync_ms=sync_ns / 1e6,
            overhead_pct=100.0 * (sync_ns - async_ns) / async_ns,
        )
    overheads = table.column("overhead_pct")
    table.notes.append(
        f"avg {sum(overheads) / len(overheads):.1f}% "
        f"(paper: avg 4%, range 2-11%)")
    return table
