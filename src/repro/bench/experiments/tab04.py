"""Table 4: codebase comparison -- the stack vs GR's recorder/replayer.

The paper's point: the stack the app depends on shrinks from hundreds
of KSLoC + tens of MB to a few KSLoC / tens of KB. Our reproduction
measures the same structural claim over this repository: the replayer
component is a small fraction of the full-stack components it
replaces.
"""

from __future__ import annotations

from repro.analysis.codebase import analyze_codebase
from repro.bench.harness import ResultTable


def codebase_comparison() -> ResultTable:
    report = analyze_codebase()
    table = ResultTable(
        "Table 4: codebase comparison (measured over this repository)",
        ["component", "side", "files", "sloc", "bytes"])
    for row in report.table4_rows():
        table.add_row(**row)
    stack = report.stack_sloc()
    replayer = report.replayer_sloc()
    table.notes.append(
        f"stack={stack} SLoC vs replayer={replayer} SLoC "
        f"(ratio {stack / replayer:.1f}x; paper: ~500 KSLoC stack vs "
        "a few KSLoC replayer)")
    return table
