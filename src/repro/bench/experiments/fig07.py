"""Figure 7: NN inference delays, GR vs the full stack.

Paper result: on CPU-overhead-heavy benchmarks the replayer is faster
(up to 70% on MNIST/Mali, ~20% faster on Mali average); on large NNs
the advantage diminishes -- GR is ~5% *slower* on v3d average, paying
for memory-dump loading (e.g. ResNet18) and synchronous-job idles.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ResultTable, geomean
from repro.bench.workloads import (MALI_INFERENCE_SET, V3D_INFERENCE_SET,
                                   fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer
from repro.stack.reference import run_reference


def stack_inference_ns(stack, x: np.ndarray) -> int:
    stack.runtime.set_sync_submission(False)
    stack.net.run(x)  # warm
    t0 = stack.machine.clock.now()
    stack.net.run(x)
    return stack.machine.clock.now() - t0


def gr_inference_ns(family: str, workload, x: np.ndarray,
                    check: bool = True) -> int:
    machine = fresh_replay_machine(family, seed=4321)
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(workload.recording)
    result = replayer.replay(inputs={"input": x})
    if check:
        from repro.stack.framework import build_model
        model = build_model(workload.workload)
        expected = run_reference(model, x, fuse=False)
        if not np.array_equal(result.output,
                              expected.reshape(result.output.shape)):
            raise AssertionError(
                f"replayed {workload.workload} output diverged from the "
                "CPU reference")
    return result.duration_ns


def inference_delays(family: str = "mali",
                     models: Sequence[str] = ()) -> ResultTable:
    if not models:
        models = (MALI_INFERENCE_SET if family == "mali"
                  else V3D_INFERENCE_SET)
    table = ResultTable(
        f"Figure 7 ({family}): NN inference delays",
        ["model", "stack_ms", "gr_ms", "gr_vs_stack_pct"])
    ratios = []
    for model_name in models:
        workload, stack = get_recorded(family, model_name)
        x = model_input(model_name)
        stack_ns = stack_inference_ns(stack, x)
        gr_ns = gr_inference_ns(family, workload, x)
        ratio = gr_ns / stack_ns
        ratios.append(ratio)
        table.add_row(
            model=model_name,
            stack_ms=stack_ns / 1e6,
            gr_ms=gr_ns / 1e6,
            gr_vs_stack_pct=100.0 * (ratio - 1.0),
        )
    table.notes.append(
        f"geomean GR/stack = {geomean(ratios):.3f} "
        "(paper: Mali ~20% faster avg, v3d ~5% slower avg)")
    return table
