"""Figure 6: startup delays before NN inference, GR vs the full stack.

Paper result: both stacks take seconds to start (Mali bottlenecked at
runtime shader compilation, v3d at ncnn pipeline building); the
replayer is lower by 26-98% (Mali) and 77-99% (v3d), spending its time
on GPU reset, dump loading and page-table reconstruction.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable
from repro.bench.workloads import (MALI_INFERENCE_SET, V3D_INFERENCE_SET,
                                   fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer


def gr_startup_ns(family: str, workload, seed: int = 1234) -> int:
    """Replayer startup: init + load + replay until the first job kick."""
    machine = fresh_replay_machine(family, seed=seed)
    replayer = Replayer(machine)
    t0 = machine.clock.now()
    replayer.init()
    replayer.load(workload.recording)
    result = replayer.replay(
        inputs={"input": model_input(workload.workload)})
    first_kick = result.stats.first_kick_at_ns
    return (first_kick - t0) if first_kick >= 0 else 0


def startup_delays(family: str = "mali",
                   models: Sequence[str] = ()) -> ResultTable:
    if not models:
        models = (MALI_INFERENCE_SET if family == "mali"
                  else V3D_INFERENCE_SET)
    table = ResultTable(
        f"Figure 6 ({family}): startup delays prior to NN inference",
        ["model", "stack_ms", "gr_ms", "reduction_pct",
         "stack_bottleneck"])
    for model_name in models:
        workload, stack = get_recorded(family, model_name)
        stack_ns = stack.net.startup_ns
        phases = stack.net.startup_phases
        bottleneck = max(phases, key=phases.get)
        gr_ns = gr_startup_ns(family, workload)
        table.add_row(
            model=model_name,
            stack_ms=stack_ns / 1e6,
            gr_ms=gr_ns / 1e6,
            reduction_pct=100.0 * (stack_ns - gr_ns) / stack_ns,
            stack_bottleneck=bottleneck,
        )
    table.notes.append("paper: GR lower by 26-98% (Mali), 77-99% (v3d)")
    return table
