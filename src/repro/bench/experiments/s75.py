"""Section 7.5 (remainder): preemption delay and checkpoint-vs-reexec.

Paper results:

- preemption delay perceived by an interactive app is below 1 ms on
  both GPUs (a preemption is just cache/TLB flush + soft reset);
- checkpointing is generally *inferior* to re-execution: MobileNet
  checkpointing every 16 jobs slows the replay ~8x, because dumping
  all GPU memory costs far more than re-executing.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import (fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.checkpoints import CheckpointPolicy
from repro.core.replayer import Replayer
from repro.environments.scheduler import GpuHandoffScheduler, InteractiveApp
from repro.units import MS


def preemption_delays(families=("mali", "v3d"),
                      model_by_family=None) -> ResultTable:
    model_by_family = model_by_family or {"mali": "alexnet",
                                          "v3d": "alexnet"}
    table = ResultTable(
        "Section 7.5: GPU preemption delay (interactive app's view)",
        ["family", "model", "preemptions", "max_handoff_ms",
         "replay_completed"])
    for family in families:
        model_name = model_by_family[family]
        workload, _stack = get_recorded(family, model_name)
        machine = fresh_replay_machine(family, seed=31337)
        replayer = Replayer(machine)
        replayer.init()
        replayer.load(workload.recording)
        scheduler = GpuHandoffScheduler(machine, replayer)
        app = InteractiveApp("game", burst_ns=16 * MS)
        scheduler.schedule_preemption(app, delay_ns=500_000)
        x = model_input(model_name)
        result = scheduler.run_replay(inputs={"input": x})
        table.add_row(
            family=family,
            model=model_name,
            preemptions=len(scheduler.events),
            max_handoff_ms=scheduler.max_handoff_delay_ns() / 1e6,
            replay_completed=result.stats.jobs_kicked > 0,
        )
    table.notes.append("paper: handoff delay below 1 ms on both GPUs")
    return table


def checkpoint_tradeoff(model_name: str = "mobilenet",
                        family: str = "mali",
                        every_n_jobs: int = 16) -> ResultTable:
    workload, _stack = get_recorded(family, model_name)
    x = model_input(model_name)

    def run(policy) -> tuple:
        machine = fresh_replay_machine(family, seed=909)
        replayer = Replayer(machine, checkpoint_policy=policy)
        replayer.init()
        replayer.load(workload.recording)
        result = replayer.replay(inputs={"input": x})
        return result.duration_ns, replayer.checkpoints

    plain_ns, _ = run(CheckpointPolicy(every_n_jobs=0))
    ckpt_ns, manager = run(CheckpointPolicy(every_n_jobs=every_n_jobs))

    table = ResultTable(
        "Section 7.5: checkpointing vs whole re-execution",
        ["mode", "duration_ms", "checkpoints", "checkpoint_cost_ms",
         "slowdown_x"])
    table.add_row(mode="no checkpoints", duration_ms=plain_ns / 1e6,
                  checkpoints=0, checkpoint_cost_ms=0.0, slowdown_x=1.0)
    table.add_row(mode=f"every {every_n_jobs} jobs",
                  duration_ms=ckpt_ns / 1e6,
                  checkpoints=manager.taken_count,
                  checkpoint_cost_ms=manager.total_checkpoint_ns / 1e6,
                  slowdown_x=ckpt_ns / plain_ns)
    table.notes.append(
        "paper: MobileNet with per-16-job checkpoints runs ~8x slower; "
        "memory dumping dominates, so re-execution wins")
    return table
