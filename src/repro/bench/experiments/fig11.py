"""Figure 11: NN inference delay (incl. startup) vs recording granularity.

Paper result: per-fused-layer recordings cost only ~15% more than one
monolithic recording (the extra is per-recording replayer startup);
per-layer recordings cost more but maximize composability.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import (fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer

GRANULARITY_CONFIGS = (
    ("monolithic", True, "monolithic"),
    ("per-fused-layer", True, "layer"),
    ("per-layer", False, "layer"),
)


def _replay_total_ns(family: str, workload, x) -> int:
    """Init + load + replay of the whole chain (startup included)."""
    machine = fresh_replay_machine(family, seed=555)
    replayer = Replayer(machine)
    t0 = machine.clock.now()
    replayer.init()
    replayer.replay_sequence(workload.recordings, inputs={"input": x})
    return machine.clock.now() - t0


def recording_granularity(
        models: Sequence[str] = ("mnist", "alexnet", "mobilenet"),
        family: str = "mali") -> ResultTable:
    table = ResultTable(
        "Figure 11: inference delay (incl. startup) by granularity",
        ["model", "granularity", "recordings", "total_ms",
         "vs_monolithic_x"])
    for model_name in models:
        x = model_input(model_name)
        monolithic_ns = None
        for label, fuse, granularity in GRANULARITY_CONFIGS:
            workload, _stack = get_recorded(family, model_name,
                                            fuse=fuse,
                                            granularity=granularity)
            total_ns = _replay_total_ns(family, workload, x)
            if label == "monolithic":
                monolithic_ns = total_ns
            table.add_row(
                model=model_name,
                granularity=label,
                recordings=len(workload.recordings),
                total_ms=total_ns / 1e6,
                vs_monolithic_x=total_ns / monolithic_ns,
            )
    table.notes.append(
        "paper: fused-layer recordings ~15% slower than monolithic; "
        "the extra delay is per-recording replayer startup")
    return table
