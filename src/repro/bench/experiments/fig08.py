"""Figure 8: NN training delays (MNIST on DeepCL + OpenCL, Mali G71).

Paper result: the replayer has 99% less startup (no parameter parsing
or shader compilation) and ~40% less delay over 20 iterations (no
DeepCL / OpenCL runtime on the critical path).
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import fresh_replay_machine
from repro.core.harness import record_training_iteration
from repro.core.replayer import Replayer
from repro.soc.machine import Machine
from repro.stack.driver import MaliDriver
from repro.stack.framework.deepcl import DeepClTrainer, mnist_train_spec
from repro.stack.runtime import OpenClRuntime


def _training_data(spec, seed: int = 2):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((spec.batch, spec.input_dim)).astype(np.float32)
    labels = rng.integers(0, spec.classes, spec.batch)
    y = np.zeros((spec.batch, spec.classes), np.float32)
    y[np.arange(spec.batch), labels] = 1.0
    return x, y


def training_delays(iterations: int = 20) -> ResultTable:
    spec = mnist_train_spec()
    x, y = _training_data(spec)

    # Full stack: DeepCL + OpenCL.
    machine = Machine.create("hikey960", seed=5)
    trainer = DeepClTrainer(OpenClRuntime(MaliDriver(machine)), spec)
    t0 = machine.clock.now()
    trainer.configure()
    stack_startup = machine.clock.now() - t0
    t0 = machine.clock.now()
    stack_losses = trainer.train(x, y, max_iters=iterations)
    stack_train = machine.clock.now() - t0

    # Record one iteration, then replay it per iteration.
    rec_machine = Machine.create("hikey960", seed=6)
    rec_trainer = DeepClTrainer(OpenClRuntime(MaliDriver(rec_machine)),
                                spec)
    rec_trainer.configure()
    workload = record_training_iteration(rec_trainer)

    replay_machine = fresh_replay_machine("mali", seed=7)
    replayer = Replayer(replay_machine)
    t0 = replay_machine.clock.now()
    replayer.init()
    replayer.load(workload.recording)
    gr_startup = replay_machine.clock.now() - t0
    gr_losses = []
    inputs = {"x": x, "y": y, **rec_trainer.initial_weights()}
    t0 = replay_machine.clock.now()
    for _ in range(iterations):
        result = replayer.replay(inputs=inputs)
        gr_losses.append(float(result.outputs["loss"][0]))
        inputs = {"x": x, "y": y}  # weights live on in GPU memory
    gr_train = replay_machine.clock.now() - t0

    if not np.allclose(stack_losses, gr_losses, rtol=1e-6, atol=1e-7):
        raise AssertionError("replayed training diverged from the stack")

    table = ResultTable(
        "Figure 8: MNIST training delays (DeepCL, Mali)",
        ["phase", "stack_ms", "gr_ms", "reduction_pct"])
    table.add_row(phase="startup",
                  stack_ms=stack_startup / 1e6,
                  gr_ms=gr_startup / 1e6,
                  reduction_pct=100.0 * (stack_startup - gr_startup)
                  / stack_startup)
    table.add_row(phase=f"{iterations} iterations",
                  stack_ms=stack_train / 1e6,
                  gr_ms=gr_train / 1e6,
                  reduction_pct=100.0 * (stack_train - gr_train)
                  / stack_train)
    table.notes.append(
        f"final loss stack={stack_losses[-1]:.4f} gr={gr_losses[-1]:.4f} "
        "(paper: 99% less startup, 40% less per-iteration delay)")
    return table
