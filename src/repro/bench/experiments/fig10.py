"""Figure 10: GR removes unnecessary intervals between replay actions.

Paper result (ACL NN inference on Mali G71): without the GPU-idle skip
heuristic, replayed inference is 1.1-4.9x longer; startup would be up
to two orders of magnitude longer.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable
from repro.bench.workloads import (MALI_INFERENCE_SET,
                                   fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer


def _replay_ns(family: str, workload, x, use_recorded: bool) -> int:
    machine = fresh_replay_machine(family, seed=777)
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(workload.recording)
    result = replayer.replay(inputs={"input": x},
                             use_recorded_intervals=use_recorded)
    return result.duration_ns


def skip_interval_ablation(models: Sequence[str] = MALI_INFERENCE_SET,
                           family: str = "mali") -> ResultTable:
    table = ResultTable(
        "Figure 10: replay with vs without interval skipping",
        ["model", "skip_ms", "noskip_ms", "slowdown_x"])
    for model_name in models:
        workload, _stack = get_recorded(family, model_name)
        x = model_input(model_name)
        skip_ns = _replay_ns(family, workload, x, use_recorded=False)
        noskip_ns = _replay_ns(family, workload, x, use_recorded=True)
        table.add_row(model=model_name,
                      skip_ms=skip_ns / 1e6,
                      noskip_ms=noskip_ns / 1e6,
                      slowdown_x=noskip_ns / skip_ns)
    table.notes.append("paper: without skipping, 1.1-4.9x longer")
    return table
