"""Table 6: the evaluated recordings -- GPU memory, jobs, RegIO, sizes.

Paper result: recordings are a few MB uncompressed and a few hundred
KB zipped; memory dumps dominate; v3d recordings are larger
uncompressed (conservative dumping) but highly compressible.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable
from repro.bench.workloads import (MALI_INFERENCE_SET, V3D_INFERENCE_SET,
                                   get_recorded)
from repro.soc.memory import PAGE_SIZE


def recording_stats(family: str = "mali",
                    models: Sequence[str] = ()) -> ResultTable:
    if not models:
        models = (MALI_INFERENCE_SET if family == "mali"
                  else V3D_INFERENCE_SET)
    table = ResultTable(
        f"Table 6 ({family}): recordings used for evaluation",
        ["model", "layers", "gpu_mem_mb", "jobs", "reg_io",
         "unzip_mb", "zip_mb", "dump_fraction"])
    for model_name in models:
        workload, stack = get_recorded(family, model_name)
        recording = workload.recording
        unzipped = recording.size_unzipped()
        table.add_row(
            model=model_name,
            layers=len(stack.net.model.layers),
            gpu_mem_mb=recording.peak_gpu_pages() * PAGE_SIZE / 1e6,
            jobs=recording.meta.n_jobs,
            reg_io=recording.meta.reg_io,
            unzip_mb=unzipped / 1e6,
            zip_mb=recording.size_zipped() / 1e6,
            dump_fraction=recording.dump_bytes() / unzipped,
        )
    table.notes.append(
        "paper: few-hundred-KB zipped; dumps dominate (~72% on Mali); "
        "v3d dumps larger but highly compressible")
    return table
