"""Observability overhead: the always-on telemetry tax on serving.

The deep-observability layer (request tracing, the GPU counter tape,
time-series scrapes) is designed to ride the serving engine by
default, so its cost is a first-class benchmark: the same closed
request batch is served twice --

- **on**: the defaults (``trace=True``, ``gpu_counters=True``,
  ``timeseries=True``), everything recording;
- **off**: all three disabled -- the bare engine.

Virtual makespans MUST be identical (observability only reads the
clock; the run asserts it), so the only thing that can differ is
host wall-clock time. ``obs_speed_ratio`` is off-arm wall time over
on-arm wall time (1.0 = free, 0.9 = 10% overhead) measured best-of-N
to shave scheduler noise; it is the pinned, CI-guarded metric in
``BENCH_obs.json``. ``overhead_ratio`` is the same number expressed
as a fractional slowdown.
"""

from __future__ import annotations

import time
from typing import Dict

from repro.bench.harness import ResultTable
from repro.serve import (LoadgenConfig, RecordingStore, ReplayServer,
                         ServerConfig, generate_requests)

#: Same mix as the serving benchmark, minus the multi-MB model so the
#: overhead measurement is dominated by engine work, not numpy copies.
OBS_BENCH_MIX = (("mali", "mnist"), ("mali", "kws"))


def _serve_once(store: RecordingStore, config: ServerConfig,
                requests) -> Dict[str, object]:
    start = time.perf_counter()
    server = ReplayServer(store, config)
    report = server.serve(requests)
    server.close()
    elapsed = time.perf_counter() - start
    if report.lost or report.counts()["shed"]:
        raise AssertionError(
            f"benchmark run lost/shed requests: {report.counts()}, "
            f"lost={report.lost}")
    return {
        "wall_s": elapsed,
        "makespan_ns": report.makespan_ns,
        "counters": report.gpu_counters.get("totals", {}),
        "trace_events": len(report.trace_events),
        "series": (len(report.timeseries.snapshot()["series"])
                   if report.timeseries is not None else 0),
    }


def measure_obs(requests: int = 48, seed: int = 11,
                workers: int = 3, max_batch: int = 4,
                repeats: int = 3) -> Dict[str, object]:
    """Serve with observability on and off; returns a flat dict.

    Each arm runs ``repeats`` times and keeps the *fastest* wall time
    (the standard noise-rejection estimator for short benchmarks).
    Arms alternate so cache warm-up and CPU frequency drift hit both
    equally.
    """
    stream = generate_requests(LoadgenConfig(
        requests=requests, seed=seed, mix=OBS_BENCH_MIX,
        mean_interarrival_ns=0, deadline_ns=0, fault_rate=0.0))
    store = RecordingStore.from_zoo(OBS_BENCH_MIX)

    pool = ("mali",) * workers
    on_cfg = ServerConfig(families=pool, seed=seed,
                          queue_depth=requests, max_batch=max_batch)
    off_cfg = ServerConfig(families=pool, seed=seed,
                           queue_depth=requests, max_batch=max_batch,
                           trace=False, timeseries=False,
                           gpu_counters=False)

    best_on: Dict[str, object] = {}
    best_off: Dict[str, object] = {}
    for _ in range(repeats):
        on = _serve_once(store, on_cfg, stream)
        off = _serve_once(store, off_cfg, stream)
        if not best_on or on["wall_s"] < best_on["wall_s"]:
            best_on = on
        if not best_off or off["wall_s"] < best_off["wall_s"]:
            best_off = off

    if best_on["makespan_ns"] != best_off["makespan_ns"]:
        raise AssertionError(
            "observability changed virtual time: "
            f"on={best_on['makespan_ns']} off={best_off['makespan_ns']}")

    ratio = best_off["wall_s"] / best_on["wall_s"]
    totals = best_on["counters"]
    return {
        "requests": requests,
        "workers": workers,
        "repeats": repeats,
        "makespan_ns": int(best_on["makespan_ns"]),
        "wall_on_s": best_on["wall_s"],
        "wall_off_s": best_off["wall_s"],
        "obs_speed_ratio": ratio,
        "overhead_ratio": 1.0 / ratio - 1.0,
        "trace_events": int(best_on["trace_events"]),
        "timeseries_series": int(best_on["series"]),
        "gpu_instructions": int(totals.get("instructions", 0)),
        "gpu_kernels": int(totals.get("kernels", 0)),
        "gpu_mmio_writes": int(totals.get("mmio_writes", 0)),
    }


def obs_overhead(requests: int = 48, seed: int = 11,
                 repeats: int = 3) -> ResultTable:
    """The observability overhead benchmark as a printable table."""
    m = measure_obs(requests=requests, seed=seed, repeats=repeats)
    table = ResultTable(
        f"Observability overhead ({requests} requests, best of "
        f"{repeats}): tracing + GPU counters + time series on vs off",
        ["metric", "value"])
    for metric in ("wall_on_s", "wall_off_s", "obs_speed_ratio",
                   "overhead_ratio", "makespan_ns", "trace_events",
                   "timeseries_series", "gpu_instructions",
                   "gpu_kernels", "gpu_mmio_writes"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "obs_speed_ratio (off wall time / on wall time) is the "
        "CI-guarded metric; virtual makespans are asserted identical, "
        "so only host time can differ")
    return table
