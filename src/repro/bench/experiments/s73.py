"""Section 7.3 (CPU memory): replayer vs full-stack footprints.

Paper result: executing NN inference, the replayer's CPU memory is
2-10 MB (average 5 MB) versus the stack's 220-310 MB (average 270 MB)
-- the replayer runs a much smaller codebase and sidesteps GPU
contexts, NN optimizations and JIT commands/shader generation.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ResultTable
from repro.bench.workloads import (MALI_INFERENCE_SET,
                                   fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer


def cpu_memory(family: str = "mali",
               models: Sequence[str] = MALI_INFERENCE_SET) -> ResultTable:
    table = ResultTable(
        f"Section 7.3 ({family}): CPU memory during NN inference",
        ["model", "stack_mb", "replayer_mb", "ratio"])
    for model_name in models:
        workload, stack = get_recorded(family, model_name)
        stack_bytes = stack.net.cpu_footprint_bytes()

        machine = fresh_replay_machine(family, seed=733)
        replayer = Replayer(machine)
        replayer.init()
        replayer.load(workload.recording)
        replayer.replay(inputs={"input": model_input(model_name)})
        replayer_bytes = replayer.cpu_footprint_bytes()

        table.add_row(
            model=model_name,
            stack_mb=stack_bytes / 1e6,
            replayer_mb=replayer_bytes / 1e6,
            ratio=stack_bytes / replayer_bytes,
        )
    table.notes.append(
        "paper: replayer 2-10 MB (avg 5) vs stack 220-310 MB (avg 270)")
    return table
