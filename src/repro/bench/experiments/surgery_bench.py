"""Recording surgery: slice equivalence, composition, job-level dedup.

Three claims, matching the surgery subsystem's contracts:

- **Equivalence**: an unmutated slice replays byte-identical to the
  same job inside its parent session, on every GPU family. For one
  zoo model per family the mid job is sliced and both sides replayed;
  ``equivalence_ok`` counts the families that match exactly.

- **Composition**: a stitched session (interleave of two slices, two
  rounds) agrees with the shared CPU op semantics *and* with the
  expected bytes its manifest captured from the parent sessions.
  ``composed_differential_ok`` is 1.0 iff every output of the GPU
  replay, the CPU reference, and the manifest are byte-identical.

- **Job-level dedup**: sibling-SKU micro-recordings (a g31-recorded
  mali slice plus its g52/g71 patches) differ only in actions and
  metadata, so the vault must share essentially every dump chunk
  between them. ``sibling_dump_dedup`` is the fraction of their dump
  chunk refs resolving to shared chunks -- the ``BENCH_surgery.json``
  pin CI guards at >= 0.9.

Slice/compose wall cost and the per-kernel replay time (virtual ns of
one micro-recording replay) ride along in the pin for trend tracking;
they are not guarded ratios.
"""

from __future__ import annotations

import time
from tempfile import TemporaryDirectory
from typing import Dict, List, Tuple

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import fresh_replay_machine, get_recorded
from repro.core.patching import patch_recording_for_sku
from repro.core.recording import Recording
from repro.core.replayer import Replayer
from repro.store import Vault
from repro.surgery import (analyze_recording, cpu_reference_outputs,
                           interleave, slice_job, verify_slice)
from repro.surgery.composer import replay_composed_outputs

#: One zoo model per family for the equivalence check; the mali parent
#: is recorded on the smallest board so its slice also feeds the
#: sibling-SKU dedup corpus.
SURGERY_BENCH_MODEL = "mnist"
SURGERY_BENCH_FAMILIES = ("mali", "v3d", "adreno")
SURGERY_BENCH_BOARDS = {"mali": "odroid-c4"}
SURGERY_BENCH_SKUS = ("g52", "g71")


def _parent(family: str) -> Recording:
    workload, _stack = get_recorded(family, SURGERY_BENCH_MODEL, True,
                                    "monolithic",
                                    SURGERY_BENCH_BOARDS.get(family))
    return workload.recording


def _replay_duration_ns(recording: Recording) -> int:
    machine = fresh_replay_machine(recording.meta.family, seed=4242,
                                   board=recording.meta.board)
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(recording)
    return replayer.replay().duration_ns


def measure_surgery() -> Dict[str, object]:
    """Slice every family, compose, pack the sibling-SKU corpus.
    Returns a flat dict (the BENCH_surgery.json format)."""
    equivalence_ok = 0
    slice_walls: List[float] = []
    mali_slices = []
    slice_dump_bytes = parent_dump_bytes = closure_bytes = 0
    replay_virtual_ns = 0

    for family in SURGERY_BENCH_FAMILIES:
        parent = _parent(family)
        analysis = analyze_recording(parent)
        jobs = [analysis.jobs[len(analysis.jobs) // 2]]
        if family == "mali":
            # Two mali slices feed the composition check below.
            jobs.append(analysis.jobs[0])
        for info in jobs:
            start = time.perf_counter()
            slice_ = slice_job(parent, info.job_index, analysis=analysis)
            slice_walls.append(time.perf_counter() - start)
            if family == "mali":
                mali_slices.append((parent, slice_))
        # Equivalence is judged on the mid job (the first sliced).
        parent_, slice_ = (parent, slice_) if family != "mali" \
            else (mali_slices[0][0], mali_slices[0][1])
        if verify_slice(parent_, slice_, analysis=analysis):
            equivalence_ok += 1
        slice_dump_bytes += slice_.recording.dump_bytes()
        parent_dump_bytes += parent.dump_bytes()
        closure_bytes += sum(s for _va, s in
                             (tuple(r) for r in slice_.manifest.closure))
        replay_virtual_ns += _replay_duration_ns(slice_.recording)

    compose_start = time.perf_counter()
    composed = interleave([s for _p, s in mali_slices], rounds=2)
    compose_wall = time.perf_counter() - compose_start
    expected = composed.manifest.expected_output_arrays()
    cpu = cpu_reference_outputs(composed.recording)
    gpu = replay_composed_outputs(composed)
    composed_ok = all(
        np.array_equal(want.reshape(-1),
                       np.asarray(cpu[name], np.float32).reshape(-1))
        and np.array_equal(want.reshape(-1),
                           np.asarray(gpu[name], np.float32).reshape(-1))
        for name, want in expected.items())

    # Sibling-SKU corpus: the g31-recorded mali slice + SKU patches.
    base = mali_slices[0][1].recording
    corpus = [base] + [patch_recording_for_sku(base, sku)[0]
                       for sku in SURGERY_BENCH_SKUS]
    with TemporaryDirectory() as root:
        vault = Vault(root)
        for recording in corpus:
            vault.pack(recording)
        sharing = vault.job_sharing_stats()

    n_slices = len(slice_walls)
    return {
        "families_checked": len(SURGERY_BENCH_FAMILIES),
        "equivalence_ok": equivalence_ok,
        "composed_differential_ok": 1.0 if composed_ok else 0.0,
        "composed_jobs": len(composed.manifest.schedule),
        "sibling_micros": sharing["micro_recordings"],
        "sibling_dump_dedup": sharing["dump_chunk_dedup"],
        "slices": n_slices,
        "slice_ms": 1e3 * sum(slice_walls) / n_slices,
        "compose_ms": 1e3 * compose_wall,
        "slice_replay_virtual_ns": replay_virtual_ns
        // len(SURGERY_BENCH_FAMILIES),
        "slice_dump_bytes": slice_dump_bytes,
        "parent_dump_bytes": parent_dump_bytes,
        "closure_bytes": closure_bytes,
    }


def surgery_report() -> ResultTable:
    """The surgery benchmark as a printable result table."""
    m = measure_surgery()
    table = ResultTable(
        f"Recording surgery: {m['slices']} slices over "
        f"{m['families_checked']} families, one interleaved "
        f"composition, {m['sibling_micros']} sibling-SKU micros",
        ["metric", "value"])
    for metric in ("equivalence_ok", "composed_differential_ok",
                   "composed_jobs", "sibling_dump_dedup", "slice_ms",
                   "compose_ms", "slice_replay_virtual_ns",
                   "slice_dump_bytes", "parent_dump_bytes"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "equivalence_ok counts families whose mid-job slice replays "
        "byte-identical to the job inside its parent session")
    table.notes.append(
        "sibling_dump_dedup is the CI-guarded metric: fraction of "
        "dump-chunk refs the sibling-SKU micro-recordings share")
    return table
