"""Table 5: CVEs in the GPU stack that GR eliminates.

Regenerates the table from the corpus and *executes* the attack suite
against the replayer to demonstrate the claimed defenses hold in code,
not just in prose.
"""

from __future__ import annotations

from repro.analysis.cves import (CVE_CORPUS, LEVER_DEPLOYMENTS,
                                 eliminated_cves, table5_rows)
from repro.analysis.security import run_attack_suite
from repro.bench.harness import ResultTable
from repro.soc.machine import Machine


def cve_elimination() -> ResultTable:
    table = ResultTable(
        "Table 5: GPU-stack CVEs eliminated by GR",
        ["design", "deployments", "cve", "severity", "effect",
         "vulnerability"])
    for row in table5_rows():
        table.add_row(design=row["design"],
                      deployments=row["deployments"],
                      cve=row["cve"],
                      severity=row["severity"],
                      effect=row["effect"],
                      vulnerability=row["vulnerability"])
    for deployment in ("D1", "D2", "D3"):
        n = len(eliminated_cves(deployment))
        table.notes.append(
            f"{deployment}: eliminates {n}/{len(CVE_CORPUS)} corpus CVEs")

    results = run_attack_suite(
        lambda: Machine.create("hikey960", seed=12345))
    blocked = sum(1 for r in results if r.blocked)
    table.notes.append(
        f"attack suite: {blocked}/{len(results)} fabricated-recording "
        "attacks defeated by the replayer's defenses")
    return table
