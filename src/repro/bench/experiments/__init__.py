"""One module per table/figure of the paper's evaluation.

Every function returns a :class:`~repro.bench.harness.ResultTable`
whose rows regenerate what the paper reports; the benchmark suite in
``benchmarks/`` prints them and asserts the *shape* claims (who wins,
by roughly what factor, where crossovers fall).
"""

from repro.bench.experiments.fastpath import (measure_fastpath,
                                              replay_fastpath)
from repro.bench.experiments.fig03 import sync_submission_overhead
from repro.bench.experiments.fig05 import interaction_intervals
from repro.bench.experiments.fig06 import startup_delays
from repro.bench.experiments.fig07 import inference_delays
from repro.bench.experiments.fig08 import training_delays
from repro.bench.experiments.fig09 import cross_gpu_replay
from repro.bench.experiments.fig10 import skip_interval_ablation
from repro.bench.experiments.fig11 import recording_granularity
from repro.bench.experiments.tab04 import codebase_comparison
from repro.bench.experiments.tab05 import cve_elimination
from repro.bench.experiments.tab06 import recording_stats
from repro.bench.experiments.fleet_bench import (fleet_scaling,
                                                 measure_fleet)
from repro.bench.experiments.obs_bench import measure_obs, obs_overhead
from repro.bench.experiments.serve_bench import (measure_serve,
                                                 serve_throughput)
from repro.bench.experiments.store_bench import (measure_store,
                                                 store_report)
from repro.bench.experiments.surgery_bench import (measure_surgery,
                                                   surgery_report)
from repro.bench.experiments.s72 import validation_suite
from repro.bench.experiments.s73 import cpu_memory
from repro.bench.experiments.s75 import (checkpoint_tradeoff,
                                         preemption_delays)

__all__ = [
    "checkpoint_tradeoff",
    "codebase_comparison",
    "cpu_memory",
    "cross_gpu_replay",
    "cve_elimination",
    "fleet_scaling",
    "inference_delays",
    "interaction_intervals",
    "measure_fastpath",
    "measure_fleet",
    "measure_obs",
    "measure_serve",
    "measure_store",
    "measure_surgery",
    "obs_overhead",
    "preemption_delays",
    "recording_granularity",
    "recording_stats",
    "replay_fastpath",
    "serve_throughput",
    "skip_interval_ablation",
    "startup_delays",
    "store_report",
    "surgery_report",
    "sync_submission_overhead",
    "training_delays",
    "validation_suite",
]
