"""Section 7.2: validation of replay correctness.

Three experiments, as in the paper:

1. repeated replays under interference (memory contention + thermal
   throttling + varied GPU clock) always produce results matching the
   CPU reference;
2. state-changing register logs match across runs -- only poll counts
   and job delays (not state-changing) differ;
3. injected transient failures (core offlining, PTE corruption) are
   detected and recovered by re-execution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import (fresh_replay_machine, get_recorded,
                                   model_input)
from repro.core.replayer import Replayer
from repro.gpu.faults import FaultInjector
from repro.stack.framework import build_model
from repro.stack.reference import run_reference


def _interfered_machine(family: str, seed: int, clock_scale: float = 1.0):
    machine = fresh_replay_machine(family, seed=seed)
    machine.interference.mem_contention = 1.0 + (seed % 5) * 0.3
    machine.interference.thermal_throttle = 1.0 + (seed % 3) * 0.2
    if clock_scale != 1.0:
        gpu = machine.require_gpu()
        gpu.clock_domain.set_rate(int(gpu.clock_hz * clock_scale))
    return machine


def validation_suite(models: Sequence[str] = ("mnist", "alexnet"),
                     family: str = "mali",
                     runs_per_model: int = 25) -> ResultTable:
    table = ResultTable(
        "Section 7.2: replay-correctness validation",
        ["model", "runs", "correct", "faults_injected",
         "faults_recovered"])
    for model_name in models:
        workload, _stack = get_recorded(family, model_name)
        model = build_model(model_name)
        correct = 0
        faults_injected = 0
        faults_recovered = 0
        for run in range(runs_per_model):
            clock_scale = (0.6, 1.0, 1.3)[run % 3]
            machine = _interfered_machine(family, seed=5000 + run,
                                          clock_scale=clock_scale)
            replayer = Replayer(machine)
            replayer.init()
            replayer.load(workload.recording)
            x = model_input(model_name, seed=run)
            inject = run % 5 == 4
            if inject:
                faults_injected += 1
                injector = FaultInjector(machine.require_gpu())
                machine.clock.schedule(
                    200_000, lambda inj=injector: _transient_fault(
                        machine, inj))
            result = replayer.replay(inputs={"input": x})
            expected = run_reference(model, x, fuse=False)
            if np.array_equal(result.output,
                              expected.reshape(result.output.shape)):
                correct += 1
            if inject and result.attempts > 1:
                faults_recovered += 1
        table.add_row(model=model_name, runs=runs_per_model,
                      correct=correct, faults_injected=faults_injected,
                      faults_recovered=faults_recovered)
    table.notes.append(
        "paper: replayer always gives correct results across 2000 runs "
        "with interference; injected transient faults detected and "
        "recovered by re-execution")
    return table


def _transient_fault(machine, injector: FaultInjector) -> None:
    # Offline every shader core so the fault is always disruptive (a
    # partial mask would let jobs proceed on the surviving cores).
    injector.offline_cores(0xFF)
    machine.clock.schedule(800_000, injector.restore_cores)
