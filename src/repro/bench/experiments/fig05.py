"""Figure 5: intervals between CPU/GPU interactions, by GPU job.

Paper observation (AlexNet on Mali): intervals among earlier jobs are
longer than later ones (startup-time JIT, memory management), and the
GPU-idle heuristic proves more than half of the observed interval time
skippable.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ResultTable
from repro.bench.workloads import build_stack
from repro.core.intervals import accumulate_by_job, summarize
from repro.core.recorder import make_recorder


def interaction_intervals(model_name: str = "alexnet",
                          family: str = "mali") -> ResultTable:
    stack = build_stack(family, model_name, fuse=False)
    recorder = make_recorder(stack.driver)
    x = np.random.default_rng(2).standard_normal(
        stack.net.model.input_shape).astype(np.float32)
    recorder.begin(model_name)
    stack.net.run(x)
    recorder.end()

    by_job = accumulate_by_job(recorder.interval_samples)
    stats = summarize(recorder.interval_samples)

    table = ResultTable(
        "Figure 5: CPU/GPU interaction intervals accumulated by job",
        ["job", "interval_us", "cumulative_us"])
    cumulative = 0
    for job in sorted(by_job):
        cumulative += by_job[job]
        table.add_row(job=job,
                      interval_us=by_job[job] / 1e3,
                      cumulative_us=cumulative / 1e3)
    table.notes.append(
        f"skippable: {100 * stats.skippable_fraction:.0f}% of interval "
        f"time ({stats.skippable_count}/{stats.skippable_count + stats.preserved_count} intervals); "
        "paper: GPU provably idle for more than half of the intervals")
    return table
