"""Fleet scaling: N-node cluster vs a single node, plus the
fleet-vs-single differential contract.

Two measurements share one flat result dict (the ``BENCH_fleet.json``
pin):

- **scaling**: a skewed-popularity (Zipf), diurnal request stream hot
  enough to saturate one node is served by a single node (one
  ReplayServer booted exactly like a fleet node: one worker per
  family, no autoscaler) and by an N-node fleet (digest-affinity
  routing + queue-depth autoscaling). ``scaling_ratio`` is single
  makespan over fleet makespan -- both virtual nanoseconds off the
  same deterministic event loop, so the ratio is exactly
  reproducible. The ISSUE 9 bar: a 3-node fleet clears 2x.
- **differential**: a 500-request faulted stream served by the fleet
  and by a single deep-queue server; ``differential_ok`` is 1.0 only
  if every answer is byte-identical across the two and the fleet
  neither lost nor double-answered anything. Pinned at 1.0, so the
  bench guard (floor = pin x 0.8) fails the moment it is not.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import ResultTable
from repro.fleet import Fleet, FleetConfig
from repro.serve import (LoadgenConfig, RecordingStore, ReplayServer,
                         ServerConfig, generate_requests)
from repro.units import MS, SEC, US

#: The (family, model) pairs the fleet benchmark streams.
FLEET_BENCH_MIX = (("mali", "mnist"), ("mali", "kws"),
                   ("v3d", "mnist"))


def _skewed_stream(requests: int, seed: int):
    """Zipf-popular, diurnally-shaped, arriving fast enough to bury a
    single node (interarrival well under one service time)."""
    return generate_requests(LoadgenConfig(
        requests=requests, seed=seed, mix=FLEET_BENCH_MIX,
        mean_interarrival_ns=200 * US, deadline_ns=0,
        shape="diurnal", popularity="zipf", zipf_s=1.2))


def _fuzz_stream(requests: int, seed: int):
    return generate_requests(LoadgenConfig(
        requests=requests, seed=seed, mix=FLEET_BENCH_MIX,
        deadline_ns=0, fault_rate=0.1, shape="diurnal",
        popularity="zipf"))


def _single_node(store, seed: int, queue_depth: int):
    """One ReplayServer shaped exactly like one fleet node boots:
    one worker per hosted family."""
    return ReplayServer(store, ServerConfig(
        families=("mali", "v3d"), seed=seed,
        queue_depth=queue_depth, timeseries=False))


def measure_fleet(requests: int = 200, seed: int = 17,
                  nodes: int = 3,
                  differential_requests: int = 500) -> Dict[str, object]:
    """Measure scaling + differential; returns a flat dict."""
    store = RecordingStore.from_zoo(FLEET_BENCH_MIX)

    # -- scaling curve: single node vs N-node fleet -----------------
    stream = _skewed_stream(requests, seed)
    single = _single_node(store, seed, queue_depth=requests)
    single_report = single.serve(stream)
    single.close()

    fleet = Fleet(store, FleetConfig(
        nodes=nodes, queue_depth=requests, seed=seed))
    fleet_report = fleet.serve(stream)
    fleet.close()
    for report, name in ((single_report, "single"),
                         (fleet_report, "fleet")):
        if report.lost or report.counts()["shed"]:
            raise AssertionError(
                f"{name} benchmark run lost/shed requests: "
                f"{report.counts()}, lost={report.lost}")

    counters = fleet_report.snapshot["counters"]
    routed = counters.get("fleet.router.hops", 0)
    affinity = counters.get("fleet.router.affinity_hits", 0)
    percentiles = fleet_report.latency_percentiles()

    # -- differential: fleet answers == single-node answers ---------
    fuzz = _fuzz_stream(differential_requests, seed + 1)
    oracle = ReplayServer(store, ServerConfig(
        families=("mali", "mali", "v3d"), seed=seed,
        queue_depth=differential_requests, timeseries=False))
    oracle_report = oracle.serve(fuzz)
    oracle.close()
    diff_fleet = Fleet(store, FleetConfig(
        nodes=nodes, queue_depth=differential_requests, seed=seed))
    diff_report = diff_fleet.serve(fuzz)
    diff_fleet.close()

    oracle_answers = {r.rid: r.output_digest()
                      for r in oracle_report.responses}
    fleet_answers = {r.rid: r.output_digest()
                     for r in diff_report.responses}
    differential_ok = (
        not diff_report.lost and not diff_report.duplicates
        and diff_report.counts()["shed"] == 0
        and fleet_answers == oracle_answers)

    return {
        "requests": requests,
        "nodes": nodes,
        "single_makespan_ns": int(single_report.makespan_ns),
        "fleet_makespan_ns": int(fleet_report.makespan_ns),
        "single_rps": single_report.throughput_rps(),
        "fleet_rps": fleet_report.throughput_rps(),
        "scaling_ratio": single_report.makespan_ns
        / fleet_report.makespan_ns,
        "fleet_p50_ns": percentiles["p50"],
        "fleet_p95_ns": percentiles["p95"],
        "fleet_p99_ns": percentiles["p99"],
        "affinity_hits": int(affinity),
        "p2c_picks": int(counters.get("fleet.router.p2c_picks", 0)),
        "affinity_ratio": affinity / routed if routed else 0.0,
        "autoscale_up": int(counters.get("fleet.autoscale.up", 0)),
        "workers_peak": int(
            fleet_report.snapshot["gauges"]["fleet.workers.peak"]),
        "differential_requests": differential_requests,
        "differential_ok": 1.0 if differential_ok else 0.0,
        "differential_lost": len(diff_report.lost),
        "differential_duplicates": len(diff_report.duplicates),
    }


def fleet_scaling(requests: int = 200, seed: int = 17,
                  nodes: int = 3) -> ResultTable:
    """The fleet benchmark as a printable result table."""
    m = measure_fleet(requests=requests, seed=seed, nodes=nodes)
    table = ResultTable(
        f"Fleet scaling ({requests} Zipf-skewed requests): "
        f"{nodes}-node fleet vs single node",
        ["metric", "value"])
    for metric in ("single_makespan_ns", "fleet_makespan_ns",
                   "single_rps", "fleet_rps", "scaling_ratio",
                   "fleet_p50_ns", "fleet_p95_ns", "fleet_p99_ns",
                   "affinity_ratio", "autoscale_up", "workers_peak",
                   "differential_ok"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "scaling_ratio and differential_ok are the CI-guarded "
        "metrics; makespans are virtual time, so both are exactly "
        "reproducible")
    return table
