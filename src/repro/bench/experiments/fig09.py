"""Figure 9: replaying recordings from other GPUs on Mali G71.

Paper result (vecadd over 16M elements): recordings from G31 (1 core)
and G52 (2 cores) replay on G71 after the page-table/MMU patch, but at
4-8x lower performance; further patching the core-affinity register
recovers full 8-core speed. Unpatched recordings do not replay at all.
"""

from __future__ import annotations

import numpy as np

from repro.bench.harness import ResultTable, cached
from repro.bench.workloads import (fresh_replay_machine,
                                   record_math_kernel, vecadd_ir)
from repro.core.patching import patch_recording_for_sku
from repro.core.replayer import Replayer
from repro.errors import ReplayError

#: Scaled from the paper's 16M to keep numpy time bounded; the shape
#: (per-core scaling) is size-independent.
VECADD_ELEMENTS = 1 << 20

SOURCE_BOARDS = {"g31": "odroid-c4", "g52": "odroid-n2",
                 "g71": "hikey960"}


def _vecadd_recording(sku: str):
    def produce():
        return record_math_kernel("mali", vecadd_ir(VECADD_ELEMENTS),
                                  SOURCE_BOARDS[sku])
    return cached(("vecadd", sku), produce)


def _replay_on_g71(recording, inputs, expect) -> int:
    machine = fresh_replay_machine("mali", seed=2024, board="hikey960")
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(recording)
    result = replayer.replay(inputs=inputs)
    if not np.array_equal(result.outputs["c"], expect):
        raise AssertionError("cross-GPU replay produced wrong results")
    return result.duration_ns


def cross_gpu_replay() -> ResultTable:
    rng = np.random.default_rng(3)
    a = rng.standard_normal(VECADD_ELEMENTS).astype(np.float32)
    b = rng.standard_normal(VECADD_ELEMENTS).astype(np.float32)
    inputs = {"a": a, "b": b}
    expect = a + b

    table = ResultTable(
        "Figure 9: cross-GPU record/replay (vecadd) on Mali G71",
        ["recorded_on", "patch", "replays", "duration_ms",
         "vs_native"])

    native = _vecadd_recording("g71").recording
    native_ns = _replay_on_g71(native, inputs, expect)
    table.add_row(recorded_on="g71", patch="none (native)",
                  replays="yes", duration_ms=native_ns / 1e6,
                  vs_native=1.0)

    for sku in ("g31", "g52"):
        recording = _vecadd_recording(sku).recording
        # Unpatched: must fail (wrong PTE bits / MMU config).
        try:
            _replay_on_g71(recording, inputs, expect)
            unpatched = "yes (UNEXPECTED)"
        except (ReplayError, AssertionError):
            unpatched = "no"
        table.add_row(recorded_on=sku, patch="unpatched",
                      replays=unpatched, duration_ms=float("nan"),
                      vs_native=float("nan"))

        half, _ = patch_recording_for_sku(recording, "g71",
                                          patch_affinity=False)
        half_ns = _replay_on_g71(half, inputs, expect)
        table.add_row(recorded_on=sku, patch="pgtable+mmu",
                      replays="yes", duration_ms=half_ns / 1e6,
                      vs_native=half_ns / native_ns)

        full, _ = patch_recording_for_sku(recording, "g71",
                                          patch_affinity=True)
        full_ns = _replay_on_g71(full, inputs, expect)
        table.add_row(recorded_on=sku, patch="pgtable+mmu+affinity",
                      replays="yes", duration_ms=full_ns / 1e6,
                      vs_native=full_ns / native_ns)

    table.notes.append(
        "paper: patched-but-affinity-limited replay runs 4-8x slower; "
        "affinity patch restores full 8-core speed")
    return table
