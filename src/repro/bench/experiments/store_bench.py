"""Recording vault: fleet dedup ratio and fetch fidelity.

Two claims, both rooted in the paper's deployment story:

- **Dedup**: a fleet's recordings of one model family are mostly the
  *same bytes*. The corpus is three mali zoo models recorded on
  odroid-c4 (g31) plus their g52- and g71-patched variants (Section
  6.4) -- nine recordings whose dumps differ only in page-table
  entries and affinity words. Content-defined chunking stores the
  shared runs once: the vault's on-disk footprint (objects +
  manifests + index) must be well under the sum of individually
  zipped recordings. ``dedup_savings`` (1 - vault/zipped, higher is
  better) is the metric ``BENCH_store.json`` pins and CI guards.

- **Fidelity**: a fetch out of the vault is the recording, not an
  approximation. For one model per family (mali / v3d / adreno) the
  reassembled recording must serialize byte-identically to the
  original -- which makes every downstream digest-keyed cache and
  replay decision provably unaffected by the storage layer.
"""

from __future__ import annotations

from tempfile import TemporaryDirectory
from typing import Dict, List

from repro.bench.harness import ResultTable
from repro.bench.workloads import get_recorded
from repro.core.patching import patch_recording_for_sku
from repro.store import Vault

#: The fleet corpus: (model, fuse) zoo workloads recorded on the
#: smallest mali board, then patched up to the two bigger SKUs.
STORE_BENCH_MODELS = ("mnist", "kws", "har")
STORE_BENCH_BOARD = "odroid-c4"
STORE_BENCH_SKUS = ("g52", "g71")

#: One model per family for the fetch-fidelity check.
STORE_BENCH_FAMILIES = ("mali", "v3d", "adreno")


def _fleet_corpus() -> List:
    """Nine same-family recordings: three models x (g31 + 2 patches)."""
    corpus = []
    for model in STORE_BENCH_MODELS:
        workload, _stack = get_recorded("mali", model, True,
                                        "monolithic", STORE_BENCH_BOARD)
        base = workload.recording
        corpus.append(base)
        for sku in STORE_BENCH_SKUS:
            patched, _report = patch_recording_for_sku(base, sku)
            corpus.append(patched)
    return corpus


def measure_store() -> Dict[str, object]:
    """Pack the fleet corpus, measure dedup; round-trip one recording
    per family. Returns a flat dict (the BENCH_store.json format)."""
    corpus = _fleet_corpus()
    zipped_sum = sum(r.size_zipped() for r in corpus)
    with TemporaryDirectory() as root:
        vault = Vault(root)
        for recording in corpus:
            vault.pack(recording)
        stats = vault.stats()
        disk = stats.disk_bytes
        chunk_refs = stats.chunk_refs
        unique_chunks = stats.unique_chunks

        identical = []
        for family in STORE_BENCH_FAMILIES:
            workload, _stack = get_recorded(family, "mnist")
            recording = workload.recording
            manifest = vault.pack(recording)
            fetched = vault.fetch(manifest.digest)
            identical.append(fetched.to_bytes() == recording.to_bytes()
                             and fetched.digest() == recording.digest())

    ratio = disk / zipped_sum
    return {
        "recordings": len(corpus),
        "models": len(STORE_BENCH_MODELS),
        "skus_per_model": 1 + len(STORE_BENCH_SKUS),
        "zipped_sum_bytes": zipped_sum,
        "vault_disk_bytes": disk,
        "dedup_ratio": ratio,
        "dedup_savings": 1.0 - ratio,
        "chunk_refs": chunk_refs,
        "unique_chunks": unique_chunks,
        "fetch_identical_families": sum(identical),
        "families_checked": len(STORE_BENCH_FAMILIES),
    }


def store_report() -> ResultTable:
    """The vault benchmark as a printable result table."""
    m = measure_store()
    table = ResultTable(
        f"Recording vault: {m['recordings']} same-family recordings "
        f"({m['models']} models x {m['skus_per_model']} SKUs)",
        ["metric", "value"])
    for metric in ("zipped_sum_bytes", "vault_disk_bytes",
                   "dedup_ratio", "dedup_savings", "chunk_refs",
                   "unique_chunks", "fetch_identical_families"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "dedup_savings is the CI-guarded metric; chunk boundaries and "
        "digests are deterministic, so refs/unique counts are exact")
    table.notes.append(
        "fetch_identical_families counts families whose vault fetch "
        "serializes byte-identically to the original recording")
    return table
