"""Serving throughput: batched multi-worker pool vs sequential worker.

One closed batch of requests (everything arrives at t=0, no deadlines,
no faults) is served three ways:

- **mega-batched**: four mali workers, same-content batching on and
  ``mega_batch=True`` -- a worker runs each same-digest batch as ONE
  fused replay (the chain executes once, the batch rides through the
  shader executor's batch dimension and MMIO superblocks);
- **batched**: the same pool with per-request replay -- warm workers
  keep their session maps and resident dumps, so batch-mates pay only
  input/output movement (the PR 4 behaviour);
- **sequential**: one worker, ``max_batch=1`` -- every dispatch stands
  alone, the pre-serving-engine way of answering a stream.

``throughput_ratio`` is sequential makespan over the *selected* mode's
makespan (mega by default; ``mega=False`` selects plain batching, the
``grr bench --suite serve --no-mega`` arm). Both modes' makespans land
in the result so the pin records the full picture. All makespans are
*virtual* nanoseconds off the same deterministic event loop, so the
ratios are exactly reproducible. The mix leads with ``dense-serve``
(the zoo model whose multi-MB weights are not shrunk) so the dump
re-uploads that warm batching avoids cost what they would on a real
board.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import ResultTable
from repro.serve import (LoadgenConfig, RecordingStore, ReplayServer,
                         ServerConfig, generate_requests)
from repro.units import SEC

#: The (family, model) pairs the serving benchmark streams.
SERVE_BENCH_MIX = (("mali", "dense-serve"), ("mali", "mnist"))


def _makespan(store: RecordingStore, config: ServerConfig,
              requests) -> Dict[str, object]:
    server = ReplayServer(store, config)
    report = server.serve(requests)
    server.close()
    if report.lost or report.counts()["shed"]:
        raise AssertionError(
            f"benchmark run lost/shed requests: {report.counts()}, "
            f"lost={report.lost}")
    return {
        "makespan_ns": report.makespan_ns,
        "percentiles": report.latency_percentiles(),
        "batches": report.snapshot["counters"]["serve.batches"],
        "mega_batches": report.snapshot["counters"].get(
            "serve.mega.batches", 0),
    }


def measure_serve(requests: int = 64, seed: int = 7,
                  workers: int = 4,
                  max_batch: int = 4,
                  mega: bool = True) -> Dict[str, object]:
    """Serve the same closed batch every way; returns a flat dict.

    ``mega`` selects which batched mode ``throughput_ratio`` (the
    pinned, CI-guarded metric) compares against sequential; both
    batched modes are always measured and reported.
    """
    stream = generate_requests(LoadgenConfig(
        requests=requests, seed=seed, mix=SERVE_BENCH_MIX,
        mean_interarrival_ns=0, deadline_ns=0, fault_rate=0.0))
    store = RecordingStore.from_zoo(SERVE_BENCH_MIX)

    pool = ("mali",) * workers
    plain = _makespan(store, ServerConfig(
        families=pool, seed=seed,
        queue_depth=requests, max_batch=max_batch), stream)
    fused = _makespan(store, ServerConfig(
        families=pool, seed=seed,
        queue_depth=requests, max_batch=max_batch,
        mega_batch=True), stream)
    sequential = _makespan(store, ServerConfig(
        families=("mali",), seed=seed,
        queue_depth=requests, max_batch=1), stream)

    selected = fused if mega else plain
    ratio = sequential["makespan_ns"] / selected["makespan_ns"]
    return {
        "requests": requests,
        "workers": workers,
        "max_batch": max_batch,
        "mega": mega,
        "batched_makespan_ns": int(selected["makespan_ns"]),
        "sequential_makespan_ns": int(sequential["makespan_ns"]),
        "plain_makespan_ns": int(plain["makespan_ns"]),
        "mega_makespan_ns": int(fused["makespan_ns"]),
        "batched_rps": requests * SEC / selected["makespan_ns"],
        "sequential_rps": requests * SEC / sequential["makespan_ns"],
        "throughput_ratio": ratio,
        "plain_throughput_ratio":
            sequential["makespan_ns"] / plain["makespan_ns"],
        "mega_throughput_ratio":
            sequential["makespan_ns"] / fused["makespan_ns"],
        "batched_batches": int(selected["batches"]),
        "mega_fused_batches": int(fused["mega_batches"]),
        "p50_ns": selected["percentiles"]["p50"],
        "p95_ns": selected["percentiles"]["p95"],
        "p99_ns": selected["percentiles"]["p99"],
    }


def serve_throughput(requests: int = 64, seed: int = 7,
                     mega: bool = True) -> ResultTable:
    """The serving benchmark as a printable result table."""
    m = measure_serve(requests=requests, seed=seed, mega=mega)
    mode = "mega-batched" if mega else "batched"
    table = ResultTable(
        f"Serving throughput ({requests} requests): {mode} "
        f"{m['workers']}-worker pool vs sequential worker",
        ["metric", "value"])
    for metric in ("batched_makespan_ns", "sequential_makespan_ns",
                   "plain_makespan_ns", "mega_makespan_ns",
                   "batched_rps", "sequential_rps", "throughput_ratio",
                   "plain_throughput_ratio", "mega_throughput_ratio",
                   "batched_batches", "mega_fused_batches",
                   "p50_ns", "p95_ns", "p99_ns"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "throughput_ratio (sequential over the selected batched mode) "
        "is the CI-guarded metric; all makespans are virtual time, so "
        "the ratios are exactly reproducible")
    return table
