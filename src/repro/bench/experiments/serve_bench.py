"""Serving throughput: batched multi-worker pool vs sequential worker.

One closed batch of requests (everything arrives at t=0, no deadlines,
no faults) is served twice:

- **batched**: four mali workers, same-content batching on -- warm
  workers keep their session maps and resident dumps, so batch-mates
  pay only input/output movement;
- **sequential**: one worker, ``max_batch=1`` -- every dispatch stands
  alone, the pre-serving-engine way of answering a stream.

``throughput_ratio`` is sequential makespan over batched makespan.
Both makespans are *virtual* nanoseconds off the same deterministic
event loop, so the ratio is exactly reproducible -- the one metric
``BENCH_serve.json`` pins and CI guards. The mix leads with
``dense-serve`` (the zoo model whose multi-MB weights are not shrunk)
so the dump re-uploads that warm batching avoids cost what they would
on a real board.
"""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import ResultTable
from repro.serve import (LoadgenConfig, RecordingStore, ReplayServer,
                         ServerConfig, generate_requests)
from repro.units import SEC

#: The (family, model) pairs the serving benchmark streams.
SERVE_BENCH_MIX = (("mali", "dense-serve"), ("mali", "mnist"))


def _makespan(store: RecordingStore, config: ServerConfig,
              requests) -> Dict[str, object]:
    server = ReplayServer(store, config)
    report = server.serve(requests)
    server.close()
    if report.lost or report.counts()["shed"]:
        raise AssertionError(
            f"benchmark run lost/shed requests: {report.counts()}, "
            f"lost={report.lost}")
    return {
        "makespan_ns": report.makespan_ns,
        "percentiles": report.latency_percentiles(),
        "batches": report.snapshot["counters"]["serve.batches"],
    }


def measure_serve(requests: int = 64, seed: int = 7,
                  workers: int = 4,
                  max_batch: int = 4) -> Dict[str, object]:
    """Serve the same closed batch both ways; returns a flat dict."""
    stream = generate_requests(LoadgenConfig(
        requests=requests, seed=seed, mix=SERVE_BENCH_MIX,
        mean_interarrival_ns=0, deadline_ns=0, fault_rate=0.0))
    store = RecordingStore.from_zoo(SERVE_BENCH_MIX)

    batched = _makespan(store, ServerConfig(
        families=("mali",) * workers, seed=seed,
        queue_depth=requests, max_batch=max_batch), stream)
    sequential = _makespan(store, ServerConfig(
        families=("mali",), seed=seed,
        queue_depth=requests, max_batch=1), stream)

    ratio = sequential["makespan_ns"] / batched["makespan_ns"]
    return {
        "requests": requests,
        "workers": workers,
        "max_batch": max_batch,
        "batched_makespan_ns": int(batched["makespan_ns"]),
        "sequential_makespan_ns": int(sequential["makespan_ns"]),
        "batched_rps": requests * SEC / batched["makespan_ns"],
        "sequential_rps": requests * SEC / sequential["makespan_ns"],
        "throughput_ratio": ratio,
        "batched_batches": int(batched["batches"]),
        "p50_ns": batched["percentiles"]["p50"],
        "p95_ns": batched["percentiles"]["p95"],
        "p99_ns": batched["percentiles"]["p99"],
    }


def serve_throughput(requests: int = 64, seed: int = 7) -> ResultTable:
    """The serving benchmark as a printable result table."""
    m = measure_serve(requests=requests, seed=seed)
    table = ResultTable(
        f"Serving throughput ({requests} requests): batched "
        f"{m['workers']}-worker pool vs sequential worker",
        ["metric", "value"])
    for metric in ("batched_makespan_ns", "sequential_makespan_ns",
                   "batched_rps", "sequential_rps", "throughput_ratio",
                   "batched_batches", "p50_ns", "p95_ns", "p99_ns"):
        table.add_row(metric=metric, value=m[metric])
    table.notes.append(
        "throughput_ratio is the CI-guarded metric; both makespans "
        "are virtual time, so the ratio is exactly reproducible")
    return table
