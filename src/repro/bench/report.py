"""Regenerate the paper's full evaluation in one run.

Usage::

    python -m repro.bench.report            # everything
    python -m repro.bench.report fig07 tab06  # a subset

Prints every table/figure with its paper-expectation note. This is the
source of the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List

from repro.bench import experiments as exp

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig03": exp.sync_submission_overhead,
    "fig05": exp.interaction_intervals,
    "fig06-mali": lambda: exp.startup_delays("mali"),
    "fig06-v3d": lambda: exp.startup_delays("v3d"),
    "fig07-mali": lambda: exp.inference_delays("mali"),
    "fig07-v3d": lambda: exp.inference_delays("v3d"),
    "fig08": exp.training_delays,
    "fig09": exp.cross_gpu_replay,
    "fig10": exp.skip_interval_ablation,
    "fig11": exp.recording_granularity,
    "tab04": exp.codebase_comparison,
    "tab05": exp.cve_elimination,
    "tab06-mali": lambda: exp.recording_stats("mali"),
    "tab06-v3d": lambda: exp.recording_stats("v3d"),
    "s72": exp.validation_suite,
    "s73": exp.cpu_memory,
    "s75-preempt": exp.preemption_delays,
    "s75-checkpoint": exp.checkpoint_tradeoff,
}


def run(names: List[str]) -> None:
    selected = names or list(EXPERIMENTS)
    for name in selected:
        prefix_matches = [key for key in EXPERIMENTS
                          if key == name or key.startswith(name)]
        if not prefix_matches:
            print(f"unknown experiment {name!r}; "
                  f"known: {', '.join(EXPERIMENTS)}")
            continue
        for key in prefix_matches:
            table = EXPERIMENTS[key]()
            print(f"\n[{key}]")
            print(table.render())


def main() -> None:
    run(sys.argv[1:])


if __name__ == "__main__":
    main()
