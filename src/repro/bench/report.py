"""Regenerate the paper's full evaluation in one run.

Usage::

    python -m repro.bench.report            # everything
    python -m repro.bench.report fig07 tab06  # a subset
    python -m repro.bench.report --json BENCH_all.json fig07

``--json`` additionally writes every selected table plus the global
metrics snapshot (recording-cache hits/misses etc.) as one JSON
document -- the machine-readable artifact CI archives.

Prints every table/figure with its paper-expectation note. This is the
source of the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, Dict, List, Optional

from repro.bench import experiments as exp
from repro.obs.metrics import global_registry

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "fig03": exp.sync_submission_overhead,
    "fig05": exp.interaction_intervals,
    "fig06-mali": lambda: exp.startup_delays("mali"),
    "fig06-v3d": lambda: exp.startup_delays("v3d"),
    "fig07-mali": lambda: exp.inference_delays("mali"),
    "fig07-v3d": lambda: exp.inference_delays("v3d"),
    "fig08": exp.training_delays,
    "fig09": exp.cross_gpu_replay,
    "fig10": exp.skip_interval_ablation,
    "fig11": exp.recording_granularity,
    "tab04": exp.codebase_comparison,
    "tab05": exp.cve_elimination,
    "tab06-mali": lambda: exp.recording_stats("mali"),
    "tab06-v3d": lambda: exp.recording_stats("v3d"),
    "s72": exp.validation_suite,
    "s73": exp.cpu_memory,
    "s75-preempt": exp.preemption_delays,
    "s75-checkpoint": exp.checkpoint_tradeoff,
}


def run(names: List[str],
        json_path: Optional[str] = None) -> Dict[str, object]:
    selected = names or list(EXPERIMENTS)
    tables: Dict[str, object] = {}
    for name in selected:
        prefix_matches = [key for key in EXPERIMENTS
                          if key == name or key.startswith(name)]
        if not prefix_matches:
            print(f"unknown experiment {name!r}; "
                  f"known: {', '.join(EXPERIMENTS)}")
            continue
        for key in prefix_matches:
            table = EXPERIMENTS[key]()
            tables[key] = table
            print(f"\n[{key}]")
            print(table.render())
    if json_path is not None:
        payload = {
            "tables": {key: table.to_dict()
                       for key, table in tables.items()},
            "metrics": global_registry().snapshot(),
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
        print(f"\nwrote {json_path}")
    return tables


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.report",
        description="regenerate the paper's evaluation")
    parser.add_argument("names", nargs="*",
                        help="experiment names/prefixes (default: all)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write tables + metrics as JSON")
    args = parser.parse_args()
    run(args.names, json_path=args.json)


if __name__ == "__main__":
    main()
