"""The experiment harness regenerating the paper's evaluation.

- :mod:`repro.bench.workloads` -- stack/workload builders and the
  Table 6 model sets;
- :mod:`repro.bench.harness` -- result tables and a recording cache;
- :mod:`repro.bench.experiments` -- one function per paper table or
  figure, each returning a :class:`~repro.bench.harness.ResultTable`.
"""

from repro.bench.harness import ResultTable, clear_recording_cache
from repro.bench.workloads import (MALI_INFERENCE_SET, V3D_INFERENCE_SET,
                                   build_stack, fresh_replay_machine,
                                   get_recorded, vecadd_ir)

__all__ = [
    "MALI_INFERENCE_SET",
    "ResultTable",
    "V3D_INFERENCE_SET",
    "build_stack",
    "clear_recording_cache",
    "fresh_replay_machine",
    "get_recorded",
    "vecadd_ir",
]
