"""Workload builders shared by every experiment.

The two evaluation sets mirror Table 6: choices differ slightly
between Mali and v3d "because their ML frameworks do not implement
exactly the same set of NNs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.harness import (RecordedWorkload, record_inference,
                                record_kernel_workload)
from repro.bench.harness import cached
from repro.environments.base import host_kernel_configures_gpu
from repro.errors import ReproError
from repro.gpu.isa import Op
from repro.soc.machine import Machine
from repro.stack.driver import AdrenoDriver, MaliDriver, V3dDriver
from repro.stack.framework import AclNetwork, NcnnNetwork, build_model
from repro.stack.framework.base import NetworkRunner
from repro.stack.runtime import OpenClRuntime, VulkanRuntime
from repro.stack.runtime.kernel_ir import KernelIR, KernelOp

MALI_INFERENCE_SET = ("mnist", "alexnet", "mobilenet", "squeezenet",
                      "resnet12", "vgg16")
V3D_INFERENCE_SET = ("yolov4-tiny", "alexnet", "mobilenet", "squeezenet",
                     "resnet18", "vgg16")

#: The full Table 3 recording roster (18 inference workloads on Mali).
MALI_FULL_ROSTER = MALI_INFERENCE_SET + (
    "lenet5", "googlenet-lite", "kws", "har", "autoencoder",
    "yolov4-tiny", "resnet18")

MALI_BOARD = "hikey960"
V3D_BOARD = "raspberrypi4"


@dataclass
class StackHandle:
    """A fully-configured stack ready to run (and record) a model."""

    machine: Machine
    driver: object
    runtime: object
    net: NetworkRunner

    def run(self, x: np.ndarray, **kwargs) -> np.ndarray:
        return self.net.run(x, **kwargs)


ADRENO_BOARD = "pixel4"


def board_for_family(family: str) -> str:
    if family == "mali":
        return MALI_BOARD
    if family == "v3d":
        return V3D_BOARD
    if family == "adreno":
        return ADRENO_BOARD
    raise ReproError(f"unknown GPU family {family!r}")


def build_stack(family: str, model_name: str, fuse: bool = False,
                seed: int = 3, board: Optional[str] = None,
                obs: bool = False) -> StackHandle:
    """Bring up the full GPU stack for one model on a fresh machine.

    ``obs=True`` enables observability *before* driver construction so
    the driver's chokepoint stream feeds the obs session too.
    """
    board = board or board_for_family(family)
    machine = Machine.create(board, seed=seed)
    if obs:
        from repro.obs import enable_observability
        enable_observability(machine)
    model = build_model(model_name)
    if family == "mali":
        driver = MaliDriver(machine)
        runtime = OpenClRuntime(driver)
        net = AclNetwork(runtime, model, fuse=fuse)
    elif family == "adreno":
        driver = AdrenoDriver(machine)
        runtime = OpenClRuntime(driver)
        net = AclNetwork(runtime, model, fuse=fuse)
    elif family == "v3d":
        driver = V3dDriver(machine)
        runtime = VulkanRuntime(driver)
        net = NcnnNetwork(runtime, model, fuse=fuse)
    else:
        raise ReproError(f"unknown GPU family {family!r}")
    net.configure()
    return StackHandle(machine, driver, runtime, net)


def fresh_replay_machine(family: str, seed: int = 1000,
                         board: Optional[str] = None,
                         flight_capacity: Optional[int] = None) -> Machine:
    """A machine for the replay side, GPU power configured by the host
    kernel (the D1 userspace/kernel deployments)."""
    machine = Machine.create(board or board_for_family(family), seed=seed,
                             flight_capacity=flight_capacity)
    host_kernel_configures_gpu(machine)
    return machine


def get_recorded(family: str, model_name: str, fuse: bool = False,
                 granularity: str = "monolithic",
                 board: Optional[str] = None
                 ) -> Tuple[RecordedWorkload, StackHandle]:
    """Record a workload once; reuse across experiments."""
    key = ("rec", family, model_name, fuse, granularity, board)

    def produce():
        stack = build_stack(family, model_name, fuse=fuse, board=board)
        warm = np.zeros(stack.net.model.input_shape, np.float32)
        stack.net.run(warm)
        workload = record_inference(stack.net, granularity=granularity)
        return workload, stack

    return cached(key, produce)


def model_input(model_name: str, seed: int = 42) -> np.ndarray:
    model = build_model(model_name)
    rng = np.random.default_rng(seed)
    return rng.standard_normal(model.input_shape).astype(np.float32)


def vecadd_ir(elements: int) -> KernelIR:
    """The 16M-element vecadd math kernel of Figure 9 (scaled)."""
    shape = (elements,)
    return KernelIR(
        "vecadd",
        [KernelOp(Op.ADD, ("a", "b"), "c")],
        {"a": shape, "b": shape, "c": shape},
    )


def saxpy_ir(elements: int, alpha: float = 2.0) -> KernelIR:
    """Second math kernel of Table 3 (scale + add)."""
    shape = (elements,)
    return KernelIR(
        "saxpy",
        [KernelOp(Op.SCALE, ("x",), "t0", (alpha,)),
         KernelOp(Op.ADD, ("t0", "y"), "out")],
        {"x": shape, "y": shape, "t0": shape, "out": shape},
    )


def record_math_kernel(family: str, ir: KernelIR, board: str,
                       seed: int = 3) -> RecordedWorkload:
    """Record a raw kernel workload on the given board."""
    machine = Machine.create(board, seed=seed)
    if family == "mali":
        driver = MaliDriver(machine)
        runtime = OpenClRuntime(driver)
    else:
        driver = V3dDriver(machine)
        runtime = VulkanRuntime(driver)
    runtime.init_context()
    return record_kernel_workload(runtime, ir, ir.name)
