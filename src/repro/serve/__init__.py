"""``repro.serve`` -- the virtual-time concurrent replay serving engine.

Grown from the paper's end state ("run as recorded, many times"): a
pool of per-board replay workers behind a bounded admission queue,
batching same-content requests onto warm workers, with a failure
ladder that retries on a different worker and degrades to the
reference interpreter and finally the CPU reference path instead of
erroring. Deterministic by construction -- see DESIGN.md.
"""

from repro.serve.engine import (BATCH_BUCKETS, CPU_FALLBACK_NS,
                                RecordingStore, ReplayServer,
                                REQUEUE_BACKOFF_NS, ServeReport,
                                ServeResponse, ServerConfig,
                                TRANSIENT_FAULT_NS, VaultRecordingStore,
                                Worker, expected_outputs,
                                request_inputs, verify_report)
from repro.serve.loadgen import (FAULT_KINDS, FaultSpec, LoadgenConfig,
                                 NO_DEADLINE_NS, ServeRequest,
                                 generate_requests)

__all__ = [
    "BATCH_BUCKETS",
    "CPU_FALLBACK_NS",
    "FAULT_KINDS",
    "FaultSpec",
    "LoadgenConfig",
    "NO_DEADLINE_NS",
    "RecordingStore",
    "ReplayServer",
    "REQUEUE_BACKOFF_NS",
    "ServeReport",
    "ServeRequest",
    "ServeResponse",
    "ServerConfig",
    "TRANSIENT_FAULT_NS",
    "VaultRecordingStore",
    "Worker",
    "expected_outputs",
    "generate_requests",
    "request_inputs",
    "verify_report",
]
