"""Deterministic load generation for the replay serving engine.

A :class:`LoadgenConfig` plus a seed fully determines the request
stream: arrival times (exponential interarrivals), the (family, model)
mix, per-request input seeds, deadlines and the fault-injection
schedule all come from one ``random.Random(seed)``. Two runs with the
same config therefore submit byte-identical work -- the property the
determinism-under-concurrency tests key on.

Fault kinds (the adversarial schedule of the §7.2 validation, aimed at
the serving layer):

- ``gpu-transient``: all GPU cores power-collapse at dispatch and come
  back a few virtual milliseconds later; the worker's own §5.4
  re-execution is expected to absorb it.
- ``gpu-sticky``: the cores stay down for the whole dispatch; the
  worker fails, the server heals it and retries the request elsewhere.
- ``poison``: the request is served a deliberately corrupted copy of
  the recording (one flipped dump byte, hence a different digest);
  both replay paths must reject it and the request must fall all the
  way back to the CPU reference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.units import MS, SEC

#: Every fault kind the load generator can schedule.
FAULT_KINDS: Tuple[str, ...] = ("gpu-transient", "gpu-sticky", "poison")

#: Deadline sentinel for "never sheds on time" requests.
NO_DEADLINE_NS = 1 << 62


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, attached to the request it rides on."""

    kind: str


@dataclass(frozen=True)
class ServeRequest:
    """One inference request: which content, which input, by when."""

    rid: int
    family: str
    model: str
    arrival_ns: int
    input_seed: int
    deadline_ns: int = NO_DEADLINE_NS
    fault: Optional[FaultSpec] = None


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything that shapes the generated stream (seed included)."""

    requests: int = 200
    seed: int = 2026
    #: The (family, model) pairs requests draw from, uniformly.
    mix: Tuple[Tuple[str, str], ...] = (("mali", "mnist"),
                                        ("mali", "kws"),
                                        ("v3d", "mnist"))
    #: Mean of the exponential interarrival distribution; 0 means a
    #: closed batch (everything arrives at t=0).
    mean_interarrival_ns: int = 1 * MS
    #: Per-request deadline budget from arrival; 0 disables deadlines.
    deadline_ns: int = 2 * SEC
    #: Probability a request carries a fault.
    fault_rate: float = 0.0
    fault_kinds: Tuple[str, ...] = FAULT_KINDS

    def to_dict(self) -> dict:
        """JSON-able form (stamped into trace-event-log metadata so a
        saved log is self-describing)."""
        return {
            "requests": self.requests,
            "seed": self.seed,
            "mix": [list(pair) for pair in self.mix],
            "mean_interarrival_ns": self.mean_interarrival_ns,
            "deadline_ns": self.deadline_ns,
            "fault_rate": self.fault_rate,
            "fault_kinds": list(self.fault_kinds),
        }


def generate_requests(config: LoadgenConfig) -> List[ServeRequest]:
    """The seeded request stream, sorted by arrival time."""
    rng = random.Random(config.seed)
    t_ns = 0
    requests: List[ServeRequest] = []
    for rid in range(config.requests):
        if config.mean_interarrival_ns > 0:
            t_ns += int(rng.expovariate(1.0 / config.mean_interarrival_ns))
        family, model = config.mix[rng.randrange(len(config.mix))]
        input_seed = rng.randrange(1 << 31)
        fault: Optional[FaultSpec] = None
        if config.fault_rate > 0 and rng.random() < config.fault_rate:
            fault = FaultSpec(rng.choice(config.fault_kinds))
        deadline = (t_ns + config.deadline_ns if config.deadline_ns > 0
                    else NO_DEADLINE_NS)
        requests.append(ServeRequest(
            rid=rid, family=family, model=model, arrival_ns=t_ns,
            input_seed=input_seed, deadline_ns=deadline, fault=fault))
    return requests
