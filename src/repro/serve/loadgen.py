"""Deterministic load generation for the replay serving engine.

A :class:`LoadgenConfig` plus a seed fully determines the request
stream: arrival times (exponential interarrivals), the (family, model)
mix, per-request input seeds, deadlines and the fault-injection
schedule all come from one ``random.Random(seed)``. Two runs with the
same config therefore submit byte-identical work -- the property the
determinism-under-concurrency tests key on.

Fault kinds (the adversarial schedule of the §7.2 validation, aimed at
the serving layer):

- ``gpu-transient``: all GPU cores power-collapse at dispatch and come
  back a few virtual milliseconds later; the worker's own §5.4
  re-execution is expected to absorb it.
- ``gpu-sticky``: the cores stay down for the whole dispatch; the
  worker fails, the server heals it and retries the request elsewhere.
- ``poison``: the request is served a deliberately corrupted copy of
  the recording (one flipped dump byte, hence a different digest);
  both replay paths must reject it and the request must fall all the
  way back to the CPU reference.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.units import MS, SEC

#: Every fault kind the load generator can schedule.
FAULT_KINDS: Tuple[str, ...] = ("gpu-transient", "gpu-sticky", "poison")

#: Arrival-shape names ``LoadgenConfig.shape`` accepts.
ARRIVAL_SHAPES: Tuple[str, ...] = ("poisson", "diurnal", "spike")

#: Popularity distributions over the mix.
POPULARITIES: Tuple[str, ...] = ("uniform", "zipf")

#: Deadline sentinel for "never sheds on time" requests.
NO_DEADLINE_NS = 1 << 62


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, attached to the request it rides on."""

    kind: str


@dataclass(frozen=True)
class ServeRequest:
    """One inference request: which content, which input, by when."""

    rid: int
    family: str
    model: str
    arrival_ns: int
    input_seed: int
    deadline_ns: int = NO_DEADLINE_NS
    fault: Optional[FaultSpec] = None
    #: Multi-tenant admission identity; empty = untenanted (always
    #: admitted, quota-wise).
    tenant: str = ""
    #: Priority class: 0 = best-effort (first to shed under
    #: pressure), 1 = standard, 2 = critical.
    priority: int = 1


@dataclass(frozen=True)
class LoadgenConfig:
    """Everything that shapes the generated stream (seed included)."""

    requests: int = 200
    seed: int = 2026
    #: The (family, model) pairs requests draw from, uniformly.
    mix: Tuple[Tuple[str, str], ...] = (("mali", "mnist"),
                                        ("mali", "kws"),
                                        ("v3d", "mnist"))
    #: Mean of the exponential interarrival distribution; 0 means a
    #: closed batch (everything arrives at t=0).
    mean_interarrival_ns: int = 1 * MS
    #: Per-request deadline budget from arrival; 0 disables deadlines.
    deadline_ns: int = 2 * SEC
    #: Probability a request carries a fault.
    fault_rate: float = 0.0
    fault_kinds: Tuple[str, ...] = FAULT_KINDS
    #: Arrival shape. ``poisson`` is the plain exponential process;
    #: ``diurnal`` modulates the rate sinusoidally (one "day" per
    #: ``diurnal_period_ns``, trough-to-peak swing set by
    #: ``diurnal_amplitude``); ``spike`` multiplies the rate by
    #: ``spike_factor`` for the first ``spike_duty`` fraction of every
    #: ``spike_period_ns`` window. All shapes reuse the poisson
    #: stream's draws -- the same seed yields the same per-request
    #: randomness, only the spacing changes.
    shape: str = "poisson"
    diurnal_period_ns: int = 200 * MS
    diurnal_amplitude: float = 0.8
    spike_period_ns: int = 100 * MS
    spike_duty: float = 0.1
    spike_factor: float = 8.0
    #: How requests pick from the mix: ``uniform`` (every pair equally
    #: likely) or ``zipf`` (pair k with weight 1/(k+1)^zipf_s, in mix
    #: order -- lead the mix with the content you want hot).
    popularity: str = "uniform"
    zipf_s: float = 1.1
    #: Tenants requests are attributed to, uniformly; empty = the
    #: untenanted single-tenant world (no extra RNG draws, so old
    #: seeds keep their exact streams).
    tenants: Tuple[str, ...] = ()
    #: Priority classes drawn uniformly; empty = everyone standard.
    priorities: Tuple[int, ...] = ()

    def to_dict(self) -> dict:
        """JSON-able form (stamped into trace-event-log metadata so a
        saved log is self-describing)."""
        return {
            "requests": self.requests,
            "seed": self.seed,
            "mix": [list(pair) for pair in self.mix],
            "mean_interarrival_ns": self.mean_interarrival_ns,
            "deadline_ns": self.deadline_ns,
            "fault_rate": self.fault_rate,
            "fault_kinds": list(self.fault_kinds),
            "shape": self.shape,
            "popularity": self.popularity,
            "zipf_s": self.zipf_s,
            "tenants": list(self.tenants),
            "priorities": list(self.priorities),
        }


def _rate_multiplier(config: LoadgenConfig, t_ns: int) -> float:
    """Instantaneous arrival-rate multiplier at virtual time ``t_ns``
    (1.0 for the plain poisson shape). A deterministic function of
    time only -- shapes never consume extra RNG draws."""
    if config.shape == "diurnal":
        phase = 2.0 * math.pi * (t_ns % config.diurnal_period_ns) \
            / config.diurnal_period_ns
        return 1.0 + config.diurnal_amplitude * math.sin(phase)
    if config.shape == "spike":
        in_spike = (t_ns % config.spike_period_ns) \
            < config.spike_duty * config.spike_period_ns
        return config.spike_factor if in_spike else 1.0
    return 1.0


def _zipf_cdf(n: int, s: float) -> List[float]:
    weights = [1.0 / (k + 1) ** s for k in range(n)]
    total = sum(weights)
    cdf: List[float] = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cdf.append(acc)
    return cdf


def generate_requests(config: LoadgenConfig) -> List[ServeRequest]:
    """The seeded request stream, sorted by arrival time.

    Default knobs reproduce the PR 4 streams draw-for-draw; the shape
    / popularity / tenant extensions only alter (or add) draws when
    explicitly configured, so pinned seeds stay stable.
    """
    rng = random.Random(config.seed)
    zipf = (_zipf_cdf(len(config.mix), config.zipf_s)
            if config.popularity == "zipf" else None)
    t_ns = 0
    requests: List[ServeRequest] = []
    for rid in range(config.requests):
        if config.mean_interarrival_ns > 0:
            gap = rng.expovariate(1.0 / config.mean_interarrival_ns)
            multiplier = _rate_multiplier(config, t_ns)
            t_ns += int(gap / multiplier) if multiplier != 1.0 \
                else int(gap)
        if zipf is not None:
            draw = rng.random()
            index = next(i for i, edge in enumerate(zipf)
                         if draw <= edge)
            family, model = config.mix[index]
        else:
            family, model = config.mix[rng.randrange(len(config.mix))]
        input_seed = rng.randrange(1 << 31)
        fault: Optional[FaultSpec] = None
        if config.fault_rate > 0 and rng.random() < config.fault_rate:
            fault = FaultSpec(rng.choice(config.fault_kinds))
        tenant = rng.choice(config.tenants) if config.tenants else ""
        priority = (rng.choice(config.priorities)
                    if config.priorities else 1)
        deadline = (t_ns + config.deadline_ns if config.deadline_ns > 0
                    else NO_DEADLINE_NS)
        requests.append(ServeRequest(
            rid=rid, family=family, model=model, arrival_ns=t_ns,
            input_seed=input_seed, deadline_ns=deadline, fault=fault,
            tenant=tenant, priority=priority))
    return requests
