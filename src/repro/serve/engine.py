"""The virtual-time concurrent replay serving engine.

A :class:`ReplayServer` owns a pool of per-board worker machines and a
bounded admission queue, and schedules everything on a *server-owned*
:class:`~repro.soc.clock.VirtualClock`: request arrivals, worker-free
events, retry backoffs and CPU-fallback completions are all
discrete-event callbacks on one deterministic timeline. A worker
executes a batch synchronously (ordinary replay calls on its own
machine); the virtual time its machine spent is the batch's service
time, mapped onto the server timeline as "this worker is busy until
``now + service_ns``". Concurrency is therefore *simulated* -- there
are no threads -- which is what makes two same-seed runs produce
byte-identical metric snapshots (see DESIGN.md, "Virtual-time
serving").

Scheduling policy:

- admission: bounded queue depth; overflow and deadline-expired
  requests are shed with an explicit response (never silently lost);
- batching: pending requests for the *same recording content* (same
  ``Recording.digest()``) coalesce onto one worker, preferring a
  worker already warm on that digest -- a warm worker keeps its
  session maps and resident dumps, so only inputs and outputs move;
- failure ladder: the worker's own §5.4 re-execution absorbs
  transient faults; a dispatch that still fails is retried with
  backoff on a *different* worker; then the reference interpreter;
  then the ``stack.reference`` CPU path, which always answers
  (ground truth by construction). Degraded is better than wrong or
  lost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bench.workloads import (board_for_family, fresh_replay_machine,
                                   get_recorded)
from repro.core.recording import Recording
from repro.core.replayer import Replayer
from repro.errors import ReplayError, ReproError
from repro.gpu.counters import aggregate as aggregate_counters
from repro.gpu.faults import FaultInjector
from repro.obs.metrics import LATENCY_BUCKETS_NS
from repro.obs.rtrace import NULL_RTRACE, RequestTracer, SCHEMA
from repro.obs.session import Observability
from repro.obs.timeseries import TimeSeriesCollector
from repro.serve.loadgen import ServeRequest
from repro.soc.clock import VirtualClock
from repro.units import MS, SEC

#: How long an injected transient core-collapse lasts (virtual).
TRANSIENT_FAULT_NS = 8 * MS
#: Server-side backoff before re-dispatching a failed request.
REQUEUE_BACKOFF_NS = 2 * MS
#: Modeled cost of answering one request on the CPU reference path.
CPU_FALLBACK_NS = 20 * MS

#: Batch-size histogram buckets (requests per dispatch).
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class ServerConfig:
    """Pool shape and scheduling knobs."""

    #: One entry per worker: the GPU family it serves.
    families: Tuple[str, ...] = ("mali", "mali", "v3d")
    #: Optional per-worker board override (defaults per family).
    boards: Optional[Tuple[str, ...]] = None
    seed: int = 2026
    queue_depth: int = 64
    max_batch: int = 4
    #: §5.4 re-execution attempts inside one worker dispatch.
    worker_attempts: int = 3
    #: Server-level re-dispatches onto a different worker.
    max_retries: int = 1
    #: Warm every worker's load cache from the store before the
    #: timeline starts (the vault's prefetch path). Off by default:
    #: a prefetched run pays Load costs up front, so its service
    #: times differ from a cold run's -- both are deterministic, but
    #: only same-config runs compare byte-for-byte.
    prefetch: bool = False
    #: Request-scoped tracing (repro.obs.rtrace). On by default: the
    #: tracer only reads the clock, so virtual-time results are
    #: identical either way; off saves the per-event Python cost.
    trace: bool = True
    #: Flight-recorder ring capacity per worker machine (None = the
    #: always-on default, DEFAULT_RING_SIZE).
    flight_capacity: Optional[int] = None
    #: Fuse same-digest batches into one mega-batch replay: the worker
    #: runs the action chain once with the batch stacked through the
    #: shader executor, instead of once per request. Opt-in: fused
    #: virtual times are *shorter* than sequential ones (that is the
    #: point), so only same-config runs compare byte-for-byte. Batches
    #: with faulted members, reference-mode or retried requests, and
    #: any batch the batch dimension cannot represent fall back to the
    #: per-request path automatically.
    mega_batch: bool = False
    #: Periodic virtual-clock scrapes of the server metrics registry
    #: into ring-buffered time series (repro.obs.timeseries). The
    #: collector only *reads* the registry and the clock, so
    #: virtual-time results are identical either way; off saves the
    #: per-scrape Python cost.
    timeseries: bool = True
    #: Virtual time between time-series scrapes.
    scrape_interval_ns: int = 2 * MS
    #: Emulated GPU performance-counter tapes on the worker machines
    #: (repro.gpu.counters). Always-on by default, like the flight
    #: recorder; the overhead benchmark's "off" arm disables them.
    gpu_counters: bool = True

    @classmethod
    def from_counts(cls, workers: int, families: Tuple[str, ...],
                    **kwargs) -> "ServerConfig":
        """``workers`` workers cycling through ``families``."""
        assigned = tuple(families[i % len(families)]
                         for i in range(workers))
        return cls(families=assigned, **kwargs)


class RecordingStore:
    """Content store: (family, model) -> recording, plus the poisoned
    variants fault injection serves.

    A poisoned variant has one dump byte flipped on the first job's
    descriptor chain -- a *different digest*, so the corruption can
    never alias the healthy content in any digest-keyed cache.
    """

    def __init__(self) -> None:
        self._recordings: Dict[Tuple[str, str], Recording] = {}
        self._poisoned: Dict[Tuple[str, str], Recording] = {}

    @classmethod
    def from_zoo(cls, mix) -> "RecordingStore":
        """Record (or reuse the session-cached recording of) every
        (family, model) pair in ``mix``."""
        store = cls()
        for family, model in mix:
            workload, _stack = get_recorded(family, model)
            store.add(family, model, workload.recording)
        return store

    def add(self, family: str, model: str,
            recording: Recording) -> None:
        self._recordings[(family, model)] = recording

    def healthy(self, family: str, model: str) -> Recording:
        return self._recordings[(family, model)]

    def interface(self, family: str, model: str) -> Recording:
        """A recording good for interface questions only (metadata,
        input/output buffers) -- never replayed. Vault-backed stores
        can answer this from the skeleton even when the recording's
        payload chunks are damaged."""
        return self.healthy(family, model)

    def available(self, family: str, model: str) -> bool:
        """Whether replayable content exists for this key. The
        loose-file store always says yes; a vault-backed store says no
        on a store miss or a corrupt fetch, which the server turns
        into a CPU-degraded answer instead of a failed dispatch."""
        return (family, model) in self._recordings

    def recording_for(self, request: ServeRequest) -> Recording:
        key = (request.family, request.model)
        if request.fault is not None and request.fault.kind == "poison":
            poisoned = self._poisoned.get(key)
            if poisoned is None:
                from repro.obs.doctor import flip_dump_byte
                poisoned, _, _ = flip_dump_byte(self._recordings[key])
                self._poisoned[key] = poisoned
            return poisoned
        return self._recordings[key]

    def mix(self) -> List[Tuple[str, str]]:
        return sorted(self._recordings)

    def drain_fetches(self) -> List[Dict[str, object]]:
        """Store-fetch events since the last drain (the request tracer
        marks them on the request that triggered them). The loose-file
        store never fetches."""
        return []

    def reference_outputs(self, family: str, model: str,
                          input_seed: int) -> Dict[str, np.ndarray]:
        """Ground truth for one (family, model, input_seed) request:
        the CPU reference interpreter's answer, shaped like the
        recording's output interface. Stores whose recordings are not
        zoo models (e.g. synthetic surgery sessions, which carry no
        inputs and no framework graph) override this with their own
        reference."""
        from repro.stack.framework import build_model
        from repro.stack.reference import run_reference

        recording = self.interface(family, model)
        inputs = request_inputs(recording, input_seed)
        x = next(iter(inputs.values()))
        graph = _MODEL_CACHE.get(model)
        if graph is None:
            graph = build_model(model)
            _MODEL_CACHE[model] = graph
        reference = run_reference(graph, x, fuse=False)
        outputs: Dict[str, np.ndarray] = {}
        for io in recording.meta.outputs:
            shaped = reference.reshape(io.shape) if io.shape \
                else reference.reshape(-1)
            outputs[io.name] = shaped.astype(np.float32)
        return outputs


class VaultRecordingStore(RecordingStore):
    """A recording store backed by a :class:`repro.store.vault.Vault`.

    Content is resolved through the vault's compatibility index
    (family + workload, best board match) and fetched lazily on first
    use; ``fetch`` re-verifies the whole integrity chain, so a served
    recording is byte-identical to what was packed or it is not served
    at all. A miss or a corrupt fetch marks the key unavailable --
    the server degrades those requests to the CPU reference -- and
    corrupt digests are remembered in :attr:`corrupt` for the doctor
    handoff (``vault.diagnose``).
    """

    def __init__(self, vault, mix: List[Tuple[str, str]],
                 board: Optional[str] = None) -> None:
        super().__init__()
        self.vault = vault
        self._mix = sorted(mix)
        self._board = board
        #: (family, model) -> digest the vault could not deliver.
        self.corrupt: Dict[Tuple[str, str], str] = {}
        self._missing: set = set()
        self._fetch_log: List[Dict[str, object]] = []

    @classmethod
    def pack_zoo(cls, vault, mix) -> "VaultRecordingStore":
        """Pack every (family, model) zoo recording into ``vault`` and
        serve from it -- the one-call path the benches use."""
        for family, model in mix:
            workload, _stack = get_recorded(family, model)
            vault.pack(workload.recording)
        return cls(vault, list(mix))

    def _digest_for(self, family: str, model: str) -> Optional[str]:
        return self.vault.best_for(family, board=self._board,
                                   workload=model)

    def _ensure(self, family: str, model: str) -> bool:
        """Fetch-and-verify into the in-memory map; False on miss or
        corruption (remembered, so one bad recording is probed against
        the store once, not once per request)."""
        from repro.errors import StoreCorruptionError, StoreError
        key = (family, model)
        if key in self._recordings:
            return True
        if key in self._missing or key in self.corrupt:
            return False
        digest = self._digest_for(family, model)
        if digest is None:
            self._missing.add(key)
            return False
        try:
            self.add(family, model, self.vault.fetch(digest))
            self._fetch_log.append({
                "family": family, "model": model,
                **self.vault.last_fetch_info})
            return True
        except StoreCorruptionError:
            self.corrupt[key] = digest
            self._fetch_log.append({
                "family": family, "model": model,
                "digest": digest[:12], "corrupt": True})
            return False
        except StoreError:
            self._missing.add(key)
            return False

    def available(self, family: str, model: str) -> bool:
        return self._ensure(family, model)

    def healthy(self, family: str, model: str) -> Recording:
        self._ensure(family, model)
        return self._recordings[(family, model)]

    def interface(self, family: str, model: str) -> Recording:
        """Interface from the fetched recording when healthy, else
        from the vault skeleton -- which survives chunk damage, so a
        corrupt recording can still be answered on the CPU path."""
        if self._ensure(family, model):
            return self._recordings[(family, model)]
        digest = self.corrupt.get((family, model)) \
            or self._digest_for(family, model)
        if digest is None:
            from repro.errors import StoreNotFoundError
            raise StoreNotFoundError(
                f"no recording for {family}/{model} in vault")
        return self.vault.fetch_interface(digest)

    def recording_for(self, request: ServeRequest) -> Recording:
        self._ensure(request.family, request.model)
        return super().recording_for(request)

    def mix(self) -> List[Tuple[str, str]]:
        return list(self._mix)

    def drain_fetches(self) -> List[Dict[str, object]]:
        drained = self._fetch_log
        self._fetch_log = []
        return drained


def request_inputs(recording: Recording,
                   seed: int) -> Dict[str, np.ndarray]:
    """The request's input tensors, fully determined by its seed."""
    rng = np.random.default_rng(seed)
    inputs: Dict[str, np.ndarray] = {}
    for io in recording.meta.inputs:
        if io.optional:
            continue
        shape = io.shape or (io.size // 4,)
        inputs[io.name] = rng.standard_normal(shape).astype(np.float32)
    return inputs


_MODEL_CACHE: Dict[str, object] = {}


def expected_outputs(store: RecordingStore, family: str, model: str,
                     input_seed: int) -> Dict[str, np.ndarray]:
    """Ground truth: the store's reference answer for this request.
    This is both the degraded fallback and what every served output is
    verified against; see :meth:`RecordingStore.reference_outputs`."""
    return store.reference_outputs(family, model, input_seed)


@dataclass
class ServeResponse:
    """The terminal answer for one request (exactly one per request)."""

    rid: int
    status: str            # "ok" | "degraded" | "shed"
    path: str              # "fast" | "reference" | "cpu" | ""
    family: str
    model: str
    input_seed: int
    worker: int            # last worker that touched it; -1 for none
    arrival_ns: int
    completed_ns: int
    attempts: int          # worker-internal §5.4 attempts, summed
    retries: int           # server-level re-dispatches
    batch_size: int
    fault: str = ""
    shed_reason: str = ""
    outputs: Dict[str, np.ndarray] = field(default_factory=dict,
                                           repr=False)

    @property
    def latency_ns(self) -> int:
        return self.completed_ns - self.arrival_ns

    def output_digest(self) -> str:
        h = hashlib.sha256()
        for name in sorted(self.outputs):
            h.update(name.encode())
            h.update(self.outputs[name].tobytes())
        return h.hexdigest()

    def summary(self) -> Dict[str, object]:
        """JSON-able, byte-stable digest of this response (the
        determinism tests compare these across same-seed runs)."""
        return {
            "rid": self.rid, "status": self.status, "path": self.path,
            "family": self.family, "model": self.model,
            "worker": self.worker, "arrival_ns": self.arrival_ns,
            "completed_ns": self.completed_ns,
            "attempts": self.attempts, "retries": self.retries,
            "batch_size": self.batch_size, "fault": self.fault,
            "shed_reason": self.shed_reason,
            "outputs_sha256": self.output_digest(),
        }


@dataclass
class ServeReport:
    """Everything one serving run produced."""

    submitted: int
    responses: List[ServeResponse]
    snapshot: Dict[str, Dict[str, object]]
    makespan_ns: int
    lost: List[int] = field(default_factory=list)
    #: Request-scoped trace events (repro.obs.rtrace schema v1);
    #: empty when the server ran with tracing off. Deliberately NOT
    #: part of :meth:`summary` -- the determinism tests compare
    #: summaries, the trace-completeness tests compare these.
    trace_events: List[dict] = field(default_factory=list, repr=False)
    #: Fleet-aggregate GPU counter tape (gpucounters.v1): the merged
    #: snapshot of every worker machine's tape. Like ``trace_events``,
    #: NOT part of :meth:`summary` -- tape contents legitimately
    #: differ with ``gpu_counters`` on/off while replay results and
    #: summaries stay identical.
    gpu_counters: Dict[str, object] = field(default_factory=dict,
                                            repr=False)
    #: The run's TimeSeriesCollector (None with ``timeseries`` off);
    #: exporters (``to_jsonl``/``to_openmetrics``) hang off it. Also
    #: excluded from :meth:`summary`.
    timeseries: Optional[TimeSeriesCollector] = field(default=None,
                                                      repr=False)

    def counts(self) -> Dict[str, int]:
        out = {"ok": 0, "degraded": 0, "shed": 0}
        for response in self.responses:
            out[response.status] = out.get(response.status, 0) + 1
        return out

    def latency_percentiles(self) -> Dict[str, float]:
        hist = self.snapshot["histograms"].get("serve.latency_ns")
        if not hist:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {q: hist[q] for q in ("p50", "p95", "p99")}

    def throughput_rps(self) -> float:
        return self.snapshot["gauges"].get("serve.throughput_rps", 0.0)

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-able digest of the whole run."""
        return {
            "submitted": self.submitted,
            "makespan_ns": self.makespan_ns,
            "counts": self.counts(),
            "lost": list(self.lost),
            "snapshot": self.snapshot,
            "responses": [r.summary() for r in self.responses],
        }


def verify_report(report: ServeReport,
                  store: RecordingStore) -> List[str]:
    """Check every served output against the CPU reference. Returns a
    list of mismatch descriptions (empty = the replay invariant held
    for the whole run, retried and degraded requests included)."""
    mismatches: List[str] = []
    for response in report.responses:
        if response.status == "shed":
            continue
        expected = expected_outputs(store, response.family,
                                    response.model, response.input_seed)
        for name, want in expected.items():
            got = response.outputs.get(name)
            if got is None:
                mismatches.append(
                    f"request {response.rid}: output {name!r} missing")
            elif not np.array_equal(got.reshape(-1), want.reshape(-1)):
                mismatches.append(
                    f"request {response.rid} ({response.path}): "
                    f"output {name!r} differs from CPU reference")
    return mismatches


class Worker:
    """One replay machine in the pool: a board, a replayer, a fault
    injector, and the digest it is currently warm on."""

    def __init__(self, wid: int, family: str, board: str, seed: int,
                 flight_capacity: Optional[int] = None):
        self.id = wid
        self.family = family
        self.board = board
        self.machine = fresh_replay_machine(family, seed=seed,
                                            board=board,
                                            flight_capacity=flight_capacity)
        self.replayer = Replayer(self.machine)
        self.replayer.init()
        self.injector = FaultInjector(self.machine.require_gpu())
        self.busy = False
        self.warm_digest: Optional[str] = None
        self.dispatches = 0
        #: How the last stage() resolved: "warm" (session kept, no
        #: load) or "cold" (a load ran). Worker-local state only, so
        #: the serve.cache.* counters built from it are identical
        #: across loose/vault stores and repeated in-process runs.
        self.last_stage = "cold"

    def stage(self, recording: Recording) -> None:
        """Stage ``recording``; scrub the session first when switching
        content (unrelated recordings must not share address space)."""
        digest = recording.digest()
        if self.warm_digest == digest \
                and self.replayer.current is not None:
            self.last_stage = "warm"
            return
        if self.replayer.current is not None:
            self.replayer.reset_session()
        self.last_stage = "cold"
        self.replayer.load(recording)
        self.warm_digest = digest

    def heal(self) -> None:
        """Best-effort return to a healthy, sessionless state after a
        failed dispatch: clear injected faults, reset, scrub."""
        self.injector.restore_cores()
        self.injector.repair_ptes()
        try:
            self.replayer.reset_session()
        except ReplayError:
            pass  # GPU still unhappy; the next stage() retries a load
        self.warm_digest = None

    def close(self) -> None:
        try:
            self.replayer.cleanup()
        except ReproError:
            pass


class ReplayServer:
    """One-shot serving engine: construct, ``serve(requests)``, read
    the report, ``close()``. All scheduling happens on ``self.clock``;
    ``self.obs`` carries the ``serve.*`` metrics and the batch
    timeline."""

    def __init__(self, store: RecordingStore,
                 config: Optional[ServerConfig] = None,
                 clock: Optional[VirtualClock] = None,
                 rtrace=None):
        self.store = store
        self.config = config or ServerConfig()
        #: A caller-owned clock turns this server into one *node* of a
        #: larger simulation (repro.fleet): arrivals are injected with
        #: :meth:`submit`, the owner drives the shared event loop, and
        #: :meth:`finish` closes the books. With no clock given the
        #: server owns its timeline and :meth:`serve` drives it.
        self.clock = clock if clock is not None else VirtualClock()
        self._external_clock = clock is not None
        self.obs = Observability(self.clock)
        boards = self.config.boards or tuple(
            board_for_family(f) for f in self.config.families)
        if len(boards) != len(self.config.families):
            raise ReproError("boards must parallel families")
        self._next_wid = 0
        self.workers = [self._new_worker(family, board)
                        for family, board in
                        zip(self.config.families, boards)]
        #: Request-scoped tracer: every admitted request gets one
        #: causal span tree on the server clock (a no-op when
        #: ``config.trace`` is off). Like ``obs``, it only *reads*
        #: the clock -- virtual-time results are identical either way.
        #: A fleet passes one shared tracer so routing and node spans
        #: land in a single per-request tree.
        if rtrace is not None:
            self.rtrace = rtrace if self.config.trace else NULL_RTRACE
        else:
            self.rtrace = (RequestTracer(self.clock)
                           if self.config.trace else NULL_RTRACE)
        #: Optional per-response hook: called with each terminal
        #: :class:`ServeResponse` (answered or shed) the moment it is
        #: recorded. The fleet layer uses it for routing bookkeeping
        #: and fleet-wide latency accounting.
        self.on_complete = None
        #: Ring-buffered time series over the server registry. Like
        #: ``obs`` and ``rtrace`` it only reads clock + registry.
        self.timeseries = (
            TimeSeriesCollector(self.obs.metrics,
                                interval_ns=self.config.scrape_interval_ns,
                                derive=self._derive_series)
            if self.config.timeseries else None)
        self._pending: List[ServeRequest] = []
        self._submitted: List[ServeRequest] = []
        self._responses: Dict[int, ServeResponse] = {}
        #: Per-request scheduling state: escalation mode and the
        #: workers already tried in that mode.
        self._mode: Dict[int, str] = {}
        self._tries: Dict[int, List[int]] = {}
        self._attempts: Dict[int, int] = {}
        self._retries: Dict[int, int] = {}
        #: rid -> open "queue" span sid (request currently in
        #: ``_pending``).
        self._qsid: Dict[int, int] = {}
        self._served = False
        self.obs.gauge("serve.workers").set(len(self.workers))
        if self.config.prefetch:
            self._prefetch_workers()

    # -- worker pool management ---------------------------------------------

    def _new_worker(self, family: str,
                    board: Optional[str] = None) -> Worker:
        wid = self._next_wid
        self._next_wid += 1
        worker = Worker(wid, family, board or board_for_family(family),
                        seed=self.config.seed * 1000 + wid,
                        flight_capacity=self.config.flight_capacity)
        if not self.config.gpu_counters:
            tape = worker.machine.require_gpu().counters
            tape.enabled = False
            # Drop anything counted during machine bring-up so a
            # counters-off report aggregates to all-zero totals.
            tape.reset()
        return worker

    def add_worker(self, family: str,
                   board: Optional[str] = None) -> Worker:
        """Grow the pool by one worker (the fleet autoscaler's
        scale-up rung). The new worker's seed is a deterministic
        function of the config seed and its id, so two same-seed runs
        that scale identically get identical machines. Dispatch runs
        immediately: new capacity may unblock the queue."""
        worker = self._new_worker(family, board)
        self.workers.append(worker)
        self.obs.gauge("serve.workers").set(len(self.workers))
        self._dispatch()
        return worker

    def retire_worker(self, worker: Worker) -> bool:
        """Shrink the pool (scale-down). Refuses to retire a busy
        worker -- in-flight batches always complete."""
        if worker.busy or worker not in self.workers:
            return False
        self.workers.remove(worker)
        worker.close()
        self.obs.gauge("serve.workers").set(len(self.workers))
        return True

    def pending_count(self, family: Optional[str] = None) -> int:
        """Admitted-but-undispatched requests (the autoscaling and
        routing signal)."""
        if family is None:
            return len(self._pending)
        return sum(1 for r in self._pending if r.family == family)

    def outstanding_count(self, family: Optional[str] = None) -> int:
        """Submitted requests without a terminal answer: queued,
        batched onto a worker, or riding a backoff window. The
        autoscaler's scale-down guard -- a request in backoff has a
        tried-worker set that assumes the pool it failed on, so
        shrinking a pool with outstanding work could strand it with
        no eligible worker and no wake-up event."""
        return sum(1 for r in self._submitted
                   if r.rid not in self._responses
                   and (family is None or r.family == family))

    def workers_for(self, family: str) -> List[Worker]:
        return [w for w in self.workers if w.family == family]

    def warm_digests(self) -> Dict[str, int]:
        """digest -> worker count currently warm on it."""
        warm: Dict[str, int] = {}
        for worker in self.workers:
            if worker.warm_digest is not None:
                warm[worker.warm_digest] = \
                    warm.get(worker.warm_digest, 0) + 1
        return warm

    def _prefetch_workers(self) -> None:
        """Stream every recording a worker's family will serve from
        the store into the process-wide load cache, before the request
        timeline starts. Worker machine clocks absorb the Load cost
        here; batch service times are measured as deltas, so warmup
        never leaks into a request's latency."""
        warmed = 0
        calls = 0
        for worker in self.workers:
            for family, model in self.store.mix():
                if family != worker.family:
                    continue
                if not self.store.available(family, model):
                    continue
                calls += 1
                if worker.replayer.prefetch(
                        self.store.healthy(family, model)):
                    warmed += 1
        self.obs.counter("serve.store.prefetched").inc(warmed)
        # Mirror of the per-machine replay.cache.warmed counters, so
        # prefetch traffic shows up in the server-side snapshot too.
        self.obs.counter("replay.cache.warmed").inc(calls)
        fetches = self.store.drain_fetches()
        self.rtrace.meta("prefetch", args={"warmed": warmed,
                                           "fetches": fetches})

    def _derive_series(self, snapshot: Dict[str, Dict[str, object]]
                       ) -> Dict[str, float]:
        """Ratio gauges that only make sense as a time series (the
        ``grr dash`` sparklines): computed at scrape time from the
        registry snapshot, never stored in the registry itself."""
        counters = snapshot["counters"]
        derived: Dict[str, float] = {}
        warm = counters.get("serve.cache.warm", 0)
        cold = counters.get("serve.cache.cold", 0)
        if warm + cold:
            derived["serve.cache.hit_ratio"] = warm / (warm + cold)
        submitted = counters.get("serve.requests.submitted", 0)
        if submitted:
            derived["serve.shed.rate"] = \
                counters.get("serve.requests.shed", 0) / submitted
        mega_batches = counters.get("serve.mega.batches", 0)
        if mega_batches:
            derived["serve.mega.fanout"] = \
                counters.get("serve.mega.requests", 0) / mega_batches
        return derived

    # -- public API ---------------------------------------------------------

    def serve(self, requests: List[ServeRequest]) -> ServeReport:
        """Run the whole stream to completion on the virtual timeline."""
        if self._served:
            raise ReproError("ReplayServer.serve is one-shot; "
                             "build a new server")
        if self._external_clock:
            raise ReproError("this server rides a caller-owned clock; "
                             "use submit()/finish()")
        self._served = True
        ordered = sorted(requests, key=lambda r: (r.arrival_ns, r.rid))
        self._submitted = ordered
        self.rtrace.meta("run", args={
            "schema": SCHEMA, "requests": len(ordered),
            "families": list(self.config.families),
            "seed": self.config.seed,
            "queue_depth": self.config.queue_depth,
            "max_batch": self.config.max_batch})
        for request in ordered:
            self.clock.schedule(request.arrival_ns,
                                lambda r=request: self._on_arrival(r))
        collector = self.timeseries
        if collector is None:
            while self.clock.advance_to_next_event():
                pass
        else:
            # Scrapes piggyback on the event loop: a virtual clock has
            # no timers of its own, and a self-rescheduling scrape
            # event would keep the drain loop alive forever. Samples
            # still land on exact interval boundaries.
            while self.clock.advance_to_next_event():
                collector.maybe_scrape(self.clock.now())
        return self._finalize()

    def submit(self, request: ServeRequest) -> None:
        """Admit one request *now* (node mode: the caller owns the
        clock and delivers arrivals as events on it). Pair with
        :meth:`finish` once the caller's event loop has drained."""
        if self._served:
            raise ReproError("server already finished; build a new one")
        self._submitted.append(request)
        self._on_arrival(request)

    def finish(self) -> ServeReport:
        """Close the books in node mode: shed anything still pending,
        set the end-of-run gauges and return this node's report. The
        caller must have drained the shared event loop first."""
        if self._served:
            raise ReproError("finish() is one-shot")
        self._served = True
        return self._finalize()

    def _finalize(self) -> ServeReport:
        ordered = self._submitted
        # Defensive: the ladder guarantees every request terminates,
        # but a lost request must surface as shed, never silently.
        for request in list(self._pending):
            self._shed(request, "starved")
        self._pending.clear()
        makespan = self.clock.now()
        served = sum(1 for r in self._responses.values()
                     if r.status in ("ok", "degraded"))
        self.obs.gauge("serve.makespan_ns").set(makespan)
        self.obs.gauge("serve.throughput_rps").set(
            served * SEC / makespan if makespan else 0.0)
        self.obs.gauge("serve.queue.depth").set(len(self._pending))
        lost = sorted(r.rid for r in ordered
                      if r.rid not in self._responses)
        if self.timeseries is not None:
            # Close out the series with the end-of-run registry state
            # (the throughput/makespan gauges set just above).
            self.timeseries.maybe_scrape(makespan)
            self.timeseries.scrape(makespan)
        return ServeReport(
            submitted=len(ordered),
            responses=[self._responses[rid]
                       for rid in sorted(self._responses)],
            snapshot=self.obs.snapshot(),
            makespan_ns=makespan,
            lost=lost,
            trace_events=list(self.rtrace.events),
            gpu_counters=aggregate_counters(
                [w.machine.require_gpu().counters.snapshot()
                 for w in self.workers]),
            timeseries=self.timeseries)

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    # -- admission ----------------------------------------------------------

    def _on_arrival(self, request: ServeRequest) -> None:
        rid = request.rid
        self.obs.counter("serve.requests.submitted").inc()
        self.rtrace.submit(rid, args={
            "family": request.family, "model": request.model,
            "deadline_ns": request.deadline_ns,
            "fault": request.fault.kind if request.fault else ""})
        if request.fault is not None:
            self.obs.counter(
                f"serve.fault.{request.fault.kind}").inc()
        self._mode.setdefault(rid, "fast")
        self._tries.setdefault(rid, [])
        self._attempts.setdefault(rid, 0)
        self._retries.setdefault(rid, 0)
        if not any(w.family == request.family for w in self.workers):
            self._degrade_cpu(request, reason="no-worker")
            return
        available = self.store.available(request.family, request.model)
        for info in self.store.drain_fetches():
            self.rtrace.mark(rid, "vault.fetch", args=info)
        if not available:
            # Store miss / corrupt fetch: the bottom rung of the
            # failure ladder, entered at admission -- there is nothing
            # to dispatch. The counter is created lazily so a store
            # that never misses leaves no trace in the snapshot.
            self.obs.counter("serve.store.miss").inc()
            try:
                self.store.interface(request.family, request.model)
            except (ReproError, KeyError):
                # Even the skeleton is gone: the output interface is
                # unknowable, so the request cannot be answered at all.
                self._shed(request, "store-lost")
                return
            self._degrade_cpu(request, reason="store-miss")
            return
        if len(self._pending) >= self.config.queue_depth:
            self._shed(request, "queue-full")
            return
        self._pending.append(request)
        self._qsid[rid] = self.rtrace.begin(rid, "queue")
        self._note_queue_depth()
        self._dispatch()

    def _requeue(self, request: ServeRequest) -> None:
        """Re-admit after backoff; retries bypass the depth bound (the
        request already holds an admission slot conceptually)."""
        rid = request.rid
        backoff_sid = self.rtrace.begin(
            rid, "backoff", args={"backoff_ns": REQUEUE_BACKOFF_NS})

        def readmit() -> None:
            self.rtrace.end(rid, backoff_sid)
            self._pending.insert(0, request)
            self._qsid[rid] = self.rtrace.begin(rid, "queue")
            self._note_queue_depth()
            self._dispatch()
        self.clock.schedule(REQUEUE_BACKOFF_NS, readmit)

    def _note_queue_depth(self) -> None:
        self.obs.gauge("serve.queue.depth").set(len(self._pending))

    # -- scheduling ---------------------------------------------------------

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            self._shed_expired()
            if not self._pending:
                return
            idle = [w for w in self.workers if not w.busy]
            if not idle:
                return
            for head in self._pending:
                tried = self._tries[head.rid]
                candidates = [w for w in idle
                              if w.family == head.family
                              and w.id not in tried]
                if not candidates:
                    continue
                digest = self.store.recording_for(head).digest()
                warm = [w for w in candidates
                        if w.warm_digest == digest]
                worker = (warm or candidates)[0]
                batch = self._take_batch(head, digest)
                self._run_batch(worker, batch)
                progress = True
                break

    def _shed_expired(self) -> None:
        now = self.clock.now()
        expired = [r for r in self._pending if now > r.deadline_ns]
        for request in expired:
            self._pending.remove(request)
            self._shed(request, "deadline")
        if expired:
            self._note_queue_depth()

    def _take_batch(self, head: ServeRequest,
                    digest: str) -> List[ServeRequest]:
        """``head`` plus following fresh same-content requests, up to
        ``max_batch``. Retried and reference-mode requests go solo --
        their worker-exclusion sets are their own."""
        batch = [head]
        if self._mode[head.rid] == "fast" and not self._tries[head.rid]:
            for request in self._pending:
                if len(batch) >= self.config.max_batch:
                    break
                if request.rid == head.rid:
                    continue
                if (request.family == head.family
                        and self._mode[request.rid] == "fast"
                        and not self._tries[request.rid]
                        and self.store.recording_for(request).digest()
                        == digest):
                    batch.append(request)
        for request in batch:
            self._pending.remove(request)
        self._note_queue_depth()
        return batch

    # -- execution ----------------------------------------------------------

    def _run_batch(self, worker: Worker,
                   batch: List[ServeRequest]) -> None:
        """Execute ``batch`` synchronously on the worker machine and
        map the virtual time it took onto the server timeline.

        The server clock is parked at ``dispatch_ns`` while the batch
        runs on the worker's machine clock, so every request-trace
        span in here carries an explicit timestamp:
        ``dispatch_ns + (machine time - t0)`` scores machine-side work
        onto the server timeline -- the same mapping the response's
        ``completed_ns`` uses.
        """
        worker.busy = True
        worker.dispatches += 1
        dispatch_ns = self.clock.now()
        mode = self._mode[batch[0].rid]
        recording = self.store.recording_for(batch[0])
        self.obs.counter("serve.batches").inc()
        self.obs.histogram("serve.batch.size",
                           BATCH_BUCKETS).observe(len(batch))
        rt = self.rtrace
        attempt_sid: Dict[int, int] = {}
        for slot, request in enumerate(batch):
            rid = request.rid
            self._tries[rid].append(worker.id)
            queue_sid = self._qsid.pop(rid, None)
            if queue_sid is not None:
                rt.end(rid, queue_sid, t_ns=dispatch_ns)
            attempt_sid[rid] = rt.begin(
                rid, "attempt", t_ns=dispatch_ns,
                args={"worker": worker.id, "mode": mode,
                      "batch": len(batch), "slot": slot,
                      "try": len(self._tries[rid])})

        machine = worker.machine
        t0 = machine.clock.now()
        gpu_tape = machine.require_gpu().counters
        trace_tape = self.config.trace and gpu_tape.enabled
        results: List[Tuple[ServeRequest, Optional[Dict[str, np.ndarray]],
                            int, int]] = []

        def off() -> int:
            return machine.clock.now() - t0

        def load_span(rid: int, psid: int, start_off: int,
                      failed: bool = False) -> None:
            args = dict(worker.replayer.last_load_info)
            if failed:
                args["failed"] = True
            sid = rt.begin(rid, "load", psid=psid,
                           t_ns=dispatch_ns + start_off, args=args)
            rt.end(rid, sid, t_ns=dispatch_ns + off())

        head_rid = batch[0].rid
        staged = True
        try:
            worker.stage(recording)
            self.obs.counter(f"serve.cache.{worker.last_stage}").inc()
            load_span(head_rid, attempt_sid[head_rid], 0)
        except ReproError:
            staged = False
            load_span(head_rid, attempt_sid[head_rid], 0, failed=True)
        fused = False
        if (staged and self.config.mega_batch and len(batch) > 1
                and mode == "fast"
                and all(r.fault is None for r in batch)):
            fused = self._run_fused(worker, batch, recording,
                                    attempt_sid, dispatch_ns, off,
                                    results)
            if not fused:
                # The fused attempt healed the worker; the per-request
                # loop below restages and serves every member down the
                # normal ladder.
                staged = False
        for slot, request in enumerate(batch if not fused else []):
            rid = request.rid
            asid = attempt_sid[rid]
            wait_off = off()
            if slot > 0 and wait_off > 0:
                # Time this request spent waiting for earlier batch
                # members (and the shared staging) on this worker.
                wait_sid = rt.begin(rid, "batch.wait", psid=asid,
                                    t_ns=dispatch_ns)
                rt.end(rid, wait_sid, t_ns=dispatch_ns + wait_off)
            if not staged:
                restage_off = off()
                try:
                    worker.stage(recording)
                    staged = True
                    self.obs.counter(
                        f"serve.cache.{worker.last_stage}").inc()
                    load_span(rid, asid, restage_off)
                except ReproError:
                    load_span(rid, asid, restage_off, failed=True)
                    fail_off = off()
                    rt.end(rid, asid, t_ns=dispatch_ns + fail_off,
                           args={"outcome": "stage-failed"})
                    results.append((request, None, 0, fail_off))
                    continue
            self._inject(worker, request, asid)
            worker.replayer.fast_path = (mode == "fast")
            attempts = (self.config.worker_attempts
                        if mode == "fast" else 1)
            replay_off = off()
            tape_before = gpu_tape.totals() if trace_tape else None
            try:
                result = worker.replayer.replay(
                    inputs=request_inputs(recording, request.input_seed),
                    max_attempts=attempts)
                done_off = off()
                kernels = (list(gpu_tape.session_kernels)
                           if trace_tape else [])
                self._trace_replay(rid, asid, dispatch_ns, replay_off,
                                   done_off, mode, result, kernels)
                if tape_before is not None:
                    self._mark_counters(rid, asid, tape_before,
                                        gpu_tape)
                rt.end(rid, asid, t_ns=dispatch_ns + done_off,
                       args={"outcome": "ok"})
                results.append((request, result.outputs, result.attempts,
                                done_off))
            except ReplayError as error:
                self.obs.counter("serve.worker_failures").inc()
                fail_off = off()
                replay_sid = rt.begin(
                    rid, "replay", psid=asid,
                    t_ns=dispatch_ns + replay_off,
                    args={"path": mode})
                rt.end(rid, replay_sid, t_ns=dispatch_ns + fail_off,
                       args={"failed": type(error).__name__})
                rt.end(rid, asid, t_ns=dispatch_ns + fail_off,
                       args={"outcome": "failed"})
                results.append((request, None, attempts, fail_off))
                worker.heal()
                staged = False
            finally:
                # A sticky fault that the family's job model happened
                # to shrug off must not leak into later dispatches.
                if request.fault is not None \
                        and request.fault.kind == "gpu-sticky":
                    worker.injector.restore_cores()
        service_ns = machine.clock.now() - t0
        self.obs.histogram("serve.service_ns",
                           LATENCY_BUCKETS_NS).observe(service_ns)
        self.clock.schedule(
            service_ns,
            lambda: self._on_batch_done(worker, dispatch_ns, mode,
                                        len(batch), results))

    def _run_fused(self, worker: Worker, batch: List[ServeRequest],
                   recording, attempt_sid: Dict[int, int],
                   dispatch_ns: int, off, results) -> bool:
        """One fused mega-batch replay serving the whole batch.

        On success, fills ``results`` (every member: 1 attempt, same
        completion offset) and returns True. On any
        :class:`ReplayError` -- including a batch-dimension divergence
        -- heals the worker and returns False; the caller's
        per-request loop then serves every member down the normal
        failure ladder, so a fused failure costs latency, never
        answers.
        """
        rt = self.rtrace
        n = len(batch)
        fuse_off = off()
        worker.replayer.fast_path = True
        inputs_list = [request_inputs(recording, request.input_seed)
                       for request in batch]
        gpu_tape = worker.machine.require_gpu().counters
        trace_tape = self.config.trace and gpu_tape.enabled
        tape_before = gpu_tape.totals() if trace_tape else None
        try:
            mega = worker.replayer.replay_mega(inputs_list)
        except ReplayError as error:
            self.obs.counter("serve.mega.fallbacks").inc()
            rt.mark(batch[0].rid, "mega.fallback",
                    psid=attempt_sid[batch[0].rid],
                    args={"error": type(error).__name__})
            worker.heal()
            return False
        done_off = off()
        self.obs.counter("serve.mega.batches").inc()
        self.obs.counter("serve.mega.requests").inc(n)
        self.obs.histogram("serve.mega.size",
                           BATCH_BUCKETS).observe(n)
        shim = SimpleNamespace(stats=mega.stats, attempts=1)
        kernels = (list(gpu_tape.session_kernels)
                   if trace_tape else [])
        for slot, request in enumerate(batch):
            rid = request.rid
            asid = attempt_sid[rid]
            if slot > 0 and fuse_off > 0:
                wait_sid = rt.begin(rid, "batch.wait", psid=asid,
                                    t_ns=dispatch_ns)
                rt.end(rid, wait_sid, t_ns=dispatch_ns + fuse_off)
            self._trace_replay(rid, asid, dispatch_ns, fuse_off,
                               done_off, "fast", shim, kernels)
            if slot == 0 and tape_before is not None:
                # The fused pass ran once for the whole batch, so its
                # counter delta is attributed to the head member only
                # (double-counting it per member would inflate fleet
                # aggregates by the fan-out).
                self._mark_counters(rid, asid, tape_before, gpu_tape,
                                    extra={"batch": n})
            rt.mark(rid, "mega.fused", psid=asid,
                    args={"batch": n, "slot": slot,
                          "superblocks": mega.superblocks})
            rt.end(rid, asid, t_ns=dispatch_ns + done_off,
                   args={"outcome": "ok"})
            results.append((request, mega.outputs[slot], 1, done_off))
        return True

    def _trace_replay(self, rid: int, asid: int, dispatch_ns: int,
                      start_off: int, end_off: int, mode: str,
                      result, kernels=()) -> None:
        """One ``replay`` span with its cost decomposition.

        ``upload``/``exec``/``pacing`` children carry the exact
        virtual durations the interpreter measured; they are laid out
        sequentially from the replay start (attribution cares about
        the totals, not the interleaving). The replay span's exclusive
        remainder is driver dispatch overhead plus any §5.4 retry
        backoff.

        ``kernels`` is the counter tape's ``(label, flops)`` list for
        the replay; when present, the ``exec`` span's duration is
        apportioned across ``kernel:<label>`` child spans by FLOPs
        share (integer truncation, remainder to the last kernel), so
        the profiler can attribute GPU time to individual kernels.
        """
        rt = self.rtrace
        stats = result.stats
        replay_sid = rt.begin(
            rid, "replay", psid=asid, t_ns=dispatch_ns + start_off,
            args={"path": mode, "attempts": result.attempts,
                  "jobs": stats.jobs_kicked})
        cursor = dispatch_ns + start_off
        for name, duration in (("upload", stats.upload_ns),
                               ("exec", stats.irq_wait_ns),
                               ("pacing", stats.pacing_wait_ns)):
            if duration > 0:
                sid = rt.begin(rid, name, psid=replay_sid, t_ns=cursor)
                if name == "exec" and kernels:
                    self._trace_kernels(rid, sid, cursor, duration,
                                        kernels)
                cursor += duration
                rt.end(rid, sid, t_ns=cursor)
        rt.end(rid, replay_sid, t_ns=dispatch_ns + end_off)

    def _trace_kernels(self, rid: int, exec_sid: int, start_ns: int,
                       duration: int, kernels) -> None:
        """Lay per-kernel child spans under one ``exec`` span."""
        rt = self.rtrace
        total_flops = sum(flops for _, flops in kernels)
        if total_flops <= 0:
            return
        cursor = start_ns
        spent = 0
        for index, (label, flops) in enumerate(kernels):
            if index == len(kernels) - 1:
                share = duration - spent
            else:
                # flops is a float, so guard the span timestamps back
                # to integral nanoseconds explicitly.
                share = int(duration * flops / total_flops)
            if share <= 0:
                continue
            sid = rt.begin(rid, f"kernel:{label}", psid=exec_sid,
                           t_ns=cursor)
            cursor += share
            spent += share
            rt.end(rid, sid, t_ns=cursor)

    def _mark_counters(self, rid: int, asid: int, before, tape,
                       extra=None) -> None:
        """Emit a ``gpu.counters`` mark carrying the tape delta for one
        replay (field-wise difference of :meth:`CounterTape.totals`)."""
        after = tape.totals()
        delta = {key: after[key] - before.get(key, 0)
                 for key in after
                 if after[key] - before.get(key, 0)}
        if not delta:
            return
        if extra:
            delta = {**extra, **delta}
        self.rtrace.mark(rid, "gpu.counters", psid=asid, args=delta)

    def _inject(self, worker: Worker, request: ServeRequest,
                attempt_sid: int) -> None:
        """Fire the request's scheduled hardware fault (first dispatch
        only -- the fault models an event on the machine that first
        served it; poison travels with the content instead)."""
        if request.fault is None or self._retries[request.rid] > 0 \
                or self._mode[request.rid] != "fast":
            return
        kind = request.fault.kind
        if kind not in ("gpu-transient", "gpu-sticky"):
            return
        self.rtrace.mark(request.rid, "fault.injected",
                         psid=attempt_sid, args={"kind": kind})
        gpu = worker.machine.require_gpu()
        mask = (1 << gpu.core_count) - 1
        worker.injector.offline_cores(mask)
        if kind == "gpu-transient":
            worker.machine.clock.schedule(TRANSIENT_FAULT_NS,
                                          worker.injector.restore_cores)

    def _on_batch_done(self, worker: Worker, dispatch_ns: int,
                       mode: str, batch_size: int, results) -> None:
        worker.busy = False
        end_ns = self.clock.now()
        self.obs.complete(
            f"serve:batch:{mode}", self.obs.track("serve",
                                                  f"worker-{worker.id}"),
            dispatch_ns, end_ns,
            args={"batch": batch_size, "worker": worker.id},
            cat="serve")
        for request, outputs, attempts, offset_ns in results:
            self._attempts[request.rid] += attempts
            if outputs is not None:
                path = "fast" if mode == "fast" else "reference"
                if path == "reference":
                    self.obs.counter("serve.reference_fallbacks").inc()
                self._complete(request, outputs, path, worker.id,
                               batch_size, dispatch_ns + offset_ns)
            else:
                fail_ns = dispatch_ns + offset_ns
                if end_ns > fail_ns:
                    # The failed request sat on the worker until the
                    # rest of the batch drained; that wait is part of
                    # its end-to-end latency, so it gets a span.
                    drain_sid = self.rtrace.begin(
                        request.rid, "batch.drain", t_ns=fail_ns)
                    self.rtrace.end(request.rid, drain_sid,
                                    t_ns=end_ns)
                self._on_failure(request, worker)
        self._dispatch()

    # -- the failure ladder -------------------------------------------------

    def _on_failure(self, request: ServeRequest,
                    worker: Worker) -> None:
        rid = request.rid
        if self._mode[rid] == "fast":
            family_workers = [w for w in self.workers
                              if w.family == request.family]
            untried = [w for w in family_workers
                       if w.id not in self._tries[rid]]
            if untried and self._retries[rid] < self.config.max_retries:
                self._retries[rid] += 1
                self.obs.counter("serve.retries").inc()
                self.rtrace.mark(rid, "ladder", args={
                    "rung": "other-worker",
                    "retry": self._retries[rid]})
                self._requeue(request)
                return
            self._mode[rid] = "reference"
            self._tries[rid] = []
            self.rtrace.mark(rid, "ladder", args={"rung": "reference"})
            self._requeue(request)
            return
        # The reference interpreter rejected it too (poisoned content,
        # or a recording this board cannot replay): answer on the CPU.
        self.rtrace.mark(rid, "ladder", args={"rung": "cpu"})
        self._degrade_cpu(request, reason="replay-rejected")

    def _degrade_cpu(self, request: ServeRequest, reason: str) -> None:
        self.obs.counter("serve.cpu_fallbacks").inc()
        cpu_sid = self.rtrace.begin(request.rid, "cpu",
                                    args={"reason": reason})

        def finish() -> None:
            outputs = expected_outputs(self.store, request.family,
                                       request.model, request.input_seed)
            self.rtrace.end(request.rid, cpu_sid)
            self._complete(request, outputs, "cpu", -1, 1,
                           self.clock.now(), degrade_reason=reason)
        self.clock.schedule(CPU_FALLBACK_NS, finish)

    # -- terminal responses -------------------------------------------------

    def _complete(self, request: ServeRequest,
                  outputs: Dict[str, np.ndarray], path: str,
                  worker_id: int, batch_size: int, completed_ns: int,
                  degrade_reason: str = "") -> None:
        status = "ok" if path == "fast" else "degraded"
        self.obs.counter(f"serve.requests.{status}").inc()
        self.obs.histogram("serve.latency_ns",
                           LATENCY_BUCKETS_NS).observe(
            completed_ns - request.arrival_ns)
        self.rtrace.finish(request.rid, status, t_ns=completed_ns,
                           args={"path": path,
                                 "worker": worker_id,
                                 "reason": degrade_reason})
        self._responses[request.rid] = ServeResponse(
            rid=request.rid, status=status, path=path,
            family=request.family, model=request.model,
            input_seed=request.input_seed, worker=worker_id,
            arrival_ns=request.arrival_ns, completed_ns=completed_ns,
            attempts=self._attempts.get(request.rid, 0),
            retries=self._retries.get(request.rid, 0),
            batch_size=batch_size,
            fault=request.fault.kind if request.fault else "",
            shed_reason=degrade_reason,
            outputs=outputs)
        if self.on_complete is not None:
            self.on_complete(self._responses[request.rid])

    def _shed(self, request: ServeRequest, reason: str) -> None:
        self.obs.counter("serve.requests.shed").inc()
        queue_sid = self._qsid.pop(request.rid, None)
        if queue_sid is not None:
            self.rtrace.end(request.rid, queue_sid)
        self.rtrace.finish(request.rid, "shed",
                           args={"reason": reason})
        self._responses[request.rid] = ServeResponse(
            rid=request.rid, status="shed", path="",
            family=request.family, model=request.model,
            input_seed=request.input_seed, worker=-1,
            arrival_ns=request.arrival_ns,
            completed_ns=self.clock.now(),
            attempts=self._attempts.get(request.rid, 0),
            retries=self._retries.get(request.rid, 0),
            batch_size=0,
            fault=request.fault.kind if request.fault else "",
            shed_reason=reason)
        if self.on_complete is not None:
            self.on_complete(self._responses[request.rid])
