"""Command-line tooling around recording files (the ``grr`` command)."""
