"""``grr`` -- inspect, verify and patch GPUReplay recording files.

Subcommands::

    grr info <file>                       summary + metadata + sizes
    grr actions <file> [--limit N]        the replay-action stream
    grr verify <file> --board BOARD       run the §5.1 static verifier
    grr patch <file> --target-sku SKU -o OUT   cross-SKU patch (§6.4)
    grr trace <file> [--out timeline.json]  replay + export a Perfetto-
                                          loadable Chrome trace timeline
    grr stats <file> [--json]             replay + print the metrics
                                          snapshot (counters/gauges/
                                          histograms)
    grr inspect <file> [--digest] [--dumps]  content addressing: the
                                          recording digest the load
                                          cache keys on, per-dump hashes
    grr inspect <file-or-digest> --store VAULT  chunk-level view inside
                                          a vault: chunk count, dedup
                                          ratio, chunks shared with
                                          other recordings
    grr inspect <file> --jobs             surgery analysis: per-job
                                          kernel chains, dump-closure
                                          sizes, VA footprints
    grr surgery slice <file> --job J [--kernel K] [-o OUT]
                                          extract one job (or one
                                          kernel of its chain) into a
                                          standalone micro-recording
                                          plus a .manifest.json sidecar
    grr surgery compose <slice...> --op repeat|reorder|interleave
                                          stitch micro-recordings into
                                          one synthetic session with
                                          per-instance VA rebasing
    grr surgery ls <file...>              per-job surgery table over
                                          recording files
    grr store pack <vault> <file...>      chunk + dedup recordings into
                                          a content-addressed vault
                                          (reports job-level sharing
                                          across micro-recordings)
    grr store ls <vault> [--family F]     the compatibility index
    grr store fetch <vault> <digest> -o OUT  verified reassembly
    grr store verify <vault> [digest] [--doctor]  scrub the integrity
                                          chain; --doctor localizes
                                          what each corruption breaks
    grr store gc <vault>                  delete unreferenced chunks
    grr bench [--suite fastpath|serve|store|obs|fleet|surgery]
              [--json] [--check PIN]      benchmark suites (no
                                          recording file needed)
    grr serve [--requests N] [--workers N] [--fault-rate P]
              [--synthetic K] [--trace-out events.jsonl]
              [--trace-chrome trace.json]
                                          run the concurrent replay
                                          serving engine on a seeded
                                          synthetic load (--synthetic
                                          serves K composed surgery
                                          sessions per family instead
                                          of the zoo models); verifies
                                          every answer against the CPU
                                          reference and can export the
                                          per-request trace event log
    grr top <events.jsonl> [--limit N]    post-hoc dashboard over a
                                          serve trace: slowest requests
                                          with per-stage breakdowns
    grr attribute <events.jsonl> [--p-lo 99]  tail-latency attribution:
                                          decompose a percentile band
                                          into exclusive per-stage time
    grr slo <events.jsonl> [--strict]     evaluate latency/availability
                                          objectives with burn-rate
                                          alerts over the event log
    grr stats --diff <a.json> <b.json>    structured comparison of two
                                          saved metrics snapshots
    grr profile <events.jsonl> [-o prof.folded] [--chrome flame.json]
                                          fold a serve trace into a
                                          flamegraph.pl-compatible
                                          profile (exclusive virtual
                                          time per frame stack)
    grr counters <file> [--json]          replay + print the emulated
                                          GPU performance-counter tape
                                          (instructions, FLOPs, bytes,
                                          TLB hits/misses, MMIO writes)
    grr dash <timeseries.jsonl> [--series NAME,...]
                                          terminal sparkline dashboard
                                          over a serve time-series log
    grr doctor <file> [--vs-reference]    diagnose a failing replay:
                                          localize the first diverging
                                          chokepoint, emit a
                                          DivergenceReport

Exit codes: 0 success, 1 replay/verification failure, 2 usage errors
(missing or corrupt recording file, unknown board).

Runs entirely offline on the recording file; ``verify`` builds the
target board's machine only to obtain its register map, and ``trace``/
``stats``/``replay`` build a fresh board and feed random inputs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import actions as act
from repro.core.patching import patch_recording_for_sku
from repro.core.recording import Recording
from repro.core.verifier import verify_recording
from repro.errors import ReproError, VerificationError
from repro.soc import BOARDS, Machine
from repro.units import MIB, fmt_bytes, fmt_ns


def _load(path: str) -> Recording:
    with open(path, "rb") as handle:
        return Recording.from_bytes(handle.read())


def _describe_action(action: act.Action) -> str:
    name = type(action).__name__
    if isinstance(action, act.RegWrite):
        detail = (f"{action.reg} <- {action.val:#x}"
                  + (" [KICK]" if action.is_job_kick else ""))
    elif isinstance(action, act.RegReadOnce):
        detail = f"{action.reg} == {action.val:#x}" \
            + (" (ignored)" if action.ignore else "")
    elif isinstance(action, act.RegReadWait):
        detail = (f"{action.reg} & {action.mask:#x} == {action.val:#x} "
                  f"within {fmt_ns(action.timeout_ns)}")
    elif isinstance(action, act.MapGpuMem):
        detail = f"va {action.addr:#x} x{action.num_pages} pages " \
            f"(pte flags {action.raw_pte_flags:#x})"
    elif isinstance(action, act.UnmapGpuMem):
        detail = f"va {action.addr:#x} x{action.num_pages} pages"
    elif isinstance(action, act.Upload):
        detail = f"dump #{action.dump_index} -> va {action.addr:#x}"
    elif isinstance(action, act.WaitIrq):
        detail = f"timeout {fmt_ns(action.timeout_ns)}"
    elif isinstance(action, act.SetGpuPgtable):
        detail = f"memattr {action.memattr:#x}"
    elif isinstance(action, (act.CopyToGpu, act.CopyFromGpu)):
        detail = f"{action.buffer_name} @ {action.gaddr:#x} " \
            f"({action.size} B)"
    else:
        detail = ""
    pace = f" +{fmt_ns(action.min_interval_ns)}" \
        if action.min_interval_ns else ""
    return f"{name:<14} {detail}{pace}"


def cmd_info(args) -> int:
    recording = _load(args.file)
    meta = recording.meta
    print(f"recording: {args.file}")
    print(f"  workload:   {meta.workload} "
          f"({meta.framework} + {meta.api})")
    print(f"  recorded on: {meta.gpu_model} / {meta.board} "
          f"(page tables: {meta.pte_format}, memattr {meta.memattr:#x})")
    print(f"  jobs:       {meta.n_jobs}")
    print(f"  actions:    {len(recording.actions)} "
          f"(prologue {meta.prologue_len})")
    print(f"  reg I/O:    {meta.reg_io}")
    print(f"  dumps:      {len(recording.dumps)} "
          f"({fmt_bytes(recording.dump_bytes())})")
    print(f"  GPU memory: "
          f"{fmt_bytes(recording.peak_gpu_pages() * 4096)} peak")
    print(f"  size:       {fmt_bytes(recording.size_unzipped())} raw, "
          f"{fmt_bytes(recording.size_zipped())} zipped")
    for io in meta.inputs:
        kind = "optional input" if io.optional else "input"
        print(f"  {kind:>14}: {io.name} @ {io.gaddr:#x} "
              f"({io.size} B, shape {io.shape})")
    for io in meta.outputs:
        print(f"  {'output':>14}: {io.name} @ {io.gaddr:#x} "
              f"({io.size} B, shape {io.shape})")
    if meta.power_sequence:
        print(f"  firmware power sequence: "
              f"{len(meta.power_sequence)} calls (baremetal bring-up)")
    return 0


def cmd_actions(args) -> int:
    recording = _load(args.file)
    actions = recording.actions[:args.limit] if args.limit else \
        recording.actions
    for index, action in enumerate(actions):
        job = f"j{action.job_index:<3}" if action.job_index else "    "
        print(f"{index:5d} {job} {_describe_action(action)}")
    remaining = len(recording.actions) - len(actions)
    if remaining > 0:
        print(f"... {remaining} more (raise --limit)")
    return 0


def cmd_verify(args) -> int:
    recording = _load(args.file)
    if args.board not in BOARDS:
        print(f"unknown board {args.board!r}; "
              f"known: {', '.join(sorted(BOARDS))}")
        return 2
    machine = Machine.create(args.board, seed=0)
    register_names = {d.name for d in machine.gpu.regs.defs()}
    max_bytes = args.max_gpu_mb * MIB if args.max_gpu_mb else None
    try:
        report = verify_recording(recording, register_names,
                                  max_gpu_bytes=max_bytes)
    except VerificationError as error:
        print(f"REJECTED: {error}")
        return 1
    print(f"OK: {report.actions} actions verified against "
          f"{machine.gpu.model_name}")
    print(f"  registers used: {len(report.registers_used)}")
    print(f"  peak GPU memory: {fmt_bytes(report.peak_mapped_bytes)}")
    for warning in report.warnings:
        print(f"  warning: {warning}")
    return 0


def _resolve_board(args, recording: Recording) -> Optional[str]:
    board = getattr(args, "board", None) or recording.meta.board
    if board not in BOARDS:
        print(f"unknown board {board!r}; "
              f"known: {', '.join(sorted(BOARDS))}")
        return None
    return board


def _fresh_replay(recording: Recording, board: str, seed: int,
                  with_obs: bool = False):
    """Replay ``recording`` on a fresh board with random inputs.

    Returns ``(machine, replayer, result)``; the replayer is still
    initialized so callers can inspect it before cleanup().
    """
    import numpy as np

    from repro.core.replayer import Replayer
    from repro.environments.base import host_kernel_configures_gpu
    from repro.obs import enable_observability

    machine = Machine.create(board, seed=seed)
    if with_obs:
        enable_observability(machine)
    host_kernel_configures_gpu(machine)
    replayer = Replayer(machine)
    replayer.init()
    replayer.load(recording)
    rng = np.random.default_rng(seed)
    inputs = {}
    for io in recording.meta.inputs:
        if io.optional:
            continue
        shape = io.shape or (io.size // 4,)
        inputs[io.name] = rng.standard_normal(shape).astype(np.float32)
    result = replayer.replay(inputs=inputs)
    return machine, replayer, result


def cmd_replay(args) -> int:
    """Replay a recording on a fresh simulated board with random input."""
    recording = _load(args.file)
    board = _resolve_board(args, recording)
    if board is None:
        return 2
    machine, replayer, result = _fresh_replay(recording, board,
                                              args.seed)
    print(f"replayed {recording.meta.workload} on "
          f"{machine.gpu.model_name}: {result.stats.jobs_kicked} jobs, "
          f"{result.stats.actions_executed} actions in "
          f"{fmt_ns(result.duration_ns)} virtual "
          f"(attempt {result.attempts})")
    for name, value in result.outputs.items():
        flat = value.reshape(-1)
        preview = ", ".join(f"{v:.4f}" for v in flat[:6])
        suffix = ", ..." if flat.size > 6 else ""
        print(f"  output {name} {tuple(value.shape)}: "
              f"[{preview}{suffix}]")
    replayer.cleanup()
    return 0


def _trace_from_report(args) -> Optional[int]:
    """If ``args.file`` is a saved DivergenceReport, export its flight
    window as a Chrome trace; None means it is not a report."""
    import json

    from repro.obs import validate_chrome_trace
    from repro.obs.doctor import DivergenceReport

    try:
        report = DivergenceReport.load(args.file)
    except (ReproError, OSError, UnicodeDecodeError,
            json.JSONDecodeError):
        return None
    trace = report.flight_chrome_trace()
    errors = validate_chrome_trace(trace)
    if errors:
        print(f"INVALID trace ({len(errors)} problems):")
        for problem in errors[:10]:
            print(f"  {problem}")
        return 1
    with open(args.out, "w") as handle:
        json.dump(trace, handle, indent=1)
    print(f"wrote {args.out}: flight window of a {report.kind} report "
          f"({len(report.flight_window)} events, divergence at action "
          f"#{report.action_index}); load it at "
          f"https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_trace(args) -> int:
    """Replay with observability on and export a Chrome trace JSON.

    Also accepts a saved ``grr doctor`` report, exporting its flight
    window instead of replaying."""
    from repro.errors import SerializationError
    from repro.obs import validate_chrome_trace

    try:
        recording = _load(args.file)
    except SerializationError:
        handled = _trace_from_report(args)
        if handled is None:
            raise
        return handled
    board = _resolve_board(args, recording)
    if board is None:
        return 2
    machine, replayer, result = _fresh_replay(recording, board,
                                              args.seed, with_obs=True)
    replayer.cleanup()
    trace = machine.obs.export_timeline(args.out)
    errors = validate_chrome_trace(trace)
    if errors:
        print(f"INVALID trace ({len(errors)} problems):")
        for problem in errors[:10]:
            print(f"  {problem}")
        return 1
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") in ("B", "X"))
    print(f"wrote {args.out}: {len(events)} events ({spans} spans) "
          f"over {fmt_ns(result.duration_ns)} of replay; load it at "
          f"https://ui.perfetto.dev or chrome://tracing")
    return 0


def _print_snapshot(snapshot) -> None:
    for name in sorted(snapshot["counters"]):
        print(f"  {name:<36} {snapshot['counters'][name]}")
    for name in sorted(snapshot["gauges"]):
        print(f"  {name:<36} {snapshot['gauges'][name]}")
    for name in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][name]
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        quantiles = "".join(
            f" {q}={hist[q]:.0f}" for q in ("p50", "p95", "p99")
            if q in hist)
        print(f"  {name:<36} count={hist['count']} "
              f"sum={hist['sum']:.0f} mean={mean:.1f}{quantiles}")


def _print_snapshot_diff(diff) -> None:
    for kind in ("counters", "gauges"):
        section = diff[kind]
        for name in sorted(section["changed"]):
            change = section["changed"][name]
            # "delta" is absent when either side is non-numeric (a
            # hand-edited or cross-version snapshot); JSON-loaded
            # deltas may be floats, so never format with :+d.
            delta = f" (delta {change['delta']:+g})" \
                if "delta" in change else ""
            print(f"  {name:<36} {change['before']} -> "
                  f"{change['after']}{delta}")
        for name in sorted(section["added"]):
            print(f"  {name:<36} (new) {section['added'][name]}")
        for name in sorted(section["removed"]):
            print(f"  {name:<36} (gone, was "
                  f"{section['removed'][name]})")
    hists = diff["histograms"]
    for name in sorted(hists["changed"]):
        change = hists["changed"][name]
        if "count_delta" not in change:
            # Degraded entry: one side was not a histogram dict.
            print(f"  {name:<36} {change.get('before')} -> "
                  f"{change.get('after')}")
            continue
        shifts = "".join(
            f" {q} {change[q]['before']:.0f}->{change[q]['after']:.0f}"
            for q in ("p50", "p95", "p99") if q in change)
        print(f"  {name:<36} count {change['count_delta']:+g} "
              f"sum {change['sum_delta']:+g} "
              f"overflow {change['overflow_delta']:+g}{shifts}")
    for name in sorted(hists["added"]):
        print(f"  {name:<36} (new histogram)")
    for name in sorted(hists["removed"]):
        print(f"  {name:<36} (gone)")


def cmd_stats(args) -> int:
    """Replay with observability on and print the metrics snapshot.

    With ``--diff A B`` no replay happens: the two saved snapshot JSON
    files are compared structurally instead (what moved, what appeared,
    what vanished) -- the forensic half of the CI regression sentry.
    """
    import json

    if args.diff:
        from repro.obs.metrics import snapshot_diff

        with open(args.diff[0]) as handle:
            before = json.load(handle)
        with open(args.diff[1]) as handle:
            after = json.load(handle)
        diff = snapshot_diff(before, after)
        if args.json:
            print(json.dumps(diff, indent=1, sort_keys=True))
            return 0
        print(f"snapshot diff {args.diff[0]} -> {args.diff[1]}:")
        _print_snapshot_diff(diff)
        return 0
    if args.file is None:
        print("error: a recording file is required unless --diff is "
              "given", file=sys.stderr)
        return 2
    recording = _load(args.file)
    board = _resolve_board(args, recording)
    if board is None:
        return 2
    machine, replayer, result = _fresh_replay(recording, board,
                                              args.seed, with_obs=True)
    replayer.cleanup()
    snapshot = machine.obs.snapshot()
    if args.json:
        print(json.dumps(snapshot, indent=1, sort_keys=True))
        return 0
    print(f"metrics after replaying {recording.meta.workload} "
          f"({fmt_ns(result.duration_ns)} virtual):")
    _print_snapshot(snapshot)
    return 0


def _inspect_store(args) -> int:
    """Chunk-level view of one recording inside a vault."""
    import os

    from repro.store import Vault

    vault = Vault.open(args.store)
    if os.path.exists(args.file):
        digest = _load(args.file).digest()
        if digest not in vault:
            print(f"error: {args.file} (digest {digest[:12]}) is not "
                  f"packed in {args.store}", file=sys.stderr)
            return 2
    else:
        digest = vault.resolve(args.file)
    stats = vault.recording_stats(digest)
    print(f"recording {digest[:12]} ({stats['workload']}) "
          f"in {args.store}:")
    print(f"  dump bytes:    {fmt_bytes(stats['dump_bytes'])}")
    print(f"  chunks:        {stats['chunks']} "
          f"({stats['unique_chunks']} distinct)")
    print(f"  shared chunks: {stats['shared_chunks']} "
          f"(dedup ratio {stats['dedup_ratio']:.1%})")
    for other, count in stats["shared_with"].items():
        entry = vault.index.entries.get(other)
        label = f" ({entry.workload} on {entry.board})" if entry else ""
        print(f"    {count:4d} shared with {other[:12]}{label}")
    return 0


def cmd_inspect(args) -> int:
    """Content-addressing view: recording digest, per-dump hashes."""
    if args.store:
        return _inspect_store(args)
    recording = _load(args.file)
    if args.jobs:
        return _inspect_jobs(args.file, recording)
    if args.digest and not args.dumps:
        print(recording.digest())
        return 0
    print(f"recording: {args.file}")
    print(f"  digest: {recording.digest()}")
    print(f"  actions: {len(recording.actions)}  "
          f"dumps: {len(recording.dumps)} "
          f"({fmt_bytes(recording.dump_bytes())})")
    if args.dumps:
        for index, dump in enumerate(recording.dumps):
            print(f"  dump #{index:<3} va {dump.va:#010x} "
                  f"{fmt_bytes(dump.size):>10}  sha256 {dump.digest}")
    return 0


def _inspect_jobs(path: str, recording: Recording) -> int:
    """The surgery view: per-job kernel chains, closures, footprints."""
    from repro.surgery import analyze_recording

    analysis = analyze_recording(recording)
    meta = recording.meta
    print(f"recording: {path}")
    print(f"  workload {meta.workload}  family {meta.family}  "
          f"{meta.gpu_model} on {meta.board}  "
          f"jobs {len(analysis.jobs)}")
    for info in analysis.jobs:
        lo, hi = info.va_footprint
        print(f"  job {info.job_index:<3} kick @#{info.kick_index:<4} "
              f"kernels {len(info.kernels)}  "
              f"closure {fmt_bytes(info.closure_bytes):>9} "
              f"({len(info.closure)} ranges, "
              f"{fmt_bytes(info.dump_covered_bytes)} dump-covered)  "
              f"va {lo:#x}..{hi:#x}")
        for kernel in info.kernels:
            print(f"      kernel {kernel.index}: "
                  f"desc {kernel.desc_va:#x} "
                  f"shader {kernel.shader_va:#x}"
                  f"+{kernel.shader_size}  "
                  f"ops {'+'.join(kernel.ops)}")
    return 0


def cmd_store_pack(args) -> int:
    """Chunk + dedup recording files into a vault."""
    from repro.store import Vault

    vault = Vault(args.vault)
    for path in args.files:
        recording = _load(path)
        manifest = vault.pack(recording)
        print(f"packed {path} -> {manifest.digest[:12]} "
              f"({recording.meta.workload} on {manifest.board}, "
              f"{len(manifest.chunk_refs())} chunks)")
    stats = vault.stats()
    print(f"vault {args.vault}: {stats.recordings} recordings, "
          f"{stats.unique_chunks} chunks for {stats.chunk_refs} refs "
          f"({stats.shared_chunk_ratio:.1%} shared), "
          f"{fmt_bytes(stats.disk_bytes)} on disk for "
          f"{fmt_bytes(stats.logical_bytes)} logical")
    job_stats = vault.job_sharing_stats()
    if job_stats["micro_recordings"]:
        print(f"  job-level sharing: {job_stats['micro_recordings']} "
              f"micro-recordings, "
              f"{job_stats['shared_chunk_refs']}/"
              f"{job_stats['chunk_refs']} dump-chunk refs shared "
              f"({job_stats['dump_chunk_dedup']:.1%} dedup)")
        for entry in job_stats["per_recording"]:
            siblings = ",".join(d[:12] for d in entry["shared_with"])
            line = (f"    {entry['digest'][:12]} "
                    f"{entry['workload']:<28} "
                    f"{entry['shared_chunks']}/{entry['chunks']} "
                    f"chunks shared")
            if siblings:
                line += f" (with {siblings})"
            print(line)
    return 0


def cmd_store_ls(args) -> int:
    """List the compatibility index."""
    from repro.store import Vault

    vault = Vault.open(args.vault)
    entries = vault.index.list(family=args.family)
    if not entries:
        print("(empty vault)" if args.family is None
              else f"(no {args.family} recordings)")
        return 0
    for entry in entries:
        clock = f"{entry.clock_hz / 1e6:.0f} MHz" if entry.clock_hz \
            else "?"
        print(f"{entry.digest[:12]}  {entry.family:<6} "
              f"{entry.workload:<12} {entry.gpu_model:<10} "
              f"{entry.board:<12} {clock:>8}  "
              f"{fmt_bytes(entry.body_bytes)}")
    return 0


def cmd_store_fetch(args) -> int:
    """Reassemble a recording out of the vault, verified by default."""
    from repro.store import Vault

    vault = Vault.open(args.vault)
    digest = vault.resolve(args.digest)
    recording = vault.fetch(digest, verify=not args.no_verify)
    with open(args.output, "wb") as handle:
        handle.write(recording.to_bytes())
    state = "unverified" if args.no_verify else "verified"
    print(f"fetched {digest[:12]} ({recording.meta.workload}) "
          f"-> {args.output} ({state})")
    return 0


def cmd_store_verify(args) -> int:
    """Scrub the integrity chain; exit 1 when anything is corrupt."""
    from repro.store import Vault

    vault = Vault.open(args.vault)
    digest = vault.resolve(args.digest) if args.digest else None
    problems = vault.verify(digest)
    checked = 1 if digest else len(vault.digests())
    if not problems:
        print(f"OK: {checked} recordings verified, integrity chain "
              f"intact")
        return 0
    print(f"CORRUPT: {len(problems)} of {checked} recordings damaged:")
    for error in problems:
        print(f"  {error}")
    if args.doctor:
        for error in problems:
            if not error.recording_digest:
                continue
            report = vault.diagnose(error.recording_digest,
                                    board=args.board)
            if report is None:
                print(f"  doctor: {error.recording_digest[:12]} still "
                      f"replays (damage not on any executed path)")
            else:
                print(f"  doctor: {error.recording_digest[:12]} "
                      f"diverges at action #{report.action_index}")
                print(report.render())
    return 1


def cmd_store_gc(args) -> int:
    """Delete chunks no manifest references."""
    from repro.store import Vault

    vault = Vault.open(args.vault)
    removed, freed = vault.gc()
    print(f"gc: removed {removed} unreferenced objects, "
          f"freed {fmt_bytes(freed)}")
    return 0


def cmd_surgery_slice(args) -> int:
    """Extract one job (or one kernel) into a micro-recording."""
    from repro.surgery import analyze_recording, slice_job, verify_slice
    from repro.surgery.analyze import ranges_bytes

    parent = _load(args.file)
    analysis = analyze_recording(parent)
    slice_ = slice_job(parent, args.job, kernel_index=args.kernel,
                       input_seed=args.input_seed, board=args.board,
                       analysis=analysis)
    out = args.output
    if out is None:
        out = f"{args.file}.job{args.job}"
        if args.kernel is not None:
            out += f".k{args.kernel}"
        out += ".grr"
    with open(out, "wb") as handle:
        handle.write(slice_.recording.to_bytes())
    manifest_path = out + ".manifest.json"
    slice_.manifest.save(manifest_path)
    manifest = slice_.manifest
    what = f"job {manifest.job_index}"
    if manifest.kernel_index >= 0:
        what += f" kernel {manifest.kernel_index}"
    print(f"sliced {manifest.parent_workload} {what} -> {out}")
    print(f"  digest {manifest.slice_digest[:12]}  family "
          f"{manifest.family}  board {manifest.board}")
    closure = [tuple(r) for r in manifest.closure]
    print(f"  closure {fmt_bytes(ranges_bytes(closure))} over "
          f"{len(closure)} ranges; dumps "
          f"{fmt_bytes(slice_.recording.dump_bytes())} "
          f"(parent carries {fmt_bytes(parent.dump_bytes())})")
    print(f"  outputs {', '.join(o['name'] for o in manifest.outputs)}"
          f"  manifest -> {manifest_path}")
    if args.check:
        if verify_slice(parent, slice_, board=args.board,
                        analysis=analysis):
            print("  equivalence: slice write-set is byte-identical "
                  "to the parent's")
        else:
            print("error: slice write-set diverges from the parent "
                  "session", file=sys.stderr)
            return 1
    return 0


def _load_slice(path: str):
    """A slice file plus its required .manifest.json sidecar."""
    from repro.surgery import Slice, SliceManifest

    recording = _load(path)
    manifest = SliceManifest.load(path + ".manifest.json")
    if manifest.slice_digest != recording.digest():
        raise VerificationError(
            f"{path}: manifest sidecar is for digest "
            f"{manifest.slice_digest[:12]}, file is "
            f"{recording.digest()[:12]}")
    return Slice(recording, manifest)


def cmd_surgery_compose(args) -> int:
    """Stitch micro-recordings into one synthetic session."""
    import numpy as np

    from repro.surgery import interleave, reorder, repeat

    slices = [_load_slice(path) for path in args.slices]
    if args.op == "repeat":
        if len(slices) != 1:
            print("error: --op repeat takes exactly one slice",
                  file=sys.stderr)
            return 2
        composed = repeat(slices[0], args.n)
    elif args.op == "reorder":
        composed = reorder(slices, args.order_seed)
    else:
        composed = interleave(slices, rounds=args.rounds)
    with open(args.output, "wb") as handle:
        handle.write(composed.recording.to_bytes())
    manifest_path = args.output + ".manifest.json"
    composed.manifest.save(manifest_path)
    manifest = composed.manifest
    print(f"composed {manifest.op}: {len(manifest.schedule)} jobs over "
          f"{len(manifest.instances)} instances -> {args.output}")
    print(f"  digest {manifest.composed_digest[:12]}  family "
          f"{manifest.family}  schedule {manifest.schedule}")
    for index, inst in enumerate(manifest.instances):
        print(f"  instance {index}: {inst['workload']} "
              f"[{str(inst['slice_digest'])[:12]}] at "
              f"delta {inst['delta']:#x}")
    print(f"  manifest -> {manifest_path}")
    if args.check:
        from repro.surgery import cpu_reference_outputs
        from repro.surgery.composer import replay_composed_outputs

        expected = manifest.expected_output_arrays()
        cpu = cpu_reference_outputs(composed.recording)
        gpu = replay_composed_outputs(composed, args.board)
        bad = [name for name, want in sorted(expected.items())
               if not (np.array_equal(
                   want.reshape(-1),
                   np.asarray(cpu[name], np.float32).reshape(-1))
                   and np.array_equal(
                       want.reshape(-1),
                       np.asarray(gpu[name], np.float32).reshape(-1)))]
        if bad:
            print(f"error: {len(bad)} outputs disagree across "
                  f"manifest/CPU/GPU: {bad[:10]}", file=sys.stderr)
            return 1
        print(f"  differential: all {len(expected)} outputs agree "
              f"(GPU replay == CPU reference == manifest)")
    return 0


def cmd_surgery_ls(args) -> int:
    """Per-job surgery table over recording files."""
    for path in args.files:
        _inspect_jobs(path, _load(path))
    return 0


def cmd_bench(args) -> int:
    """Run a benchmark suite; optionally guard a pin."""
    import json as json_mod

    from repro.bench.experiments import (fleet_scaling, measure_fastpath,
                                         measure_fleet, measure_obs,
                                         measure_serve, measure_store,
                                         measure_surgery, obs_overhead,
                                         replay_fastpath, serve_throughput,
                                         store_report, surgery_report)

    if args.suite == "fleet":
        def measure():
            return measure_fleet()
        guarded = ("scaling_ratio", "differential_ok")
        def render():
            return fleet_scaling().render()
    elif args.suite == "obs":
        def measure():
            return measure_obs()
        guarded = ("obs_speed_ratio",)
        def render():
            return obs_overhead().render()
    elif args.suite == "serve":
        def measure():
            return measure_serve(mega=args.mega)
        guarded = ("throughput_ratio", "plain_throughput_ratio")
        def render():
            return serve_throughput(mega=args.mega).render()
    elif args.suite == "store":
        def measure():
            return measure_store()
        guarded = ("dedup_savings",)
        def render():
            return store_report().render()
    elif args.suite == "surgery":
        def measure():
            return measure_surgery()
        guarded = ("sibling_dump_dedup", "equivalence_ok",
                   "composed_differential_ok")
        def render():
            return surgery_report().render()
    else:
        def measure():
            return measure_fastpath(family=args.family,
                                    model_name=args.model,
                                    replays=args.replays)
        guarded = ("warm_load_speedup", "replay_speedup",
                   "fast_replays_per_sec", "mega_replays_per_sec",
                   "mega_speedup")
        def render():
            return replay_fastpath(family=args.family,
                                   model_name=args.model,
                                   replays=args.replays).render()

    if args.json or args.check:
        measured = measure()
        if args.json:
            print(json_mod.dumps(measured, indent=2, sort_keys=True))
        if args.check:
            with open(args.check) as handle:
                pinned = json_mod.load(handle)
            failures = []
            for metric in guarded:
                floor = pinned[metric] * (1 - args.tolerance)
                got = measured[metric]
                status = "ok" if got >= floor else "REGRESSION"
                print(f"{metric}: {got:.2f} (pinned {pinned[metric]:.2f}, "
                      f"floor {floor:.2f}) {status}", file=sys.stderr)
                if got < floor:
                    failures.append(metric)
            # Relative drift of every shared numeric metric (guarded
            # or not) vs the committed pin, rendered through the same
            # machinery as `grr stats --diff` so the output reads the
            # same in CI logs and local triage.
            import contextlib

            from repro.obs.metrics import snapshot_diff

            def as_gauges(result):
                return {"gauges": {
                    name: value for name, value in result.items()
                    if isinstance(value, (int, float))
                    and not isinstance(value, bool)}}

            print(f"delta vs pin {args.check}:", file=sys.stderr)
            with contextlib.redirect_stdout(sys.stderr):
                _print_snapshot_diff(
                    snapshot_diff(as_gauges(pinned), as_gauges(measured)))
            if failures:
                print(f"error: {args.suite} regression in "
                      f"{', '.join(failures)} (>"
                      f"{args.tolerance:.0%} below pin)", file=sys.stderr)
                return 1
        return 0
    print(render())
    return 0


def cmd_serve(args) -> int:
    """Run the serving engine against a seeded synthetic load."""
    import json as json_mod

    from repro.bench.workloads import board_for_family
    from repro.serve import (LoadgenConfig, RecordingStore, ReplayServer,
                             ServerConfig, generate_requests,
                             verify_report)

    families = tuple(f.strip() for f in args.families.split(",")
                     if f.strip())
    models = tuple(m.strip() for m in args.models.split(",")
                   if m.strip())
    for family in families:
        try:
            board_for_family(family)
        except ReproError:
            print(f"unknown family {family!r}", file=sys.stderr)
            return 2
    worker_families = tuple(families[i % len(families)]
                            for i in range(args.workers))
    if args.synthetic:
        # The synthetic workload source: composed surgery sessions
        # drawn from a seeded plan, served exactly like zoo models.
        from repro.surgery import SyntheticRecordingStore

        store = SyntheticRecordingStore()
        for family in sorted(set(families)):
            store.populate_from_models(
                family, list(models), sessions=args.synthetic,
                seed=args.synthetic_seed)
        mix = tuple(store.mix())
    else:
        store = RecordingStore.from_zoo(tuple(
            (family, model)
            for family in sorted(set(families)) for model in models))
        mix = tuple(store.mix())
    load_cfg = LoadgenConfig(
        requests=args.requests, seed=args.seed, mix=mix,
        fault_rate=args.fault_rate)
    requests = generate_requests(load_cfg)
    tracing = not args.no_trace
    server = ReplayServer(store, ServerConfig(
        families=worker_families, seed=args.seed,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        mega_batch=args.mega, trace=tracing,
        timeseries=not args.no_timeseries,
        gpu_counters=not args.no_counters))
    # Stamp the load shape into the event log so a saved trace is
    # self-describing (no-op when tracing is off).
    server.rtrace.meta("loadgen", args=load_cfg.to_dict())
    report = server.serve(requests)
    server.close()

    aux = sys.stderr if args.json else sys.stdout
    if args.trace_out or args.trace_chrome or args.profile_out:
        import json as json_mod

        from repro.obs.prof import chrome_flame, folded_stacks, \
            to_folded_text
        from repro.obs.rtrace import (events_to_chrome, events_to_jsonl,
                                      validate_events)

        if not tracing:
            print("error: --trace-out/--trace-chrome/--profile-out "
                  "require tracing (drop --no-trace)", file=sys.stderr)
            return 2
        events = report.trace_events
        problems = validate_events(
            events, expected_rids={r.rid for r in report.responses})
        for problem in problems[:5]:
            print(f"warning: trace incomplete: {problem}",
                  file=sys.stderr)
        if args.trace_out:
            with open(args.trace_out, "w") as handle:
                handle.write(events_to_jsonl(events))
            print(f"wrote {args.trace_out} ({len(events)} events, "
                  f"{len(report.responses)} request traces)", file=aux)
        if args.trace_chrome:
            trace_doc = events_to_chrome(events)
            # The continuous profile rides the same timeline document
            # as a flamegraph track (one slice per frame stack).
            trace_doc["traceEvents"].extend(
                chrome_flame(folded_stacks(events)))
            with open(args.trace_chrome, "w") as handle:
                json_mod.dump(trace_doc, handle,
                              indent=1, sort_keys=True)
            print(f"wrote {args.trace_chrome} (load in Perfetto / "
                  f"chrome://tracing)", file=aux)
        if args.profile_out:
            stacks = folded_stacks(events)
            with open(args.profile_out, "w") as handle:
                handle.write(to_folded_text(stacks))
            print(f"wrote {args.profile_out} ({len(stacks)} frame "
                  f"stacks; render with flamegraph.pl or `grr "
                  f"profile`)", file=aux)
    if args.timeseries_out or args.openmetrics:
        if report.timeseries is None:
            print("error: --timeseries-out/--openmetrics require the "
                  "time-series collector (drop --no-timeseries)",
                  file=sys.stderr)
            return 2
        if args.timeseries_out:
            with open(args.timeseries_out, "w") as handle:
                handle.write(report.timeseries.to_jsonl())
            print(f"wrote {args.timeseries_out} "
                  f"({len(report.timeseries.series)} series; feed to "
                  f"`grr dash`)", file=aux)
        if args.openmetrics:
            with open(args.openmetrics, "w") as handle:
                handle.write(report.timeseries.to_openmetrics())
            print(f"wrote {args.openmetrics} (OpenMetrics text "
                  f"exposition)", file=aux)

    counts = report.counts()
    counters = report.snapshot["counters"]
    percentiles = report.latency_percentiles()
    if args.json:
        summary = report.summary()
        summary["percentiles"] = percentiles
        print(json_mod.dumps(summary, indent=1, sort_keys=True))
    else:
        print(f"served {report.submitted} requests on "
              f"{args.workers} workers ({', '.join(worker_families)}) "
              f"in {fmt_ns(report.makespan_ns)} virtual")
        print(f"  ok {counts['ok']}  degraded {counts['degraded']}  "
              f"shed {counts['shed']}  lost {len(report.lost)}")
        print(f"  retries {counters.get('serve.retries', 0)}  "
              f"worker failures "
              f"{counters.get('serve.worker_failures', 0)}  "
              f"cpu fallbacks "
              f"{counters.get('serve.cpu_fallbacks', 0)}")
        if args.mega:
            print(f"  mega batches "
                  f"{counters.get('serve.mega.batches', 0)} "
                  f"({counters.get('serve.mega.requests', 0)} fused "
                  f"requests, "
                  f"{counters.get('serve.mega.fallbacks', 0)} "
                  f"fallbacks)")
        print(f"  latency p50 {fmt_ns(int(percentiles['p50']))}  "
              f"p95 {fmt_ns(int(percentiles['p95']))}  "
              f"p99 {fmt_ns(int(percentiles['p99']))}")
        print(f"  throughput {report.throughput_rps():.1f} requests/s "
              f"(virtual)")
        totals = report.gpu_counters.get("totals", {})
        if totals.get("kernels"):
            print(f"  gpu counters: {totals.get('kernels', 0):.0f} "
                  f"kernels, {totals.get('instructions', 0):.0f} "
                  f"instructions, {totals.get('flops', 0):.3g} flops, "
                  f"{totals.get('mmio_writes', 0):.0f} mmio writes, "
                  f"tlb {totals.get('tlb_hits', 0):.0f}/"
                  f"{totals.get('tlb_misses', 0):.0f} hit/miss")
    if report.lost:
        print(f"error: {len(report.lost)} requests lost: "
              f"{report.lost[:10]}", file=sys.stderr)
        return 1
    if not args.no_verify:
        mismatches = verify_report(report, store)
        if mismatches:
            print(f"error: {len(mismatches)} outputs disagree with the "
                  f"CPU reference:", file=sys.stderr)
            for mismatch in mismatches[:10]:
                print(f"  {mismatch}", file=sys.stderr)
            return 1
        answered = counts["ok"] + counts["degraded"]
        print(f"  verified: all {answered} answered outputs match the "
              f"CPU reference",
              file=sys.stderr if args.json else sys.stdout)
    return 0


def cmd_fleet(args) -> int:
    """Serve a seeded synthetic load on a simulated multi-node fleet."""
    import json as json_mod

    from repro.bench.workloads import board_for_family
    from repro.fleet import Fleet, FleetConfig
    from repro.serve import (LoadgenConfig, RecordingStore,
                             generate_requests, verify_report)

    families = tuple(f.strip() for f in args.families.split(",")
                     if f.strip())
    models = tuple(m.strip() for m in args.models.split(",")
                   if m.strip())
    for family in families:
        try:
            board_for_family(family)
        except ReproError:
            print(f"unknown family {family!r}", file=sys.stderr)
            return 2
    quotas = []
    for spec in args.quota or ():
        tenant, _, cap = spec.partition("=")
        if not tenant or not cap.isdigit():
            print(f"error: --quota wants TENANT=N, got {spec!r}",
                  file=sys.stderr)
            return 2
        quotas.append((tenant, int(cap)))
    if args.synthetic:
        from repro.surgery import SyntheticRecordingStore

        store = SyntheticRecordingStore()
        for family in sorted(set(families)):
            store.populate_from_models(
                family, list(models), sessions=args.synthetic,
                seed=args.synthetic_seed)
        mix = tuple(store.mix())
    else:
        store = RecordingStore.from_zoo(tuple(
            (family, model)
            for family in sorted(set(families)) for model in models))
        mix = tuple(store.mix())
    load_cfg = LoadgenConfig(
        requests=args.requests, seed=args.seed, mix=mix,
        fault_rate=args.fault_rate, shape=args.shape,
        popularity=args.popularity,
        tenants=tuple(t.strip() for t in args.tenants.split(",")
                      if t.strip()) if args.tenants else ())
    requests = generate_requests(load_cfg)
    fleet = Fleet(store, FleetConfig(
        nodes=args.nodes, node_families=families, seed=args.seed,
        queue_depth=args.queue_depth, max_batch=args.max_batch,
        workers_max=args.max_workers, trace=not args.no_trace,
        quotas=tuple(quotas)))
    fleet.rtrace.meta("loadgen", args=load_cfg.to_dict())
    report = fleet.serve(requests)
    fleet.close()

    aux = sys.stderr if args.json else sys.stdout
    if args.routing_out:
        with open(args.routing_out, "w") as handle:
            for decision in report.routing:
                handle.write(json_mod.dumps(decision, sort_keys=True))
                handle.write("\n")
        print(f"wrote {args.routing_out} ({len(report.routing)} "
              f"routing decisions)", file=aux)
    if args.trace_out:
        from repro.obs.rtrace import events_to_jsonl

        if args.no_trace:
            print("error: --trace-out requires tracing (drop "
                  "--no-trace)", file=sys.stderr)
            return 2
        with open(args.trace_out, "w") as handle:
            handle.write(events_to_jsonl(report.trace_events))
        print(f"wrote {args.trace_out} "
              f"({len(report.trace_events)} events across "
              f"{args.nodes} nodes)", file=aux)

    counts = report.counts()
    counters = report.snapshot["counters"]
    gauges = report.snapshot["gauges"]
    percentiles = report.latency_percentiles()
    if args.json:
        summary = report.summary()
        summary["percentiles"] = percentiles
        print(json_mod.dumps(summary, indent=1, sort_keys=True))
    else:
        print(f"served {report.submitted} requests on {args.nodes} "
              f"nodes ({', '.join(families)} per node) in "
              f"{fmt_ns(report.makespan_ns)} virtual")
        print(f"  ok {counts['ok']}  degraded {counts['degraded']}  "
              f"shed {counts['shed']}  lost {len(report.lost)}  "
              f"duplicates {len(report.duplicates)}")
        print(f"  routing: affinity "
              f"{counters.get('fleet.router.affinity_hits', 0)}  "
              f"p2c {counters.get('fleet.router.p2c_picks', 0)}  "
              f"spills "
              f"{counters.get('fleet.router.overload_spills', 0)}")
        print(f"  autoscale: up "
              f"{counters.get('fleet.autoscale.up', 0)}  down "
              f"{counters.get('fleet.autoscale.down', 0)}  peak "
              f"workers {gauges.get('fleet.workers.peak', 0):.0f}")
        if counters.get("fleet.replication.peer_fetches"):
            print(f"  replication: peer fetches "
                  f"{counters.get('fleet.replication.peer_fetches', 0)}"
                  f"  corrupt chunks "
                  f"{counters.get('fleet.replication.corrupt_chunks', 0)}")
        print(f"  latency p50 {fmt_ns(int(percentiles['p50']))}  "
              f"p95 {fmt_ns(int(percentiles['p95']))}  "
              f"p99 {fmt_ns(int(percentiles['p99']))}")
        print(f"  throughput {report.throughput_rps():.1f} requests/s "
              f"(virtual)")
    failed = False
    if report.lost:
        print(f"error: {len(report.lost)} requests lost: "
              f"{report.lost[:10]}", file=sys.stderr)
        failed = True
    if report.duplicates:
        print(f"error: {len(report.duplicates)} requests answered "
              f"more than once: {report.duplicates[:10]}",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    if not args.no_verify:
        mismatches = verify_report(report, store)
        if mismatches:
            print(f"error: {len(mismatches)} outputs disagree with "
                  f"the CPU reference:", file=sys.stderr)
            for mismatch in mismatches[:10]:
                print(f"  {mismatch}", file=sys.stderr)
            return 1
        answered = counts["ok"] + counts["degraded"]
        print(f"  verified: all {answered} answered outputs match the "
              f"CPU reference",
              file=sys.stderr if args.json else sys.stdout)
    return 0


def _read_events(path: str):
    """Load a trace event log, or None (+ message) if unreadable."""
    from repro.obs.rtrace import load_events

    try:
        return load_events(path)
    except ValueError as error:
        print(f"error: {path} is not a trace event log: {error}",
              file=sys.stderr)
        return None


def cmd_top(args) -> int:
    """Post-hoc dashboard over a serve trace: slowest requests first."""
    from repro.obs.rtrace import span_trees, validate_events

    events = _read_events(args.file)
    if events is None:
        return 2
    problems = validate_events(events)
    for problem in problems[:5]:
        print(f"warning: {problem}", file=sys.stderr)
    roots = span_trees(events)
    if not roots:
        print("(no request traces in log)")
        return 0

    rows = []
    for rid in sorted(roots):
        root = roots[rid]
        status = str(root.args.get("status", "?"))
        stages = {}
        for node in root.walk():
            stages[node.name] = stages.get(node.name, 0) \
                + node.exclusive_ns
        rows.append((rid, status, root.duration_ns, stages))

    answered = sorted(lat for _, status, lat, _ in rows
                      if status != "shed")
    counts: dict = {}
    for _, status, _, _ in rows:
        counts[status] = counts.get(status, 0) + 1

    def pct(p: float) -> int:
        if not answered:
            return 0
        rank = min(len(answered) - 1, int(p / 100.0 * len(answered)))
        return answered[rank]

    summary = "  ".join(f"{status} {counts[status]}"
                        for status in sorted(counts))
    print(f"{len(rows)} request(s): {summary}")
    if answered:
        print(f"answered latency p50 {fmt_ns(pct(50))}  "
              f"p95 {fmt_ns(pct(95))}  p99 {fmt_ns(pct(99))}")
    print(f"{'rid':>5} {'status':<9} {'latency':>12}  breakdown "
          "(exclusive virtual time)")
    rows.sort(key=lambda row: (-row[2], row[0]))
    for rid, status, latency, stages in rows[:args.limit]:
        parts = sorted(stages.items(), key=lambda kv: (-kv[1], kv[0]))
        breakdown = "  ".join(
            f"{name} {fmt_ns(ns)}" for name, ns in parts[:4] if ns)
        print(f"{rid:>5} {status:<9} {fmt_ns(latency):>12}  "
              f"{breakdown or '-'}")
    if len(rows) > args.limit:
        print(f"  ... {len(rows) - args.limit} more "
              f"(raise --limit to see them)")
    return 0


def cmd_attribute(args) -> int:
    """Decompose a latency percentile band into per-stage time."""
    import json as json_mod

    from repro.obs.attribution import attribute

    events = _read_events(args.file)
    if events is None:
        return 2
    statuses = None
    if args.status:
        statuses = tuple(s.strip() for s in args.status.split(",")
                         if s.strip())
    report = attribute(events, p_lo=args.p_lo, p_hi=args.p_hi,
                       statuses=statuses)
    if args.json:
        print(json_mod.dumps(report.to_dict(), indent=1,
                             sort_keys=True))
    else:
        print(report.render())
    return 0


def cmd_slo(args) -> int:
    """Evaluate SLOs with burn-rate alerts against an event log."""
    import json as json_mod

    from repro.obs.slo import (SloSpec, default_slos, evaluate_slos,
                               slo_report)
    from repro.units import MS

    events = _read_events(args.file)
    if events is None:
        return 2
    specs = default_slos(deadline_ns=int(args.latency_ms * MS))
    if args.target is not None:
        specs = [SloSpec(name=spec.name, target=args.target,
                         latency_ns=spec.latency_ns,
                         window_ns=spec.window_ns,
                         burn_threshold=spec.burn_threshold)
                 for spec in specs]
    results = evaluate_slos(events, specs)
    if args.json:
        print(json_mod.dumps(slo_report(events, specs), indent=1,
                             sort_keys=True))
    else:
        for result in results:
            print(result.render())
    if args.strict and any(not r.met for r in results):
        missed = ", ".join(r.spec.name for r in results if not r.met)
        print(f"error: SLO(s) missed: {missed}", file=sys.stderr)
        return 1
    return 0


def cmd_profile(args) -> int:
    """Fold a serve trace into a flamegraph-ready profile.

    The invariant checked here is the one the profiler is built on:
    every frame's *exclusive* virtual time sums back to the end-to-end
    virtual time of the traced requests. A violation means the span
    trees are malformed (exit 1), not a rendering nit.
    """
    from repro.obs.prof import (chrome_flame, folded_stacks,
                                request_total_ns, to_folded_text,
                                total_ns, validate_folded)

    events = _read_events(args.file)
    if events is None:
        return 2
    stacks = folded_stacks(events)
    if not stacks:
        print("error: no complete request spans in log",
              file=sys.stderr)
        return 1
    text = to_folded_text(stacks)
    problems = validate_folded(text)
    profiled = total_ns(stacks)
    end_to_end = request_total_ns(events)
    if profiled != end_to_end:
        problems.append(
            f"exclusive time sums to {profiled} ns but requests span "
            f"{end_to_end} ns end to end")
    if problems:
        print(f"INVALID profile ({len(problems)} problems):",
              file=sys.stderr)
        for problem in problems[:10]:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out} ({len(stacks)} frame stacks, "
              f"{fmt_ns(profiled)} exclusive virtual time; render "
              f"with flamegraph.pl)")
    if args.chrome:
        import json as json_mod

        with open(args.chrome, "w") as handle:
            json_mod.dump({"traceEvents": chrome_flame(stacks),
                           "displayTimeUnit": "ms"}, handle,
                          indent=1, sort_keys=True)
        print(f"wrote {args.chrome} (flamegraph layout; load in "
              f"Perfetto / chrome://tracing)")
    if not args.out and not args.chrome:
        limit = args.limit or len(stacks)
        width = max(len(stack) for stack in stacks)
        for stack, ns in sorted(stacks.items(),
                                key=lambda kv: (-kv[1], kv[0]))[:limit]:
            share = ns / profiled if profiled else 0.0
            print(f"{stack:<{min(width, 72)}} {fmt_ns(ns):>12} "
                  f"{share:6.1%}")
        if len(stacks) > limit:
            print(f"... {len(stacks) - limit} more frame stacks "
                  f"(raise --limit, or -o for the full .folded)")
    return 0


def cmd_counters(args) -> int:
    """Replay a recording and print the GPU performance-counter tape."""
    import json as json_mod

    recording = _load(args.file)
    board = _resolve_board(args, recording)
    if board is None:
        return 2
    machine, replayer, result = _fresh_replay(recording, board,
                                              args.seed)
    replayer.cleanup()
    snapshot = machine.gpu.counters.snapshot()
    if args.json:
        print(json_mod.dumps(snapshot, indent=1, sort_keys=True))
        return 0
    totals = snapshot["totals"]
    print(f"gpu counters after replaying {recording.meta.workload} "
          f"on {machine.gpu.model_name} "
          f"({fmt_ns(result.duration_ns)} virtual, "
          f"attempt {result.attempts}):")
    for field in ("replays", "kernels", "instructions", "flops",
                  "bytes_touched", "mmio_writes", "tlb_hits",
                  "tlb_misses", "upload_skipped_bytes", "mega_fanout"):
        value = totals.get(field, 0)
        rendered = f"{value:.4g}" if isinstance(value, float) \
            else str(value)
        print(f"  {field:<22} {rendered}")
    print(f"  per-kernel rows ({sum(1 for r in snapshot['rows'] if r['kernel'] >= 0)}):")
    for row in snapshot["rows"]:
        if row["kernel"] < 0:
            continue
        print(f"    j{row['job']:<3} k{row['kernel']:<3} "
              f"{row['name']:<16} instr {row['instructions']:<8} "
              f"flops {row['flops']:<12.4g} "
              f"bytes {row['bytes_touched']:<10} "
              f"tlb {row['tlb_hits']}/{row['tlb_misses']}")
    if snapshot["dropped_rows"]:
        print(f"  ({snapshot['dropped_rows']} rows dropped at the "
              f"{len(snapshot['rows'])}-row cap)")
    return 0


#: Eight-level unicode sparkline ramp (lowest to highest).
_SPARKS = "▁▂▃▄▅▆▇█"

#: Series `grr dash` shows when --series is not given (curves the
#: serving engine derives or that move request by request).
_DASH_DEFAULT = ("serve.queue.depth", "serve.requests.submitted",
                 "serve.shed.rate", "serve.cache.hit_ratio",
                 "serve.mega.fanout", "serve.latency_ns.p95")


def _sparkline(values, width: int) -> str:
    if len(values) > width:
        # Downsample by striding from the tail: the recent end of the
        # curve is the interesting part of a dashboard.
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(len(_SPARKS) - 1,
                    int((v - lo) / span * len(_SPARKS)))]
        for v in values)


def cmd_dash(args) -> int:
    """Terminal sparkline dashboard over a time-series JSONL log."""
    from repro.obs.timeseries import parse_jsonl

    try:
        with open(args.file) as handle:
            series = parse_jsonl(handle.read())
    except (ValueError, KeyError, TypeError) as error:
        print(f"error: {args.file} is not a time-series JSONL log: "
              f"{error}", file=sys.stderr)
        return 2
    if not series:
        print("(no samples in log)")
        return 0
    if args.series:
        wanted = [s.strip() for s in args.series.split(",") if s.strip()]
        missing = [name for name in wanted if name not in series]
        if missing:
            print(f"error: series not in log: {', '.join(missing)}; "
                  f"available: {', '.join(sorted(series))}",
                  file=sys.stderr)
            return 2
        names = wanted
    else:
        names = [name for name in _DASH_DEFAULT if name in series]
        if not names:
            names = sorted(series)[:8]
    t_lo = min(t for rows in series.values() for t, _ in rows)
    t_hi = max(t for rows in series.values() for t, _ in rows)
    print(f"{args.file}: {len(series)} series, "
          f"{sum(len(r) for r in series.values())} samples over "
          f"{fmt_ns(t_hi - t_lo)} virtual")
    for name in names:
        values = [value for _, value in series[name]]
        lo, hi, last = min(values), max(values), values[-1]
        print(f"  {name:<26} {_sparkline(values, args.width)}  "
              f"min {lo:g}  max {hi:g}  last {last:g}")
    return 0


def cmd_doctor(args) -> int:
    """Diagnose a failing replay and localize the first divergence."""
    from repro.obs.doctor import run_doctor

    recording = _load(args.file)
    board = _resolve_board(args, recording)
    if board is None:
        return 2
    report = run_doctor(recording, board, seed=args.seed,
                        vs_reference=args.vs_reference,
                        ref_seed=args.ref_seed)
    if report is None:
        mode = "fast path and reference agree" if args.vs_reference \
            else "replay is healthy"
        print(f"no divergence: {mode} on {board}")
        return 0
    print(report.render())
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out} (load with `grr trace {args.out}`)")
    return 1


def cmd_patch(args) -> int:
    recording = _load(args.file)
    patched, report = patch_recording_for_sku(
        recording, args.target_sku,
        patch_affinity=not args.no_affinity)
    with open(args.output, "wb") as handle:
        handle.write(patched.to_bytes())
    print(f"patched {report.source_sku} -> {report.target_sku}: "
          f"{report.pte_entries_rewritten} PTE entries, "
          f"memattr={'yes' if report.memattr_patched else 'no'}, "
          f"{report.affinity_writes_patched} affinity writes")
    for note in report.notes:
        print(f"  note: {note}")
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="grr", description="GPUReplay recording tool")
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="summarize a recording")
    info.add_argument("file")
    info.set_defaults(func=cmd_info)

    actions = sub.add_parser("actions", help="list replay actions")
    actions.add_argument("file")
    actions.add_argument("--limit", type=int, default=40)
    actions.set_defaults(func=cmd_actions)

    verify = sub.add_parser("verify", help="run the static verifier")
    verify.add_argument("file")
    verify.add_argument("--board", required=True,
                        help=", ".join(sorted(BOARDS)))
    verify.add_argument("--max-gpu-mb", type=int, default=None)
    verify.set_defaults(func=cmd_verify)

    replay = sub.add_parser(
        "replay", help="replay on a fresh simulated board")
    replay.add_argument("file")
    replay.add_argument("--board", default=None,
                        help="defaults to the recording's board")
    replay.add_argument("--seed", type=int, default=2026)
    replay.set_defaults(func=cmd_replay)

    trace_cmd = sub.add_parser(
        "trace", help="replay + export a Chrome trace timeline")
    trace_cmd.add_argument("file")
    trace_cmd.add_argument("--board", default=None,
                           help="defaults to the recording's board")
    trace_cmd.add_argument("--seed", type=int, default=2026)
    trace_cmd.add_argument("--out", default="timeline.json")
    trace_cmd.set_defaults(func=cmd_trace)

    stats = sub.add_parser(
        "stats", help="replay + print the metrics snapshot, or "
        "compare two saved snapshots with --diff")
    stats.add_argument("file", nargs="?", default=None)
    stats.add_argument("--board", default=None,
                       help="defaults to the recording's board")
    stats.add_argument("--seed", type=int, default=2026)
    stats.add_argument("--json", action="store_true",
                       help="machine-readable output")
    stats.add_argument("--diff", nargs=2, default=None,
                       metavar=("BEFORE_JSON", "AFTER_JSON"),
                       help="compare two saved snapshot JSON files "
                       "instead of replaying")
    stats.set_defaults(func=cmd_stats)

    inspect = sub.add_parser(
        "inspect", help="content addressing: digests of the recording "
        "and its dumps")
    inspect.add_argument("file")
    inspect.add_argument("--digest", action="store_true",
                         help="print only the recording digest")
    inspect.add_argument("--dumps", action="store_true",
                         help="per-dump VA, size and content hash")
    inspect.add_argument("--store", default=None, metavar="VAULT",
                         help="chunk-level view inside a vault; FILE "
                         "may be a recording file or a digest prefix")
    inspect.add_argument("--jobs", action="store_true",
                         help="surgery analysis: per-job kernel "
                         "chains, dump closures, VA footprints")
    inspect.set_defaults(func=cmd_inspect)

    surgery = sub.add_parser(
        "surgery", help="recording surgery: slice one job/kernel into "
        "a micro-recording, compose slices into synthetic sessions")
    surgery_sub = surgery.add_subparsers(dest="surgery_command",
                                         required=True)

    sslice = surgery_sub.add_parser(
        "slice", help="extract one job (or one kernel of its chain) "
        "into a standalone micro-recording + manifest sidecar")
    sslice.add_argument("file")
    sslice.add_argument("--job", type=int, required=True,
                        help="job index to extract (see `grr surgery "
                        "ls`)")
    sslice.add_argument("--kernel", type=int, default=None,
                        help="only this kernel of the job's chain")
    sslice.add_argument("--input-seed", type=int, default=0,
                        help="seed for the parent's input deposit "
                        "baked into the slice (default 0)")
    sslice.add_argument("--board", default=None,
                        help="capture-replay board (defaults to the "
                        "recording's)")
    sslice.add_argument("-o", "--output", default=None,
                        help="output path (default "
                        "FILE.jobJ[.kK].grr)")
    sslice.add_argument("--check", action="store_true",
                        help="replay both sides and verify the slice "
                        "is byte-identical to the job in its parent")
    sslice.set_defaults(func=cmd_surgery_slice)

    scompose = surgery_sub.add_parser(
        "compose", help="stitch micro-recordings into one synthetic "
        "session (VA-rebased per instance)")
    scompose.add_argument("slices", nargs="+",
                          help="slice files (each needs its "
                          ".manifest.json sidecar)")
    scompose.add_argument("--op", required=True,
                          choices=("repeat", "reorder", "interleave"))
    scompose.add_argument("-n", type=int, default=3,
                          help="repeat count (repeat op, default 3)")
    scompose.add_argument("--rounds", type=int, default=1,
                          help="round-robin rounds (interleave op)")
    scompose.add_argument("--order-seed", type=int, default=0,
                          help="shuffle seed (reorder op)")
    scompose.add_argument("-o", "--output", required=True)
    scompose.add_argument("--board", default=None,
                          help="--check replay board (defaults to the "
                          "slices')")
    scompose.add_argument("--check", action="store_true",
                          help="replay the composed session and "
                          "verify GPU == CPU reference == manifest")
    scompose.set_defaults(func=cmd_surgery_compose)

    sls = surgery_sub.add_parser(
        "ls", help="per-job surgery table over recording files")
    sls.add_argument("files", nargs="+")
    sls.set_defaults(func=cmd_surgery_ls)

    store = sub.add_parser(
        "store", help="the content-addressed recording vault: pack, "
        "list, fetch, verify, gc")
    store_sub = store.add_subparsers(dest="store_command", required=True)

    pack = store_sub.add_parser(
        "pack", help="chunk + dedup recording files into a vault "
        "(created on first use)")
    pack.add_argument("vault")
    pack.add_argument("files", nargs="+")
    pack.set_defaults(func=cmd_store_pack)

    ls = store_sub.add_parser(
        "ls", help="list the compatibility index")
    ls.add_argument("vault")
    ls.add_argument("--family", default=None,
                    help="only this GPU family")
    ls.set_defaults(func=cmd_store_ls)

    fetch = store_sub.add_parser(
        "fetch", help="reassemble a recording (verified by default)")
    fetch.add_argument("vault")
    fetch.add_argument("digest", help="full digest or unique prefix")
    fetch.add_argument("-o", "--output", required=True)
    fetch.add_argument("--no-verify", action="store_true",
                       help="skip integrity checks (forensics only)")
    fetch.set_defaults(func=cmd_store_fetch)

    sverify = store_sub.add_parser(
        "verify", help="scrub the integrity chain")
    sverify.add_argument("vault")
    sverify.add_argument("digest", nargs="?", default=None,
                         help="limit to one recording (digest prefix)")
    sverify.add_argument("--doctor", action="store_true",
                         help="replay each corrupt recording with the "
                         "damage in place and localize the divergence")
    sverify.add_argument("--board", default=None,
                         help="doctor board (defaults to the "
                         "recording's)")
    sverify.set_defaults(func=cmd_store_verify)

    gc = store_sub.add_parser(
        "gc", help="delete chunks no manifest references")
    gc.add_argument("vault")
    gc.set_defaults(func=cmd_store_gc)

    bench = sub.add_parser(
        "bench", help="benchmark suites: replay fast path (load cache, "
        "compiled dispatch, resident dumps) or serving throughput")
    bench.add_argument("--suite",
                       choices=("fastpath", "serve", "store", "obs",
                                "fleet", "surgery"),
                       default="fastpath")
    bench.add_argument("--family", default="mali")
    bench.add_argument("--model", default="dense-serve")
    bench.add_argument("--replays", type=int, default=20)
    bench.add_argument("--mega", dest="mega", action="store_true",
                       default=True,
                       help="serve suite: guard the mega-batched "
                       "(fused replay) arm (default)")
    bench.add_argument("--no-mega", dest="mega", action="store_false",
                       help="serve suite: guard the plain batched arm "
                       "(per-request replay) instead")
    bench.add_argument("--json", action="store_true",
                       help="machine-readable output "
                       "(the BENCH_replay_fastpath.json format)")
    bench.add_argument("--check", default=None, metavar="PINNED_JSON",
                       help="compare against a pinned result; exit 1 "
                       "if a guarded ratio regressed")
    bench.add_argument("--tolerance", type=float, default=0.2,
                       help="allowed fraction below the pin "
                       "(default 0.2)")
    bench.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the concurrent replay serving engine "
        "against a seeded synthetic load (no recording file needed)")
    serve.add_argument("--requests", type=int, default=200)
    serve.add_argument("--workers", type=int, default=3)
    serve.add_argument("--families", default="mali,mali,v3d",
                       help="comma list; assigned to workers "
                       "cyclically (default mali,mali,v3d)")
    serve.add_argument("--models", default="mnist,kws",
                       help="comma list of zoo models in the mix")
    serve.add_argument("--seed", type=int, default=2026)
    serve.add_argument("--synthetic", type=int, default=0, metavar="K",
                       help="serve K composed surgery sessions per "
                       "family (sliced + recomposed from the zoo "
                       "models) instead of the models themselves")
    serve.add_argument("--synthetic-seed", type=int, default=7,
                       help="surgery-plan seed (default 7)")
    serve.add_argument("--fault-rate", type=float, default=0.0,
                       help="probability a request carries an injected "
                       "fault (transient/sticky/poison)")
    serve.add_argument("--max-batch", type=int, default=4)
    serve.add_argument("--queue-depth", type=int, default=64)
    serve.add_argument("--mega", action="store_true",
                       help="fuse same-digest fast-path batches into "
                       "one mega-batch replay (falls back to "
                       "per-request replay on divergence)")
    serve.add_argument("--json", action="store_true",
                       help="machine-readable run summary")
    serve.add_argument("--no-verify", action="store_true",
                       help="skip checking served outputs against the "
                       "CPU reference")
    serve.add_argument("--no-trace", action="store_true",
                       help="disable request-scoped tracing")
    serve.add_argument("--trace-out", default=None,
                       metavar="EVENTS_JSONL",
                       help="write the request trace event log "
                       "(schema rtrace.v1, one JSON event per line; "
                       "feed to `grr top` / `grr attribute` / "
                       "`grr slo`)")
    serve.add_argument("--trace-chrome", default=None,
                       metavar="TRACE_JSON",
                       help="write a Perfetto-loadable Chrome trace "
                       "of all request timelines (with the folded "
                       "profile merged in as a flamegraph track)")
    serve.add_argument("--profile-out", default=None,
                       metavar="PROF_FOLDED",
                       help="write the continuous profile as "
                       "flamegraph.pl-compatible folded stacks "
                       "(exclusive virtual time per frame stack)")
    serve.add_argument("--timeseries-out", default=None,
                       metavar="TS_JSONL",
                       help="write the time-series samples as JSONL "
                       "(feed to `grr dash`)")
    serve.add_argument("--openmetrics", default=None,
                       metavar="METRICS_TXT",
                       help="write the time-series samples as "
                       "OpenMetrics text exposition")
    serve.add_argument("--no-timeseries", action="store_true",
                       help="disable the periodic metrics scraper")
    serve.add_argument("--no-counters", action="store_true",
                       help="disable the GPU performance-counter tape")
    serve.set_defaults(func=cmd_serve)

    fleet = sub.add_parser(
        "fleet", help="serve a seeded synthetic load on a simulated "
        "multi-node cluster (digest-affinity routing, queue-depth "
        "autoscaling)")
    fleet.add_argument("--nodes", type=int, default=3)
    fleet.add_argument("--requests", type=int, default=300)
    fleet.add_argument("--families", default="mali,v3d",
                       help="comma list of board families every node "
                       "hosts a pool for (default mali,v3d)")
    fleet.add_argument("--models", default="mnist,kws",
                       help="comma list of zoo models in the mix")
    fleet.add_argument("--seed", type=int, default=2026)
    fleet.add_argument("--synthetic", type=int, default=0, metavar="K",
                       help="serve K composed surgery sessions per "
                       "family instead of the zoo models")
    fleet.add_argument("--synthetic-seed", type=int, default=7,
                       help="surgery-plan seed (default 7)")
    fleet.add_argument("--fault-rate", type=float, default=0.0,
                       help="probability a request carries an injected "
                       "fault (transient/sticky/poison)")
    fleet.add_argument("--shape", default="poisson",
                       choices=("poisson", "diurnal", "spike"),
                       help="arrival shape (default poisson)")
    fleet.add_argument("--popularity", default="uniform",
                       choices=("uniform", "zipf"),
                       help="model popularity over the mix "
                       "(default uniform)")
    fleet.add_argument("--tenants", default=None,
                       help="comma list of tenant names to stamp on "
                       "requests (round-robin by the loadgen RNG)")
    fleet.add_argument("--quota", action="append", metavar="TENANT=N",
                       help="cap a tenant's fleet-wide in-flight "
                       "requests (repeatable)")
    fleet.add_argument("--max-workers", type=int, default=3,
                       help="autoscaler ceiling per family per node "
                       "(default 3)")
    fleet.add_argument("--max-batch", type=int, default=4)
    fleet.add_argument("--queue-depth", type=int, default=256,
                       help="per-node admission queue bound")
    fleet.add_argument("--json", action="store_true",
                       help="machine-readable run summary")
    fleet.add_argument("--no-verify", action="store_true",
                       help="skip checking served outputs against the "
                       "CPU reference")
    fleet.add_argument("--no-trace", action="store_true",
                       help="disable request-scoped tracing")
    fleet.add_argument("--trace-out", default=None,
                       metavar="EVENTS_JSONL",
                       help="write the fleet-wide request trace event "
                       "log (router hops and node spans on one "
                       "timeline)")
    fleet.add_argument("--routing-out", default=None,
                       metavar="DECISIONS_JSONL",
                       help="write the router's decision log (one "
                       "JSON decision per line)")
    fleet.set_defaults(func=cmd_fleet)

    profile = sub.add_parser(
        "profile", help="fold a serve trace event log into a "
        "flamegraph-ready profile of exclusive virtual time")
    profile.add_argument("file", help="event log from `grr serve "
                         "--trace-out`")
    profile.add_argument("-o", "--out", default=None,
                         metavar="PROF_FOLDED",
                         help="write flamegraph.pl-compatible folded "
                         "stacks instead of printing a table")
    profile.add_argument("--chrome", default=None, metavar="FLAME_JSON",
                         help="also write a Perfetto-loadable "
                         "flamegraph layout")
    profile.add_argument("--limit", type=int, default=20,
                         help="table rows to print when not writing "
                         "a file (default 20)")
    profile.set_defaults(func=cmd_profile)

    counters = sub.add_parser(
        "counters", help="replay a recording and print the emulated "
        "GPU performance-counter tape")
    counters.add_argument("file")
    counters.add_argument("--board", default=None,
                          help="defaults to the recording's board")
    counters.add_argument("--seed", type=int, default=2026)
    counters.add_argument("--json", action="store_true",
                          help="machine-readable gpucounters.v1 "
                          "snapshot")
    counters.set_defaults(func=cmd_counters)

    dash = sub.add_parser(
        "dash", help="terminal sparkline dashboard over a serve "
        "time-series JSONL log")
    dash.add_argument("file", help="JSONL from `grr serve "
                      "--timeseries-out`")
    dash.add_argument("--series", default=None,
                      help="comma list of series names (default: the "
                      "interesting serving curves present in the log)")
    dash.add_argument("--width", type=int, default=60,
                      help="sparkline width in cells (default 60)")
    dash.set_defaults(func=cmd_dash)

    top = sub.add_parser(
        "top", help="post-hoc dashboard over a serve trace event log: "
        "slowest requests with per-stage breakdowns")
    top.add_argument("file", help="event log from `grr serve "
                     "--trace-out`")
    top.add_argument("--limit", type=int, default=15,
                     help="rows to show (default 15)")
    top.set_defaults(func=cmd_top)

    attr = sub.add_parser(
        "attribute", help="tail-latency attribution: fold a latency "
        "percentile band's span trees into ranked exclusive per-stage "
        "virtual time (sums to end-to-end by construction)")
    attr.add_argument("file", help="event log from `grr serve "
                      "--trace-out`")
    attr.add_argument("--p-lo", type=float, default=99.0,
                      help="band lower percentile (default 99)")
    attr.add_argument("--p-hi", type=float, default=100.0,
                      help="band upper percentile (default 100)")
    attr.add_argument("--status", default=None,
                      help="comma list of terminal statuses to "
                      "include (default: all but shed)")
    attr.add_argument("--json", action="store_true",
                      help="machine-readable report")
    attr.set_defaults(func=cmd_attribute)

    slo = sub.add_parser(
        "slo", help="evaluate latency/error-budget objectives with "
        "sliding-window burn-rate alerts against an event log")
    slo.add_argument("file", help="event log from `grr serve "
                     "--trace-out`")
    slo.add_argument("--latency-ms", type=float, default=100.0,
                     help="latency SLO cutoff in virtual ms "
                     "(default 100)")
    slo.add_argument("--target", type=float, default=None,
                     help="override every objective's target fraction")
    slo.add_argument("--strict", action="store_true",
                     help="exit 1 if any objective is missed")
    slo.add_argument("--json", action="store_true",
                     help="machine-readable slo.v1 report")
    slo.set_defaults(func=cmd_slo)

    doctor = sub.add_parser(
        "doctor", help="diagnose a failing replay: localize the first "
        "diverging chokepoint, emit a DivergenceReport")
    doctor.add_argument("file")
    doctor.add_argument("--board", default=None,
                        help="defaults to the recording's board")
    doctor.add_argument("--seed", type=int, default=2026)
    doctor.add_argument("--vs-reference", action="store_true",
                        help="run the compiled fast path and the "
                        "reference interpreter in lockstep and localize "
                        "the first chokepoint where they disagree")
    doctor.add_argument("--ref-seed", type=int, default=None,
                        help="seed the reference arm differently "
                        "(diagnose environment sensitivity)")
    doctor.add_argument("--out", default=None, metavar="REPORT_JSON",
                        help="also save the DivergenceReport as JSON")
    doctor.set_defaults(func=cmd_doctor)

    patch = sub.add_parser("patch", help="cross-SKU patch (Mali)")
    patch.add_argument("file")
    patch.add_argument("--target-sku", required=True)
    patch.add_argument("--no-affinity", action="store_true")
    patch.add_argument("-o", "--output", required=True)
    patch.set_defaults(func=cmd_patch)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import SerializationError

    from repro.errors import StoreNotFoundError

    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except (SerializationError, StoreNotFoundError) as error:
        # A file that is not a recording -- or a vault/digest that is
        # not there -- is a usage error, like a missing file or an
        # unknown board: exit 2, not 1. Store *corruption* stays a
        # verification failure (StoreError -> ReproError -> exit 1).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
