"""Common machinery for integrated-GPU device models.

A :class:`GpuDevice` is *hardware*: software (the full driver or the
replayer's nano driver) may only talk to it through its register file,
shared memory, and its interrupt line. Everything else on the class is
either internal state or simulation plumbing (busy tracking for the
recorder's idle heuristic, fault injection for Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.gpu.counters import CounterTape
from repro.gpu.mmu import GpuMmu, PteFormat
from repro.gpu.perf import GpuPerfModel
from repro.gpu.shader_exec import (execute_program,
                                   execute_program_batched)
from repro.soc.clock import ClockDomain, EventHandle
from repro.soc.machine import Machine
from repro.soc.mmio import RegisterDef, RegisterFile
from repro.units import US


@dataclass
class RunningJob:
    """Book-keeping for one job in flight (or hardware-queued)."""

    slot: int
    chain_va: int
    programs: List[object]
    completion: Optional[EventHandle]
    active_cores: int
    #: Open timeline span while the job executes (obs plumbing).
    obs_span: Optional[object] = None


class GpuDevice:
    """Base class for the Mali-like and v3d-like device models."""

    family = "abstract"

    def __init__(self, machine: Machine, model_name: str,
                 regdefs: List[RegisterDef], core_count: int,
                 clock_hz: int, pte_format: PteFormat,
                 max_active_jobs: int):
        self.machine = machine
        self.model_name = model_name
        self.core_count = core_count
        self.max_active_jobs = max_active_jobs
        self.regs = RegisterFile(regdefs)
        machine.mmio.map(machine.board.gpu_mmio_base, self.regs)
        self.irq_number = machine.board.gpu_irq
        machine.irq.register_line(self.irq_number, f"{model_name}-irq")
        self.clock_domain = ClockDomain(
            f"{model_name}-core", clock_hz, machine.clock,
            stabilize_ns=100 * US)
        self.mmu = GpuMmu(machine.memory, pte_format)
        self.perf = GpuPerfModel()
        #: Emulated performance-counter tape (always on, like the
        #: flight recorder); replayers open sessions on it, job
        #: completion records per-kernel rows into it.
        self.counters = CounterTape()

        # Busy/idle tracking: transitions feed the recorder's
        # "GPU idle through the interval => skippable" heuristic (§4.5).
        self._busy_count = 0
        self.busy_transitions: List[Tuple[int, bool]] = [(0, False)]
        self.busy_observers: List[Callable[[bool], None]] = []

        # Fault injection (hardware-level events; see repro.gpu.faults).
        self.offline_core_mask = 0
        self._busy_span = None

        self._pending_ops: List[EventHandle] = []
        self._irq_level = False

        # Mega-batch arming: when set to a shader_exec.BatchEnv, job
        # completion evaluates shader programs batched (one pass for N
        # fused requests) instead of unbatched. Owned by the replayer's
        # mega executor, which clears it when the fused replay ends.
        self.mega_batch = None

    # -- identity ------------------------------------------------------------

    @property
    def clock_hz(self) -> int:
        return self.clock_domain.rate_hz

    def describe(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "model": self.model_name,
            "cores": self.core_count,
            "clock_hz": self.clock_hz,
            "pte_format": self.mmu.fmt.name,
        }

    # -- busy/idle tracking ----------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._busy_count > 0

    def _enter_busy(self) -> None:
        self._busy_count += 1
        if self._busy_count == 1:
            self._record_busy_transition(True)

    def _exit_busy(self) -> None:
        if self._busy_count <= 0:
            return
        self._busy_count -= 1
        if self._busy_count == 0:
            self._record_busy_transition(False)

    def _record_busy_transition(self, busy: bool) -> None:
        self.busy_transitions.append((self.machine.clock.now(), busy))
        obs = self.machine.obs
        if busy:
            self._busy_span = obs.begin(
                "busy", obs.track(f"gpu:{self.model_name}", "busy"),
                cat="gpu")
        elif self._busy_span is not None:
            obs.end(self._busy_span)
            self._busy_span = None
        for observer in self.busy_observers:
            observer(busy)

    def idle_throughout(self, t0: int, t1: int) -> bool:
        """True if the GPU was idle during the whole window [t0, t1]."""
        if t1 < t0:
            t0, t1 = t1, t0
        state_at_t0 = False
        for when, busy in self.busy_transitions:
            if when <= t0:
                state_at_t0 = busy
                continue
            if when >= t1:
                break
            if busy:  # Became busy inside the window.
                return False
        return not state_at_t0

    def trim_busy_history(self) -> None:
        """Drop history older than the current instant (memory bound)."""
        self.busy_transitions = [(self.machine.clock.now(), self.busy)]

    # -- job execution timeline (obs plumbing) ----------------------------------

    def note_job_executing(self, job: RunningJob) -> None:
        """Open a timeline span on the job's slot track; family device
        models call this when the hardware actually starts crunching
        (not at enqueue -- queued jobs have no span yet)."""
        self.machine.flight.record(self.machine.clock.now(),
                                   "GpuJobStart",
                                   (job.slot, job.chain_va))
        obs = self.machine.obs
        job.obs_span = obs.begin(
            f"job@{job.chain_va:#x}",
            obs.track(f"gpu:{self.model_name}", f"slot{job.slot}"),
            cat="gpu-job",
            args={"cores": job.active_cores})

    def note_job_retired(self, job: Optional[RunningJob]) -> None:
        """Close the slot span (completion, fault, or hard stop)."""
        if job is not None:
            self.machine.flight.record(self.machine.clock.now(),
                                       "GpuJobRetire",
                                       (job.slot, job.chain_va))
            if job.obs_span is not None:
                self.machine.obs.end(job.obs_span)
                job.obs_span = None

    # -- shader execution (shared by the family completion paths) ---------------

    def _run_job_programs(self, job: RunningJob) -> None:
        """Execute every shader program of a retiring job.

        One shared implementation for all three families so the
        counter tape sees each kernel exactly once: instructions
        retired (the executor's return value), the TLB hit/miss delta
        the program caused, and the mega-batch fan-out it ran under.
        Raises :class:`GpuPageFault` exactly like the inline loops it
        replaced; callers keep their fault handling.
        """
        env = self.mega_batch
        mmu = self.mmu
        tape = self.counters
        if not tape.enabled:
            for program in job.programs:
                if env is not None:
                    execute_program_batched(program, mmu, env)
                else:
                    execute_program(program, mmu)
            return
        tape.begin_job()
        fanout = env.n if env is not None else 0
        for program in job.programs:
            hits0 = mmu.tlb_hits
            misses0 = mmu.tlb_misses
            if env is not None:
                retired = execute_program_batched(program, mmu, env)
            else:
                retired = execute_program(program, mmu)
            tape.record_kernel(program, retired,
                               mmu.tlb_hits - hits0,
                               mmu.tlb_misses - misses0, fanout)

    # -- scheduling helpers -----------------------------------------------------

    def _schedule(self, delay_ns: int, callback: Callable[[], None],
                  tag: str = "") -> EventHandle:
        handle = self.machine.clock.schedule(delay_ns, callback, tag)
        self._pending_ops.append(handle)
        return handle

    def _cancel_pending(self) -> None:
        for handle in self._pending_ops:
            handle.cancel()
        self._pending_ops.clear()

    def _jitter(self, base_ns: int, spread: float = 0.08) -> int:
        """Nondeterministic hardware timing around a base delay."""
        factor = 1.0 + self.machine.rng.random() * spread
        return max(1, int(base_ns * factor))

    # -- interrupt line -----------------------------------------------------------

    def _irq_pending_level(self) -> bool:
        """Subclass: is any unmasked interrupt source asserted?"""
        raise NotImplementedError

    def update_irq_line(self) -> None:
        level = self._irq_pending_level()
        if level and not self._irq_level:
            self._irq_level = True
            self.machine.flight.record(self.machine.clock.now(),
                                       "GpuIrqRaise", (self.irq_number,))
            self.machine.irq.raise_irq(self.irq_number)
        elif not level:
            self._irq_level = False
            self.machine.irq.ack(self.irq_number)
