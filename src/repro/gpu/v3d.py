"""The Broadcom-v3d-like GPU (Raspberry Pi 4).

Differences from the Mali model that matter to GPUReplay, all taken
from the paper:

- jobs are *control lists* submitted through CT0QBA/CT0QEA; the GPU
  follows pointers from the registers into lists and shaders, which is
  how the v3d recorder locates memory to dump (Section 6.2);
- page tables have **no execute/permission bits**, so the recorder
  cannot use the Mali exec-bit shrink heuristic and must be
  conservative;
- only one job may be outstanding (synchronous submission needs no
  driver change -- "NC" in Table 1);
- GPU power and clock are owned by the SoC *firmware* (mailbox), not
  MMIO: an unpowered v3d reads as 0xFFFFFFFF, the hurdle the baremetal
  replayer must clear by reproducing the kernel's firmware calls.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GpuPageFault, JobDecodeError, ShaderDecodeError
from repro.gpu import jobs as jobfmt
from repro.gpu.device import GpuDevice, RunningJob
from repro.gpu.isa import decode_program
from repro.gpu.mmu import PTE_FORMATS
from repro.soc.machine import Machine
from repro.soc.mmio import RegAttr, RegisterDef
from repro.units import US

# CTL_INT_STS bits.
INT_FRDONE = 1 << 0  # control list finished
INT_CTERR = 1 << 1  # control list / shader decode error
INT_MMU_FAULT = 1 << 2

# CTL_STATUS bits.
STATUS_IDLE = 1 << 0

# MMU_CTRL bits.
MMU_CTRL_ENABLE = 1 << 0
MMU_CTRL_TLB_CLEAR = 1 << 2

# L2TCACTL bits.
L2T_FLUSH = 1 << 2

#: Firmware mailbox device id for the v3d block.
V3D_FIRMWARE_ID = 10

V3D_GPU_IDENT = 0x0443_3356  # "V3D\x04"
V3D_CORE_COUNT = 4
V3D_DEFAULT_CLOCK_HZ = 500_000_000

RESET_DELAY_NS = 20 * US
FLUSH_DELAY_NS = 15 * US


def _v3d_registers() -> List[RegisterDef]:
    rw, ro = RegAttr.rw(), RegAttr.ro()
    trig = RegAttr.WRITABLE | RegAttr.WRITE_TRIGGER
    rw_trig = RegAttr.rw() | RegAttr.WRITE_TRIGGER
    vol = RegAttr.READABLE | RegAttr.VOLATILE
    return [
        RegisterDef("CTL_IDENT", 0x000, ro),
        RegisterDef("CTL_INT_STS", 0x004, ro),
        RegisterDef("CTL_INT_CLR", 0x008, trig),
        RegisterDef("CTL_INT_MSK", 0x00C, rw),
        RegisterDef("CTL_RESET", 0x010, trig),
        RegisterDef("CTL_STATUS", 0x014, ro, reset=STATUS_IDLE),
        RegisterDef("CT0QBA", 0x018, rw, doc="control list base VA"),
        RegisterDef("CT0QEA", 0x01C, rw_trig,
                    doc="control list end VA; writing kicks execution"),
        RegisterDef("CT0CA", 0x020, vol, doc="current execution address"),
        RegisterDef("CT0CS", 0x024, ro),
        RegisterDef("MMU_PT_PA_BASE", 0x028, rw, doc="pgtable base >> 12"),
        RegisterDef("MMU_CTRL", 0x02C, rw_trig),
        RegisterDef("MMU_VIO_ADDR", 0x030, ro),
        RegisterDef("MMU_VIO_STATUS", 0x034, ro),
        RegisterDef("L2TCACTL", 0x038, rw_trig,
                    doc="bit2: flush; polls until hardware clears it"),
        RegisterDef("ERRSTAT", 0x03C, ro),
        RegisterDef("PCTR_CYCLE", 0x040, vol),
    ]


class V3dGpu(GpuDevice):
    """The v3d device model."""

    family = "v3d"

    def __init__(self, machine: Machine):
        super().__init__(
            machine, "v3d", _v3d_registers(),
            core_count=V3D_CORE_COUNT, clock_hz=V3D_DEFAULT_CLOCK_HZ,
            pte_format=PTE_FORMATS["v3d"], max_active_jobs=1)
        machine.firmware.define_device(V3D_FIRMWARE_ID,
                                       V3D_DEFAULT_CLOCK_HZ)
        self._job: Optional[RunningJob] = None
        self._wire_registers()

    # -- register wiring --------------------------------------------------------

    def _wire_registers(self) -> None:
        regs = self.regs
        regs.poke("CTL_IDENT", V3D_GPU_IDENT)
        # The block is dead until the firmware powers the rail.
        regs.set_gate(self._powered)

        regs.set_write_handler("CTL_INT_CLR", self._on_int_clr)
        regs.set_write_handler("CTL_INT_MSK", lambda _o, _v:
                               self.update_irq_line())
        regs.set_write_handler("CTL_RESET", self._on_reset)
        regs.set_write_handler("CT0QEA", self._on_kick)
        regs.set_write_handler("MMU_CTRL", self._on_mmu_ctrl)
        regs.set_write_handler("L2TCACTL", self._on_l2_flush)

        regs.set_read_handler(
            "PCTR_CYCLE",
            lambda _v: (self.machine.clock.now() * self.clock_hz
                        // 1_000_000_000) & 0xFFFFFFFF)
        regs.set_read_handler("CT0CA", self._read_current_addr)

    def _powered(self) -> bool:
        return self.machine.firmware.is_powered(V3D_FIRMWARE_ID)

    def _read_current_addr(self, _value: int) -> int:
        if self._job is None:
            return 0
        # Progress through the list is timing-dependent: volatile.
        span = max(1, self.regs.peek("CT0QEA") - self._job.chain_va)
        return self._job.chain_va + self.machine.rng.randrange(span)

    # -- interrupts ----------------------------------------------------------------

    def _irq_pending_level(self) -> bool:
        return bool(self.regs.peek("CTL_INT_STS")
                    & self.regs.peek("CTL_INT_MSK"))

    def _assert_int(self, bits: int) -> None:
        self.regs.poke("CTL_INT_STS", self.regs.peek("CTL_INT_STS") | bits)
        self.update_irq_line()

    def _on_int_clr(self, _old: int, value: int) -> None:
        self.regs.poke("CTL_INT_STS",
                       self.regs.peek("CTL_INT_STS") & ~value)
        self.update_irq_line()

    # -- reset / caches ---------------------------------------------------------------

    def _on_reset(self, _old: int, _value: int) -> None:
        self._cancel_pending()
        self.note_job_retired(self._job)
        self._job = None
        self.regs.poke("CTL_INT_STS", 0)
        self.regs.poke("CTL_STATUS", 0)
        self.regs.poke("MMU_VIO_STATUS", 0)
        self.regs.poke("ERRSTAT", 0)
        self.mmu.set_base(0)
        self.regs.poke("MMU_CTRL", 0)
        self._busy_count = 0
        self._enter_busy()
        self.update_irq_line()

        def complete() -> None:
            self._exit_busy()
            self.regs.poke("CTL_STATUS", STATUS_IDLE)

        self._schedule(self._jitter(RESET_DELAY_NS), complete, "v3d-reset")

    def _on_l2_flush(self, _old: int, value: int) -> None:
        if not value & L2T_FLUSH:
            return
        self._enter_busy()

        def complete() -> None:
            self._exit_busy()
            # Hardware clears the flush bit; the driver polls for this.
            self.regs.poke("L2TCACTL",
                           self.regs.peek("L2TCACTL") & ~L2T_FLUSH)

        self._schedule(self._jitter(FLUSH_DELAY_NS), complete, "v3d-flush")

    # -- MMU -----------------------------------------------------------------------------

    def _on_mmu_ctrl(self, _old: int, value: int) -> None:
        if value & MMU_CTRL_ENABLE:
            base = self.regs.peek("MMU_PT_PA_BASE") << 12
            self.mmu.set_base(base)
        else:
            self.mmu.set_base(0)
        if value & MMU_CTRL_TLB_CLEAR:
            self.mmu.flush_tlb()
            # Hardware clears the command bit once the TLB is clean.
            self.regs.poke("MMU_CTRL", value & ~MMU_CTRL_TLB_CLEAR)

    def _raise_mmu_fault(self, va: int) -> None:
        self.regs.poke("MMU_VIO_ADDR", va & 0xFFFFFFFF)
        self.regs.poke("MMU_VIO_STATUS", 1)
        self._assert_int(INT_MMU_FAULT)

    # -- job execution -----------------------------------------------------------------

    def _on_kick(self, _old: int, end_va: int) -> None:
        base_va = self.regs.peek("CT0QBA")
        if self._job is not None:
            # One outstanding job only; a second kick is a CT error.
            self._assert_int(INT_CTERR)
            return
        self.regs.poke("CTL_STATUS", 0)
        try:
            entries = jobfmt.walk_control_list(
                base_va, lambda va, n: self.mmu.read_va(va, n, access="r"))
            programs = [
                decode_program(self.mmu.read_va(e.shader_va, e.shader_size,
                                                access="r"))
                for e in entries if e.opcode == jobfmt.CL_EXEC_SHADER
            ]
        except GpuPageFault as fault:
            self._raise_mmu_fault(fault.va)
            self.regs.poke("CTL_STATUS", STATUS_IDLE)
            return
        except (JobDecodeError, ShaderDecodeError):
            self._assert_int(INT_CTERR)
            self.regs.poke("CTL_STATUS", STATUS_IDLE)
            return

        # The firmware owns the clock; honor DVFS changes at kick time.
        rate = self.machine.firmware.clock_rate(V3D_FIRMWARE_ID)
        if rate != self.clock_domain.rate_hz:
            self.clock_domain.set_rate(rate)

        duration = sum(
            self.perf.job_duration_ns(p, self.core_count, self.clock_domain,
                                      self.machine.interference)
            for p in programs)
        duration = self._jitter(duration)

        self._enter_busy()
        handle = self._schedule(duration, self._complete_job, "v3d-job")
        self._job = RunningJob(0, base_va, programs, handle,
                               self.core_count)
        self.note_job_executing(self._job)
        del end_va

    def _complete_job(self) -> None:
        job = self._job
        self._job = None
        if job is None:
            return
        self.note_job_retired(job)
        try:
            self._run_job_programs(job)
        except GpuPageFault as fault:
            self._exit_busy()
            self.regs.poke("CTL_STATUS", STATUS_IDLE)
            self._raise_mmu_fault(fault.va)
            return
        self._exit_busy()
        self.regs.poke("CTL_STATUS", STATUS_IDLE)
        self._assert_int(INT_FRDONE)

    # -- fault injection --------------------------------------------------------------

    def offline_cores(self, mask: int) -> None:
        """v3d has no per-core power; offlining kills the running job."""
        self.offline_core_mask |= mask
        job = self._job
        if job is not None:
            job.completion.cancel()
            self._job = None
            self.note_job_retired(job)
            self._exit_busy()
            self.regs.poke("CTL_STATUS", STATUS_IDLE)
            self._assert_int(INT_CTERR)

    def restore_cores(self) -> None:
        self.offline_core_mask = 0
