"""GPU virtual memory: page-table formats, the GPU MMU, table builders.

The paper's GPU model (Section 3.2) requires GPU virtual memory: the
replayer may load memory dumps to physical pages *of its choice* and
patch the page tables for relocation. To make that real, both record
and replay machines allocate physical pages in different orders, and
every GPU access goes through the MMU modelled here.

Three page-table-entry formats are provided, matching Section 6.4's
cross-SKU experience: the regular Mali format, the LPAE variant used by
the low-end SKU whose *permission bits sit in a different order* (the
cross-GPU patch re-arranges them), and the v3d format which has no
permission bits at all (forcing the recorder's conservative dumps).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import GpuPageFault, SocError
from repro.soc.memory import PAGE_SIZE, PageAllocator, PhysicalMemory

# Permission bits (logical, format-independent).
PERM_R = 1
PERM_W = 2
PERM_X = 4

# Virtual address split: 4 KiB pages, 512-entry L1 tables, 512-entry L0
# root -> 1 GiB of GPU virtual address space per context.
_OFFSET_BITS = 12
_L1_BITS = 9
_L0_BITS = 9
L1_SPAN = 1 << (_OFFSET_BITS + _L1_BITS)  # 2 MiB per L1 table
VA_SPACE_SIZE = 1 << (_OFFSET_BITS + _L1_BITS + _L0_BITS)  # 1 GiB


def split_va(va: int) -> Tuple[int, int, int]:
    """Split a VA into (l0_index, l1_index, page_offset)."""
    if va < 0 or va >= VA_SPACE_SIZE:
        raise GpuPageFault(va, "r", "outside GPU VA space")
    offset = va & (PAGE_SIZE - 1)
    l1 = (va >> _OFFSET_BITS) & ((1 << _L1_BITS) - 1)
    l0 = (va >> (_OFFSET_BITS + _L1_BITS)) & ((1 << _L0_BITS) - 1)
    return l0, l1, offset


class PteFormat:
    """Encodes/decodes page-table entries for one GPU family."""

    name = "abstract"
    pte_size = 8
    has_permissions = True

    def encode_pte(self, pa: int, perms: int) -> int:
        raise NotImplementedError

    def decode_pte(self, value: int) -> Tuple[bool, int, int]:
        """Returns (valid, pa, perms)."""
        raise NotImplementedError

    def encode_table_ptr(self, pa: int) -> int:
        raise NotImplementedError

    def decode_table_ptr(self, value: int) -> Tuple[bool, int]:
        raise NotImplementedError


class MaliPteFormat(PteFormat):
    """Regular Mali Bifrost format: valid, R, W, X at bits 0..3."""

    name = "mali"
    pte_size = 8
    has_permissions = True

    _VALID = 1 << 0
    _R = 1 << 1
    _W = 1 << 2
    _X = 1 << 3
    _TABLE = 1 << 4

    def encode_pte(self, pa: int, perms: int) -> int:
        value = self._VALID | (pa & ~(PAGE_SIZE - 1))
        if perms & PERM_R:
            value |= self._R
        if perms & PERM_W:
            value |= self._W
        if perms & PERM_X:
            value |= self._X
        return value

    def decode_pte(self, value: int) -> Tuple[bool, int, int]:
        if not value & self._VALID:
            return False, 0, 0
        perms = 0
        if value & self._R:
            perms |= PERM_R
        if value & self._W:
            perms |= PERM_W
        if value & self._X:
            perms |= PERM_X
        return True, value & ~0xFFF & ~(self._TABLE), perms

    def encode_table_ptr(self, pa: int) -> int:
        return self._VALID | self._TABLE | (pa & ~(PAGE_SIZE - 1))

    def decode_table_ptr(self, value: int) -> Tuple[bool, int]:
        if not (value & self._VALID and value & self._TABLE):
            return False, 0
        return True, value & ~0xFFF


class MaliLpaePteFormat(MaliPteFormat):
    """LPAE variant (Mali G31): permission bits in a *different order*.

    X sits at bit 1, R at bit 2, W at bit 3. A G31 recording replayed
    on G71 without re-arranging these bits yields wrong permissions --
    the exact incompatibility Section 6.4's patch item (1) fixes.
    """

    name = "mali-lpae"
    _X = 1 << 1
    _R = 1 << 2
    _W = 1 << 3


class AdrenoPteFormat(PteFormat):
    """Adreno SMMU format: 8-byte entries, permissions at bits 6..8.

    A third layout again (Table 1 row 5): recordings do not port
    between families, only between SKUs sharing a format.
    """

    name = "adreno-smmu"
    pte_size = 8
    has_permissions = True

    _VALID = 1 << 0
    _TABLE = 1 << 1
    _R = 1 << 6
    _W = 1 << 7
    _X = 1 << 8

    def encode_pte(self, pa: int, perms: int) -> int:
        value = self._VALID | (pa & ~(PAGE_SIZE - 1))
        if perms & PERM_R:
            value |= self._R
        if perms & PERM_W:
            value |= self._W
        if perms & PERM_X:
            value |= self._X
        return value

    def decode_pte(self, value: int) -> Tuple[bool, int, int]:
        if not value & self._VALID or value & self._TABLE:
            return False, 0, 0
        perms = 0
        if value & self._R:
            perms |= PERM_R
        if value & self._W:
            perms |= PERM_W
        if value & self._X:
            perms |= PERM_X
        return True, value & ~0xFFF, perms

    def encode_table_ptr(self, pa: int) -> int:
        return self._VALID | self._TABLE | (pa & ~(PAGE_SIZE - 1))

    def decode_table_ptr(self, value: int) -> Tuple[bool, int]:
        if not (value & self._VALID and value & self._TABLE):
            return False, 0
        return True, value & ~0xFFF


class V3dPteFormat(PteFormat):
    """v3d format: 4-byte PTEs, page number at bits 4..31, no perms."""

    name = "v3d"
    pte_size = 4
    has_permissions = False

    _VALID = 1 << 0
    _TABLE = 1 << 1

    def encode_pte(self, pa: int, perms: int) -> int:
        del perms  # v3d page tables lack permission bits (Section 6.2).
        return self._VALID | ((pa >> 12) << 4)

    def decode_pte(self, value: int) -> Tuple[bool, int, int]:
        if not value & self._VALID or value & self._TABLE:
            return False, 0, 0
        return True, ((value >> 4) << 12), PERM_R | PERM_W | PERM_X

    def encode_table_ptr(self, pa: int) -> int:
        return self._VALID | self._TABLE | ((pa >> 12) << 4)

    def decode_table_ptr(self, value: int) -> Tuple[bool, int]:
        if not (value & self._VALID and value & self._TABLE):
            return False, 0
        return True, (value >> 4) << 12


PTE_FORMATS: Dict[str, PteFormat] = {
    fmt.name: fmt
    for fmt in (MaliPteFormat(), MaliLpaePteFormat(), V3dPteFormat(),
                AdrenoPteFormat())
}


class GpuMmu:
    """The GPU-side MMU: walks page tables living in physical memory."""

    def __init__(self, memory: PhysicalMemory, fmt: PteFormat):
        self.memory = memory
        self.fmt = fmt
        self.base_pa: Optional[int] = None
        self.enabled = False
        self._tlb: Dict[Tuple[int, str], int] = {}
        self.fault_count = 0
        #: Emulated TLB performance counters (plain ints on the hot
        #: path; the device's CounterTape samples deltas per kernel).
        self.tlb_hits = 0
        self.tlb_misses = 0
        #: Optional observer of GPU-side VA writes: ``fn(va, size)``.
        #: The replayer's nano driver subscribes so its GPU-resident
        #: dump tracking sees buffers the GPU itself overwrites.
        self.write_observer = None
        #: Coherent-TLB mode. The simulated TLB is an implementation
        #: cache, not architectural state: with shootdown, any physical
        #: write to a page this MMU has walked tables from clears the
        #: cache, so translations can never go stale and architectural
        #: flush commands have nothing left to invalidate. Cached
        #: translations then survive across replays, removing a full
        #: page-table walk per touched page per replay. Set False to
        #: get the historical behaviour (flush commands discard the
        #: TLB) -- the replay fast-path benchmark does, to measure the
        #: pre-optimization baseline.
        self.coherent_tlb = True
        self._table_pages: set = set()
        self._subscribe(memory)

    def _subscribe(self, memory: PhysicalMemory) -> None:
        prev = memory.write_hook
        if prev is None:
            memory.write_hook = self._on_phys_write
        else:
            def chained(pa: int, size: int,
                        _prev=prev, _mine=self._on_phys_write) -> None:
                _prev(pa, size)
                _mine(pa, size)
            memory.write_hook = chained

    def _on_phys_write(self, pa: int, size: int) -> None:
        """Shootdown: a write landed in a page-table page we walked."""
        tables = self._table_pages
        if not tables or not self.coherent_tlb:
            return
        first = pa >> 12
        last = (pa + size - 1) >> 12
        if first in tables or (last != first and any(
                page in tables for page in range(first + 1, last + 1))):
            self._tlb.clear()
            tables.clear()

    def set_base(self, base_pa: int) -> None:
        changed = base_pa != self.base_pa
        self.base_pa = base_pa
        self.enabled = base_pa != 0
        if changed or not self.coherent_tlb:
            self._tlb.clear()
            self._table_pages.clear()

    def flush_tlb(self) -> None:
        if self.coherent_tlb:
            # Shootdown keeps the cache coherent with table memory;
            # the architectural flush has nothing to invalidate.
            return
        self._tlb.clear()
        self._table_pages.clear()

    def translate(self, va: int, access: str) -> int:
        """Translate one VA; raises :class:`GpuPageFault` on failure."""
        if not self.enabled or self.base_pa is None:
            raise GpuPageFault(va, access, "MMU disabled")
        page_va = va & ~(PAGE_SIZE - 1)
        cached = self._tlb.get((page_va, access))
        if cached is not None:
            self.tlb_hits += 1
            return cached | (va & (PAGE_SIZE - 1))
        self.tlb_misses += 1
        l0, l1, offset = split_va(va)
        l0_entry = self.memory.read_u64(self.base_pa + l0 * 8) \
            if self.fmt.pte_size == 8 else \
            self.memory.read_u32(self.base_pa + l0 * 4)
        valid, l1_pa = self.fmt.decode_table_ptr(l0_entry)
        if not valid:
            self.fault_count += 1
            raise GpuPageFault(va, access, "no L1 table")
        pte = self.memory.read_u64(l1_pa + l1 * 8) \
            if self.fmt.pte_size == 8 else \
            self.memory.read_u32(l1_pa + l1 * 4)
        valid, pa, perms = self.fmt.decode_pte(pte)
        if not valid:
            self.fault_count += 1
            raise GpuPageFault(va, access, "invalid PTE")
        if self.fmt.has_permissions:
            needed = {"r": PERM_R, "w": PERM_W, "x": PERM_X}[access]
            if not perms & needed:
                self.fault_count += 1
                raise GpuPageFault(va, access, "permission denied")
        self._table_pages.add(self.base_pa >> 12)
        self._table_pages.add(l1_pa >> 12)
        self._tlb[(page_va, access)] = pa
        return pa | offset

    # -- bulk access (gather/scatter across non-contiguous pages) ----------

    def read_va(self, va: int, size: int, access: str = "r") -> bytes:
        # Page-at-a-time gather. The TLB probe is inlined: the shader
        # cores stream entire weight tensors through here, so the
        # per-page constant factor is the GPU model's hot path.
        tlb = self._tlb
        mem_read = self.memory.read
        page_mask = PAGE_SIZE - 1
        chunks = []
        cursor = va
        remaining = size
        while remaining > 0:
            offset = cursor & page_mask
            chunk = min(remaining, PAGE_SIZE - offset)
            base = tlb.get((cursor - offset, access))
            if base is None:
                pa = self.translate(cursor, access)
            else:
                self.tlb_hits += 1
                pa = base | offset
            chunks.append(mem_read(pa, chunk))
            cursor += chunk
            remaining -= chunk
        return b"".join(chunks)

    def write_va(self, va: int, data: bytes) -> None:
        if self.write_observer is not None:
            self.write_observer(va, len(data))
        cursor = va
        offset = 0
        while offset < len(data):
            pa = self.translate(cursor, "w")
            chunk = min(len(data) - offset,
                        PAGE_SIZE - (cursor & (PAGE_SIZE - 1)))
            self.memory.write(pa, data[offset:offset + chunk])
            cursor += chunk
            offset += chunk


class PageTableBuilder:
    """CPU-side construction and maintenance of GPU page tables.

    Used by the full driver *and* by the replayer's nano driver; both
    sides need exactly the interface knowledge Table 1 lists -- the
    register pointing at the tables and the PTE encoding.
    """

    def __init__(self, memory: PhysicalMemory, allocator: PageAllocator,
                 fmt: PteFormat, tag: str = "pgtable"):
        self.memory = memory
        self.allocator = allocator
        self.fmt = fmt
        self.tag = tag
        self.root_pa = allocator.alloc_page(tag)
        self._l1_tables: Dict[int, int] = {}  # l0 index -> l1 table pa
        self._mappings: Dict[int, Tuple[int, int]] = {}  # va page -> (pa, perms)

    def _entry_io(self, pa: int) -> Tuple:
        if self.fmt.pte_size == 8:
            return self.memory.read_u64, self.memory.write_u64
        return self.memory.read_u32, self.memory.write_u32

    def map_page(self, va: int, pa: int, perms: int) -> None:
        if va % PAGE_SIZE or pa % PAGE_SIZE:
            raise SocError("mappings must be page-aligned")
        l0, l1, _ = split_va(va)
        _, write_entry = self._entry_io(0)
        l1_pa = self._l1_tables.get(l0)
        if l1_pa is None:
            l1_pa = self.allocator.alloc_page(self.tag)
            self._l1_tables[l0] = l1_pa
            write_entry(self.root_pa + l0 * self.fmt.pte_size,
                        self.fmt.encode_table_ptr(l1_pa))
        write_entry(l1_pa + l1 * self.fmt.pte_size,
                    self.fmt.encode_pte(pa, perms))
        self._mappings[va] = (pa, perms)

    def unmap_page(self, va: int) -> None:
        if va not in self._mappings:
            raise SocError(f"VA {va:#x} is not mapped")
        l0, l1, _ = split_va(va)
        _, write_entry = self._entry_io(0)
        write_entry(self._l1_tables[l0] + l1 * self.fmt.pte_size, 0)
        del self._mappings[va]

    def lookup(self, va: int) -> Optional[Tuple[int, int]]:
        """(pa, perms) of a mapped page VA, or None."""
        return self._mappings.get(va & ~(PAGE_SIZE - 1))

    def mappings(self) -> Iterator[Tuple[int, int, int]]:
        """Yield (va, pa, perms) for every mapped page, VA-sorted."""
        for va in sorted(self._mappings):
            pa, perms = self._mappings[va]
            yield va, pa, perms

    def mapped_page_count(self) -> int:
        return len(self._mappings)

    def table_pages(self) -> List[int]:
        """Physical pages holding the tables themselves."""
        return [self.root_pa] + sorted(self._l1_tables.values())

    def destroy(self) -> None:
        """Free the table pages (mapped data pages belong to the caller)."""
        self.allocator.free_pages(self.table_pages())
        self._l1_tables.clear()
        self._mappings.clear()


def walk_page_table(memory: PhysicalMemory, root_pa: int,
                    fmt: PteFormat) -> List[Tuple[int, int, int]]:
    """Walk a page table in memory, returning (va, pa, perms) triples.

    This is what the recorder does to capture the GPU virtual address
    space: it only needs the root register value and the PTE encoding.
    """
    entries: List[Tuple[int, int, int]] = []
    read_entry = memory.read_u64 if fmt.pte_size == 8 else memory.read_u32
    for l0 in range(1 << _L0_BITS):
        l0_value = read_entry(root_pa + l0 * fmt.pte_size)
        valid, l1_pa = fmt.decode_table_ptr(l0_value)
        if not valid:
            continue
        for l1 in range(1 << _L1_BITS):
            pte = read_entry(l1_pa + l1 * fmt.pte_size)
            valid, pa, perms = fmt.decode_pte(pte)
            if not valid:
                continue
            va = (l0 << (_OFFSET_BITS + _L1_BITS)) | (l1 << _OFFSET_BITS)
            entries.append((va, pa, perms))
    return entries
