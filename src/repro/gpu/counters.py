"""Emulated GPU performance counters -- the deterministic counter tape.

Real GPUs expose hardware performance counters (instructions retired,
cache hits, DRAM bytes) that profilers sample per kernel.  The
simulated GPUs here execute replay programs through the shader
executor, so the equivalent numbers are *exact*, not sampled: every
instruction retired, every FLOP the cost model attributes, every TLB
probe the MMU answers.  ``CounterTape`` collects them per
``(recording digest, job, kernel)`` row as replays run, forming a
deterministic tape that rides the machine's existing obs session --
ODIN-style replay-driven counter harvesting (PAPERS.md).

Attribution model:

* ``begin_session(digest)`` is called by the replayer once per replay
  attempt (and by the mega-batch path once per fused run).  It opens a
  *session row* ``(digest12, -1, -1)`` that absorbs driver-level costs
  not tied to one kernel: MMIO register writes and resident-upload
  bytes skipped.
* ``begin_job()`` / ``record_kernel(...)`` are called by the GPU
  device as jobs complete: one kernel row per program executed, with
  instructions retired (the shader executor's return value), modeled
  FLOPs and bytes touched (``isa.flops_estimate`` /
  ``isa.bytes_touched``), the TLB hit/miss delta the program caused,
  and the mega-batch fan-out it ran under.

Determinism: every value is derived from replayed state on the
virtual clock -- same seed, same tape, byte for byte.  The tape is
always on (the flight-recorder precedent); ``enabled = False`` turns
every hook into a cheap guard for the overhead benchmark's "off" arm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.gpu import isa

#: Hard cap on distinct rows so a long-lived serving worker cannot
#: grow the tape without bound; overflow is counted, not silent.
MAX_ROWS = 4096

#: Per-session kernel label list kept for profiler frame naming;
#: bounded the same way.
MAX_SESSION_KERNELS = 1024

_ROW_FIELDS = ("instructions", "flops", "bytes_touched", "mmio_writes",
               "tlb_hits", "tlb_misses", "upload_skipped_bytes",
               "mega_fanout", "replays")


class CounterRow:
    """One ``(digest12, job, kernel)`` aggregation bucket."""

    __slots__ = ("digest", "job", "kernel", "name", "instructions",
                 "flops", "bytes_touched", "mmio_writes", "tlb_hits",
                 "tlb_misses", "upload_skipped_bytes", "mega_fanout",
                 "replays")

    def __init__(self, digest: str, job: int, kernel: int,
                 name: str = "") -> None:
        self.digest = digest
        self.job = job
        self.kernel = kernel
        self.name = name
        self.instructions = 0
        self.flops = 0.0
        self.bytes_touched = 0
        self.mmio_writes = 0
        self.tlb_hits = 0
        self.tlb_misses = 0
        self.upload_skipped_bytes = 0
        self.mega_fanout = 0
        self.replays = 0

    def as_dict(self) -> dict:
        entry = {"digest": self.digest, "job": self.job,
                 "kernel": self.kernel, "name": self.name}
        for field in _ROW_FIELDS:
            entry[field] = getattr(self, field)
        return entry


def kernel_label(program) -> str:
    """Deterministic kernel name: the dominant op plus trailer count.

    ``conv2d+5`` reads as "a CONV2D (the most expensive op by modeled
    FLOPs) plus 5 other instructions fused in the same program".  Ties
    break toward the earliest instruction, so the label is stable.
    """
    instructions = getattr(program, "instructions", None) or ()
    if not len(instructions):
        return "empty"
    best = None
    best_flops = -1.0
    for instr in instructions:
        flops = isa.flops_estimate(instr)
        if flops > best_flops:
            best_flops = flops
            best = instr
    rest = len(instructions) - 1
    name = best.op.name.lower()
    return f"{name}+{rest}" if rest else name


class CounterTape:
    """Per-device accumulator of emulated GPU performance counters."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.rows: Dict[Tuple[str, int, int], CounterRow] = {}
        self.dropped_rows = 0
        # Running totals kept alongside the rows so totals() is O(1)
        # and survives row-cap overflow.
        self.total_instructions = 0
        self.total_flops = 0.0
        self.total_bytes_touched = 0
        self.total_mmio_writes = 0
        self.total_tlb_hits = 0
        self.total_tlb_misses = 0
        self.total_upload_skipped_bytes = 0
        self.total_replays = 0
        self.total_kernels = 0
        self.total_mega_fanout = 0
        # Session cursor state.  A default session row means the tape
        # never has to branch on "no session yet" in the hot hooks.
        self.session = self._row("", -1, -1, "session")
        self.session_kernels: List[Tuple[str, float]] = []
        self._job = -1
        self._kernel = -1
        self._digest = ""

    # -- row management ------------------------------------------------

    def _row(self, digest: str, job: int, kernel: int,
             name: str) -> CounterRow:
        key = (digest, job, kernel)
        row = self.rows.get(key)
        if row is None:
            if len(self.rows) >= MAX_ROWS:
                self.dropped_rows += 1
                return CounterRow(digest, job, kernel, name)
            row = CounterRow(digest, job, kernel, name)
            self.rows[key] = row
        return row

    # -- hooks (called from replayer / device / driver) ----------------

    def begin_session(self, digest: str) -> None:
        """Open a replay session for ``digest`` (one per attempt)."""
        if not self.enabled:
            return
        self._digest = digest[:12]
        self._job = -1
        self._kernel = -1
        self.session = self._row(self._digest, -1, -1, "session")
        self.session.replays += 1
        self.total_replays += 1
        self.session_kernels = []

    def begin_job(self) -> None:
        """A GPU job of the current session started retiring."""
        if not self.enabled:
            return
        self._job += 1
        self._kernel = -1

    def record_kernel(self, program, instructions: int,
                      tlb_hits: int, tlb_misses: int,
                      fanout: int = 0) -> None:
        """One shader program finished under the current job."""
        if not self.enabled:
            return
        self._kernel += 1
        label = kernel_label(program)
        row = self._row(self._digest, self._job, self._kernel, label)
        flops = 0.0
        nbytes = 0
        for instr in getattr(program, "instructions", ()):
            flops += isa.flops_estimate(instr)
            nbytes += isa.bytes_touched(instr)
        scale = fanout if fanout else 1
        flops *= scale
        nbytes *= scale
        row.instructions += instructions
        row.flops += flops
        row.bytes_touched += nbytes
        row.tlb_hits += tlb_hits
        row.tlb_misses += tlb_misses
        row.replays += 1
        if fanout:
            row.mega_fanout += fanout
            self.total_mega_fanout += fanout
        self.total_instructions += instructions
        self.total_flops += flops
        self.total_bytes_touched += nbytes
        self.total_tlb_hits += tlb_hits
        self.total_tlb_misses += tlb_misses
        self.total_kernels += 1
        if len(self.session_kernels) < MAX_SESSION_KERNELS:
            self.session_kernels.append((label, flops))

    def note_mmio_write(self) -> None:
        """An MMIO register write landed (nano driver hook).

        Callers on the register-write hot path guard on ``enabled``
        themselves before calling.
        """
        self.session.mmio_writes += 1
        self.total_mmio_writes += 1

    def note_upload_skipped(self, nbytes: int) -> None:
        """A resident-dump upload was skipped (``nbytes`` not moved)."""
        self.session.upload_skipped_bytes += nbytes
        self.total_upload_skipped_bytes += nbytes

    # -- export --------------------------------------------------------

    def totals(self) -> dict:
        return {
            "instructions": self.total_instructions,
            "flops": self.total_flops,
            "bytes_touched": self.total_bytes_touched,
            "mmio_writes": self.total_mmio_writes,
            "tlb_hits": self.total_tlb_hits,
            "tlb_misses": self.total_tlb_misses,
            "upload_skipped_bytes": self.total_upload_skipped_bytes,
            "mega_fanout": self.total_mega_fanout,
            "replays": self.total_replays,
            "kernels": self.total_kernels,
        }

    def snapshot(self) -> dict:
        """Deterministic, JSON-ready view of the whole tape."""
        rows = [row.as_dict() for key, row in
                sorted(self.rows.items())]
        return {
            "schema": "gpucounters.v1",
            "enabled": self.enabled,
            "totals": self.totals(),
            "dropped_rows": self.dropped_rows,
            "rows": rows,
        }

    def reset(self) -> None:
        self.__init__(enabled=self.enabled)


def aggregate(snapshots: List[Optional[dict]]) -> dict:
    """Merge per-device tape snapshots into one fleet-level view.

    Rows with the same ``(digest, job, kernel)`` key sum field-wise
    (their per-worker halves of the same logical workload); totals sum
    directly.  Accepts ``None`` entries so callers can pass worker
    lists without filtering.
    """
    merged: Dict[Tuple[str, int, int], dict] = {}
    totals: Dict[str, float] = {}
    dropped = 0
    enabled = False
    for snap in snapshots:
        if not snap:
            continue
        enabled = enabled or bool(snap.get("enabled"))
        dropped += snap.get("dropped_rows", 0)
        for name, value in snap.get("totals", {}).items():
            totals[name] = totals.get(name, 0) + value
        for row in snap.get("rows", []):
            key = (row.get("digest", ""), row.get("job", -1),
                   row.get("kernel", -1))
            entry = merged.get(key)
            if entry is None:
                merged[key] = dict(row)
            else:
                for field in _ROW_FIELDS:
                    entry[field] = entry.get(field, 0) \
                        + row.get(field, 0)
    rows = [merged[key] for key in sorted(merged)]
    return {
        "schema": "gpucounters.v1",
        "enabled": enabled,
        "totals": totals,
        "dropped_rows": dropped,
        "rows": rows,
    }


#: Shared disabled tape for machines that opt out entirely.
NULL_TAPE = CounterTape(enabled=False)
