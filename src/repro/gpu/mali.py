"""The Arm-Mali-like GPU family (SKUs G31 / G52 / G71).

Models the Bifrost-style CPU/GPU interface the paper records at:
job-slot registers (HEAD/AFFINITY/COMMAND/STATUS), three interrupt
groups (GPU/JOB/MMU) with RAWSTAT/CLEAR/MASK registers, an address-space
block (TRANSTAB/MEMATTR/COMMAND) for the GPU MMU, and shader-core /
L2 power control with ready-polling.

Family-level properties used by the evaluation:

- per-page execute permission (the recorder's dump-shrinking heuristic);
- the G31 SKU uses the LPAE PTE layout and a different MEMATTR value,
  which is what the cross-SKU patch of Section 6.4 fixes;
- jobs are scheduled over the core mask in ``JSn_AFFINITY`` -- replaying
  a 1-core recording on the 8-core G71 runs 8x slower until patched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import GpuPageFault, JobDecodeError, ShaderDecodeError
from repro.gpu import jobs as jobfmt
from repro.gpu.device import GpuDevice, RunningJob
from repro.gpu.isa import Program, decode_program
from repro.gpu.mmu import PTE_FORMATS
from repro.soc.machine import Machine
from repro.soc.mmio import RegAttr, RegisterDef
from repro.units import US

# GPU_IRQ_RAWSTAT bits.
IRQ_RESET_COMPLETED = 1 << 0
IRQ_CLEAN_CACHES_COMPLETED = 1 << 1
IRQ_POWER_CHANGED = 1 << 2

# GPU_COMMAND values.
CMD_NOP = 0
CMD_SOFT_RESET = 1
CMD_HARD_RESET = 2
CMD_CLEAN_CACHES = 4
CMD_INV_CACHES = 8

# JSn_COMMAND values.
JS_CMD_START = 1
JS_CMD_HARD_STOP = 2

# JSn_STATUS values.
JS_STATUS_IDLE = 0x00
JS_STATUS_ACTIVE = 0x08
JS_STATUS_DONE = 0x40
JS_STATUS_FAULT = 0x60

# AS0_COMMAND values.
AS_CMD_UPDATE = 1
AS_CMD_FLUSH_PT = 4

# AS0_FAULTSTATUS codes.
FAULT_NONE = 0
FAULT_TRANSLATION = 1
FAULT_MEMATTR = 2
FAULT_PERMISSION = 3

NUM_JOB_SLOTS = 2

# Hardware timing bases (virtual ns, jittered at run time).
RESET_DELAY_NS = 100 * US
FLUSH_DELAY_NS = 25 * US
PWRON_DELAY_NS = 30 * US


@dataclass(frozen=True)
class MaliSkuSpec:
    """Static description of one SKU in the family."""

    name: str
    gpu_id: int
    core_count: int
    clock_hz: int
    pte_format: str
    #: MEMATTR value this SKU requires in AS0_MEMATTR before jobs run.
    #: G71 expects the read-allocate bit (bit 2) set; G31/G52 do not.
    required_memattr: int


MALI_SKUS: Dict[str, MaliSkuSpec] = {
    "g31": MaliSkuSpec("g31", 0x7093_0000, 1, 650_000_000,
                       "mali-lpae", 0x48),
    "g52": MaliSkuSpec("g52", 0x7402_0000, 2, 846_000_000, "mali", 0x48),
    "g71": MaliSkuSpec("g71", 0x6000_0000, 8, 546_000_000, "mali", 0x4C),
}


def _mali_registers() -> List[RegisterDef]:
    rw, ro, wo = RegAttr.rw(), RegAttr.ro(), RegAttr.wo()
    trig = RegAttr.WRITABLE | RegAttr.WRITE_TRIGGER
    vol = RegAttr.READABLE | RegAttr.VOLATILE
    defs = [
        RegisterDef("GPU_ID", 0x000, ro, doc="model identity"),
        RegisterDef("GPU_STATUS", 0x004, ro, doc="bit0: GPU active"),
        RegisterDef("GPU_COMMAND", 0x008, trig, doc="reset/cache control"),
        RegisterDef("GPU_IRQ_RAWSTAT", 0x00C, ro),
        RegisterDef("GPU_IRQ_CLEAR", 0x010, trig),
        RegisterDef("GPU_IRQ_MASK", 0x014, rw),
        RegisterDef("GPU_IRQ_STATUS", 0x018, ro),
        RegisterDef("CYCLE_COUNT", 0x01C, vol, doc="free-running counter"),
        RegisterDef("GPU_TEMP", 0x020, vol, doc="thermal sensor"),
        RegisterDef("SHADER_PRESENT", 0x030, ro),
        RegisterDef("SHADER_READY", 0x034, ro),
        RegisterDef("SHADER_PWRON", 0x038, trig),
        RegisterDef("SHADER_PWROFF", 0x03C, trig),
        RegisterDef("L2_PRESENT", 0x040, ro),
        RegisterDef("L2_READY", 0x044, ro),
        RegisterDef("L2_PWRON", 0x048, trig),
        RegisterDef("L2_PWROFF", 0x04C, trig),
        RegisterDef("AS0_TRANSTAB_LO", 0x060, rw),
        RegisterDef("AS0_TRANSTAB_HI", 0x064, rw),
        RegisterDef("AS0_MEMATTR", 0x068, rw,
                    doc="translation config; bit2 = read-allocate"),
        RegisterDef("AS0_COMMAND", 0x06C, trig),
        RegisterDef("AS0_STATUS", 0x070, ro),
        RegisterDef("AS0_FAULTSTATUS", 0x074, ro),
        RegisterDef("AS0_FAULTADDRESS_LO", 0x078, ro),
        RegisterDef("AS0_FAULTADDRESS_HI", 0x07C, ro),
        RegisterDef("JOB_IRQ_RAWSTAT", 0x080, ro),
        RegisterDef("JOB_IRQ_CLEAR", 0x084, trig),
        RegisterDef("JOB_IRQ_MASK", 0x088, rw),
        RegisterDef("JOB_IRQ_STATUS", 0x08C, ro),
        RegisterDef("MMU_IRQ_RAWSTAT", 0x090, ro),
        RegisterDef("MMU_IRQ_CLEAR", 0x094, trig),
        RegisterDef("MMU_IRQ_MASK", 0x098, rw),
        RegisterDef("MMU_IRQ_STATUS", 0x09C, ro),
    ]
    for slot in range(NUM_JOB_SLOTS):
        base = 0x0A0 + slot * 0x20
        defs += [
            RegisterDef(f"JS{slot}_HEAD_LO", base + 0x00, rw),
            RegisterDef(f"JS{slot}_HEAD_HI", base + 0x04, rw),
            RegisterDef(f"JS{slot}_AFFINITY", base + 0x08, rw,
                        doc="shader core mask for this job"),
            RegisterDef(f"JS{slot}_CONFIG", base + 0x0C, rw),
            RegisterDef(f"JS{slot}_COMMAND", base + 0x10, trig),
            RegisterDef(f"JS{slot}_STATUS", base + 0x14, ro),
        ]
    return defs


class MaliGpu(GpuDevice):
    """One Mali-like GPU SKU mounted on a machine."""

    family = "mali"

    def __init__(self, machine: Machine, sku: str = "g71"):
        if sku not in MALI_SKUS:
            raise ValueError(f"unknown Mali SKU {sku!r}; "
                             f"known: {sorted(MALI_SKUS)}")
        spec = MALI_SKUS[sku]
        self.spec = spec
        super().__init__(
            machine, f"mali-{spec.name}", _mali_registers(),
            core_count=spec.core_count, clock_hz=spec.clock_hz,
            pte_format=PTE_FORMATS[spec.pte_format],
            max_active_jobs=NUM_JOB_SLOTS)
        self._jobs: Dict[int, Optional[RunningJob]] = {
            s: None for s in range(NUM_JOB_SLOTS)}
        # Hardware executes one job at a time; a second submitted job
        # waits in the hardware queue (the HEAD_NEXT mechanism that
        # gives Mali its two outstanding jobs, Section 2.2).
        self._hw_active: Optional[RunningJob] = None
        self._hw_pending: List[RunningJob] = []
        self._resetting = False
        self._wire_registers()

    # -- register wiring -----------------------------------------------------

    def _wire_registers(self) -> None:
        regs = self.regs
        core_mask = (1 << self.core_count) - 1
        regs.poke("GPU_ID", self.spec.gpu_id)
        regs.poke("SHADER_PRESENT", core_mask)
        regs.poke("L2_PRESENT", 1)

        regs.set_write_handler("GPU_COMMAND", self._on_gpu_command)
        regs.set_write_handler("GPU_IRQ_CLEAR", self._on_irq_clear("GPU"))
        regs.set_write_handler("JOB_IRQ_CLEAR", self._on_irq_clear("JOB"))
        regs.set_write_handler("MMU_IRQ_CLEAR", self._on_irq_clear("MMU"))
        regs.set_write_handler("GPU_IRQ_MASK", self._on_mask_change)
        regs.set_write_handler("JOB_IRQ_MASK", self._on_mask_change)
        regs.set_write_handler("MMU_IRQ_MASK", self._on_mask_change)
        regs.set_write_handler("SHADER_PWRON", self._on_shader_pwron)
        regs.set_write_handler("SHADER_PWROFF", self._on_shader_pwroff)
        regs.set_write_handler("L2_PWRON", self._on_l2_pwron)
        regs.set_write_handler("L2_PWROFF", self._on_l2_pwroff)
        regs.set_write_handler("AS0_COMMAND", self._on_as_command)
        for slot in range(NUM_JOB_SLOTS):
            regs.set_write_handler(f"JS{slot}_COMMAND",
                                   self._make_js_command_handler(slot))

        regs.set_read_handler("GPU_STATUS",
                              lambda _v: 1 if self.busy else 0)
        regs.set_read_handler("GPU_IRQ_STATUS", self._masked_reader("GPU"))
        regs.set_read_handler("JOB_IRQ_STATUS", self._masked_reader("JOB"))
        regs.set_read_handler("MMU_IRQ_STATUS", self._masked_reader("MMU"))
        regs.set_read_handler(
            "CYCLE_COUNT",
            lambda _v: (self.machine.clock.now() * self.clock_hz
                        // 1_000_000_000) & 0xFFFFFFFF)
        regs.set_read_handler(
            "GPU_TEMP", lambda _v: 55 + self.machine.rng.randrange(10))

    def _masked_reader(self, group: str):
        def read(_value: int) -> int:
            raw = self.regs.peek(f"{group}_IRQ_RAWSTAT")
            mask = self.regs.peek(f"{group}_IRQ_MASK")
            return raw & mask
        return read

    # -- interrupt plumbing ----------------------------------------------------

    def _irq_pending_level(self) -> bool:
        for group in ("GPU", "JOB", "MMU"):
            raw = self.regs.peek(f"{group}_IRQ_RAWSTAT")
            mask = self.regs.peek(f"{group}_IRQ_MASK")
            if raw & mask:
                return True
        return False

    def _assert_irq(self, group: str, bits: int) -> None:
        raw = self.regs.peek(f"{group}_IRQ_RAWSTAT")
        self.regs.poke(f"{group}_IRQ_RAWSTAT", raw | bits)
        self.update_irq_line()

    def _on_irq_clear(self, group: str):
        def handler(_old: int, value: int) -> None:
            raw = self.regs.peek(f"{group}_IRQ_RAWSTAT")
            self.regs.poke(f"{group}_IRQ_RAWSTAT", raw & ~value)
            self.update_irq_line()
        return handler

    def _on_mask_change(self, _old: int, _value: int) -> None:
        self.update_irq_line()

    # -- GPU-level commands ------------------------------------------------------

    def _on_gpu_command(self, _old: int, value: int) -> None:
        if value in (CMD_SOFT_RESET, CMD_HARD_RESET):
            self._begin_reset()
        elif value in (CMD_CLEAN_CACHES, CMD_INV_CACHES):
            self._begin_cache_clean()

    def _begin_reset(self) -> None:
        self._resetting = True
        self._cancel_pending()
        self._hw_active = None
        self._hw_pending.clear()
        for slot in range(NUM_JOB_SLOTS):
            self.note_job_retired(self._jobs[slot])
            self._jobs[slot] = None
            self.regs.poke(f"JS{slot}_STATUS", JS_STATUS_IDLE)
            self.regs.poke(f"JS{slot}_HEAD_LO", 0)
            self.regs.poke(f"JS{slot}_HEAD_HI", 0)
        # Reset drops power state and MMU configuration.
        self.regs.poke("SHADER_READY", 0)
        self.regs.poke("L2_READY", 0)
        self.regs.poke("GPU_IRQ_RAWSTAT", 0)
        self.regs.poke("JOB_IRQ_RAWSTAT", 0)
        self.regs.poke("MMU_IRQ_RAWSTAT", 0)
        self.regs.poke("AS0_FAULTSTATUS", FAULT_NONE)
        self.mmu.set_base(0)
        self._busy_count = 0
        self._enter_busy()
        self.update_irq_line()

        def complete() -> None:
            self._resetting = False
            self._exit_busy()
            self._assert_irq("GPU", IRQ_RESET_COMPLETED)

        self._schedule(self._jitter(RESET_DELAY_NS), complete, "mali-reset")

    def _begin_cache_clean(self) -> None:
        self._enter_busy()

        def complete() -> None:
            self._exit_busy()
            self._assert_irq("GPU", IRQ_CLEAN_CACHES_COMPLETED)

        self._schedule(self._jitter(FLUSH_DELAY_NS), complete, "mali-flush")

    # -- power control ------------------------------------------------------------

    def _on_shader_pwron(self, _old: int, mask: int) -> None:
        present = self.regs.peek("SHADER_PRESENT")
        target = mask & present & ~self.offline_core_mask

        def complete() -> None:
            ready = self.regs.peek("SHADER_READY")
            self.regs.poke("SHADER_READY", ready | target)
            self._assert_irq("GPU", IRQ_POWER_CHANGED)

        self._schedule(self._jitter(PWRON_DELAY_NS), complete, "shader-pwron")

    def _on_shader_pwroff(self, _old: int, mask: int) -> None:
        ready = self.regs.peek("SHADER_READY")
        self.regs.poke("SHADER_READY", ready & ~mask)

    def _on_l2_pwron(self, _old: int, _mask: int) -> None:
        def complete() -> None:
            self.regs.poke("L2_READY", self.regs.peek("L2_PRESENT"))
            self._assert_irq("GPU", IRQ_POWER_CHANGED)

        self._schedule(self._jitter(PWRON_DELAY_NS), complete, "l2-pwron")

    def _on_l2_pwroff(self, _old: int, _mask: int) -> None:
        self.regs.poke("L2_READY", 0)

    # -- address space ---------------------------------------------------------------

    def _on_as_command(self, _old: int, value: int) -> None:
        if value == AS_CMD_UPDATE:
            lo = self.regs.peek("AS0_TRANSTAB_LO")
            hi = self.regs.peek("AS0_TRANSTAB_HI")
            self.mmu.set_base(((hi << 32) | lo) & ~0xFFF)
        elif value == AS_CMD_FLUSH_PT:
            self.mmu.flush_tlb()

    def _raise_mmu_fault(self, code: int, va: int) -> None:
        self.regs.poke("AS0_FAULTSTATUS", code)
        self.regs.poke("AS0_FAULTADDRESS_LO", va & 0xFFFFFFFF)
        self.regs.poke("AS0_FAULTADDRESS_HI", (va >> 32) & 0xFFFFFFFF)
        self._assert_irq("MMU", 1)

    # -- job slots --------------------------------------------------------------------

    def _make_js_command_handler(self, slot: int):
        def handler(_old: int, value: int) -> None:
            if value == JS_CMD_START:
                self._start_job(slot)
            elif value == JS_CMD_HARD_STOP:
                self._hard_stop(slot)
        return handler

    def _start_job(self, slot: int) -> None:
        regs = self.regs
        head = (regs.peek(f"JS{slot}_HEAD_HI") << 32) | \
            regs.peek(f"JS{slot}_HEAD_LO")
        affinity = regs.peek(f"JS{slot}_AFFINITY")

        if self._resetting or self._jobs[slot] is not None:
            self._fail_job(slot, head)
            return
        if regs.peek("L2_READY") == 0:
            self._fail_job(slot, head)
            return
        if regs.peek("AS0_MEMATTR") != self.spec.required_memattr:
            # Translation-config mismatch: the incompatibility the
            # cross-SKU MMU patch fixes (Section 6.4, item 2).
            self._raise_mmu_fault(FAULT_MEMATTR, head)
            self._fail_job(slot, head)
            return
        active_cores = affinity & regs.peek("SHADER_READY") \
            & ~self.offline_core_mask
        if active_cores == 0:
            self._fail_job(slot, head)
            return

        try:
            chain = jobfmt.walk_mali_chain(
                head, lambda va, n: self.mmu.read_va(va, n, access="x"))
            programs = [
                decode_program(self.mmu.read_va(d.shader_va, d.shader_size,
                                                access="x"))
                for _va, d in chain
            ]
        except GpuPageFault as fault:
            self._raise_mmu_fault(
                FAULT_PERMISSION if fault.reason == "permission denied"
                else FAULT_TRANSLATION, fault.va)
            self._fail_job(slot, head)
            return
        except (JobDecodeError, ShaderDecodeError):
            self._fail_job(slot, head)
            return

        ncores = bin(active_cores).count("1")
        regs.poke(f"JS{slot}_STATUS", JS_STATUS_ACTIVE)
        self._enter_busy()
        job = RunningJob(slot, head, programs, None, ncores)
        self._jobs[slot] = job
        if self._hw_active is None:
            self._begin_execution(job)
        else:
            self._hw_pending.append(job)

    def _begin_execution(self, job: RunningJob) -> None:
        duration = sum(
            self.perf.job_duration_ns(p, job.active_cores,
                                      self.clock_domain,
                                      self.machine.interference)
            for p in job.programs)
        duration = self._jitter(duration)
        self._hw_active = job
        self.note_job_executing(job)
        job.completion = self._schedule(
            duration, lambda: self._complete_job(job.slot),
            f"mali-job-s{job.slot}")

    def _start_next_queued(self) -> None:
        self._hw_active = None
        if self._hw_pending:
            self._begin_execution(self._hw_pending.pop(0))

    def _complete_job(self, slot: int) -> None:
        job = self._jobs[slot]
        self._jobs[slot] = None
        self._start_next_queued()
        if job is None:
            return
        self.note_job_retired(job)
        try:
            self._run_job_programs(job)
        except GpuPageFault as fault:
            self._exit_busy()
            self._raise_mmu_fault(FAULT_TRANSLATION, fault.va)
            self._fail_job(slot, job.chain_va)
            return
        self._exit_busy()
        self.regs.poke(f"JS{slot}_STATUS", JS_STATUS_DONE)
        self._assert_irq("JOB", 1 << slot)

    def _fail_job(self, slot: int, _head: int) -> None:
        self.regs.poke(f"JS{slot}_STATUS", JS_STATUS_FAULT)
        self._assert_irq("JOB", 1 << (16 + slot))

    def _hard_stop(self, slot: int) -> None:
        job = self._jobs[slot]
        if job is None:
            return
        if job.completion is not None:
            job.completion.cancel()
        if self._hw_active is job:
            self._start_next_queued()
        elif job in self._hw_pending:
            self._hw_pending.remove(job)
        self.note_job_retired(job)
        self._jobs[slot] = None
        self._exit_busy()
        self.regs.poke(f"JS{slot}_STATUS", JS_STATUS_IDLE)
        self._assert_irq("JOB", 1 << (16 + slot))

    # -- fault injection (hardware events; used by repro.gpu.faults) -------------

    def offline_cores(self, mask: int) -> None:
        """Forcibly power off shader cores, failing affected jobs."""
        self.offline_core_mask |= mask
        ready = self.regs.peek("SHADER_READY")
        self.regs.poke("SHADER_READY", ready & ~mask)
        for slot, job in list(self._jobs.items()):
            if job is not None and job.active_cores and \
                    (self.regs.peek(f"JS{slot}_AFFINITY") & mask):
                if job.completion is not None:
                    job.completion.cancel()
                if self._hw_active is job:
                    self._start_next_queued()
                elif job in self._hw_pending:
                    self._hw_pending.remove(job)
                self.note_job_retired(job)
                self._jobs[slot] = None
                self._exit_busy()
                self._fail_job(slot, job.chain_va)

    def restore_cores(self) -> None:
        self.offline_core_mask = 0
