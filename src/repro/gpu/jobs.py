"""GPU job binary formats: Mali job chains and v3d control lists.

These are the "GPU commands" layer of a job binary: small descriptor
structures living in GPU memory, deeply linked by GPU virtual addresses
(descriptor -> next descriptor, descriptor -> shader blob). Only the
GPU runtime (which emits them) and the GPU device model (which parses
them) understand the encoding; GPUReplay treats the bytes as opaque
memory contents.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.errors import JobDecodeError

# --------------------------------------------------------------------------
# Mali: a "job chain" of sub-job descriptors.
# --------------------------------------------------------------------------

MALI_JOB_MAGIC = 0x4D43424A  # "JBCM"
MALI_JOB_TYPE_COMPUTE = 1

_MALI_JOB = struct.Struct("<IIQQII")  # magic, type, next_va, shader_va,
#                                       shader_size, reserved
MALI_JOB_DESC_SIZE = _MALI_JOB.size

MAX_CHAIN_LENGTH = 4096


@dataclass(frozen=True)
class MaliJobDescriptor:
    """One sub-job of a Mali job chain."""

    job_type: int
    next_va: int
    shader_va: int
    shader_size: int


def encode_mali_job(desc: MaliJobDescriptor) -> bytes:
    return _MALI_JOB.pack(MALI_JOB_MAGIC, desc.job_type, desc.next_va,
                          desc.shader_va, desc.shader_size, 0)


def decode_mali_job(blob: bytes) -> MaliJobDescriptor:
    if len(blob) < MALI_JOB_DESC_SIZE:
        raise JobDecodeError("truncated Mali job descriptor")
    magic, job_type, next_va, shader_va, shader_size, _ = \
        _MALI_JOB.unpack_from(blob, 0)
    if magic != MALI_JOB_MAGIC:
        raise JobDecodeError(f"bad Mali job magic {magic:#x}")
    return MaliJobDescriptor(job_type, next_va, shader_va, shader_size)


def walk_mali_chain(head_va: int,
                    read: Callable[[int, int], bytes]
                    ) -> List[Tuple[int, MaliJobDescriptor]]:
    """Walk a job chain via ``read(va, size)``; returns (va, desc) pairs.

    ``read`` is typically ``mmu.read_va`` with execute access -- the
    GPU fetches descriptors from executable pages, which is exactly the
    property the Mali recorder's dump heuristic exploits.
    """
    out: List[Tuple[int, MaliJobDescriptor]] = []
    va = head_va
    while va != 0:
        if len(out) >= MAX_CHAIN_LENGTH:
            raise JobDecodeError("job chain too long (cycle?)")
        desc = decode_mali_job(read(va, MALI_JOB_DESC_SIZE))
        out.append((va, desc))
        va = desc.next_va
    return out


# --------------------------------------------------------------------------
# v3d: flat control lists of packets, possibly branching to other lists.
# --------------------------------------------------------------------------

CL_HALT = 0
CL_EXEC_SHADER = 1
CL_BRANCH = 2

_CL_EXEC = struct.Struct("<BQI")  # opcode, shader_va, shader_size
_CL_BRANCH = struct.Struct("<BQ")  # opcode, target_va
_CL_HALT = struct.Struct("<B")

MAX_CL_PACKETS = 16384


@dataclass(frozen=True)
class ControlListEntry:
    """One parsed control-list packet."""

    opcode: int
    shader_va: int = 0
    shader_size: int = 0
    target_va: int = 0


def encode_cl_exec(shader_va: int, shader_size: int) -> bytes:
    return _CL_EXEC.pack(CL_EXEC_SHADER, shader_va, shader_size)


def encode_cl_branch(target_va: int) -> bytes:
    return _CL_BRANCH.pack(CL_BRANCH, target_va)


def encode_cl_halt() -> bytes:
    return _CL_HALT.pack(CL_HALT)


def walk_control_list(base_va: int,
                      read: Callable[[int, int], bytes]
                      ) -> List[ControlListEntry]:
    """Parse packets starting at ``base_va`` until a HALT.

    Follows BRANCH packets into other lists, mirroring the pointer
    chasing the v3d recorder must perform (Section 6.2).
    """
    out: List[ControlListEntry] = []
    va = base_va
    while True:
        if len(out) >= MAX_CL_PACKETS:
            raise JobDecodeError("control list too long (cycle?)")
        opcode = read(va, 1)[0]
        if opcode == CL_HALT:
            out.append(ControlListEntry(CL_HALT))
            return out
        if opcode == CL_EXEC_SHADER:
            _, shader_va, size = _CL_EXEC.unpack(read(va, _CL_EXEC.size))
            out.append(ControlListEntry(CL_EXEC_SHADER, shader_va, size))
            va += _CL_EXEC.size
            continue
        if opcode == CL_BRANCH:
            _, target = _CL_BRANCH.unpack(read(va, _CL_BRANCH.size))
            out.append(ControlListEntry(CL_BRANCH, target_va=target))
            va = target
            continue
        raise JobDecodeError(f"unknown control-list opcode {opcode}")
