"""Hardware fault injection for the Section 7.2 validation experiments.

The paper injects "transient, non-preventable failures" during replay:
forcibly offlining GPU cores and corrupting GPU page-table entries. The
replayer must *detect* them (diverging status-register reads, GPU
memory-exception interrupts) and *recover* by re-execution.

Everything here manipulates simulated silicon directly -- it models
physical events, not software, so it bypasses the register interface.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SocError
from repro.gpu.device import GpuDevice
from repro.gpu.mmu import walk_page_table


class FaultInjector:
    """Injects and clears hardware faults on one GPU device."""

    def __init__(self, device: GpuDevice):
        self.device = device
        self._saved_ptes: List[Tuple[int, bytes]] = []

    # -- core offlining ------------------------------------------------------

    def offline_cores(self, mask: int) -> None:
        """Power-collapse the cores in ``mask`` (e.g. thermal event)."""
        if mask == 0:
            raise SocError("offline mask must be non-zero")
        self.device.offline_cores(mask)

    def restore_cores(self) -> None:
        self.device.restore_cores()

    # -- page-table corruption --------------------------------------------------

    def corrupt_pte(self, va: int) -> None:
        """Corrupt the PTE mapping ``va`` in the *live* page tables.

        Emulates a bit-flip in DRAM holding the tables. The next GPU
        access through the entry raises a genuine GPU memory exception.
        """
        mmu = self.device.mmu
        if not mmu.enabled or mmu.base_pa is None:
            raise SocError("GPU MMU is not configured; nothing to corrupt")
        fmt = mmu.fmt
        memory = mmu.memory
        # Locate the leaf entry by a software walk of the live tables.
        target_page = va & ~0xFFF
        for entry_va, _pa, _perms in walk_page_table(memory, mmu.base_pa, fmt):
            if entry_va == target_page:
                break
        else:
            raise SocError(f"VA {va:#x} is not mapped; cannot corrupt")
        # Re-walk structurally to find the leaf entry's physical slot.
        from repro.gpu.mmu import split_va  # local import avoids cycle noise

        l0, l1, _ = split_va(va)
        read_entry = memory.read_u64 if fmt.pte_size == 8 else memory.read_u32
        l0_value = read_entry(mmu.base_pa + l0 * fmt.pte_size)
        _valid, l1_pa = fmt.decode_table_ptr(l0_value)
        slot_pa = l1_pa + l1 * fmt.pte_size
        original = memory.read(slot_pa, fmt.pte_size)
        self._saved_ptes.append((slot_pa, original))
        memory.write(slot_pa, b"\x00" * fmt.pte_size)
        mmu.flush_tlb()

    def repair_ptes(self) -> None:
        """Undo every PTE corruption (the 'transient' part of the fault)."""
        for slot_pa, original in self._saved_ptes:
            self.device.mmu.memory.write(slot_pa, original)
        self._saved_ptes.clear()
        self.device.mmu.flush_tlb()

    # -- chip-level resources ------------------------------------------------------

    def underclock(self, factor: float) -> int:
        """Drop the GPU clock by ``factor``; returns the previous rate."""
        if factor <= 1.0:
            raise SocError("underclock factor must exceed 1.0")
        domain = self.device.clock_domain
        previous = domain.rate_hz
        domain.set_rate(max(1, int(previous / factor)))
        return previous

    def restore_clock(self, rate_hz: int) -> None:
        self.device.clock_domain.set_rate(rate_hz)
