"""Register-level models of integrated GPUs.

Three GPU families are modelled, spanning the interface styles of the
paper's Table 1:

- :mod:`repro.gpu.mali` -- an Arm-Mali-like family (SKUs G31/G52/G71)
  with job chains, job slots, per-page execute permissions and an
  LPAE page-table variant on the low-end SKU;
- :mod:`repro.gpu.v3d` -- a Broadcom-v3d-like GPU with control lists
  and permissionless page tables;
- :mod:`repro.gpu.adreno` -- a Qualcomm-Adreno-like GPU with
  ring-buffer submission and SMMU page tables.

All execute the same shader bytecode ISA (:mod:`repro.gpu.isa`) whose
binaries are opaque, pointer-linked blobs -- exactly the property that
forces GPUReplay to dump memory wholesale instead of interpreting it.
"""

from repro.gpu.adreno import AdrenoGpu
from repro.gpu.device import GpuDevice
from repro.gpu.mali import MALI_SKUS, MaliGpu
from repro.gpu.v3d import V3dGpu


def create_gpu(model: str, machine) -> GpuDevice:
    """Instantiate the GPU device named by a board spec and mount it."""
    if model.startswith("mali-"):
        return MaliGpu(machine, sku=model[len("mali-"):])
    if model == "v3d":
        return V3dGpu(machine)
    if model.startswith("adreno"):
        return AdrenoGpu(machine)
    raise ValueError(f"unknown GPU model {model!r}")


__all__ = ["AdrenoGpu", "GpuDevice", "MALI_SKUS", "MaliGpu", "V3dGpu",
           "create_gpu"]
