"""GPU performance/cost model.

Converts shader programs into virtual-time durations with a simple
roofline: a job is bound either by compute (FLOPs over the active
shader cores) or by memory traffic (bytes over DRAM bandwidth), plus
fixed parsing overheads. Interference (Section 7.2) scales the memory
and compute terms; the GPU clock domain converts cycles to nanoseconds,
so underclocking genuinely slows jobs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.isa import Program, bytes_touched, flops_estimate
from repro.soc.clock import ClockDomain
from repro.soc.machine import InterferenceProfile
from repro.units import US


@dataclass
class GpuPerfModel:
    """Tunable throughput constants for one GPU model."""

    #: FLOPs retired per shader core per GPU clock cycle.
    flops_per_core_cycle: float = 4.0
    #: Bytes each shader core's load/store path moves per clock cycle
    #: (DRAM contention across cores is modelled by the interference
    #: profile, not here -- so job time scales with the affinity mask,
    #: which is what the Figure 9 cross-SKU experiment measures).
    bytes_per_core_cycle: float = 2.0
    #: Fixed cost of the GPU front-end parsing one job binary.
    job_parse_ns: int = 4 * US
    #: Per-instruction dispatch overhead.
    instr_overhead_ns: int = 1 * US
    #: The zoo models are shrunk heavily (channels and spatial dims) so
    #: numpy stays fast; this multiplier restores realistic *virtual*
    #: job durations (tens to hundreds of microseconds), keeping every
    #: CPU-vs-GPU overhead ratio in the paper's regime.
    workload_scale: float = 100.0

    def job_cycles(self, program: Program, active_cores: int,
                   interference: InterferenceProfile) -> float:
        """Cycle count for executing ``program`` on ``active_cores``."""
        if active_cores <= 0:
            raise ValueError("job needs at least one active core")
        flops = sum(flops_estimate(i) for i in program.instructions)
        traffic = sum(bytes_touched(i) for i in program.instructions)
        compute_cycles = flops / (self.flops_per_core_cycle * active_cores)
        memory_cycles = (traffic
                         / (self.bytes_per_core_cycle * active_cores)
                         * interference.mem_contention)
        return max(compute_cycles, memory_cycles) \
            * self.workload_scale * interference.thermal_throttle

    def job_duration_ns(self, program: Program, active_cores: int,
                        clock_domain: ClockDomain,
                        interference: InterferenceProfile) -> int:
        """Virtual-time duration of one job (excluding jitter)."""
        cycles = self.job_cycles(program, active_cores, interference)
        return (clock_domain.cycles_to_ns(cycles)
                + self.job_parse_ns
                + self.instr_overhead_ns * len(program.instructions))
