"""The GPU shader bytecode ISA.

Shader binaries are what the proprietary GPU runtime emits and what the
GPU executes. They are deliberately *opaque to GPUReplay*: a serialized
program is a byte blob whose operands embed absolute GPU virtual
addresses, so it is position-dependent and cannot be relocated or
interpreted without this module -- which only the runtime (JIT
compiler) and the GPU device model import. The recorder and the
replayer never decode shader bytes; they treat them as memory contents,
exactly as the paper requires.

A program is a sequence of instructions. Each instruction names an
opcode, tensor operands (GPU VA + shape) and scalar parameters. The
last operand of every instruction is its output tensor.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ShaderDecodeError

PROGRAM_MAGIC = 0x47525348  # "GRSH"
INSTR_MAGIC = 0x53484401

MAX_DIMS = 5


class Op(enum.IntEnum):
    """Shader opcodes.

    Covers the inference and training workloads of the paper's Table 6
    plus the math kernels (vecadd). SELECT provides data-dependent
    branching *inside* a job binary, which Section 3.1 explicitly
    permits (all branches ship inside the dumped binary).
    """

    # Element-wise / vector math.
    COPY = 1
    FILL = 2
    ADD = 3
    SUB = 4
    MUL = 5
    SCALE = 6
    SELECT = 7  # out = where(cond > 0, a, b)

    # Dense linear algebra.
    MATMUL = 10
    DENSE = 11  # x @ W + bias

    # Convolutions.
    CONV2D = 20
    DWCONV2D = 21

    # Activations / normalization.
    RELU = 30
    RELU6 = 31
    LEAKY_RELU = 32
    SIGMOID = 33
    TANH = 34
    SOFTMAX = 35
    LRN = 36
    BIASADD = 37
    BATCHNORM = 38

    # Spatial ops.
    MAXPOOL = 40
    AVGPOOL = 41
    GLOBALAVGPOOL = 42
    PAD = 43
    CONCAT = 44
    UPSAMPLE2X = 45
    FLATTEN = 46

    # Training.
    SOFTMAX_XENT_GRAD = 60  # (logits, onehot) -> (dlogits, loss)
    DENSE_GRAD_W = 61  # (x, dy) -> dW
    DENSE_GRAD_X = 62  # (dy, W) -> dx
    DENSE_GRAD_B = 63  # dy -> db
    RELU_GRAD = 64  # (x, dy) -> dx
    SGD_UPDATE = 65  # (w, g) -> w  (params: lr)


@dataclass(frozen=True)
class TensorRef:
    """A tensor operand: GPU virtual address + logical shape (float32)."""

    va: int
    shape: Tuple[int, ...]

    @property
    def elements(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        return self.elements * 4

    def end_va(self) -> int:
        return self.va + self.nbytes


@dataclass(frozen=True)
class Instruction:
    """One shader instruction. The final operand is the output tensor."""

    op: Op
    operands: Tuple[TensorRef, ...]
    params: Tuple[float, ...] = ()

    @property
    def inputs(self) -> Tuple[TensorRef, ...]:
        return self.operands[:-1]

    @property
    def output(self) -> TensorRef:
        return self.operands[-1]


@dataclass
class Program:
    """A decoded shader program."""

    instructions: List[Instruction] = field(default_factory=list)

    def referenced_ranges(self) -> List[Tuple[int, int]]:
        """All (va, size) ranges any instruction touches."""
        return [(ref.va, ref.nbytes)
                for instr in self.instructions
                for ref in instr.operands]


# --------------------------------------------------------------------------
# Serialization. Little-endian throughout, mirroring the SoC.
# --------------------------------------------------------------------------

_HEADER = struct.Struct("<II")  # magic, n_instructions
_INSTR_HEAD = struct.Struct("<IHHH")  # magic, opcode, n_operands, n_params
_OPERAND_HEAD = struct.Struct("<QB")  # va, ndim
_DIM = struct.Struct("<I")
_PARAM = struct.Struct("<d")


def encode_program(program: Program) -> bytes:
    """Serialize a program to its binary shader form."""
    chunks = [_HEADER.pack(PROGRAM_MAGIC, len(program.instructions))]
    for instr in program.instructions:
        if not instr.operands:
            raise ShaderDecodeError("instruction needs at least one operand")
        chunks.append(_INSTR_HEAD.pack(
            INSTR_MAGIC, int(instr.op), len(instr.operands),
            len(instr.params)))
        for ref in instr.operands:
            if len(ref.shape) > MAX_DIMS:
                raise ShaderDecodeError(
                    f"tensor rank {len(ref.shape)} exceeds {MAX_DIMS}")
            chunks.append(_OPERAND_HEAD.pack(ref.va, len(ref.shape)))
            for dim in ref.shape:
                chunks.append(_DIM.pack(dim))
        for param in instr.params:
            chunks.append(_PARAM.pack(param))
    return b"".join(chunks)


def decode_program(blob: bytes) -> Program:
    """Parse a binary shader back into a :class:`Program`."""
    if len(blob) < _HEADER.size:
        raise ShaderDecodeError("shader blob too short for header")
    magic, count = _HEADER.unpack_from(blob, 0)
    if magic != PROGRAM_MAGIC:
        raise ShaderDecodeError(f"bad program magic {magic:#x}")
    offset = _HEADER.size
    instructions: List[Instruction] = []
    for _ in range(count):
        if offset + _INSTR_HEAD.size > len(blob):
            raise ShaderDecodeError("truncated instruction header")
        imagic, opcode, n_ops, n_params = _INSTR_HEAD.unpack_from(blob, offset)
        offset += _INSTR_HEAD.size
        if imagic != INSTR_MAGIC:
            raise ShaderDecodeError(f"bad instruction magic {imagic:#x}")
        try:
            op = Op(opcode)
        except ValueError:
            raise ShaderDecodeError(f"unknown opcode {opcode}")
        operands: List[TensorRef] = []
        for _ in range(n_ops):
            if offset + _OPERAND_HEAD.size > len(blob):
                raise ShaderDecodeError("truncated operand header")
            va, ndim = _OPERAND_HEAD.unpack_from(blob, offset)
            offset += _OPERAND_HEAD.size
            if ndim > MAX_DIMS:
                raise ShaderDecodeError(f"operand rank {ndim} too large")
            dims = []
            for _ in range(ndim):
                if offset + _DIM.size > len(blob):
                    raise ShaderDecodeError("truncated operand dims")
                dims.append(_DIM.unpack_from(blob, offset)[0])
                offset += _DIM.size
            operands.append(TensorRef(va, tuple(dims)))
        params = []
        for _ in range(n_params):
            if offset + _PARAM.size > len(blob):
                raise ShaderDecodeError("truncated parameters")
            params.append(_PARAM.unpack_from(blob, offset)[0])
            offset += _PARAM.size
        instructions.append(Instruction(op, tuple(operands), tuple(params)))
    return Program(instructions)


def program_size(program: Program) -> int:
    """Size in bytes of the encoded program without encoding it."""
    size = _HEADER.size
    for instr in program.instructions:
        size += _INSTR_HEAD.size
        for ref in instr.operands:
            size += _OPERAND_HEAD.size + _DIM.size * len(ref.shape)
        size += _PARAM.size * len(instr.params)
    return size


def flops_estimate(instr: Instruction) -> float:
    """Rough floating-point-operation count for the cost model."""
    out = instr.output
    if instr.op in (Op.MATMUL, Op.DENSE):
        k = instr.operands[0].shape[-1]
        return 2.0 * out.elements * k
    if instr.op == Op.CONV2D:
        w = instr.operands[1]
        # out: (oc, oh, ow); w: (oc, ic, kh, kw)
        _, ic, kh, kw = w.shape
        return 2.0 * out.elements * ic * kh * kw
    if instr.op == Op.DWCONV2D:
        w = instr.operands[1]
        kh, kw = w.shape[-2], w.shape[-1]
        return 2.0 * out.elements * kh * kw
    if instr.op in (Op.MAXPOOL, Op.AVGPOOL):
        k = instr.params[0] if instr.params else 2
        return out.elements * k * k
    if instr.op == Op.LRN:
        return out.elements * 10.0
    if instr.op == Op.SOFTMAX:
        return out.elements * 5.0
    if instr.op == Op.DENSE_GRAD_W:
        return 2.0 * instr.operands[0].elements * out.shape[-1]
    if instr.op == Op.DENSE_GRAD_X:
        return 2.0 * out.elements * instr.operands[0].shape[-1]
    # Element-wise default.
    return float(out.elements)


def bytes_touched(instr: Instruction) -> int:
    """Total memory traffic of one instruction (for bandwidth costing)."""
    return sum(ref.nbytes for ref in instr.operands)
