"""Numpy execution semantics of the shader ISA.

Split in two layers:

- :func:`compute_op` -- pure op semantics on numpy arrays. Shared with
  the CPU reference executor (:mod:`repro.stack.reference`), so GPU
  results and CPU reference results are bit-comparable, which is what
  makes the Section 7.2 replay-output validation meaningful.
- :func:`execute_program` -- "what the shader cores do": loads operands
  through the GPU MMU, computes, stores back through the MMU. Every
  access uses the proper access type, so permission bugs (LPAE bit
  mismatches, corrupted PTEs, unmapped scratch) surface as genuine GPU
  page faults.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import MegaBatchDivergence, ShaderDecodeError
from repro.gpu.isa import Instruction, Op, Program, TensorRef
from repro.gpu.mmu import GpuMmu


def output_arity(op: Op) -> int:
    """How many trailing operands of an instruction are outputs."""
    return 2 if op == Op.SOFTMAX_XENT_GRAD else 1


# --------------------------------------------------------------------------
# Pure op semantics.
# --------------------------------------------------------------------------


def _conv2d(x: np.ndarray, w: np.ndarray, b: np.ndarray,
            stride: int, pad: int) -> np.ndarray:
    ic, h, wd = x.shape
    oc, _, kh, kw = w.shape
    del ic
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    out = np.zeros((oc, oh, ow), dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            patch = xp[:, i:i + stride * oh:stride, j:j + stride * ow:stride]
            out += np.einsum("oi,ihw->ohw", w[:, :, i, j], patch,
                             dtype=np.float32)
    return out + b[:, None, None]


def _dwconv2d(x: np.ndarray, w: np.ndarray, b: np.ndarray,
              stride: int, pad: int) -> np.ndarray:
    c, h, wd = x.shape
    del c
    _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (wd + 2 * pad - kw) // stride + 1
    out = np.zeros((x.shape[0], oh, ow), dtype=np.float32)
    for i in range(kh):
        for j in range(kw):
            patch = xp[:, i:i + stride * oh:stride, j:j + stride * ow:stride]
            out += w[:, i, j][:, None, None] * patch
    return out + b[:, None, None]


def _pool(x: np.ndarray, k: int, stride: int, mode: str) -> np.ndarray:
    c, h, w = x.shape
    oh = (h - k) // stride + 1
    ow = (w - k) // stride + 1
    if mode == "max":
        out = np.full((c, oh, ow), -np.inf, dtype=np.float32)
    else:
        out = np.zeros((c, oh, ow), dtype=np.float32)
    for i in range(k):
        for j in range(k):
            patch = x[:, i:i + stride * oh:stride, j:j + stride * ow:stride]
            if mode == "max":
                np.maximum(out, patch, out=out)
            else:
                out += patch
    if mode == "avg":
        out /= np.float32(k * k)
    return out


def _lrn(x: np.ndarray, n: int, alpha: float, beta: float,
         k: float) -> np.ndarray:
    c = x.shape[0]
    sq = x * x
    denom = np.empty_like(x)
    half = n // 2
    for ch in range(c):
        lo, hi = max(0, ch - half), min(c, ch + half + 1)
        denom[ch] = sq[lo:hi].sum(axis=0)
    return x / np.power(k + (alpha / n) * denom, beta)


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=-1, keepdims=True)


def _channelwise(x: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Broadcast a per-channel vector over channel-first 3D (or last axis)."""
    if x.ndim == 3:
        return v[:, None, None]
    return v


def compute_op(op: Op, inputs: Sequence[np.ndarray],
               params: Tuple[float, ...]) -> List[np.ndarray]:
    """Pure semantics of one opcode; returns the output array list."""
    p = params
    if op == Op.FILL:
        raise ShaderDecodeError("FILL needs an output shape; use "
                                "compute_fill")
    if op in (Op.COPY, Op.FLATTEN):
        return [inputs[0]]
    if op == Op.ADD:
        return [inputs[0] + inputs[1]]
    if op == Op.SUB:
        return [inputs[0] - inputs[1]]
    if op == Op.MUL:
        return [inputs[0] * inputs[1]]
    if op == Op.SCALE:
        return [inputs[0] * np.float32(p[0])]
    if op == Op.SELECT:
        return [np.where(inputs[0] > 0, inputs[1], inputs[2])]
    if op == Op.MATMUL:
        return [inputs[0] @ inputs[1]]
    if op == Op.DENSE:
        return [inputs[0] @ inputs[1] + inputs[2]]
    if op == Op.CONV2D:
        return [_conv2d(inputs[0], inputs[1], inputs[2],
                        int(p[0]), int(p[1]))]
    if op == Op.DWCONV2D:
        return [_dwconv2d(inputs[0], inputs[1], inputs[2],
                          int(p[0]), int(p[1]))]
    if op == Op.RELU:
        return [np.maximum(inputs[0], 0)]
    if op == Op.RELU6:
        return [np.clip(inputs[0], 0, 6)]
    if op == Op.LEAKY_RELU:
        slope = np.float32(p[0] if p else 0.1)
        return [np.where(inputs[0] > 0, inputs[0], inputs[0] * slope)]
    if op == Op.SIGMOID:
        return [(1.0 / (1.0 + np.exp(-inputs[0]))).astype(np.float32)]
    if op == Op.TANH:
        return [np.tanh(inputs[0])]
    if op == Op.SOFTMAX:
        return [_softmax(inputs[0])]
    if op == Op.LRN:
        return [_lrn(inputs[0], int(p[0]), p[1], p[2], p[3])]
    if op == Op.BIASADD:
        return [inputs[0] + _channelwise(inputs[0], inputs[1])]
    if op == Op.BATCHNORM:
        scale = _channelwise(inputs[0], inputs[1])
        bias = _channelwise(inputs[0], inputs[2])
        return [inputs[0] * scale + bias]
    if op == Op.MAXPOOL:
        return [_pool(inputs[0], int(p[0]), int(p[1]), "max")]
    if op == Op.AVGPOOL:
        return [_pool(inputs[0], int(p[0]), int(p[1]), "avg")]
    if op == Op.GLOBALAVGPOOL:
        return [inputs[0].mean(axis=(1, 2), dtype=np.float32)]
    if op == Op.PAD:
        pad = int(p[0])
        return [np.pad(inputs[0], ((0, 0), (pad, pad), (pad, pad)))]
    if op == Op.CONCAT:
        return [np.concatenate(list(inputs), axis=0)]
    if op == Op.UPSAMPLE2X:
        return [inputs[0].repeat(2, axis=1).repeat(2, axis=2)]
    if op == Op.SOFTMAX_XENT_GRAD:
        logits, onehot = inputs[0], inputs[1]
        probs = _softmax(logits)
        batch = logits.shape[0] if logits.ndim > 1 else 1
        dlogits = ((probs - onehot) / batch).astype(np.float32)
        loss = -(onehot * np.log(probs + 1e-12)).sum() / batch
        return [dlogits, np.array([loss], dtype=np.float32)]
    if op == Op.DENSE_GRAD_W:
        return [inputs[0].T @ inputs[1]]
    if op == Op.DENSE_GRAD_X:
        return [inputs[0] @ inputs[1].T]
    if op == Op.DENSE_GRAD_B:
        return [inputs[0].sum(axis=0)]
    if op == Op.RELU_GRAD:
        return [inputs[1] * (inputs[0] > 0)]
    if op == Op.SGD_UPDATE:
        return [inputs[0] - np.float32(p[0]) * inputs[1]]
    raise ShaderDecodeError(f"unimplemented opcode {op!r}")


def compute_fill(shape: Tuple[int, ...],
                 params: Tuple[float, ...]) -> np.ndarray:
    return np.full(shape, params[0] if params else 0.0, dtype=np.float32)


# --------------------------------------------------------------------------
# MMU-backed execution (the shader cores).
# --------------------------------------------------------------------------


def _load(mmu: GpuMmu, ref: TensorRef) -> np.ndarray:
    raw = mmu.read_va(ref.va, ref.nbytes, access="r")
    return np.frombuffer(raw, dtype=np.float32).reshape(ref.shape).copy()


def _store(mmu: GpuMmu, ref: TensorRef, value: np.ndarray) -> None:
    value = np.ascontiguousarray(value, dtype=np.float32)
    if value.size != ref.elements:
        raise ShaderDecodeError(
            f"{value.size} elements computed for output of {ref.elements}")
    mmu.write_va(ref.va, value.tobytes())


def execute_instruction(instr: Instruction, mmu: GpuMmu) -> None:
    """Execute one shader instruction against GPU memory."""
    n_out = output_arity(instr.op)
    in_refs = instr.operands[:-n_out]
    out_refs = instr.operands[-n_out:]
    if instr.op == Op.FILL:
        results = [compute_fill(out_refs[0].shape, instr.params)]
    else:
        inputs = [_load(mmu, ref) for ref in in_refs]
        results = compute_op(instr.op, inputs, instr.params)
    if len(results) != len(out_refs):
        raise ShaderDecodeError(
            f"{instr.op.name}: {len(results)} results for "
            f"{len(out_refs)} output operands")
    for ref, value in zip(out_refs, results):
        _store(mmu, ref, value)


def execute_program(program: Program, mmu: GpuMmu) -> int:
    """Run a whole program; returns the number of instructions executed."""
    for instr in program.instructions:
        execute_instruction(instr, mmu)
    return len(program.instructions)


# --------------------------------------------------------------------------
# Mega-batch execution: N identical job chains as one pass.
# --------------------------------------------------------------------------
#
# The batch dimension never lives in GPU memory. Member 0 of the batch
# executes exactly like an unbatched replay (loads and stores go through
# the MMU, so the post-replay machine state equals a solo replay of the
# head request), while members 1..N-1 live only in a :class:`BatchEnv`
# overlay keyed by exact VA. An instruction whose inputs are all
# batch-independent runs unbatched once — its result is identical for
# every member by construction. Anything that only *partially* overlaps
# a batched tensor raises :class:`MegaBatchDivergence`, and the caller
# falls back to per-request replay.

# Ops whose semantics are elementwise over operands of one logical
# shape: stacking members along a leading axis and evaluating once is
# bitwise identical per slice (no reductions, no axis-sensitive
# broadcast). Everything else is evaluated per member via
# :func:`compute_op` and stacked, which is trivially bitwise identical.
_ELEMENTWISE_OPS = frozenset({
    Op.COPY, Op.ADD, Op.SUB, Op.MUL, Op.SCALE, Op.RELU, Op.RELU6,
    Op.LEAKY_RELU, Op.SIGMOID, Op.TANH, Op.SELECT, Op.RELU_GRAD,
    Op.SGD_UPDATE,
})


class BatchEnv:
    """Per-member tensor overlay for a fused mega-batch replay.

    Maps VA -> a ``(n, elements)`` float32 array holding every member's
    value for the tensor that an unbatched replay would keep at that
    VA. Entries are keyed by *exact* (va, nbytes); any partial overlap
    is a divergence, because byte-level aliasing cannot be represented
    along the batch axis.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ShaderDecodeError(f"batch of {n} members")
        self.n = n
        self._values: dict = {}   # va -> (n, elements) float32, C-contiguous
        self._sizes: dict = {}    # va -> nbytes

    def __len__(self) -> int:
        return len(self._values)

    def seed(self, va: int, stacked: np.ndarray) -> None:
        """Install a batched tensor (shape ``(n, ...)``) at ``va``."""
        flat = np.ascontiguousarray(stacked, dtype=np.float32)
        flat = flat.reshape(self.n, -1)
        self._check_overlap(va, flat.shape[1] * 4)
        self._values[va] = flat
        self._sizes[va] = flat.shape[1] * 4

    def overlap(self, va: int, nbytes: int) -> str:
        """Classify [va, va+nbytes) against the overlay: exact/none/partial."""
        size = self._sizes.get(va)
        if size == nbytes:
            return "exact"
        for other_va, other_size in self._sizes.items():
            if va < other_va + other_size and other_va < va + nbytes:
                return "partial"
        return "none"

    def _check_overlap(self, va: int, nbytes: int) -> None:
        if self.overlap(va, nbytes) == "partial":
            raise MegaBatchDivergence(
                f"range {va:#x}+{nbytes} partially overlaps a batched "
                f"tensor")

    def get(self, ref: TensorRef) -> np.ndarray:
        """The batched value for ``ref``, shaped ``(n, *ref.shape)``."""
        return self._values[ref.va].reshape((self.n,) + tuple(ref.shape))

    def put(self, ref: TensorRef, stacked: np.ndarray) -> None:
        self._check_overlap(ref.va, ref.nbytes)
        flat = np.ascontiguousarray(stacked, dtype=np.float32)
        flat = flat.reshape(self.n, -1)
        if flat.shape[1] != ref.elements:
            raise ShaderDecodeError(
                f"{flat.shape[1]} elements computed for output of "
                f"{ref.elements}")
        self._values[ref.va] = flat
        self._sizes[ref.va] = ref.nbytes

    def forget(self, va: int, nbytes: int) -> None:
        """Drop an entry an unbatched write just made batch-independent."""
        self._check_overlap(va, nbytes)
        self._values.pop(va, None)
        self._sizes.pop(va, None)

    def fetch(self, va: int, nbytes: int):
        """The raw ``(n, elements)`` array at (va, nbytes), or None."""
        kind = self.overlap(va, nbytes)
        if kind == "partial":
            raise MegaBatchDivergence(
                f"range {va:#x}+{nbytes} partially overlaps a batched "
                f"tensor")
        return self._values.get(va) if kind == "exact" else None


def compute_op_batched(op: Op, inputs: Sequence[np.ndarray],
                       batched: Sequence[bool], params: Tuple[float, ...],
                       n: int) -> List[np.ndarray]:
    """Semantics of one opcode over a batch of ``n`` member inputs.

    ``inputs[i]`` is ``(n, ...)``-stacked when ``batched[i]``, otherwise
    the shared unbatched array. Returns ``(n, ...)``-stacked outputs
    whose per-member slices are bitwise identical to ``n`` separate
    :func:`compute_op` calls.
    """
    if op in _ELEMENTWISE_OPS and all(batched):
        # Equal-shape elementwise math broadcasts over the leading batch
        # axis without changing any per-element computation.
        return [r for r in compute_op(op, inputs, params)]
    outs: List[List[np.ndarray]] = []
    for k in range(n):
        member = [x[k] if b else x for x, b in zip(inputs, batched)]
        outs.append(compute_op(op, member, params))
    return [np.stack([m[j] for m in outs])
            for j in range(len(outs[0]))]


def execute_instruction_batched(instr: Instruction, mmu: GpuMmu,
                                env: BatchEnv) -> None:
    """Execute one instruction for every batch member at once.

    Member 0 is stored through the MMU (keeping machine state equal to
    a solo head replay); members 1..n-1 land in ``env``.
    """
    n_out = output_arity(instr.op)
    in_refs = instr.operands[:-n_out]
    out_refs = instr.operands[-n_out:]
    batched = [env.overlap(ref.va, ref.nbytes) == "exact" for ref in in_refs]
    for ref in in_refs:
        if env.overlap(ref.va, ref.nbytes) == "partial":
            raise MegaBatchDivergence(
                f"{instr.op.name} input at {ref.va:#x} partially overlaps "
                f"a batched tensor")
    if instr.op == Op.FILL or not any(batched):
        # Batch-independent: one unbatched execution is correct for all
        # members. Its outputs supersede any stale batched value.
        for ref in out_refs:
            env.forget(ref.va, ref.nbytes)
        execute_instruction(instr, mmu)
        return
    inputs = [env.get(ref) if hit else _load(mmu, ref)
              for ref, hit in zip(in_refs, batched)]
    results = compute_op_batched(instr.op, inputs, batched, instr.params,
                                 env.n)
    if len(results) != len(out_refs):
        raise ShaderDecodeError(
            f"{instr.op.name}: {len(results)} results for "
            f"{len(out_refs)} output operands")
    for ref, value in zip(out_refs, results):
        env.put(ref, value)
        _store(mmu, ref, value[0])


def execute_program_batched(program: Program, mmu: GpuMmu,
                            env: BatchEnv) -> int:
    """Run a whole program for every batch member; returns instruction
    count (chain length, not multiplied by the batch size)."""
    for instr in program.instructions:
        execute_instruction_batched(instr, mmu, env)
    return len(program.instructions)
