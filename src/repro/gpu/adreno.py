"""The Qualcomm-Adreno-like GPU (Table 1, row 5).

A third CPU/GPU interface style, rounding out the paper's GPU-model
claim ("our GPU model fits popular integrated GPUs"):

- jobs are submitted through a **ring buffer** in GPU memory: the
  driver appends fixed-size packets and rings a doorbell by writing
  the CP write pointer (``CP_RB_WPTR``); the command processor
  consumes packets and advances ``CP_RB_RPTR``;
- the SMMU page tables use yet another PTE layout
  (:class:`~repro.gpu.mmu.AdrenoPteFormat`), programmed through
  TTBR0/CR0 with explicit TLB invalidation;
- synchronous submission is enforced the way Table 1 notes for
  Adreno: "check submitted job completion before a new command
  flush" -- the driver waits for RPTR to catch up before appending.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import (GpuPageFault, JobDecodeError,
                          ShaderDecodeError)
from repro.gpu.device import GpuDevice, RunningJob
from repro.gpu.isa import decode_program
from repro.gpu.mmu import PTE_FORMATS
from repro.soc.machine import Machine
from repro.soc.mmio import RegAttr, RegisterDef
from repro.units import US

# RBBM_INT_0_STATUS bits.
INT_CP_DONE = 1 << 0
INT_RBBM_ERROR = 1 << 1
INT_SMMU_FAULT = 1 << 2

# SMMU_CR0 bits.
SMMU_ENABLE = 1 << 0

# UCHE_CACHE_FLUSH bits (hardware clears when the flush retires).
UCHE_FLUSH = 1 << 0

ADRENO_GPU_ID = 0x0604_0001  # Adreno 640-class
ADRENO_CORE_COUNT = 2
ADRENO_CLOCK_HZ = 585_000_000

#: Ring packets: magic, shader size, shader VA.
RING_PKT = struct.Struct("<IIQ")
RING_PKT_MAGIC = 0x37544B50  # "PKT7"

RESET_DELAY_NS = 60 * US
PWRON_DELAY_NS = 35 * US
FLUSH_DELAY_NS = 20 * US


def _adreno_registers() -> List[RegisterDef]:
    rw, ro = RegAttr.rw(), RegAttr.ro()
    trig = RegAttr.WRITABLE | RegAttr.WRITE_TRIGGER
    rw_trig = RegAttr.rw() | RegAttr.WRITE_TRIGGER
    vol = RegAttr.READABLE | RegAttr.VOLATILE
    return [
        RegisterDef("RBBM_GPU_ID", 0x000, ro),
        RegisterDef("RBBM_STATUS", 0x004, ro, doc="bit0: GPU busy"),
        RegisterDef("RBBM_SW_RESET_CMD", 0x008, trig),
        RegisterDef("RBBM_RESET_STATUS", 0x00C, ro,
                    doc="1 once a reset has retired"),
        RegisterDef("RBBM_INT_0_STATUS", 0x010, ro),
        RegisterDef("RBBM_INT_CLEAR_CMD", 0x014, trig),
        RegisterDef("RBBM_INT_0_MASK", 0x018, rw),
        RegisterDef("RBBM_PERFCTR_CP", 0x01C, vol),
        RegisterDef("GDSC_PWR_CTRL", 0x020, trig, doc="GPU rail on/off"),
        RegisterDef("GDSC_PWR_STATUS", 0x024, ro),
        RegisterDef("SPTP_PWR_CTRL", 0x028, trig,
                    doc="shader/tex cluster power"),
        RegisterDef("SPTP_PWR_STATUS", 0x02C, ro),
        RegisterDef("SMMU_TTBR0_LO", 0x030, rw),
        RegisterDef("SMMU_TTBR0_HI", 0x034, rw),
        RegisterDef("SMMU_CR0", 0x038, rw_trig),
        RegisterDef("SMMU_TLBIALL", 0x03C, trig),
        RegisterDef("SMMU_FSR", 0x040, ro, doc="fault status"),
        RegisterDef("SMMU_FAR_LO", 0x044, ro, doc="fault address"),
        RegisterDef("CP_RB_BASE_LO", 0x050, rw),
        RegisterDef("CP_RB_BASE_HI", 0x054, rw),
        RegisterDef("CP_RB_SIZE", 0x058, rw),
        RegisterDef("CP_RB_RPTR", 0x05C, ro,
                    doc="CP consume offset (bytes)"),
        RegisterDef("CP_RB_WPTR", 0x060, rw_trig,
                    doc="driver produce offset; writing is the doorbell"),
        RegisterDef("UCHE_CACHE_FLUSH", 0x064, rw_trig,
                    doc="bit0: flush; hardware clears when done"),
    ]


@dataclass
class _RingEntry:
    offset: int
    shader_va: int
    shader_size: int


class AdrenoGpu(GpuDevice):
    """The Adreno device model."""

    family = "adreno"

    def __init__(self, machine: Machine):
        super().__init__(
            machine, "adreno-640", _adreno_registers(),
            core_count=ADRENO_CORE_COUNT, clock_hz=ADRENO_CLOCK_HZ,
            pte_format=PTE_FORMATS["adreno-smmu"], max_active_jobs=2)
        self._hw_active: Optional[RunningJob] = None
        self._hw_pending: List[RunningJob] = []
        self._wire_registers()

    # -- wiring ------------------------------------------------------------------

    def _wire_registers(self) -> None:
        regs = self.regs
        regs.poke("RBBM_GPU_ID", ADRENO_GPU_ID)
        regs.set_write_handler("RBBM_SW_RESET_CMD", self._on_reset)
        regs.set_write_handler("RBBM_INT_CLEAR_CMD", self._on_int_clear)
        regs.set_write_handler("RBBM_INT_0_MASK",
                               lambda _o, _v: self.update_irq_line())
        regs.set_write_handler("GDSC_PWR_CTRL", self._on_gdsc)
        regs.set_write_handler("SPTP_PWR_CTRL", self._on_sptp)
        regs.set_write_handler("SMMU_CR0", self._on_smmu_cr0)
        regs.set_write_handler("SMMU_TLBIALL",
                               lambda _o, _v: self.mmu.flush_tlb())
        regs.set_write_handler("CP_RB_WPTR", self._on_doorbell)
        regs.set_write_handler("CP_RB_BASE_LO", self._on_rb_base)
        regs.set_write_handler("UCHE_CACHE_FLUSH", self._on_uche_flush)
        regs.set_read_handler("RBBM_STATUS",
                              lambda _v: 1 if self.busy else 0)
        regs.set_read_handler(
            "RBBM_PERFCTR_CP",
            lambda _v: (self.machine.clock.now() * self.clock_hz
                        // 1_000_000_000) & 0xFFFFFFFF)

    # -- interrupts ------------------------------------------------------------------

    def _irq_pending_level(self) -> bool:
        return bool(self.regs.peek("RBBM_INT_0_STATUS")
                    & self.regs.peek("RBBM_INT_0_MASK"))

    def _assert_int(self, bits: int) -> None:
        self.regs.poke("RBBM_INT_0_STATUS",
                       self.regs.peek("RBBM_INT_0_STATUS") | bits)
        self.update_irq_line()

    def _on_int_clear(self, _old: int, value: int) -> None:
        self.regs.poke("RBBM_INT_0_STATUS",
                       self.regs.peek("RBBM_INT_0_STATUS") & ~value)
        self.update_irq_line()

    # -- power / reset -----------------------------------------------------------------

    def _on_gdsc(self, _old: int, value: int) -> None:
        if value & 1:
            self._schedule(self._jitter(PWRON_DELAY_NS),
                           lambda: self.regs.poke("GDSC_PWR_STATUS", 1),
                           "gdsc-on")
        else:
            self.regs.poke("GDSC_PWR_STATUS", 0)

    def _on_sptp(self, _old: int, value: int) -> None:
        if value & 1:
            self._schedule(self._jitter(PWRON_DELAY_NS),
                           lambda: self.regs.poke("SPTP_PWR_STATUS", 1),
                           "sptp-on")
        else:
            self.regs.poke("SPTP_PWR_STATUS", 0)

    def _on_reset(self, _old: int, _value: int) -> None:
        self._cancel_pending()
        self.note_job_retired(self._hw_active)
        self._hw_active = None
        for queued in self._hw_pending:
            self.note_job_retired(queued)
        self._hw_pending.clear()
        self.regs.poke("RBBM_INT_0_STATUS", 0)
        self.regs.poke("RBBM_RESET_STATUS", 0)
        self.regs.poke("CP_RB_RPTR", 0)
        self.regs.poke("CP_RB_WPTR", 0)
        self.regs.poke("SMMU_FSR", 0)
        self.regs.poke("GDSC_PWR_STATUS", 0)
        self.regs.poke("SPTP_PWR_STATUS", 0)
        self.mmu.set_base(0)
        self.regs.poke("SMMU_CR0", 0)
        self._busy_count = 0
        self._enter_busy()
        self.update_irq_line()

        def complete() -> None:
            self._exit_busy()
            self.regs.poke("RBBM_RESET_STATUS", 1)

        self._schedule(self._jitter(RESET_DELAY_NS), complete,
                       "adreno-reset")

    def _on_uche_flush(self, _old: int, value: int) -> None:
        if not value & UCHE_FLUSH:
            return
        self._enter_busy()

        def complete() -> None:
            self._exit_busy()
            self.regs.poke("UCHE_CACHE_FLUSH",
                           self.regs.peek("UCHE_CACHE_FLUSH")
                           & ~UCHE_FLUSH)

        self._schedule(self._jitter(FLUSH_DELAY_NS), complete,
                       "uche-flush")

    # -- SMMU ------------------------------------------------------------------------------

    def _on_smmu_cr0(self, _old: int, value: int) -> None:
        if value & SMMU_ENABLE:
            base = ((self.regs.peek("SMMU_TTBR0_HI") << 32)
                    | self.regs.peek("SMMU_TTBR0_LO")) & ~0xFFF
            self.mmu.set_base(base)
        else:
            self.mmu.set_base(0)

    def _on_rb_base(self, _old: int, _value: int) -> None:
        """Re-programming the ring base rewinds both pointers."""
        self.regs.poke("CP_RB_RPTR", 0)
        self.regs.poke("CP_RB_WPTR", 0)

    def _raise_smmu_fault(self, va: int) -> None:
        self.regs.poke("SMMU_FSR", 1)
        self.regs.poke("SMMU_FAR_LO", va & 0xFFFFFFFF)
        self._assert_int(INT_SMMU_FAULT)

    # -- ring-buffer command processor -------------------------------------------------------

    def _ring_base(self) -> int:
        return ((self.regs.peek("CP_RB_BASE_HI") << 32)
                | self.regs.peek("CP_RB_BASE_LO"))

    def _on_doorbell(self, _old: int, wptr: int) -> None:
        """Consume ring packets from RPTR up to the new WPTR."""
        if not self.regs.peek("GDSC_PWR_STATUS") or \
                not self.regs.peek("SPTP_PWR_STATUS"):
            self._assert_int(INT_RBBM_ERROR)
            return
        size = self.regs.peek("CP_RB_SIZE")
        base = self._ring_base()
        rptr = self.regs.peek("CP_RB_RPTR")
        if size == 0 or wptr % RING_PKT.size or wptr > size:
            self._assert_int(INT_RBBM_ERROR)
            return
        offset = rptr
        # Account for packets already queued but not yet retired.
        for job in [self._hw_active] + self._hw_pending:
            if job is not None:
                offset = max(offset, job.chain_va + RING_PKT.size)
        while offset < wptr:
            try:
                raw = self.mmu.read_va(base + offset, RING_PKT.size,
                                       access="x")
                magic, blob_size, shader_va = RING_PKT.unpack(raw)
                if magic != RING_PKT_MAGIC:
                    raise JobDecodeError(f"bad ring magic {magic:#x}")
                program = decode_program(
                    self.mmu.read_va(shader_va, blob_size, access="x"))
            except GpuPageFault as fault:
                self._raise_smmu_fault(fault.va)
                return
            except (JobDecodeError, ShaderDecodeError):
                self._assert_int(INT_RBBM_ERROR)
                return
            job = RunningJob(0, offset, [program], None,
                             self.core_count)
            self._enter_busy()
            # Strict ring order: a packet may only start when nothing
            # is active *and* nothing older waits in the queue.
            if self._hw_active is None and not self._hw_pending:
                self._begin_execution(job)
            else:
                self._hw_pending.append(job)
            offset += RING_PKT.size

    def _begin_execution(self, job: RunningJob) -> None:
        duration = sum(
            self.perf.job_duration_ns(p, job.active_cores,
                                      self.clock_domain,
                                      self.machine.interference)
            for p in job.programs)
        self._hw_active = job
        self.note_job_executing(job)
        job.completion = self._schedule(
            self._jitter(duration), lambda: self._retire(job),
            "adreno-pkt")

    def _retire(self, job: RunningJob) -> None:
        self._hw_active = None
        self.note_job_retired(job)
        try:
            self._run_job_programs(job)
        except GpuPageFault as fault:
            self._exit_busy()
            self._hw_pending.clear()
            self._raise_smmu_fault(fault.va)
            return
        self._exit_busy()
        self.regs.poke("CP_RB_RPTR", job.chain_va + RING_PKT.size)
        self._assert_int(INT_CP_DONE)
        if self._hw_pending:
            self._begin_execution(self._hw_pending.pop(0))

    # -- fault injection -----------------------------------------------------------------------

    def offline_cores(self, mask: int) -> None:
        self.offline_core_mask |= mask
        self.regs.poke("SPTP_PWR_STATUS", 0)
        job = self._hw_active
        if job is not None and job.completion is not None:
            job.completion.cancel()
            self._hw_active = None
            self._hw_pending.clear()
            self.note_job_retired(job)
            self._exit_busy()
            self._assert_int(INT_RBBM_ERROR)

    def restore_cores(self) -> None:
        self.offline_core_mask = 0
