"""Time and size unit helpers used across the simulation.

All simulated time is integer nanoseconds on the virtual clock; all
simulated sizes are bytes. These constants keep call sites readable
(``clock.advance(5 * MS)``) without floating-point drift.
"""

from __future__ import annotations

# Time units (nanoseconds).
NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

# Size units (bytes).
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024


def fmt_ns(ns: int) -> str:
    """Render a nanosecond duration as a human-readable string."""
    if ns >= SEC:
        return f"{ns / SEC:.3f} s"
    if ns >= MS:
        return f"{ns / MS:.3f} ms"
    if ns >= US:
        return f"{ns / US:.3f} us"
    return f"{ns} ns"


def fmt_bytes(n: int) -> str:
    """Render a byte count as a human-readable string."""
    if n >= GIB:
        return f"{n / GIB:.2f} GiB"
    if n >= MIB:
        return f"{n / MIB:.2f} MiB"
    if n >= KIB:
        return f"{n / KIB:.2f} KiB"
    return f"{n} B"


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)
