"""Queue-depth autoscaling for one node's per-family worker pools.

The scaler piggybacks on the fleet's event-drain loop exactly like the
time-series collector does (:mod:`repro.obs.timeseries`): the fleet
calls :meth:`PoolAutoscaler.maybe_scale` after every event, and the
scaler acts at most once per ``interval_ns`` of virtual time. A
self-rescheduling clock event would keep the drain loop alive forever;
piggybacking keeps evaluation deterministic (the event sequence is
deterministic, so the evaluation points are too) and terminates with
the workload.

Scale-up is provisioned, not instant: a new worker joins the pool
``scale_up_ns`` after the decision -- booting a replay machine is not
free, and modeling the delay is what makes the scaling curves in
``BENCH_fleet.json`` honest. Scale-down only retires idle workers
(in-flight batches always complete) and never drops below
``min_workers`` per family.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.obs.session import NULL_OBS
from repro.units import MS


class PoolAutoscaler:
    """Grows and shrinks one :class:`ReplayServer`'s pools from its
    queue depth."""

    def __init__(self, node_id: int, server, families: Sequence[str],
                 clock, *, min_workers: int = 1, max_workers: int = 3,
                 interval_ns: int = 2 * MS, scale_up_ns: int = 5 * MS,
                 backlog_per_worker: int = 2, obs=NULL_OBS):
        self.node_id = node_id
        self.server = server
        self.families = list(families)
        self.clock = clock
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.interval_ns = interval_ns
        self.scale_up_ns = scale_up_ns
        #: Pending requests per (live + provisioning) worker above
        #: which the pool grows.
        self.backlog_per_worker = backlog_per_worker
        self.obs = obs
        self._next_ns = interval_ns
        #: family -> workers decided on but not yet booted.
        self._provisioning: Dict[str, int] = {f: 0 for f in families}
        #: family -> largest pool size ever reached (incl. in-flight
        #: provisioning) -- the bench's capacity signal.
        self.peak: Dict[str, int] = {
            f: len(server.workers_for(f)) for f in families}
        #: Append-only scale event log (JSON-able dicts).
        self.events: List[Dict[str, object]] = []

    def maybe_scale(self, now: int) -> None:
        """Evaluate at most once per interval; called by the fleet
        after every drained event."""
        if now < self._next_ns:
            return
        while self._next_ns <= now:
            self._next_ns += self.interval_ns
        self._evaluate(now)

    def _evaluate(self, now: int) -> None:
        for family in self.families:
            live = len(self.server.workers_for(family))
            total = live + self._provisioning[family]
            pending = self.server.pending_count(family)
            if pending > self.backlog_per_worker * total \
                    and total < self.max_workers:
                self._provisioning[family] += 1
                self.peak[family] = max(self.peak[family], total + 1)
                self.obs.counter("fleet.autoscale.up").inc()
                self.events.append({
                    "t_ns": now, "node": self.node_id,
                    "family": family, "action": "up",
                    "workers": total + 1, "pending": pending})
                self.clock.schedule(
                    self.scale_up_ns,
                    lambda f=family: self._provisioned(f))
            elif total > self.min_workers \
                    and self._provisioning[family] == 0 \
                    and self.server.outstanding_count(family) == 0:
                # Outstanding (not merely pending) must be zero: a
                # request in a backoff window re-enters the queue
                # expecting workers it has not tried yet.
                self._retire_one(family, now)

    def _provisioned(self, family: str) -> None:
        self._provisioning[family] -= 1
        self.server.add_worker(family)

    def _retire_one(self, family: str, now: int) -> bool:
        live = self.server.workers_for(family)
        idle = [w for w in live if not w.busy]
        if not idle or not self.server.retire_worker(idle[-1]):
            return False
        self.obs.counter("fleet.autoscale.down").inc()
        self.events.append({
            "t_ns": now, "node": self.node_id, "family": family,
            "action": "down", "workers": len(live) - 1, "pending": 0})
        return True

    def drain(self, now: int) -> None:
        """End of run: every pool drains back to ``min_workers`` (the
        idle-drain half of the autoscaler property tests)."""
        for family in self.families:
            while len(self.server.workers_for(family)) \
                    > self.min_workers:
                if not self._retire_one(family, now):
                    break
