"""Multi-tenant admission: per-tenant in-flight quotas and priority
classes, applied at the router before a request ever reaches a node.

Two rungs sit above the PR 4 node-level failure ladder:

- **Quota**: a tenant with ``quota`` requests already in flight has
  its next request shed (``tenant-quota``) -- one noisy tenant cannot
  starve the fleet. Untenanted requests are never quota-shed.
- **Priority pressure**: best-effort requests (priority 0) are shed
  (``best-effort-pressure``) when every candidate node's queue is at
  or above the best-effort limit; standard (1) and critical (2)
  requests ride the normal ladder. Critical is distinguished from
  standard only by *never* being pressure-shed here -- node-level
  queue bounds still apply to everyone, so a critical flood degrades
  like any other overload instead of bypassing admission entirely.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.obs.session import NULL_OBS


class AdmissionController:
    """Fleet-level admission state; one instance per fleet."""

    def __init__(self, quotas: Optional[Mapping[str, int]] = None,
                 obs=NULL_OBS):
        #: tenant -> max in-flight requests (absent = unlimited).
        self.quotas: Dict[str, int] = dict(quotas or {})
        self.obs = obs
        #: tenant -> requests admitted and not yet answered.
        self.inflight: Dict[str, int] = {}

    def reject_reason(self, request, min_pending: int,
                      best_effort_limit: int) -> Optional[str]:
        """Why this request must be shed at the router, or None.
        ``min_pending`` is the least-loaded candidate node's queue
        depth -- best-effort traffic is only shed when *no* node could
        take it cheaply."""
        if request.tenant:
            cap = self.quotas.get(request.tenant)
            if cap is not None \
                    and self.inflight.get(request.tenant, 0) >= cap:
                return "tenant-quota"
        if request.priority <= 0 and min_pending >= best_effort_limit:
            return "best-effort-pressure"
        return None

    def admit(self, request) -> None:
        if request.tenant:
            self.inflight[request.tenant] = \
                self.inflight.get(request.tenant, 0) + 1

    def release(self, tenant: str) -> None:
        if tenant:
            self.inflight[tenant] -= 1
