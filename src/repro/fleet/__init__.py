"""repro.fleet: a multi-node replay-serving cluster simulated on one
deterministic virtual clock.

Layers (bottom-up):

- :mod:`repro.fleet.router` -- digest-affinity routing with
  power-of-two-choices fallback and an auditable decision log.
- :mod:`repro.fleet.autoscale` -- per-node, per-family worker pools
  scaled from queue depth, with provisioning delay.
- :mod:`repro.fleet.admission` -- per-tenant quotas and priority
  classes above the node failure ladder.
- :mod:`repro.fleet.replication` -- node-local vault misses fetch
  from peer vaults (integrity-checked) before the CPU-degrade rung.
- :mod:`repro.fleet.engine` -- the :class:`Fleet` itself: N
  ``ReplayServer`` nodes sharing one clock and one request tracer.
"""

from repro.fleet.admission import AdmissionController
from repro.fleet.autoscale import PoolAutoscaler
from repro.fleet.engine import (Fleet, FleetConfig, FleetReport,
                                content_key)
from repro.fleet.replication import ReplicatedVaultStore
from repro.fleet.router import DigestRouter

__all__ = [
    "AdmissionController",
    "DigestRouter",
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "PoolAutoscaler",
    "ReplicatedVaultStore",
    "content_key",
]
