"""Vault replication: a node-local store miss fetches from peers
before the CPU-degrade rung.

:class:`ReplicatedVaultStore` extends the serving engine's
``VaultRecordingStore`` with a peer list (the other nodes' vaults, in
deterministic fleet order). When the local ``_ensure`` fails -- index
miss, missing object, or corrupt chunk -- the store walks its peers:
``Vault.replicate_from`` streams the recording's objects through the
full integrity check, so a corrupt *peer* chunk raises mid-fetch and
the walk falls through to the next peer; replication also repairs
locally-damaged objects in place. Only when every peer is exhausted
does the key stay unavailable and the server take the PR 4
CPU-degrade rung (or shed, if even the skeleton is gone).

Every attempt lands in :attr:`replication_log` so the fault-injection
tests can assert exactly which peer served, which were flagged
corrupt, and that the integrity chain (not luck) did the flagging.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import StoreCorruptionError, StoreError
from repro.obs.session import NULL_OBS
from repro.serve.engine import VaultRecordingStore


class ReplicatedVaultStore(VaultRecordingStore):
    """A node's vault-backed store with fetch-from-peer fallback."""

    def __init__(self, vault, mix: List[Tuple[str, str]],
                 board: Optional[str] = None,
                 peers: Sequence = (), obs=NULL_OBS):
        super().__init__(vault, mix, board)
        #: Peer vaults, tried in order on a local miss.
        self.peers = list(peers)
        self.obs = obs
        #: Append-only replication attempt log (JSON-able dicts).
        self.replication_log: List[Dict[str, object]] = []
        self._exhausted: set = set()

    def _ensure(self, family: str, model: str) -> bool:
        if super()._ensure(family, model):
            return True
        key = (family, model)
        if key in self._exhausted or not self.peers:
            return False
        for peer_id, peer in enumerate(self.peers):
            digest = peer.best_for(family, board=self._board,
                                   workload=model)
            if digest is None:
                continue
            try:
                self.vault.replicate_from(peer, digest)
            except StoreCorruptionError as error:
                # The peer's copy is damaged and the integrity chain
                # caught it mid-fetch: log, count, try the next peer.
                self.obs.counter(
                    "fleet.replication.corrupt_chunks").inc()
                self.replication_log.append({
                    "family": family, "model": model, "peer": peer_id,
                    "digest": digest[:12], "outcome": "corrupt-peer",
                    "chunk": error.chunk_digest[:12]})
                continue
            except StoreError:
                self.replication_log.append({
                    "family": family, "model": model, "peer": peer_id,
                    "digest": digest[:12], "outcome": "peer-error"})
                continue
            # Replication succeeded: clear the cached failure so the
            # base-class fetch path retries against the healed vault.
            self.corrupt.pop(key, None)
            self._missing.discard(key)
            if super()._ensure(family, model):
                self.obs.counter(
                    "fleet.replication.peer_fetches").inc()
                self.replication_log.append({
                    "family": family, "model": model, "peer": peer_id,
                    "digest": digest[:12], "outcome": "replicated"})
                return True
        self._exhausted.add(key)
        self.obs.counter("fleet.replication.exhausted").inc()
        self.replication_log.append({
            "family": family, "model": model, "peer": -1,
            "digest": "", "outcome": "exhausted"})
        return False
