"""The simulated fleet: N replay-serving nodes on one virtual clock.

Determinism across nodes comes from sharing *one*
:class:`~repro.soc.clock.VirtualClock`: every arrival, route hop,
batch completion, autoscale provisioning and backoff on every node is
an event in a single totally-ordered queue ((due_ns, seq) ordering),
so a same-seed fleet run replays the exact same interleaving --
routing decisions, scale events and metric snapshots included. There
is no wall clock anywhere; "concurrency" between nodes is just event
interleaving, which is why the differential suite can demand
byte-identical answers from a 3-node fleet and a single server.

Request flow::

    loadgen stream -> Fleet._on_arrival (admission: quotas, priority)
                   -> DigestRouter.route (affinity / power-of-two)
                   -> route_hop_ns later: node ReplayServer.submit
                   -> node ladder (PR 4) -> on_complete hook
                   -> router/admission bookkeeping + fleet.* metrics

The fleet owns a ``fleet.*`` metrics registry; each node keeps its own
``serve.*`` registry, reported per node under a ``node<i>.`` namespace
and merged fleet-wide via :func:`repro.obs.metrics.merge_snapshots`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ReproError
from repro.fleet.admission import AdmissionController
from repro.fleet.autoscale import PoolAutoscaler
from repro.fleet.router import DigestRouter
from repro.obs.metrics import (LATENCY_BUCKETS_NS, merge_snapshots,
                               namespace_snapshot)
from repro.obs.rtrace import NULL_RTRACE, RequestTracer, SCHEMA
from repro.obs.session import Observability
from repro.serve.engine import (RecordingStore, ReplayServer,
                                ServeReport, ServeResponse,
                                ServerConfig)
from repro.serve.loadgen import ServeRequest
from repro.soc.clock import VirtualClock
from repro.units import MS, SEC, US


def content_key(request: ServeRequest) -> str:
    """The router's affinity key: identifies the recording content a
    node must stage for this request (poisoned variants have a
    different digest, hence a different key) without forcing a vault
    fetch at routing time."""
    key = f"{request.family}/{request.model}"
    if request.fault is not None and request.fault.kind == "poison":
        key += "+poison"
    return key


@dataclass(frozen=True)
class FleetConfig:
    """Cluster shape and fleet-level policy knobs. Node-level serving
    knobs mirror :class:`repro.serve.engine.ServerConfig`."""

    nodes: int = 3
    #: Board families every node hosts a worker pool for.
    node_families: Tuple[str, ...] = ("mali", "v3d")
    #: Per-family pool bounds on each node (autoscaler floor/ceiling).
    workers_min: int = 1
    workers_max: int = 3
    seed: int = 2026
    #: Per-node admission queue bound.
    queue_depth: int = 256
    max_batch: int = 4
    worker_attempts: int = 3
    max_retries: int = 1
    prefetch: bool = False
    trace: bool = True
    mega_batch: bool = False
    #: Per-node time-series scraping (off by default: a fleet run
    #: scrapes N registries per interval).
    timeseries: bool = False
    scrape_interval_ns: int = 2 * MS
    gpu_counters: bool = True
    #: Modeled router -> node network hop.
    route_hop_ns: int = 50 * US
    #: Affinity spills to power-of-two-choices when every warm node
    #: has at least this many requests in flight.
    affinity_queue_threshold: int = 8
    #: Autoscaler cadence / provisioning delay / growth trigger.
    autoscale_interval_ns: int = 2 * MS
    scale_up_ns: int = 5 * MS
    backlog_per_worker: int = 2
    #: (tenant, max in-flight) pairs; absent tenants are unlimited.
    quotas: Tuple[Tuple[str, int], ...] = ()
    #: Queue depth at which best-effort (priority 0) traffic sheds;
    #: None = half the node queue bound.
    best_effort_limit: Optional[int] = None

    def node_config(self, node_id: int) -> ServerConfig:
        """The ServerConfig one node boots with (``workers_min``
        workers per hosted family; the autoscaler grows from there).
        Node seeds are deterministic functions of the fleet seed, so
        same-seed fleets build identical machines."""
        families = tuple(family for family in self.node_families
                         for _ in range(self.workers_min))
        return ServerConfig(
            families=families,
            seed=self.seed + 7919 * (node_id + 1),
            queue_depth=self.queue_depth,
            max_batch=self.max_batch,
            worker_attempts=self.worker_attempts,
            max_retries=self.max_retries,
            prefetch=self.prefetch,
            trace=self.trace,
            mega_batch=self.mega_batch,
            timeseries=self.timeseries,
            scrape_interval_ns=self.scrape_interval_ns,
            gpu_counters=self.gpu_counters)


@dataclass
class FleetReport:
    """Everything one fleet run produced."""

    submitted: int
    #: Terminal answers, merged across nodes + router sheds, by rid.
    responses: List[ServeResponse]
    node_reports: List[ServeReport]
    #: The fleet-level registry (``fleet.*`` names).
    snapshot: Dict[str, Dict[str, object]]
    #: Node registries merged name-wise (``serve.*`` totals).
    aggregate: Dict[str, Dict[str, object]]
    #: Per-node registries under ``node<i>.`` prefixes.
    node_snapshots: List[Dict[str, Dict[str, object]]]
    #: The router's decision log, in routing order.
    routing: List[Dict[str, object]]
    #: Every autoscale event fleet-wide, by (t_ns, node, family).
    autoscale: List[Dict[str, object]]
    makespan_ns: int
    #: Submitted rids with no terminal answer anywhere (must be []).
    lost: List[int] = field(default_factory=list)
    #: Rids answered by more than one node (must be []).
    duplicates: List[int] = field(default_factory=list)
    #: Shared request-scoped trace (router + node spans, one tree per
    #: request). NOT part of :meth:`summary`, same contract as
    #: :class:`ServeReport`.
    trace_events: List[dict] = field(default_factory=list, repr=False)

    def counts(self) -> Dict[str, int]:
        out = {"ok": 0, "degraded": 0, "shed": 0}
        for response in self.responses:
            out[response.status] = out.get(response.status, 0) + 1
        return out

    def latency_percentiles(self) -> Dict[str, float]:
        hist = self.snapshot["histograms"].get("fleet.latency_ns")
        if not hist:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {q: hist[q] for q in ("p50", "p95", "p99")}

    def throughput_rps(self) -> float:
        return self.snapshot["gauges"].get("fleet.throughput_rps", 0.0)

    def summary(self) -> Dict[str, object]:
        """Deterministic JSON-able digest of the whole fleet run (the
        determinism tests compare these byte-for-byte)."""
        return {
            "submitted": self.submitted,
            "makespan_ns": self.makespan_ns,
            "counts": self.counts(),
            "lost": list(self.lost),
            "duplicates": list(self.duplicates),
            "snapshot": self.snapshot,
            "aggregate": self.aggregate,
            "nodes": self.node_snapshots,
            "routing": self.routing,
            "autoscale": self.autoscale,
            "responses": [r.summary() for r in self.responses],
        }


class Fleet:
    """One-shot simulated cluster: construct, ``serve(requests)``,
    read the :class:`FleetReport`, ``close()``."""

    def __init__(self,
                 stores: Union[RecordingStore,
                               Sequence[RecordingStore]],
                 config: Optional[FleetConfig] = None):
        self.config = config or FleetConfig()
        cfg = self.config
        if isinstance(stores, RecordingStore):
            stores = [stores] * cfg.nodes
        if len(stores) != cfg.nodes:
            raise ReproError(
                f"need {cfg.nodes} stores, got {len(stores)}")
        self.stores = list(stores)
        self.clock = VirtualClock()
        self.obs = Observability(self.clock)
        #: One shared tracer: routing and node spans land in a single
        #: causal tree per request.
        self.rtrace = (RequestTracer(self.clock)
                       if cfg.trace else NULL_RTRACE)
        self.servers: List[ReplayServer] = []
        self.autoscalers: List[PoolAutoscaler] = []
        for node_id in range(cfg.nodes):
            server = ReplayServer(self.stores[node_id],
                                  cfg.node_config(node_id),
                                  clock=self.clock,
                                  rtrace=self.rtrace)
            server.on_complete = (
                lambda response, n=node_id:
                self._on_node_complete(n, response))
            self.servers.append(server)
            self.autoscalers.append(PoolAutoscaler(
                node_id, server, cfg.node_families, self.clock,
                min_workers=cfg.workers_min,
                max_workers=cfg.workers_max,
                interval_ns=cfg.autoscale_interval_ns,
                scale_up_ns=cfg.scale_up_ns,
                backlog_per_worker=cfg.backlog_per_worker,
                obs=self.obs))
        self.router = DigestRouter(
            cfg.nodes, queue_threshold=cfg.affinity_queue_threshold,
            seed=cfg.seed, obs=self.obs)
        self.admission = AdmissionController(dict(cfg.quotas),
                                             obs=self.obs)
        #: Router-level sheds (quota / priority); node answers live in
        #: the node servers until finalize.
        self._responses: Dict[int, ServeResponse] = {}
        self._tenant_of: Dict[int, str] = {}
        self._submitted: List[ServeRequest] = []
        self._served = False
        self.obs.gauge("fleet.nodes").set(cfg.nodes)

    # -- public API ---------------------------------------------------------

    def serve(self, requests: List[ServeRequest]) -> FleetReport:
        """Run the whole stream to completion on the shared timeline."""
        if self._served:
            raise ReproError("Fleet.serve is one-shot; build a new "
                             "fleet")
        self._served = True
        cfg = self.config
        ordered = sorted(requests, key=lambda r: (r.arrival_ns, r.rid))
        self._submitted = ordered
        self.rtrace.meta("fleet", args={
            "schema": SCHEMA, "nodes": cfg.nodes,
            "requests": len(ordered), "seed": cfg.seed,
            "families": list(cfg.node_families),
            "workers_min": cfg.workers_min,
            "workers_max": cfg.workers_max})
        for request in ordered:
            self.clock.schedule(request.arrival_ns,
                                lambda r=request: self._on_arrival(r))
        # Autoscalers and per-node scrapes piggyback on the drain loop
        # (see repro.fleet.autoscale for why they are not clock
        # events of their own).
        while self.clock.advance_to_next_event():
            now = self.clock.now()
            for scaler in self.autoscalers:
                scaler.maybe_scale(now)
            for server in self.servers:
                if server.timeseries is not None:
                    server.timeseries.maybe_scrape(now)
        now = self.clock.now()
        for scaler in self.autoscalers:
            scaler.drain(now)
        node_reports = [server.finish() for server in self.servers]
        return self._finalize(node_reports)

    def close(self) -> None:
        for server in self.servers:
            server.close()

    # -- admission + routing ------------------------------------------------

    def _best_effort_limit(self) -> int:
        if self.config.best_effort_limit is not None:
            return self.config.best_effort_limit
        return self.config.queue_depth // 2

    def _on_arrival(self, request: ServeRequest) -> None:
        cfg = self.config
        self.obs.counter("fleet.requests.submitted").inc()
        candidates = list(range(cfg.nodes))
        min_pending = min(s.pending_count() for s in self.servers)
        reason = self.admission.reject_reason(
            request, min_pending, self._best_effort_limit())
        if reason is not None:
            self._shed_at_router(request, reason)
            return
        node = self.router.route(request.rid, content_key(request),
                                 candidates)
        self.admission.admit(request)
        self._tenant_of[request.rid] = request.tenant
        self.obs.counter("fleet.router.hops").inc()
        self.clock.schedule(
            cfg.route_hop_ns,
            lambda: self.servers[node].submit(request))

    def _shed_at_router(self, request: ServeRequest,
                        reason: str) -> None:
        rid = request.rid
        now = self.clock.now()
        self.rtrace.submit(rid, args={
            "family": request.family, "model": request.model,
            "deadline_ns": request.deadline_ns,
            "fault": request.fault.kind if request.fault else ""})
        self.rtrace.finish(rid, "shed", args={"reason": reason})
        if reason == "tenant-quota":
            self.obs.counter("fleet.admission.quota_shed").inc()
        else:
            self.obs.counter("fleet.admission.priority_shed").inc()
        self.obs.counter("fleet.requests.shed").inc()
        self.obs.histogram("fleet.latency_ns",
                           LATENCY_BUCKETS_NS).observe(0)
        self._responses[rid] = ServeResponse(
            rid=rid, status="shed", path="",
            family=request.family, model=request.model,
            input_seed=request.input_seed, worker=-1,
            arrival_ns=request.arrival_ns, completed_ns=now,
            attempts=0, retries=0, batch_size=0,
            fault=request.fault.kind if request.fault else "",
            shed_reason=reason)

    def _on_node_complete(self, node_id: int,
                          response: ServeResponse) -> None:
        self.router.note_done(node_id)
        tenant = self._tenant_of.pop(response.rid, "")
        if tenant:
            self.admission.release(tenant)
        self.obs.counter(f"fleet.requests.{response.status}").inc()
        self.obs.histogram("fleet.latency_ns",
                           LATENCY_BUCKETS_NS).observe(
            response.latency_ns)

    # -- finalize -----------------------------------------------------------

    def _finalize(self, node_reports: List[ServeReport]
                  ) -> FleetReport:
        responses = dict(self._responses)
        duplicates: List[int] = []
        for report in node_reports:
            for response in report.responses:
                if response.rid in responses:
                    duplicates.append(response.rid)
                responses[response.rid] = response
        lost = sorted(r.rid for r in self._submitted
                      if r.rid not in responses)
        makespan = self.clock.now()
        served = sum(1 for r in responses.values()
                     if r.status in ("ok", "degraded"))
        self.obs.gauge("fleet.makespan_ns").set(makespan)
        self.obs.gauge("fleet.throughput_rps").set(
            served * SEC / makespan if makespan else 0.0)
        self.obs.gauge("fleet.workers").set(
            sum(len(s.workers) for s in self.servers))
        self.obs.gauge("fleet.workers.peak").set(
            sum(sum(scaler.peak.values())
                for scaler in self.autoscalers))
        autoscale = sorted(
            (event for scaler in self.autoscalers
             for event in scaler.events),
            key=lambda e: (e["t_ns"], e["node"], e["family"]))
        return FleetReport(
            submitted=len(self._submitted),
            responses=[responses[rid] for rid in sorted(responses)],
            node_reports=node_reports,
            snapshot=self.obs.snapshot(),
            aggregate=merge_snapshots(
                [r.snapshot for r in node_reports]),
            node_snapshots=[
                namespace_snapshot(f"node{i}", r.snapshot)
                for i, r in enumerate(node_reports)],
            routing=[dict(d) for d in self.router.decisions],
            autoscale=autoscale,
            makespan_ns=makespan,
            lost=lost,
            duplicates=sorted(set(duplicates)),
            trace_events=list(self.rtrace.events))
