"""Digest-affinity routing with power-of-two-choices fallback.

The router keys on a request's *content key* -- the (family, model)
pair plus its poison marker, which identifies the recording digest a
node would have to stage without forcing a vault fetch at routing
time. Traffic for content a node has already served lands on that node
again (its workers' load caches and its vault are warm); when every
warm node is at or over its queue threshold the router falls back to
power-of-two-choices over all candidates, which keeps the spill
load-balanced without global state.

Every decision is appended to :attr:`DigestRouter.decisions` with the
pre-route in-flight snapshot and the warm set, so the affinity
invariant ("never route to a cold node while a warm one is under its
threshold") is checkable from the log alone -- the property tests and
the determinism tests both key on this.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence

from repro.obs.session import NULL_OBS


class DigestRouter:
    """Routes requests to nodes; one instance per fleet."""

    def __init__(self, nodes: int, queue_threshold: int = 8,
                 seed: int = 2026, obs=NULL_OBS):
        if nodes <= 0:
            raise ValueError("router needs at least one node")
        self.nodes = nodes
        #: A warm node at or above this many in-flight requests is
        #: considered overloaded; affinity spills to power-of-two.
        self.queue_threshold = queue_threshold
        self.obs = obs
        self._rng = random.Random(seed)
        #: Requests routed to each node and not yet completed.
        self.inflight: List[int] = [0] * nodes
        #: Per-node set of content keys the node has been sent before.
        self._warm: List[set] = [set() for _ in range(nodes)]
        #: Append-only decision log (JSON-able dicts).
        self.decisions: List[Dict[str, object]] = []

    def warm_nodes(self, key: str) -> List[int]:
        return [n for n in range(self.nodes) if key in self._warm[n]]

    def route(self, rid: int, key: str,
              candidates: Sequence[int]) -> int:
        """Pick a node for one request; updates in-flight and warm
        state and logs the decision."""
        if not candidates:
            raise ValueError("route() needs at least one candidate")
        before = list(self.inflight)
        warm = [n for n in candidates if key in self._warm[n]]
        pick = None
        reason = ""
        if warm:
            best = min(warm, key=lambda n: (self.inflight[n], n))
            if self.inflight[best] < self.queue_threshold:
                pick, reason = best, "affinity"
                self.obs.counter("fleet.router.affinity_hits").inc()
            else:
                # Every warm node is overloaded: spill, but record
                # that affinity was tried.
                self.obs.counter("fleet.router.overload_spills").inc()
        if pick is None:
            if len(candidates) == 1:
                pick = candidates[0]
                reason = "spill-only" if warm else "only"
            else:
                a, b = self._rng.sample(list(candidates), 2)
                pick = a if (self.inflight[a], a) <= \
                    (self.inflight[b], b) else b
                reason = "spill-p2c" if warm else "p2c"
            self.obs.counter("fleet.router.p2c_picks").inc()
        self.decisions.append({
            "rid": rid, "key": key, "node": pick, "reason": reason,
            "inflight": before, "warm": sorted(warm)})
        self._warm[pick].add(key)
        self.inflight[pick] += 1
        return pick

    def note_done(self, node: int) -> None:
        """One routed request reached a terminal answer on ``node``."""
        self.inflight[node] -= 1
